//! Property-based tests of the core data structures and invariants.

use proptest::prelude::*;

use riscv_sva_repro::axi::BurstPlan;
use riscv_sva_repro::common::{Iova, PhysAddr, VirtAddr, PAGE_SIZE};
use riscv_sva_repro::iommu::{Iommu, IommuConfig};
use riscv_sva_repro::mem::{MemorySystem, SparseMemory};
use riscv_sva_repro::vm::{AddressSpace, FrameAllocator, PageTable, PteFlags};

proptest! {
    /// Burst plans cover exactly the requested bytes, never cross 4 KiB
    /// boundaries and never exceed the maximum burst size.
    #[test]
    fn burst_plan_invariants(
        addr in 0u64..0x1_0000_0000,
        len in 0u64..200_000,
        max_burst in prop::sample::select(vec![256u64, 1024, 2048, 4096]),
    ) {
        let plan = BurstPlan::split(PhysAddr::new(addr), len, max_burst);
        prop_assert_eq!(plan.total_bytes(), len);
        let mut expected_next = PhysAddr::new(addr);
        for burst in plan.bursts() {
            prop_assert!(burst.len > 0);
            prop_assert!(burst.len <= max_burst);
            // Contiguous, in order.
            prop_assert_eq!(burst.addr, expected_next);
            expected_next = burst.end();
            // Never crosses a page boundary.
            prop_assert_eq!(
                burst.addr.page_number(),
                (burst.end() - 1u64).page_number()
            );
        }
        if len > 0 {
            prop_assert!(plan.pages_touched() >= 1);
        }
    }

    /// Sparse memory behaves like a flat byte array.
    #[test]
    fn sparse_memory_matches_flat_model(
        writes in prop::collection::vec((0u64..60_000, prop::collection::vec(any::<u8>(), 1..200)), 1..20)
    ) {
        let mut mem = SparseMemory::new(1 << 16);
        let mut model = vec![0u8; 1 << 16];
        for (offset, data) in &writes {
            if *offset as usize + data.len() <= model.len() {
                mem.write(*offset, data).unwrap();
                model[*offset as usize..*offset as usize + data.len()].copy_from_slice(data);
            }
        }
        let mut out = vec![0u8; model.len()];
        mem.read(0, &mut out).unwrap();
        prop_assert_eq!(out, model);
    }

    /// Mapping pages and translating them through the page table is the
    /// identity on (page, offset) pairs, and unmapped pages always fault.
    #[test]
    fn page_table_roundtrip(
        pages in prop::collection::btree_set(0u64..512, 1..24),
        offset in 0u64..PAGE_SIZE,
    ) {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let pt = PageTable::create(&mut frames).unwrap();
        let base = VirtAddr::new(0x4000_0000);
        let mut mapping = Vec::new();
        for &p in &pages {
            let pa = frames.alloc_frame().unwrap();
            pt.map_page(&mut mem, &mut frames, base + p * PAGE_SIZE, pa, PteFlags::user_rw()).unwrap();
            mapping.push((p, pa));
        }
        for (p, pa) in mapping {
            let got = pt.translate(&mem, base + p * PAGE_SIZE + offset).unwrap();
            prop_assert_eq!(got, pa + offset);
        }
        // A page index outside the mapped set faults.
        let unmapped = (0..1024u64).find(|p| !pages.contains(p)).unwrap();
        prop_assert!(pt.translate(&mem, base + unmapped * PAGE_SIZE).is_err());
    }

    /// The IOMMU translation agrees with the process page table for every
    /// offset of a mapped buffer, regardless of the access pattern.
    #[test]
    fn iommu_matches_software_walk(
        offsets in prop::collection::vec(0u64..(8 * PAGE_SIZE), 1..40),
    ) {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let va = space.alloc_buffer(&mut mem, &mut frames, 8 * PAGE_SIZE).unwrap();
        let mut iommu = Iommu::new(IommuConfig::default());
        iommu.attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root()).unwrap();
        for off in offsets {
            let iova = Iova::from_virt(va + off);
            let (pa, cycles) = iommu.translate(&mut mem, 1, iova, false).unwrap();
            prop_assert_eq!(pa, space.translate(&mem, va + off).unwrap());
            prop_assert!(cycles.raw() > 0);
        }
        let stats = iommu.stats();
        prop_assert_eq!(stats.iotlb.total(), stats.translations);
        prop_assert!(stats.ptw_walks as usize <= 8usize.max(stats.iotlb.misses as usize));
    }

    /// The IOTLB never grows beyond its capacity and always serves hits for
    /// the most recently used page.
    #[test]
    fn iotlb_capacity_and_mru(
        pages in prop::collection::vec(0u64..64, 1..100),
    ) {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let va = space.alloc_buffer(&mut mem, &mut frames, 64 * PAGE_SIZE).unwrap();
        let mut iommu = Iommu::new(IommuConfig::default());
        iommu.attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root()).unwrap();

        for &p in &pages {
            let iova = Iova::from_virt(va + p * PAGE_SIZE);
            iommu.translate(&mut mem, 1, iova, false).unwrap();
            prop_assert!(iommu.iotlb().len() <= 4);
            // Immediately repeating the same page is always an IOTLB hit.
            let before = iommu.stats().iotlb.hits;
            iommu.translate(&mut mem, 1, iova, false).unwrap();
            prop_assert_eq!(iommu.stats().iotlb.hits, before + 1);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Functional correctness of the device axpy for arbitrary problem sizes
    /// (not just the paper's power-of-two sizes).
    #[test]
    fn device_axpy_matches_reference_for_odd_sizes(n in 1usize..6_000) {
        use riscv_sva_repro::kernels::AxpyWorkload;
        use riscv_sva_repro::soc::config::PlatformConfig;
        use riscv_sva_repro::soc::offload::{OffloadMode, OffloadRunner};
        use riscv_sva_repro::soc::platform::Platform;

        let workload = AxpyWorkload::with_elems(n);
        let mut platform = Platform::new(PlatformConfig::iommu_with_llc(200)).unwrap();
        let report = OffloadRunner::new(n as u64)
            .run(&mut platform, &workload, OffloadMode::ZeroCopy)
            .unwrap();
        prop_assert!(report.verified);
    }
}
