//! The fully-connected AXI crossbar.
//!
//! The crossbar model tracks which master issued each transaction, adds the
//! small routing latency of the real interconnect and keeps per-master
//! traffic statistics. Queuing between masters that target the same slave is
//! modelled by the memory system on top (the only shared slave that matters
//! for the evaluation is the DRAM/LLC path).

use serde::{Deserialize, Serialize};
use sva_common::stats::Counter;
use sva_common::Cycles;

use crate::txn::{AccessKind, MemTxn};

/// Masters attached to the system crossbar.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MasterPort {
    /// The CVA6 host core (through its L1 caches).
    Host,
    /// Translated device traffic (cluster DMA behind the IOMMU, or the
    /// cluster directly when the IOMMU is disabled/bypassed).
    Device,
    /// The IOMMU's dedicated page-table-walk port.
    Ptw,
}

impl MasterPort {
    /// All master ports, in a stable order.
    pub const ALL: [MasterPort; 3] = [MasterPort::Host, MasterPort::Device, MasterPort::Ptw];

    fn index(self) -> usize {
        match self {
            MasterPort::Host => 0,
            MasterPort::Device => 1,
            MasterPort::Ptw => 2,
        }
    }
}

/// Per-master traffic statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortStats {
    /// Number of read transactions issued by the master.
    pub reads: u64,
    /// Number of write transactions issued by the master.
    pub writes: u64,
    /// Total bytes moved by the master.
    pub bytes: u64,
}

/// The system crossbar: routing latency plus per-master accounting.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossbar {
    hop_latency: Cycles,
    stats: [PortStats; 3],
    total_txns: Counter,
}

impl Crossbar {
    /// Default one-way routing latency through the fully-connected crossbar
    /// (request plus response path), in host cycles.
    pub const DEFAULT_HOP_LATENCY: Cycles = Cycles::new(4);

    /// Creates a crossbar with the default routing latency.
    pub fn new() -> Self {
        Self::with_hop_latency(Self::DEFAULT_HOP_LATENCY)
    }

    /// Creates a crossbar with an explicit routing latency.
    pub fn with_hop_latency(hop_latency: Cycles) -> Self {
        Self {
            hop_latency,
            stats: [PortStats::default(); 3],
            total_txns: Counter::new(),
        }
    }

    /// Routing latency added to every transaction that traverses the crossbar.
    pub const fn hop_latency(&self) -> Cycles {
        self.hop_latency
    }

    /// Records one transaction from `port` and returns the routing latency it
    /// experiences.
    pub fn route(&mut self, port: MasterPort, txn: &MemTxn) -> Cycles {
        let s = &mut self.stats[port.index()];
        match txn.kind {
            AccessKind::Read => s.reads += 1,
            AccessKind::Write => s.writes += 1,
        }
        s.bytes += txn.len;
        self.total_txns.incr();
        self.hop_latency
    }

    /// Traffic statistics for one master.
    pub fn port_stats(&self, port: MasterPort) -> PortStats {
        self.stats[port.index()]
    }

    /// Total number of transactions routed since the last reset.
    pub fn total_transactions(&self) -> u64 {
        self.total_txns.get()
    }

    /// Fraction of all routed transactions issued by `port` (0.0 when idle).
    pub fn traffic_share(&self, port: MasterPort) -> f64 {
        let total = self.total_transactions();
        if total == 0 {
            0.0
        } else {
            let s = self.stats[port.index()];
            (s.reads + s.writes) as f64 / total as f64
        }
    }

    /// Clears all statistics.
    pub fn reset_stats(&mut self) {
        self.stats = [PortStats::default(); 3];
        self.total_txns.reset();
    }
}

impl Default for Crossbar {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::PhysAddr;

    #[test]
    fn routing_accumulates_stats() {
        let mut xbar = Crossbar::new();
        let lat = xbar.route(MasterPort::Host, &MemTxn::read(PhysAddr::new(0x1000), 64));
        assert_eq!(lat, Crossbar::DEFAULT_HOP_LATENCY);
        xbar.route(MasterPort::Host, &MemTxn::write(PhysAddr::new(0x2000), 8));
        xbar.route(MasterPort::Ptw, &MemTxn::read(PhysAddr::new(0x3000), 8));

        let host = xbar.port_stats(MasterPort::Host);
        assert_eq!(host.reads, 1);
        assert_eq!(host.writes, 1);
        assert_eq!(host.bytes, 72);
        assert_eq!(xbar.port_stats(MasterPort::Device), PortStats::default());
        assert_eq!(xbar.total_transactions(), 3);
    }

    #[test]
    fn traffic_share_sums_to_one() {
        let mut xbar = Crossbar::new();
        for i in 0..10 {
            let port = MasterPort::ALL[i % 3];
            xbar.route(port, &MemTxn::read(PhysAddr::new(0x1000), 64));
        }
        let total: f64 = MasterPort::ALL.iter().map(|&p| xbar.traffic_share(p)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_crossbar_has_zero_share() {
        let xbar = Crossbar::new();
        assert_eq!(xbar.traffic_share(MasterPort::Device), 0.0);
    }

    #[test]
    fn reset_clears_stats_but_keeps_latency() {
        let mut xbar = Crossbar::with_hop_latency(Cycles::new(7));
        xbar.route(MasterPort::Device, &MemTxn::read(PhysAddr::new(0), 8));
        xbar.reset_stats();
        assert_eq!(xbar.total_transactions(), 0);
        assert_eq!(xbar.hop_latency(), Cycles::new(7));
    }
}
