//! SoC address map and the LLC-bypass address remapping.
//!
//! The prototype platform (Figure 1 of the paper) exposes DRAM twice on the
//! bus: once through the last-level cache and once through a *bypass* alias
//! produced by a demux/mux pair around the LLC. The two windows map to the
//! same DRAM cells but differ by a fixed address offset; device DMA uses the
//! bypass window so long bursts are not broken into cache-line refills and do
//! not evict host data, while host and IOMMU page-table-walk traffic use the
//! cached window. The reserved upper half of DRAM (used for physically
//! contiguous copy-based offload buffers) is likewise uncached.

use serde::{Deserialize, Serialize};
use sva_common::{Error, PhysAddr, Result, GIB, KIB, MIB};

/// Base bus address of DRAM through the cached (LLC) path.
pub const DRAM_BASE: u64 = 0x8000_0000;

/// Size of the off-chip DRAM (2 GiB on the VCU128 prototype).
pub const DRAM_SIZE: u64 = 2 * GIB;

/// Offset added to a DRAM bus address to reach the same DRAM cells through
/// the LLC-bypass window (`LLC_BYPASS_OFFSET` in Listing 1 of the paper).
pub const LLC_BYPASS_OFFSET: u64 = 0x40_0000_0000;

/// Base bus address of the on-chip L2 scratchpad (1 MiB, physically
/// addressed, never cached).
pub const L2_SPM_BASE: u64 = 0x7800_0000;

/// Size of the on-chip L2 scratchpad.
pub const L2_SPM_SIZE: u64 = MIB;

/// Base address of the Snitch cluster's TCDM/peripheral window as seen from
/// the host.
pub const CLUSTER_BASE: u64 = 0x5000_0000;

/// Size of the cluster window (TCDM + peripherals).
pub const CLUSTER_SIZE: u64 = 2 * MIB;

/// Base address of the IOMMU programming interface (memory-mapped registers).
pub const IOMMU_REGS_BASE: u64 = 0x5100_0000;

/// Size of the IOMMU register window.
pub const IOMMU_REGS_SIZE: u64 = 4 * KIB;

/// Classification of a decoded bus address.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// DRAM through the LLC (host and PTW traffic).
    DramCached,
    /// DRAM through the bypass window (device DMA traffic).
    DramBypass,
    /// On-chip L2 scratchpad memory.
    L2Spm,
    /// Snitch cluster TCDM / peripherals (host-initiated accesses).
    Cluster,
    /// IOMMU register file.
    IommuRegs,
}

impl RegionKind {
    /// Returns `true` if accesses to this region may allocate in the LLC.
    pub const fn is_llc_cacheable(self) -> bool {
        matches!(self, RegionKind::DramCached)
    }

    /// Returns `true` if the region is backed by DRAM cells (either window).
    pub const fn is_dram(self) -> bool {
        matches!(self, RegionKind::DramCached | RegionKind::DramBypass)
    }
}

/// A named window in the bus address space.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// What the window decodes to.
    pub kind: RegionKind,
    /// First bus address of the window.
    pub base: PhysAddr,
    /// Size of the window in bytes.
    pub size: u64,
}

impl Region {
    /// Returns `true` if `addr` falls inside the window.
    pub const fn contains(&self, addr: PhysAddr) -> bool {
        addr.raw() >= self.base.raw() && addr.raw() < self.base.raw() + self.size
    }

    /// Offset of `addr` from the start of the window.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `addr` is not inside the window.
    pub fn offset_of(&self, addr: PhysAddr) -> u64 {
        debug_assert!(self.contains(addr));
        addr.raw() - self.base.raw()
    }
}

/// The result of decoding a bus address.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decoded {
    /// Kind of the matched window.
    pub kind: RegionKind,
    /// Byte offset into the backing resource. For both DRAM windows this is
    /// the offset into the *same* DRAM array, so cached and bypass accesses
    /// to the same cells decode to the same offset.
    pub offset: u64,
}

/// The LLC demux/mux pair: translates between the cached and bypass DRAM
/// windows.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BypassRemap {
    offset: u64,
}

impl BypassRemap {
    /// Creates the remapper with the platform's fixed bypass offset.
    pub const fn new() -> Self {
        Self {
            offset: LLC_BYPASS_OFFSET,
        }
    }

    /// The fixed offset between the two windows.
    pub const fn offset(&self) -> u64 {
        self.offset
    }

    /// Remaps a cached-window DRAM address to the bypass window (what the
    /// host does when handing buffer addresses to the device, Listing 1).
    pub const fn to_bypass(&self, addr: PhysAddr) -> PhysAddr {
        PhysAddr::new(addr.raw() + self.offset)
    }

    /// Remaps a bypass-window address back to the cached window.
    pub const fn from_bypass(&self, addr: PhysAddr) -> PhysAddr {
        PhysAddr::new(addr.raw() - self.offset)
    }

    /// Returns `true` if `addr` lies in the bypass window.
    pub const fn is_bypass(&self, addr: PhysAddr) -> bool {
        addr.raw() >= DRAM_BASE + self.offset && addr.raw() < DRAM_BASE + self.offset + DRAM_SIZE
    }
}

impl Default for BypassRemap {
    fn default() -> Self {
        Self::new()
    }
}

/// The full SoC address map.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    regions: Vec<Region>,
    remap: BypassRemap,
    /// Offset into DRAM above which buffers are reserved for physically
    /// contiguous DMA allocations (uncached by the LLC). The paper reserves
    /// the upper half of the 2 GiB DRAM.
    reserved_dram_offset: u64,
}

impl AddressMap {
    /// Builds the prototype platform's address map.
    pub fn prototype() -> Self {
        let remap = BypassRemap::new();
        let regions = vec![
            Region {
                kind: RegionKind::DramCached,
                base: PhysAddr::new(DRAM_BASE),
                size: DRAM_SIZE,
            },
            Region {
                kind: RegionKind::DramBypass,
                base: PhysAddr::new(DRAM_BASE + remap.offset()),
                size: DRAM_SIZE,
            },
            Region {
                kind: RegionKind::L2Spm,
                base: PhysAddr::new(L2_SPM_BASE),
                size: L2_SPM_SIZE,
            },
            Region {
                kind: RegionKind::Cluster,
                base: PhysAddr::new(CLUSTER_BASE),
                size: CLUSTER_SIZE,
            },
            Region {
                kind: RegionKind::IommuRegs,
                base: PhysAddr::new(IOMMU_REGS_BASE),
                size: IOMMU_REGS_SIZE,
            },
        ];
        Self {
            regions,
            remap,
            reserved_dram_offset: DRAM_SIZE / 2,
        }
    }

    /// The demux/mux remapper of this map.
    pub const fn remap(&self) -> &BypassRemap {
        &self.remap
    }

    /// The regions of the map, in decode priority order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Bus address of the first byte of the DRAM range reserved for
    /// physically contiguous DMA buffers (copy-based offload).
    pub const fn reserved_dram_base(&self) -> PhysAddr {
        PhysAddr::new(DRAM_BASE + self.reserved_dram_offset)
    }

    /// Size in bytes of the reserved contiguous DMA area.
    pub const fn reserved_dram_size(&self) -> u64 {
        DRAM_SIZE - self.reserved_dram_offset
    }

    /// Decodes a bus address into a region kind and an offset into the
    /// backing resource.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BusDecodeError`] if no window matches, mirroring the
    /// AXI decode error a real crossbar would raise.
    pub fn decode(&self, addr: PhysAddr) -> Result<Decoded> {
        for region in &self.regions {
            if region.contains(addr) {
                return Ok(Decoded {
                    kind: region.kind,
                    offset: region.offset_of(addr),
                });
            }
        }
        Err(Error::BusDecodeError { addr })
    }

    /// Returns `true` if an access to `addr` may allocate in the LLC.
    ///
    /// Accesses through the bypass window and accesses to the reserved
    /// contiguous DMA area are never cached; everything else in DRAM is.
    pub fn is_llc_cacheable(&self, addr: PhysAddr) -> bool {
        match self.decode(addr) {
            Ok(Decoded {
                kind: RegionKind::DramCached,
                offset,
            }) => offset < self.reserved_dram_offset,
            _ => false,
        }
    }

    /// Returns `true` if `addr` (in either DRAM window) refers to DRAM cells.
    pub fn is_dram(&self, addr: PhysAddr) -> bool {
        matches!(self.decode(addr), Ok(d) if d.kind.is_dram())
    }
}

impl Default for AddressMap {
    fn default() -> Self {
        Self::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_each_region() {
        let map = AddressMap::prototype();
        assert_eq!(
            map.decode(PhysAddr::new(DRAM_BASE)).unwrap().kind,
            RegionKind::DramCached
        );
        assert_eq!(
            map.decode(PhysAddr::new(DRAM_BASE + LLC_BYPASS_OFFSET + 0x40))
                .unwrap()
                .kind,
            RegionKind::DramBypass
        );
        assert_eq!(
            map.decode(PhysAddr::new(L2_SPM_BASE + 128)).unwrap().kind,
            RegionKind::L2Spm
        );
        assert_eq!(
            map.decode(PhysAddr::new(CLUSTER_BASE)).unwrap().kind,
            RegionKind::Cluster
        );
        assert_eq!(
            map.decode(PhysAddr::new(IOMMU_REGS_BASE + 8)).unwrap().kind,
            RegionKind::IommuRegs
        );
    }

    #[test]
    fn decode_error_outside_map() {
        let map = AddressMap::prototype();
        assert!(matches!(
            map.decode(PhysAddr::new(0x10)),
            Err(Error::BusDecodeError { .. })
        ));
    }

    #[test]
    fn cached_and_bypass_windows_share_offsets() {
        let map = AddressMap::prototype();
        let cached = PhysAddr::new(DRAM_BASE + 0x1234_5678);
        let bypass = map.remap().to_bypass(cached);
        let dc = map.decode(cached).unwrap();
        let db = map.decode(bypass).unwrap();
        assert_eq!(dc.offset, db.offset);
        assert_eq!(dc.kind, RegionKind::DramCached);
        assert_eq!(db.kind, RegionKind::DramBypass);
        assert_eq!(map.remap().from_bypass(bypass), cached);
        assert!(map.remap().is_bypass(bypass));
        assert!(!map.remap().is_bypass(cached));
    }

    #[test]
    fn cacheability_rules() {
        let map = AddressMap::prototype();
        // Linux half of DRAM through the cached window: cacheable.
        assert!(map.is_llc_cacheable(PhysAddr::new(DRAM_BASE + 0x100)));
        // Reserved contiguous area: not cacheable even through the cached window.
        assert!(!map.is_llc_cacheable(map.reserved_dram_base()));
        // Bypass window: never cacheable.
        assert!(!map.is_llc_cacheable(PhysAddr::new(DRAM_BASE + LLC_BYPASS_OFFSET)));
        // SPM: never cacheable.
        assert!(!map.is_llc_cacheable(PhysAddr::new(L2_SPM_BASE)));
    }

    #[test]
    fn dram_predicate_covers_both_windows() {
        let map = AddressMap::prototype();
        assert!(map.is_dram(PhysAddr::new(DRAM_BASE)));
        assert!(map.is_dram(PhysAddr::new(DRAM_BASE + LLC_BYPASS_OFFSET)));
        assert!(!map.is_dram(PhysAddr::new(L2_SPM_BASE)));
        assert!(!map.is_dram(PhysAddr::new(0x0)));
    }

    #[test]
    fn reserved_area_is_upper_half() {
        let map = AddressMap::prototype();
        assert_eq!(map.reserved_dram_base(), PhysAddr::new(DRAM_BASE + GIB));
        assert_eq!(map.reserved_dram_size(), GIB);
    }
}
