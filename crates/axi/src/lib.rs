//! Transaction-level model of the AXI on-chip interconnect of the prototype
//! platform.
//!
//! The paper's SoC (Figure 1) connects the CVA6 host, the IOMMU (two master
//! ports: translated device traffic and page-table-walk traffic), the LLC,
//! the L2 scratchpad and the DRAM controller through a fully-connected AXI
//! crossbar. Two architectural details of that interconnect are load-bearing
//! for the evaluation and are modelled here:
//!
//! * **burst semantics** — AXI transfers are split at 4 KiB boundaries and at
//!   the maximum burst length; every burst issued through the IOMMU may incur
//!   an IOTLB miss, which is where the translation overhead of Table II comes
//!   from ([`burst`]);
//! * **the LLC bypass** — a demux/mux pair remaps the same DRAM range to two
//!   bus address ranges separated by a fixed offset so device DMA can bypass
//!   the LLC while host and PTW traffic are cached ([`addrmap`]);
//! * **the DRAM delayer** — a FIFO-based delay block inserted before the DDR
//!   controller on the FPGA to emulate realistic memory latencies
//!   ([`delayer`]).
//!
//! # Example
//!
//! ```
//! use sva_axi::burst::BurstPlan;
//! use sva_common::PhysAddr;
//!
//! // A 5 KiB DMA transfer starting 256 B below a page boundary is split into
//! // three bursts: one up to the page boundary, then page-sized pieces capped
//! // at the maximum burst length.
//! let plan = BurstPlan::split(PhysAddr::new(0x8000_0F00), 5 * 1024, 2048);
//! assert_eq!(plan.bursts().len(), 4);
//! assert_eq!(plan.total_bytes(), 5 * 1024);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addrmap;
pub mod burst;
pub mod delayer;
pub mod txn;
pub mod xbar;

pub use addrmap::{AddressMap, BypassRemap, Region, RegionKind};
pub use burst::{Burst, BurstPlan};
pub use delayer::AxiDelayer;
pub use txn::{AccessKind, BusConfig, MemTxn};
pub use xbar::{Crossbar, MasterPort};
