//! The configurable DRAM delayer.
//!
//! The FPGA prototype runs at 50 MHz against a DDR4 chip designed for GHz
//! clocks, so raw memory latency would appear unrealistically small (about
//! 35 host cycles). The paper inserts a parametrisable AXI delayer built from
//! FIFO macroblocks in front of the DDR controller which delays the read-data
//! (`r`) and write-response (`b`) channels by a configurable number of
//! cycles. That knob — 200, 600 or 1000 extra cycles — is the independent
//! variable of every experiment in the evaluation, and this module is its
//! direct software counterpart.
//!
//! The delayer's FIFO macroblocks are the same structure the live fabric
//! models as its per-channel **response queues**: both are
//! [`sva_common::TimedQueue`]s — intervals of in-flight responses on the
//! global clock. The delayer's FIFO is unbounded (the FPGA block is sized to
//! never back-pressure) but *recording*, so its in-flight occupancy is
//! observable ([`AxiDelayer::in_flight_at`]); the fabric's response queues
//! are the bounded instantiation of the same primitive, where a full queue
//! delays grants (see `sva_mem::fabric`). Keeping both on one type is what
//! stops this crate's FIFO model from drifting from the fabric's.

use serde::{Deserialize, Serialize};
use sva_common::stats::Counter;
use sva_common::{Cycles, TimedQueue};

use crate::txn::AccessKind;

/// FIFO-based delay block inserted between the system crossbar and the DRAM
/// controller.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AxiDelayer {
    delay: Cycles,
    reads_delayed: Counter,
    writes_delayed: Counter,
    /// The in-flight response windows held by the delay FIFO, on the global
    /// clock; cleared per measurement window. Observability state, not
    /// configuration (excluded from the equality relation below).
    fifo: TimedQueue,
}

impl PartialEq for AxiDelayer {
    fn eq(&self, other: &Self) -> bool {
        // Configuration + counters identity; the FIFO occupancy record is
        // derived observability state, not configuration.
        self.delay == other.delay
            && self.reads_delayed == other.reads_delayed
            && self.writes_delayed == other.writes_delayed
    }
}

impl Eq for AxiDelayer {}

impl AxiDelayer {
    /// Creates a delayer adding `delay` cycles to every DRAM response.
    pub fn new(delay: Cycles) -> Self {
        Self {
            delay,
            reads_delayed: Counter::new(),
            writes_delayed: Counter::new(),
            fifo: TimedQueue::unbounded_recording(),
        }
    }

    /// A pass-through delayer (no added latency), equivalent to removing the
    /// block from the design.
    pub fn disabled() -> Self {
        Self::new(Cycles::ZERO)
    }

    /// The configured additional latency.
    pub const fn delay(&self) -> Cycles {
        self.delay
    }

    /// Reconfigures the additional latency (the experiments sweep this).
    pub fn set_delay(&mut self, delay: Cycles) {
        self.delay = delay;
    }

    /// Returns the extra latency applied to one transaction of the given
    /// direction and records it in the statistics.
    ///
    /// Reads are delayed on the `r` channel and writes on the `b` channel, so
    /// both directions observe the full configured delay, matching the FPGA
    /// block.
    pub fn apply(&mut self, kind: AccessKind) -> Cycles {
        match kind {
            AccessKind::Read => self.reads_delayed.incr(),
            AccessKind::Write => self.writes_delayed.incr(),
        }
        self.delay
    }

    /// Records one response held by the delay FIFO over `[start, start +
    /// span)` on the global clock. The memory system calls this for every
    /// timed access **when the fabric's split-transaction queues are
    /// bounded** (the unbounded default records nothing — no consumer, no
    /// cost), so in those configurations the FIFO's in-flight occupancy is
    /// a live measured quantity rather than a fiction of the latency
    /// formula.
    pub fn note_response(&mut self, start: Cycles, span: Cycles) {
        self.fifo.push(start.raw(), start.raw() + span.raw().max(1));
    }

    /// Number of responses in flight inside the delay FIFO at `t`.
    pub fn in_flight_at(&self, t: Cycles) -> usize {
        self.fifo.occupancy_at(t.raw())
    }

    /// Responses recorded in the FIFO since the last window/statistics
    /// reset.
    pub fn responses_recorded(&self) -> u64 {
        self.fifo.admissions()
    }

    /// Peak number of simultaneously in-flight responses observed.
    pub fn peak_in_flight(&self) -> usize {
        self.fifo.peak()
    }

    /// Folds FIFO history before `t` into a base constant (see
    /// [`TimedQueue::compact_before`]). The caller guarantees no response
    /// will be noted — and no occupancy queried — before `t`; long
    /// open-loop runs call this periodically so the FIFO record stays
    /// bounded.
    pub fn compact_window_before(&mut self, t: Cycles) {
        self.fifo.compact_before(t.raw());
    }

    /// Boundary events currently held by the FIFO's occupancy index.
    pub fn recorded_events(&self) -> usize {
        self.fifo.event_count()
    }

    /// Drops the recorded response windows (a new measurement window opens;
    /// arrivals restart from zero on the global clock).
    pub fn clear_window(&mut self) {
        self.fifo.clear_entries();
    }

    /// Number of read transactions that went through the delayer.
    pub fn reads_delayed(&self) -> u64 {
        self.reads_delayed.get()
    }

    /// Number of write transactions that went through the delayer.
    pub fn writes_delayed(&self) -> u64 {
        self.writes_delayed.get()
    }

    /// Resets the statistics counters (the configured delay is kept).
    pub fn reset_stats(&mut self) {
        self.reads_delayed.reset();
        self.writes_delayed.reset();
        self.fifo.reset();
    }
}

impl Default for AxiDelayer {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_configured_delay_to_both_directions() {
        let mut d = AxiDelayer::new(Cycles::new(600));
        assert_eq!(d.apply(AccessKind::Read), Cycles::new(600));
        assert_eq!(d.apply(AccessKind::Write), Cycles::new(600));
        assert_eq!(d.reads_delayed(), 1);
        assert_eq!(d.writes_delayed(), 1);
    }

    #[test]
    fn disabled_delayer_adds_nothing() {
        let mut d = AxiDelayer::disabled();
        assert_eq!(d.apply(AccessKind::Read), Cycles::ZERO);
        assert_eq!(d.delay(), Cycles::ZERO);
    }

    #[test]
    fn reconfiguration_and_stat_reset() {
        let mut d = AxiDelayer::new(Cycles::new(200));
        d.apply(AccessKind::Read);
        d.set_delay(Cycles::new(1000));
        assert_eq!(d.apply(AccessKind::Read), Cycles::new(1000));
        assert_eq!(d.reads_delayed(), 2);
        d.reset_stats();
        assert_eq!(d.reads_delayed(), 0);
        assert_eq!(d.delay(), Cycles::new(1000));
    }

    #[test]
    fn response_fifo_tracks_in_flight_windows() {
        let mut d = AxiDelayer::new(Cycles::new(200));
        d.note_response(Cycles::new(0), Cycles::new(235));
        d.note_response(Cycles::new(100), Cycles::new(235));
        assert_eq!(d.in_flight_at(Cycles::new(150)), 2);
        assert_eq!(d.in_flight_at(Cycles::new(300)), 1);
        assert_eq!(d.in_flight_at(Cycles::new(400)), 0);
        assert_eq!(d.responses_recorded(), 2);
        d.clear_window();
        assert_eq!(d.in_flight_at(Cycles::new(150)), 0);
        assert_eq!(
            d.responses_recorded(),
            2,
            "window clear keeps the statistic"
        );
        d.reset_stats();
        assert_eq!(d.responses_recorded(), 0);
    }

    #[test]
    fn window_compaction_bounds_the_fifo_record() {
        let mut d = AxiDelayer::new(Cycles::new(200));
        for i in 0..100u64 {
            d.note_response(Cycles::new(i * 10), Cycles::new(235));
        }
        let before = d.recorded_events();
        assert_eq!(d.peak_in_flight(), 24);
        // History before 800 folds away; responses straddling the watermark
        // keep answering occupancy queries exactly as before.
        let at_watermark = d.in_flight_at(Cycles::new(800));
        d.compact_window_before(Cycles::new(800));
        assert!(d.recorded_events() < before);
        assert_eq!(d.in_flight_at(Cycles::new(800)), at_watermark);
        assert_eq!(d.responses_recorded(), 100, "statistics survive");
        d.note_response(Cycles::new(6_000), Cycles::new(235));
        assert_eq!(d.in_flight_at(Cycles::new(6_100)), 1);
    }
}
