//! The configurable DRAM delayer.
//!
//! The FPGA prototype runs at 50 MHz against a DDR4 chip designed for GHz
//! clocks, so raw memory latency would appear unrealistically small (about
//! 35 host cycles). The paper inserts a parametrisable AXI delayer built from
//! FIFO macroblocks in front of the DDR controller which delays the read-data
//! (`r`) and write-response (`b`) channels by a configurable number of
//! cycles. That knob — 200, 600 or 1000 extra cycles — is the independent
//! variable of every experiment in the evaluation, and this module is its
//! direct software counterpart.

use serde::{Deserialize, Serialize};
use sva_common::stats::Counter;
use sva_common::Cycles;

use crate::txn::AccessKind;

/// FIFO-based delay block inserted between the system crossbar and the DRAM
/// controller.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxiDelayer {
    delay: Cycles,
    reads_delayed: Counter,
    writes_delayed: Counter,
}

impl AxiDelayer {
    /// Creates a delayer adding `delay` cycles to every DRAM response.
    pub fn new(delay: Cycles) -> Self {
        Self {
            delay,
            reads_delayed: Counter::new(),
            writes_delayed: Counter::new(),
        }
    }

    /// A pass-through delayer (no added latency), equivalent to removing the
    /// block from the design.
    pub fn disabled() -> Self {
        Self::new(Cycles::ZERO)
    }

    /// The configured additional latency.
    pub const fn delay(&self) -> Cycles {
        self.delay
    }

    /// Reconfigures the additional latency (the experiments sweep this).
    pub fn set_delay(&mut self, delay: Cycles) {
        self.delay = delay;
    }

    /// Returns the extra latency applied to one transaction of the given
    /// direction and records it in the statistics.
    ///
    /// Reads are delayed on the `r` channel and writes on the `b` channel, so
    /// both directions observe the full configured delay, matching the FPGA
    /// block.
    pub fn apply(&mut self, kind: AccessKind) -> Cycles {
        match kind {
            AccessKind::Read => self.reads_delayed.incr(),
            AccessKind::Write => self.writes_delayed.incr(),
        }
        self.delay
    }

    /// Number of read transactions that went through the delayer.
    pub fn reads_delayed(&self) -> u64 {
        self.reads_delayed.get()
    }

    /// Number of write transactions that went through the delayer.
    pub fn writes_delayed(&self) -> u64 {
        self.writes_delayed.get()
    }

    /// Resets the statistics counters (the configured delay is kept).
    pub fn reset_stats(&mut self) {
        self.reads_delayed.reset();
        self.writes_delayed.reset();
    }
}

impl Default for AxiDelayer {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_configured_delay_to_both_directions() {
        let mut d = AxiDelayer::new(Cycles::new(600));
        assert_eq!(d.apply(AccessKind::Read), Cycles::new(600));
        assert_eq!(d.apply(AccessKind::Write), Cycles::new(600));
        assert_eq!(d.reads_delayed(), 1);
        assert_eq!(d.writes_delayed(), 1);
    }

    #[test]
    fn disabled_delayer_adds_nothing() {
        let mut d = AxiDelayer::disabled();
        assert_eq!(d.apply(AccessKind::Read), Cycles::ZERO);
        assert_eq!(d.delay(), Cycles::ZERO);
    }

    #[test]
    fn reconfiguration_and_stat_reset() {
        let mut d = AxiDelayer::new(Cycles::new(200));
        d.apply(AccessKind::Read);
        d.set_delay(Cycles::new(1000));
        assert_eq!(d.apply(AccessKind::Read), Cycles::new(1000));
        assert_eq!(d.reads_delayed(), 2);
        d.reset_stats();
        assert_eq!(d.reads_delayed(), 0);
        assert_eq!(d.delay(), Cycles::new(1000));
    }
}
