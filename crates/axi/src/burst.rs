//! Splitting of DMA transfers into AXI bursts.
//!
//! The AXI specification requires that a burst never crosses a 4 KiB address
//! boundary and never exceeds 256 beats. The cluster DMA engine therefore
//! chops a large 1-D transfer into a sequence of bursts; when the IOMMU is
//! enabled, **each burst that starts on a new page** needs a fresh IOTLB
//! lookup, and a miss serialises the burst behind a multi-access page-table
//! walk. This is the microarchitectural mechanism behind the bandwidth loss
//! quantified in Section IV-B of the paper.

use serde::{Deserialize, Serialize};
use sva_common::{PhysAddr, PAGE_SIZE};

/// A single AXI burst: a contiguous transfer that respects the 4 KiB boundary
/// rule and the maximum burst length.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Burst {
    /// Start address of the burst. For DMA through the IOMMU this is an IO
    /// virtual address reinterpreted as a bus address prior to translation.
    pub addr: PhysAddr,
    /// Length of the burst in bytes (1 ..= max burst bytes).
    pub len: u64,
}

impl Burst {
    /// One past the last byte of the burst.
    pub const fn end(&self) -> PhysAddr {
        PhysAddr::new(self.addr.raw() + self.len)
    }

    /// Returns `true` if this burst begins on a different 4 KiB page than
    /// `prev` ended on (or if there is no previous burst), i.e. whether it
    /// requires a new address translation.
    pub fn starts_new_page(&self, prev: Option<&Burst>) -> bool {
        match prev {
            None => true,
            Some(p) => (p.end() - 1u64).page_number() != self.addr.page_number(),
        }
    }
}

/// The complete burst decomposition of one DMA transfer.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstPlan {
    bursts: Vec<Burst>,
}

impl BurstPlan {
    /// Splits a transfer of `len` bytes starting at `addr` into bursts of at
    /// most `max_burst_bytes` bytes that never cross a 4 KiB boundary.
    ///
    /// A zero-length transfer produces an empty plan.
    ///
    /// # Panics
    ///
    /// Panics if `max_burst_bytes` is zero.
    pub fn split(addr: PhysAddr, len: u64, max_burst_bytes: u64) -> Self {
        assert!(max_burst_bytes > 0, "maximum burst size must be non-zero");
        let mut bursts = Vec::new();
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let to_page_end = PAGE_SIZE - cur.page_offset();
            let chunk = remaining.min(max_burst_bytes).min(to_page_end);
            bursts.push(Burst {
                addr: cur,
                len: chunk,
            });
            cur += chunk;
            remaining -= chunk;
        }
        Self { bursts }
    }

    /// The bursts in issue order.
    pub fn bursts(&self) -> &[Burst] {
        &self.bursts
    }

    /// Total number of bytes carried by the plan.
    pub fn total_bytes(&self) -> u64 {
        self.bursts.iter().map(|b| b.len).sum()
    }

    /// Number of bursts in the plan.
    pub fn len(&self) -> usize {
        self.bursts.len()
    }

    /// Returns `true` if the plan contains no bursts.
    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty()
    }

    /// Number of distinct 4 KiB pages touched by the plan — an upper bound on
    /// the number of IOTLB lookups the transfer can miss on.
    pub fn pages_touched(&self) -> u64 {
        if self.bursts.is_empty() {
            return 0;
        }
        let first = self.bursts.first().unwrap().addr.page_number();
        let last = (self.bursts.last().unwrap().end() - 1u64).page_number();
        last - first + 1
    }

    /// Iterates over bursts together with a flag saying whether the burst
    /// starts on a page not covered by the previous burst (i.e. whether the
    /// DMA engine must present a new translation request for it).
    pub fn iter_with_new_page(&self) -> impl Iterator<Item = (Burst, bool)> + '_ {
        self.bursts.iter().enumerate().map(move |(i, b)| {
            let prev = if i == 0 {
                None
            } else {
                Some(&self.bursts[i - 1])
            };
            (*b, b.starts_new_page(prev))
        })
    }
}

impl<'a> IntoIterator for &'a BurstPlan {
    type Item = &'a Burst;
    type IntoIter = core::slice::Iter<'a, Burst>;

    fn into_iter(self) -> Self::IntoIter {
        self.bursts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_transfer_is_empty() {
        let plan = BurstPlan::split(PhysAddr::new(0x8000_0000), 0, 2048);
        assert!(plan.is_empty());
        assert_eq!(plan.total_bytes(), 0);
        assert_eq!(plan.pages_touched(), 0);
    }

    #[test]
    fn aligned_transfer_splits_at_max_burst() {
        let plan = BurstPlan::split(PhysAddr::new(0x8000_0000), 8192, 2048);
        assert_eq!(plan.len(), 4);
        assert!(plan.bursts().iter().all(|b| b.len == 2048));
        assert_eq!(plan.total_bytes(), 8192);
        assert_eq!(plan.pages_touched(), 2);
    }

    #[test]
    fn bursts_never_cross_page_boundaries() {
        let plan = BurstPlan::split(PhysAddr::new(0x8000_0F00), 5 * 1024, 2048);
        for b in &plan {
            let last = b.end() - 1u64;
            assert_eq!(
                b.addr.page_number(),
                last.page_number(),
                "burst {b:?} crosses a page boundary"
            );
            assert!(b.len <= 2048);
        }
        assert_eq!(plan.total_bytes(), 5 * 1024);
        // 0x0F00..0x1000 (256 B), then 2048, 2048, then remainder 768.
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.bursts()[0].len, 256);
    }

    #[test]
    fn new_page_flags_mark_translation_points() {
        // 2 pages, burst size = 1 KiB -> 8 bursts, translations at burst 0 and 4.
        let plan = BurstPlan::split(PhysAddr::new(0x8000_0000), 8192, 1024);
        let flags: Vec<bool> = plan.iter_with_new_page().map(|(_, f)| f).collect();
        assert_eq!(
            flags,
            vec![true, false, false, false, true, false, false, false]
        );
    }

    #[test]
    fn small_unaligned_transfer_single_burst() {
        let plan = BurstPlan::split(PhysAddr::new(0x8000_0123), 64, 2048);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.bursts()[0].len, 64);
        assert_eq!(plan.pages_touched(), 1);
    }

    #[test]
    #[should_panic(expected = "burst size")]
    fn zero_max_burst_panics() {
        let _ = BurstPlan::split(PhysAddr::new(0), 64, 0);
    }
}
