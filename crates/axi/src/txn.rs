//! Memory transaction and bus-geometry types.

use serde::{Deserialize, Serialize};
use sva_common::PhysAddr;

/// Direction of a memory access.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A read (AXI AR/R channels).
    Read,
    /// A write (AXI AW/W/B channels).
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A single memory transaction as seen by the interconnect: a physical
/// address, a length in bytes and a direction.
///
/// Transactions carry no data; the functional payload is moved separately by
/// the backing store so that timing models stay allocation-free.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemTxn {
    /// Start address of the access.
    pub addr: PhysAddr,
    /// Length of the access in bytes.
    pub len: u64,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemTxn {
    /// Creates a read transaction.
    pub const fn read(addr: PhysAddr, len: u64) -> Self {
        Self {
            addr,
            len,
            kind: AccessKind::Read,
        }
    }

    /// Creates a write transaction.
    pub const fn write(addr: PhysAddr, len: u64) -> Self {
        Self {
            addr,
            len,
            kind: AccessKind::Write,
        }
    }

    /// One past the last byte touched by the transaction.
    pub const fn end(&self) -> PhysAddr {
        PhysAddr::new(self.addr.raw() + self.len)
    }

    /// Returns `true` if the transaction crosses a 4 KiB page boundary.
    pub fn crosses_page_boundary(&self) -> bool {
        self.len > 0 && self.addr.page_number() != (self.end() - 1u64).page_number()
    }
}

/// Geometry of the data bus connecting an initiator to the memory system.
///
/// The prototype platform uses a 64-bit (8-byte) AXI data bus between the
/// cluster, the IOMMU and the main crossbar, and AXI4 caps bursts at 256
/// beats, i.e. 2 KiB per burst at this width.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusConfig {
    /// Width of the data bus in bytes per beat.
    pub bus_bytes: u64,
    /// Maximum number of beats per AXI burst.
    pub max_burst_beats: u64,
}

impl BusConfig {
    /// The 64-bit AXI bus used throughout the prototype.
    pub const AXI64: BusConfig = BusConfig {
        bus_bytes: 8,
        max_burst_beats: 256,
    };

    /// Maximum number of bytes a single burst may carry.
    pub const fn max_burst_bytes(&self) -> u64 {
        self.bus_bytes * self.max_burst_beats
    }

    /// Number of data beats needed to transfer `bytes` bytes, rounding up.
    pub const fn beats_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bus_bytes)
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        Self::AXI64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_constructors_and_end() {
        let r = MemTxn::read(PhysAddr::new(0x1000), 64);
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.kind.is_write());
        assert_eq!(r.end(), PhysAddr::new(0x1040));

        let w = MemTxn::write(PhysAddr::new(0x2000), 8);
        assert!(w.kind.is_write());
    }

    #[test]
    fn page_boundary_detection() {
        assert!(!MemTxn::read(PhysAddr::new(0x0FC0), 64).crosses_page_boundary());
        assert!(MemTxn::read(PhysAddr::new(0x0FC1), 64).crosses_page_boundary());
        assert!(MemTxn::read(PhysAddr::new(0x0800), 4096).crosses_page_boundary());
        assert!(!MemTxn::read(PhysAddr::new(0x1000), 4096).crosses_page_boundary());
        assert!(!MemTxn::read(PhysAddr::new(0x1000), 0).crosses_page_boundary());
    }

    #[test]
    fn bus_config_geometry() {
        let bus = BusConfig::AXI64;
        assert_eq!(bus.max_burst_bytes(), 2048);
        assert_eq!(bus.beats_for(0), 0);
        assert_eq!(bus.beats_for(1), 1);
        assert_eq!(bus.beats_for(8), 1);
        assert_eq!(bus.beats_for(9), 2);
        assert_eq!(bus.beats_for(2048), 256);
        assert_eq!(BusConfig::default(), BusConfig::AXI64);
    }
}
