//! Byte-size constants and formatting helpers.

/// One kibibyte (1024 bytes).
pub const KIB: u64 = 1024;

/// One mebibyte (1024 KiB).
pub const MIB: u64 = 1024 * KIB;

/// One gibibyte (1024 MiB).
pub const GIB: u64 = 1024 * MIB;

/// Formats a byte count using binary units with one decimal digit, e.g.
/// `"128.0 KiB"` or `"2.0 GiB"`.
///
/// # Example
///
/// ```
/// assert_eq!(sva_common::size::format_bytes(128 * 1024), "128.0 KiB");
/// assert_eq!(sva_common::size::format_bytes(512), "512 B");
/// ```
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= GIB {
        format!("{:.1} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a cycle count in engineering notation matching the paper's tables
/// (e.g. `2.03e6`).
///
/// # Example
///
/// ```
/// assert_eq!(sva_common::size::format_sci(2_030_000), "2.03e6");
/// ```
pub fn format_sci(value: u64) -> String {
    if value == 0 {
        return "0".to_string();
    }
    let exp = (value as f64).log10().floor() as i32;
    let mantissa = value as f64 / 10f64.powi(exp);
    format!("{mantissa:.2}e{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_bytes_selects_unit() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(1023), "1023 B");
        assert_eq!(format_bytes(KIB), "1.0 KiB");
        assert_eq!(format_bytes(64 * KIB), "64.0 KiB");
        assert_eq!(format_bytes(3 * MIB / 2), "1.5 MiB");
        assert_eq!(format_bytes(2 * GIB), "2.0 GiB");
    }

    #[test]
    fn format_sci_matches_paper_style() {
        assert_eq!(format_sci(2_030_000), "2.03e6");
        assert_eq!(format_sci(493_000), "4.93e5");
        assert_eq!(format_sci(7), "7.00e0");
        assert_eq!(format_sci(0), "0");
    }
}
