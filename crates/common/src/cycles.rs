//! Simulation time, expressed in host-domain clock cycles.
//!
//! The prototype platform of the paper runs two clock domains on the FPGA:
//! the host domain (CVA6, interconnect, IOMMU, LLC, DRAM controller) at
//! 50 MHz and the Snitch-cluster domain at 20 MHz. All measurements in the
//! paper are reported in clock cycles of the measuring domain; this crate
//! normalises everything to **host cycles** and converts cluster-domain work
//! with the fixed 2.5× ratio.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Host-domain clock frequency of the FPGA prototype (Hz).
pub const HOST_FREQ_HZ: u64 = 50_000_000;

/// Cluster-domain clock frequency of the FPGA prototype (Hz).
pub const CLUSTER_FREQ_HZ: u64 = 20_000_000;

/// A duration (or point in time) measured in host-domain clock cycles.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(cycles: u64) -> Self {
        Self(cycles)
    }

    /// Returns the raw cycle count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the count as `f64`, convenient for ratios and plotting.
    pub const fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub const fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two cycle counts.
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Returns the smaller of two cycle counts.
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// Converts the duration to wall-clock time on the FPGA prototype, in
    /// seconds, assuming the 50 MHz host clock.
    pub fn as_seconds(self) -> f64 {
        self.0 as f64 / HOST_FREQ_HZ as f64
    }

    /// Ratio of `self` to `other` as a fraction (e.g. for "% of runtime spent
    /// waiting for DMA"). Returns 0.0 when `other` is zero.
    pub fn fraction_of(self, other: Cycles) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycles({})", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

/// The two clock domains of the prototype platform.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClockDomain {
    /// 50 MHz domain: CVA6 host, interconnect, IOMMU, LLC, DRAM controller.
    Host,
    /// 20 MHz domain: Snitch cluster PEs, TCDM and DMA engine front-end.
    Cluster,
}

impl ClockDomain {
    /// Clock frequency of the domain in Hz, as configured on the VCU128
    /// FPGA prototype.
    pub const fn freq_hz(self) -> u64 {
        match self {
            ClockDomain::Host => HOST_FREQ_HZ,
            ClockDomain::Cluster => CLUSTER_FREQ_HZ,
        }
    }

    /// Converts a cycle count expressed in this domain into host-domain
    /// cycles (the global simulation time base).
    ///
    /// Host cycles pass through unchanged; cluster cycles are scaled by the
    /// 50 MHz / 20 MHz = 2.5 frequency ratio, rounding up so a non-zero
    /// amount of cluster work never becomes free.
    pub fn to_host_cycles(self, cycles_in_domain: u64) -> Cycles {
        match self {
            ClockDomain::Host => Cycles(cycles_in_domain),
            ClockDomain::Cluster => {
                // 2.5 host cycles per cluster cycle, rounded up.
                Cycles((cycles_in_domain * HOST_FREQ_HZ).div_ceil(CLUSTER_FREQ_HZ))
            }
        }
    }

    /// Converts host-domain cycles into this domain's cycles (rounding down).
    pub fn from_host_cycles(self, host_cycles: Cycles) -> u64 {
        match self {
            ClockDomain::Host => host_cycles.0,
            ClockDomain::Cluster => host_cycles.0 * CLUSTER_FREQ_HZ / HOST_FREQ_HZ,
        }
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockDomain::Host => write!(f, "host (50 MHz)"),
            ClockDomain::Cluster => write!(f, "cluster (20 MHz)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(40);
        assert_eq!((a + b).raw(), 140);
        assert_eq!((a - b).raw(), 60);
        assert_eq!((a * 3).raw(), 300);
        assert_eq!((a / 4).raw(), 25);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        let total: Cycles = [a, b, Cycles::new(10)].into_iter().sum();
        assert_eq!(total.raw(), 150);
    }

    #[test]
    fn cluster_to_host_ratio_is_2_5() {
        assert_eq!(ClockDomain::Cluster.to_host_cycles(2), Cycles::new(5));
        assert_eq!(ClockDomain::Cluster.to_host_cycles(100), Cycles::new(250));
        // Rounds up: 1 cluster cycle is 2.5 -> 3 host cycles.
        assert_eq!(ClockDomain::Cluster.to_host_cycles(1), Cycles::new(3));
        assert_eq!(ClockDomain::Host.to_host_cycles(7), Cycles::new(7));
    }

    #[test]
    fn host_cycles_back_to_cluster() {
        assert_eq!(ClockDomain::Cluster.from_host_cycles(Cycles::new(250)), 100);
        assert_eq!(ClockDomain::Host.from_host_cycles(Cycles::new(250)), 250);
    }

    #[test]
    fn fraction_and_seconds() {
        let dma = Cycles::new(250);
        let total = Cycles::new(1000);
        assert!((dma.fraction_of(total) - 0.25).abs() < 1e-12);
        assert_eq!(Cycles::new(10).fraction_of(Cycles::ZERO), 0.0);
        assert!((Cycles::new(HOST_FREQ_HZ).as_seconds() - 1.0).abs() < 1e-12);
    }
}
