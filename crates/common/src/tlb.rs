//! Vocabulary for set-associative TLB organisations and replacement
//! policies.
//!
//! The translation hierarchy of the scaled platform (per-device L1 address
//! translation caches in front of a shared L2 IOTLB, see `sva_iommu`) is
//! configured through these two types. They live in `sva_common` because
//! they are pure configuration vocabulary — the TLB *core* that interprets
//! them is a hardware model and lives with the IOMMU.

use serde::{Deserialize, Serialize};

/// Geometry of a set-associative TLB: `sets × ways` entries.
///
/// `sets == 1` is a fully-associative TLB (the paper's prototype IOTLB);
/// `ways == 1` is direct-mapped. Both dimensions must be at least one.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TlbOrg {
    /// Number of sets the tag is hashed into.
    pub sets: usize,
    /// Number of ways (entries) per set.
    pub ways: usize,
}

impl TlbOrg {
    /// Creates an organisation of `sets × ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0, "a TLB needs at least one set");
        assert!(ways > 0, "a TLB needs at least one way");
        Self { sets, ways }
    }

    /// A fully-associative organisation with `entries` entries (one set).
    pub fn fully_associative(entries: usize) -> Self {
        Self::new(1, entries)
    }

    /// A direct-mapped organisation with `entries` sets of one way each.
    pub fn direct_mapped(entries: usize) -> Self {
        Self::new(entries, 1)
    }

    /// Total number of entries (`sets × ways`).
    pub const fn entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Compact label (`"1x4"`, `"8x2"`, …) used in sweep output.
    pub fn label(&self) -> String {
        format!("{}x{}", self.sets, self.ways)
    }
}

/// Replacement policy of one TLB level.
///
/// All policies are fully deterministic, including [`ReplacementPolicy::Random`],
/// which draws its victims from a `DeterministicRng`-style splitmix64 stream
/// seeded by the carried seed — the same run always evicts the same entries.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Exact least-recently-used: every hit and fill timestamps the entry;
    /// the victim is the oldest timestamp in the set. This is the paper
    /// prototype's policy.
    TrueLru,
    /// Bit-PLRU approximation: each entry carries one "recently used" bit,
    /// set on hit/fill; when every way of a set is marked, the other marks
    /// are cleared. The victim is the first unmarked way.
    PseudoLru,
    /// First-in-first-out: entries are victimised in fill order; hits do not
    /// refresh an entry.
    Fifo,
    /// Uniform-random victim selection from a deterministic stream seeded by
    /// the carried value.
    Random(u64),
}

impl ReplacementPolicy {
    /// Compact label (`"lru"`, `"plru"`, `"fifo"`, `"rand"`) used in sweep
    /// output.
    pub const fn label(&self) -> &'static str {
        match self {
            ReplacementPolicy::TrueLru => "lru",
            ReplacementPolicy::PseudoLru => "plru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Random(_) => "rand",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn org_constructors_and_entries() {
        let fa = TlbOrg::fully_associative(4);
        assert_eq!((fa.sets, fa.ways, fa.entries()), (1, 4, 4));
        let dm = TlbOrg::direct_mapped(8);
        assert_eq!((dm.sets, dm.ways, dm.entries()), (8, 1, 8));
        let sa = TlbOrg::new(4, 2);
        assert_eq!(sa.entries(), 8);
        assert_eq!(sa.label(), "4x2");
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_rejected() {
        let _ = TlbOrg::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = TlbOrg::new(4, 0);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(ReplacementPolicy::TrueLru.label(), "lru");
        assert_eq!(ReplacementPolicy::PseudoLru.label(), "plru");
        assert_eq!(ReplacementPolicy::Fifo.label(), "fifo");
        assert_eq!(ReplacementPolicy::Random(7).label(), "rand");
    }
}
