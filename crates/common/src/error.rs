//! The error type shared across the workspace.

use core::fmt;

use crate::addr::{Iova, PhysAddr, VirtAddr};

/// Convenient result alias using the workspace [`Error`] type.
pub type Result<T> = core::result::Result<T, Error>;

/// Errors raised by the simulated platform.
///
/// These map onto the failure modes of the real system: page faults raised by
/// the MMU or IOMMU, accesses that decode to no device on the crossbar,
/// resource exhaustion in the allocators and configuration mistakes when
/// assembling a platform.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A host virtual address had no valid mapping in the process page table.
    HostPageFault {
        /// The faulting virtual address.
        addr: VirtAddr,
    },
    /// The IOMMU could not translate an IO virtual address (unmapped page or
    /// permission violation); corresponds to an entry in the IOMMU fault
    /// queue.
    IoPageFault {
        /// The faulting IO virtual address.
        iova: Iova,
        /// `true` if the faulting access was a write.
        is_write: bool,
    },
    /// The IOMMU had no device context for the requesting device ID.
    UnknownDevice {
        /// Device identifier presented on the bus.
        device_id: u32,
    },
    /// A physical address decoded to no target on the crossbar.
    BusDecodeError {
        /// The undecodable physical address.
        addr: PhysAddr,
    },
    /// An access fell outside the backing storage of the targeted memory.
    OutOfBounds {
        /// The out-of-range physical address.
        addr: PhysAddr,
        /// Size of the offending access in bytes.
        len: u64,
    },
    /// A physical-frame or IOVA-range allocation could not be satisfied.
    OutOfMemory {
        /// Human-readable description of the exhausted resource.
        what: &'static str,
    },
    /// The requested buffer does not fit in the accelerator's TCDM.
    TcdmOverflow {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
    /// A platform or experiment configuration is inconsistent.
    InvalidConfig {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// An offload was attempted with shared virtual addressing on a platform
    /// built without an IOMMU.
    IommuNotPresent,
    /// A kernel produced results that do not match the host reference.
    VerificationFailed {
        /// Name of the kernel whose output mismatched.
        kernel: String,
        /// Index of the first mismatching element.
        index: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::HostPageFault { addr } => write!(f, "host page fault at {addr}"),
            Error::IoPageFault { iova, is_write } => write!(
                f,
                "IO page fault at {iova} ({} access)",
                if *is_write { "write" } else { "read" }
            ),
            Error::UnknownDevice { device_id } => {
                write!(f, "no device context for device id {device_id}")
            }
            Error::BusDecodeError { addr } => {
                write!(f, "bus decode error: no target for address {addr}")
            }
            Error::OutOfBounds { addr, len } => {
                write!(f, "access of {len} bytes at {addr} is out of bounds")
            }
            Error::OutOfMemory { what } => write!(f, "out of memory: {what}"),
            Error::TcdmOverflow {
                requested,
                available,
            } => write!(
                f,
                "TCDM overflow: requested {requested} bytes, only {available} available"
            ),
            Error::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Error::IommuNotPresent => {
                write!(
                    f,
                    "shared virtual addressing requested but no IOMMU present"
                )
            }
            Error::VerificationFailed { kernel, index } => write!(
                f,
                "verification failed for kernel {kernel} at element {index}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let cases: Vec<Error> = vec![
            Error::HostPageFault {
                addr: VirtAddr::new(0x1000),
            },
            Error::IoPageFault {
                iova: Iova::new(0x2000),
                is_write: true,
            },
            Error::UnknownDevice { device_id: 3 },
            Error::BusDecodeError {
                addr: PhysAddr::new(0xFFFF_FFFF),
            },
            Error::OutOfMemory { what: "IOVA space" },
            Error::IommuNotPresent,
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("IO"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
