//! Deterministic random number generation.
//!
//! Experiments must be reproducible run-to-run, so every stochastic element
//! of the platform (synthetic host interference traffic, randomised workload
//! initialisation, merge-sort input permutations) draws from a
//! [`DeterministicRng`] seeded explicitly by the experiment configuration.

/// A seedable random number generator with a small convenience API.
///
/// Implements xoshiro256++ seeded through splitmix64, entirely in-tree so the
/// concrete algorithm is not part of the public API of the workspace and the
/// build carries no external dependency.
#[derive(Clone, Debug)]
pub struct DeterministicRng {
    state: [u64; 4],
    seed: u64,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the 256-bit state, as
        // recommended by the xoshiro authors.
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
            seed,
        }
    }

    /// The seed this generator was created with.
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `u64` over the full range.
    pub fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fills a slice with uniform `f32` values in `[lo, hi)`.
    pub fn fill_f32(&mut self, data: &mut [f32], lo: f32, hi: f32) {
        for v in data {
            *v = lo + self.next_f32() * (hi - lo);
        }
    }

    /// Produces a shuffled vector of the integers `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<u32> {
        let mut v: Vec<u32> = (0..n as u32).collect();
        // Fisher-Yates
        for i in (1..v.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }

    /// Derives an independent child generator; used when one experiment
    /// drives several stochastic components that must not share a stream.
    pub fn fork(&mut self, label: u64) -> DeterministicRng {
        DeterministicRng::new(self.next_u64() ^ label.rotate_left(17))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DeterministicRng::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DeterministicRng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = DeterministicRng::new(11);
        let p = rng.permutation(256);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..256u32).collect::<Vec<_>>());
    }

    #[test]
    fn fill_f32_within_range() {
        let mut rng = DeterministicRng::new(5);
        let mut buf = vec![0.0f32; 512];
        rng.fill_f32(&mut buf, -2.0, 2.0);
        assert!(buf.iter().all(|&x| (-2.0..2.0).contains(&x)));
        assert!(buf.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn fork_produces_independent_generator() {
        let mut parent = DeterministicRng::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(1);
        // forks taken at different points differ
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
