//! Open-loop arrival processes for the serving layer.
//!
//! A serving experiment drives the platform with *offered load*: requests
//! arrive on their own schedule whether or not the clusters keep up, unlike
//! the closed-loop experiment drivers that launch one offload at a time.
//! This module generates those arrival schedules deterministically from a
//! [`DeterministicRng`], so a trace replays bit-identically across worker
//! counts and machines.
//!
//! Three mixes cover the shapes a production front-end sees:
//!
//! * [`ArrivalMix::Poisson`] — memoryless arrivals (exponential
//!   inter-arrival gaps), the classic open-loop baseline.
//! * [`ArrivalMix::Bursty`] — arrivals clumped into bursts of
//!   [`BURST_SIZE`] with exponential gaps *between* bursts, preserving the
//!   mean rate while stressing the admission queue with head-of-line
//!   clusters.
//! * [`ArrivalMix::Diurnal`] — a Poisson process whose rate swings
//!   sinusoidally by [`DIURNAL_AMPLITUDE`] over [`DIURNAL_PERIODS`] periods
//!   of the trace (the day/night cycle compressed into one run): the same
//!   mean load, but with sustained peaks that saturate and troughs that
//!   drain.

use serde::{Deserialize, Serialize};

use crate::cycles::Cycles;
use crate::rng::DeterministicRng;

/// Requests per clump in the bursty mix.
pub const BURST_SIZE: u64 = 8;

/// Peak-to-mean rate swing of the diurnal mix (0.8 → the peak rate is
/// 1.8× the mean and the trough 0.2×).
pub const DIURNAL_AMPLITUDE: f64 = 0.8;

/// Full rate cycles across one diurnal trace.
pub const DIURNAL_PERIODS: f64 = 2.0;

/// The shape of an open-loop arrival process; see the module docs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalMix {
    /// Memoryless arrivals: exponential inter-arrival gaps.
    Poisson,
    /// [`BURST_SIZE`]-request clumps with exponential gaps between clumps.
    Bursty,
    /// Sinusoidally rate-modulated Poisson arrivals.
    Diurnal,
}

impl ArrivalMix {
    /// Every mix, for sweep grids.
    pub const ALL: [ArrivalMix; 3] = [ArrivalMix::Poisson, ArrivalMix::Bursty, ArrivalMix::Diurnal];

    /// Stable label for tables and JSON output.
    pub const fn label(self) -> &'static str {
        match self {
            ArrivalMix::Poisson => "poisson",
            ArrivalMix::Bursty => "bursty",
            ArrivalMix::Diurnal => "diurnal",
        }
    }

    /// Generates `count` absolute arrival times (host cycles, ascending)
    /// with a mean inter-arrival gap of `mean_gap`.
    ///
    /// The trace is a pure function of `(self, rng state, count,
    /// mean_gap)`; callers fork a dedicated RNG stream per tenant so
    /// traces stay independent of each other and of the workload data.
    pub fn generate(
        self,
        rng: &mut DeterministicRng,
        count: usize,
        mean_gap: Cycles,
    ) -> Vec<Cycles> {
        let mean = (mean_gap.raw() as f64).max(1.0);
        let mut times = Vec::with_capacity(count);
        let mut t = 0.0f64;
        match self {
            ArrivalMix::Poisson => {
                for _ in 0..count {
                    t += exponential(rng, mean);
                    times.push(t);
                }
            }
            ArrivalMix::Bursty => {
                // Bursts of BURST_SIZE back-to-back requests (tight
                // exponential jitter) separated by gaps with mean
                // BURST_SIZE × mean_gap: the long-run rate matches the
                // Poisson mix.
                let mut burst_start = 0.0f64;
                let mut in_burst = 0u64;
                for _ in 0..count {
                    if in_burst == 0 {
                        // Next clump an exponential gap after the previous
                        // clump's *start*, but never before the previous
                        // clump's jittered tail (times must ascend).
                        burst_start =
                            (burst_start + exponential(rng, BURST_SIZE as f64 * mean)).max(t);
                        t = burst_start;
                        in_burst = BURST_SIZE;
                    } else {
                        t += exponential(rng, mean / 16.0);
                    }
                    in_burst -= 1;
                    times.push(t);
                }
            }
            ArrivalMix::Diurnal => {
                // Thin a base exponential stream by the instantaneous rate
                // factor 1 + A·sin(2π·t/period): gaps stretch in the
                // trough and compress at the peak while the mean holds.
                let period = (count as f64 * mean / DIURNAL_PERIODS).max(1.0);
                for _ in 0..count {
                    let phase = core::f64::consts::TAU * (t / period);
                    let rate = 1.0 + DIURNAL_AMPLITUDE * phase.sin();
                    t += exponential(rng, mean / rate.max(1e-3));
                    times.push(t);
                }
            }
        }
        times
            .into_iter()
            .map(|ft| Cycles::new(ft.max(0.0) as u64))
            .collect()
    }
}

/// One exponential sample with the given mean (inverse-CDF transform).
fn exponential(rng: &mut DeterministicRng, mean: f64) -> f64 {
    // next_f64 is in [0, 1); flip to (0, 1] so ln never sees zero.
    let u = 1.0 - rng.next_f64();
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap_of(times: &[Cycles]) -> f64 {
        assert!(times.len() > 1);
        (times.last().unwrap().raw() - times[0].raw()) as f64 / (times.len() - 1) as f64
    }

    #[test]
    fn traces_are_ascending_and_deterministic() {
        for mix in ArrivalMix::ALL {
            let gen = || {
                let mut rng = DeterministicRng::new(0x5E41);
                mix.generate(&mut rng, 500, Cycles::new(10_000))
            };
            let a = gen();
            let b = gen();
            assert_eq!(a, b, "{} trace must replay identically", mix.label());
            assert!(
                a.windows(2).all(|w| w[0] <= w[1]),
                "{} trace must ascend",
                mix.label()
            );
            assert_eq!(a.len(), 500);
        }
    }

    #[test]
    fn all_mixes_hold_the_requested_mean_rate() {
        for mix in ArrivalMix::ALL {
            let mut rng = DeterministicRng::new(0xAB5);
            let times = mix.generate(&mut rng, 4_000, Cycles::new(10_000));
            let mean = mean_gap_of(&times);
            assert!(
                (mean - 10_000.0).abs() < 1_500.0,
                "{}: mean gap {mean:.0} strays from 10000",
                mix.label()
            );
        }
    }

    #[test]
    fn bursty_clumps_and_diurnal_swings() {
        let mut rng = DeterministicRng::new(0xB00);
        let bursty = ArrivalMix::Bursty.generate(&mut rng, 2_000, Cycles::new(10_000));
        // Within a burst gaps are tiny: a large fraction of gaps must sit
        // far below the mean.
        let tight = bursty
            .windows(2)
            .filter(|w| w[1].raw() - w[0].raw() < 2_500)
            .count();
        assert!(
            tight > bursty.len() / 2,
            "bursty mix must clump ({tight}/{} tight gaps)",
            bursty.len()
        );

        let mut rng = DeterministicRng::new(0xD1);
        let diurnal = ArrivalMix::Diurnal.generate(&mut rng, 4_000, Cycles::new(10_000));
        // Quarter-trace arrival counts must swing: the peak quarter sees
        // substantially more arrivals than the trough quarter.
        let horizon = diurnal.last().unwrap().raw() + 1;
        let mut quarters = [0u64; 4];
        for t in &diurnal {
            quarters[(t.raw() * 4 / horizon).min(3) as usize] += 1;
        }
        let peak = *quarters.iter().max().unwrap();
        let trough = *quarters.iter().min().unwrap();
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "diurnal quarters {quarters:?} must swing"
        );
    }
}
