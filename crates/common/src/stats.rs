//! Lightweight statistics primitives used by every timing model.
//!
//! All hardware models in the workspace expose their observable behaviour
//! through these types: hit/miss [`Counter`]s, latency [`RunningStats`] and
//! coarse [`Histogram`]s. They are intentionally plain data so experiment
//! code can snapshot, diff and print them without locking conventions.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::cycles::Cycles;

/// A monotonically increasing event counter (e.g. cache hits).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Self(0)
    }

    /// Increments the counter by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments the counter by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Hit/miss pair with convenience ratios, used by TLBs and caches.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HitMiss {
    /// Number of hits observed.
    pub hits: u64,
    /// Number of misses observed.
    pub misses: u64,
}

impl HitMiss {
    /// Creates an empty hit/miss record.
    pub const fn new() -> Self {
        Self { hits: 0, misses: 0 }
    }

    /// Records a hit.
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records a miss.
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Total number of accesses.
    pub const fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 0.0 when no accesses were recorded.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Miss rate in `[0, 1]`; 0.0 when no accesses were recorded.
    pub fn miss_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.misses as f64 / self.total() as f64
        }
    }

    /// Resets both counters.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

impl fmt::Display for HitMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

/// Streaming mean/min/max/sum over observed samples, used for per-event
/// latencies such as the IOMMU page-table-walk time of Figure 5.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records one sample given as [`Cycles`].
    pub fn record_cycles(&mut self, value: Cycles) {
        self.record(value.raw());
    }

    /// Number of recorded samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the samples, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, or `None` if none were recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if none were recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Resets the accumulator.
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "no samples")
        } else {
            write!(
                f,
                "n={} mean={:.1} min={} max={}",
                self.count,
                self.mean(),
                self.min,
                self.max
            )
        }
    }
}

/// A histogram with fixed-width buckets plus an overflow bucket, used for
/// latency distributions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `num_buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero or `num_buckets` is zero.
    pub fn new(bucket_width: u64, num_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be non-zero");
        assert!(num_buckets > 0, "histogram needs at least one bucket");
        Self {
            bucket_width,
            buckets: vec![0; num_buckets],
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Number of samples that exceeded the highest bucket.
    pub const fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (i as u64 * self.bucket_width, c))
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`), resolved to the lower
    /// bound of the bucket holding the rank-`⌈q·n⌉` sample; samples in the
    /// overflow bucket resolve to the histogram's upper edge. Returns 0 for
    /// an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (lower, count) in self.iter() {
            cumulative += count;
            if cumulative >= rank {
                return lower;
            }
        }
        self.bucket_width * self.buckets.len() as u64
    }

    /// Batch [`Histogram::percentile`]: resolves every quantile of `qs` in
    /// one cumulative pass, returned in input order. The SLO triple
    /// `&[0.5, 0.99, 0.999]` is the intended caller — with tail quantiles
    /// a per-quantile `percentile` call re-walks the buckets each time.
    pub fn percentiles(&self, qs: &[f64]) -> Vec<u64> {
        let total = self.count();
        if total == 0 {
            return vec![0; qs.len()];
        }
        // Rank per quantile, then resolve ascending-by-rank in one walk.
        let ranks: Vec<u64> = qs
            .iter()
            .map(|q| ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1))
            .collect();
        let mut order: Vec<usize> = (0..qs.len()).collect();
        order.sort_by_key(|&i| ranks[i]);
        let edge = self.bucket_width * self.buckets.len() as u64;
        let mut out = vec![edge; qs.len()];
        let mut cumulative = 0u64;
        let mut next = 0usize;
        for (lower, count) in self.iter() {
            cumulative += count;
            while next < order.len() && cumulative >= ranks[order[next]] {
                out[order[next]] = lower;
                next += 1;
            }
            if next == order.len() {
                break;
            }
        }
        out
    }

    /// Merges another histogram into this one (per-tenant distributions
    /// into a fleet-wide one).
    ///
    /// # Panics
    ///
    /// Panics if the bucket geometry differs — merging histograms with
    /// different widths would silently mis-bucket every sample.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            (self.bucket_width, self.buckets.len()),
            (other.bucket_width, other.buckets.len()),
            "histogram geometries must match to merge"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn hit_miss_rates() {
        let mut hm = HitMiss::new();
        assert_eq!(hm.hit_rate(), 0.0);
        for _ in 0..3 {
            hm.hit();
        }
        hm.miss();
        assert_eq!(hm.total(), 4);
        assert!((hm.hit_rate() - 0.75).abs() < 1e-12);
        assert!((hm.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn running_stats_mean_min_max() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for v in [10, 20, 30] {
            s.record(v);
        }
        s.record_cycles(Cycles::new(40));
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 100);
        assert!((s.mean() - 25.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(40));
    }

    #[test]
    fn running_stats_merge() {
        let mut a = RunningStats::new();
        a.record(5);
        let mut b = RunningStats::new();
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(25));
        let empty = RunningStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(100, 4);
        for v in [0, 99, 100, 250, 399, 400, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.overflow(), 2);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(0, 2), (100, 1), (200, 1), (300, 1)]);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn histogram_rejects_zero_width() {
        let _ = Histogram::new(0, 4);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new(10, 10);
        assert_eq!(h.percentile(0.5), 0, "empty histogram");
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(0.5), 40, "median falls in the fifth bucket");
        assert_eq!(h.percentile(1.0), 90);
        h.record(5000); // overflow sample
        assert_eq!(h.percentile(1.0), 100, "overflow resolves to the edge");
    }

    #[test]
    fn percentiles_batch_matches_percentile() {
        let mut h = Histogram::new(10, 100);
        assert_eq!(h.percentiles(&[0.5, 0.99]), vec![0, 0], "empty histogram");
        let mut x = 7u64;
        for _ in 0..5_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(x % 1200); // some overflow past 1000
        }
        // The SLO triple deliberately unsorted: output stays input-ordered.
        let qs = [0.99, 0.5, 0.999, 0.0, 1.0];
        let batch = h.percentiles(&qs);
        let single: Vec<u64> = qs.iter().map(|&q| h.percentile(q)).collect();
        assert_eq!(batch, single);
    }

    #[test]
    fn histogram_merge_sums_buckets_and_overflow() {
        let mut a = Histogram::new(100, 4);
        let mut b = Histogram::new(100, 4);
        for v in [0, 150, 9000] {
            a.record(v);
        }
        for v in [150, 399, 9000, 9001] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.overflow(), 3);
        let buckets: Vec<(u64, u64)> = a.iter().collect();
        assert_eq!(buckets, vec![(0, 1), (100, 2), (200, 0), (300, 1)]);
    }

    #[test]
    #[should_panic(expected = "geometries must match")]
    fn histogram_merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(100, 4);
        a.merge(&Histogram::new(50, 4));
    }
}
