//! Common foundation types for the RISC-V shared-virtual-addressing (SVA)
//! reproduction.
//!
//! This crate contains the vocabulary shared by every other crate in the
//! workspace:
//!
//! * strongly-typed addresses ([`PhysAddr`], [`VirtAddr`], [`Iova`]) and page
//!   arithmetic ([`addr`]),
//! * simulation time in host-domain cycles and clock-domain conversion
//!   ([`cycles`]),
//! * byte-size helpers ([`size`]),
//! * lightweight statistics primitives used by every timing model
//!   ([`stats`]),
//! * a deterministic, seedable random-number wrapper ([`rng`]) and the
//!   open-loop arrival processes built on it ([`arrival`]),
//! * the common error type ([`error`]).
//!
//! # Example
//!
//! ```
//! use sva_common::prelude::*;
//!
//! let base = PhysAddr::new(0x8000_0000);
//! let next_page = base.align_up(PAGE_SIZE);
//! assert_eq!(next_page, base); // already aligned
//!
//! let host = Cycles::new(500);
//! let cluster = ClockDomain::Cluster.to_host_cycles(200);
//! assert_eq!(host + cluster, Cycles::new(1000));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod arrival;
pub mod channel;
pub mod clock;
pub mod cycles;
pub mod error;
pub mod port;
pub mod rng;
pub mod size;
pub mod stats;
pub mod tlb;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::addr::{Iova, PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
    pub use crate::arrival::ArrivalMix;
    pub use crate::channel::{CreditPort, QueueDepths, TimedQueue};
    pub use crate::clock::{GlobalClock, TimeSource};
    pub use crate::cycles::{ClockDomain, Cycles};
    pub use crate::error::{Error, Result};
    pub use crate::port::{
        ArbitrationPolicy, InitiatorClass, InitiatorId, MemPortReq, PortDir, PortTiming,
    };
    pub use crate::size::{GIB, KIB, MIB};
    pub use crate::stats::{Counter, RunningStats};
    pub use crate::tlb::{ReplacementPolicy, TlbOrg};
}

pub use addr::{Iova, PhysAddr, VirtAddr, CACHE_LINE_SIZE, PAGE_SHIFT, PAGE_SIZE};
pub use arrival::ArrivalMix;
pub use channel::{CreditPort, NaiveTimedQueue, QueueDepths, ReservationIndex, TimedQueue};
pub use clock::{GlobalClock, TimeSource};
pub use cycles::{ClockDomain, Cycles};
pub use error::{Error, Result};
pub use port::{
    ArbitrationPolicy, InitiatorClass, InitiatorId, InitiatorStats, MemPortReq, PortDir, PortTiming,
};
pub use size::{GIB, KIB, MIB};
pub use tlb::{ReplacementPolicy, TlbOrg};
