//! Bounded request/response channels and issue credits.
//!
//! The memory fabric of this simulator is call-driven: initiators present
//! accesses stamped with arrival times on the global clock rather than being
//! stepped cycle by cycle. A hardware FIFO therefore cannot be modelled as a
//! mutable ring buffer — entries are recorded in *simulation* order, which is
//! not time order (the shards of a multi-cluster offload all restart their
//! cursor at zero). [`TimedQueue`] models a bounded queue as an **occupancy
//! timeline** instead: every entry occupies the interval `[enter, exit)` on
//! the shared virtual timeline, the queue is *full at time `t`* when `depth`
//! entries cover `t`, and admission of a new entry arriving at `t` is delayed
//! to the earliest instant at which occupancy drops below the depth. The
//! delay is exactly the stall a master-side handshake would observe when the
//! channel FIFO is full.
//!
//! # The event-indexed engine
//!
//! Early revisions stored the raw interval list and answered every query with
//! a full linear scan — O(entries) per push and O(n²) per measurement window,
//! which became the simulator's bottleneck at serving scale. The engine is
//! now an **event-indexed occupancy timeline**: a `BTreeMap<u64, Boundary>`
//! of boundary events (`+1` delta at an interval's enter, `−1` at its exit)
//! that eagerly maintains the **running prefix** of those deltas — each
//! boundary stores the occupancy level holding on `[boundary, next
//! boundary)`. Queries become O(log n) range walks from the query point:
//!
//! * [`TimedQueue::occupancy_at`] is one floor lookup;
//! * [`TimedQueue::admission_at`] walks boundaries forward from the arrival
//!   until the level drops below the depth (occupancy only changes at a
//!   boundary, so the admission point is the arrival itself or a boundary);
//! * [`TimedQueue::push`] finds its admission point with a single combined
//!   query and splices the new interval in by incrementing the levels it
//!   covers — O(log n + overlap), where the overlap is bounded by the
//!   queue's depth for bounded queues rather than by history length.
//!
//! **Watermark compaction** ([`TimedQueue::compact_before`]) keeps memory
//! bounded inside a measurement window: when the caller can guarantee no
//! future arrival or query before an instant `w` (a monotone open-loop
//! arrival process), every boundary before `w` collapses into a single
//! base-occupancy constant. The cycle-exact naive model is retained as
//! [`NaiveTimedQueue`] — the reference the property suite and the
//! `simspeed` perf gate run the indexed engine against.
//!
//! [`ReservationIndex`] is the sibling engine for the fabric's
//! **bus-reservation timelines**: overlapping, payload-carrying intervals
//! that the placement loop probes for conflicts. It keys reservations by
//! their *end* so finished history is invisible to the probe, and carries
//! the same watermark-compaction discipline (see its type docs).
//!
//! [`CreditPort`] is the initiator-facing handle: a cheap, cloneable
//! reference onto one shared [`TimedQueue`]. An initiator (or the fabric
//! acting on its behalf) must **acquire** a credit for every request it
//! issues — [`CreditPort::acquire`] returns the grant time (arrival plus any
//! full-queue stall) and records the entry; the credit is implicitly
//! released at the entry's exit time. Because clones share the queue,
//! handing a port to an initiator and keeping one inside the fabric gives
//! both the same view of the channel's backlog. Cloning a *simulation*
//! (a whole platform) must therefore deep-copy the underlying queues —
//! see `sva_mem::fabric`'s manual `Clone` — or two independent runs would
//! consume each other's credits.
//!
//! [`QueueDepths`] is the configuration vocabulary: a request-queue and a
//! response-queue depth, where [`QueueDepths::UNBOUNDED`] (`usize::MAX`)
//! reproduces the pure reservation model cycle-for-cycle (nothing ever
//! stalls, and the queue machinery is skipped entirely).

use core::cell::RefCell;
use core::fmt;
use std::collections::BTreeMap;
use std::ops::Bound::{Excluded, Unbounded};
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::cycles::Cycles;

/// Depth configuration of one channel's request and response queues.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDepths {
    /// Request-queue depth (slots a grant occupies from admission until the
    /// bus starts serving it). `usize::MAX` means unbounded.
    pub req: usize,
    /// Response-queue depth (slots a completion occupies from its bus grant
    /// until the initiator retires it). `usize::MAX` means unbounded.
    pub rsp: usize,
}

impl QueueDepths {
    /// Unbounded queues: the pure reservation model, cycle-identical to the
    /// pre-split-transaction fabric.
    pub const UNBOUNDED: QueueDepths = QueueDepths {
        req: usize::MAX,
        rsp: usize::MAX,
    };

    /// Finite depths for both queues (clamped to at least one slot each).
    pub const fn bounded(req: usize, rsp: usize) -> QueueDepths {
        QueueDepths {
            req: if req == 0 { 1 } else { req },
            rsp: if rsp == 0 { 1 } else { rsp },
        }
    }

    /// Whether both queues are unbounded (the default).
    pub const fn is_unbounded(&self) -> bool {
        self.req == usize::MAX && self.rsp == usize::MAX
    }

    /// Stable label for tables and JSON output (`inf` or `req/rsp`).
    pub fn label(&self) -> String {
        if self.is_unbounded() {
            "inf".to_string()
        } else {
            let part = |d: usize| {
                if d == usize::MAX {
                    "inf".to_string()
                } else {
                    d.to_string()
                }
            };
            format!("{}/{}", part(self.req), part(self.rsp))
        }
    }
}

impl Default for QueueDepths {
    fn default() -> Self {
        Self::UNBOUNDED
    }
}

impl fmt::Display for QueueDepths {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One boundary event of the indexed occupancy timeline.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
struct Boundary {
    /// Net interval enters minus exits at exactly this instant (the raw
    /// delta of the event index; kept so the maintained prefix below is
    /// checkable — see [`TimedQueue::debug_validate`]).
    delta: i64,
    /// The maintained running prefix: occupancy holding on
    /// `[this boundary, next boundary)`.
    occ: u32,
}

/// A bounded queue modelled as an event-indexed occupancy timeline.
///
/// Entries may be recorded in any order of `enter` times (simulation order is
/// not time order); occupancy at an instant is the number of recorded
/// intervals covering it. Admission of an arrival at `t` is the earliest
/// `a >= t` at which occupancy is below the configured depth. With
/// `depth == usize::MAX` admission is always immediate and no entries are
/// recorded, so the unbounded queue costs nothing.
///
/// See the module documentation for the engine: boundary deltas with an
/// eagerly maintained running prefix in a `BTreeMap`, plus watermark
/// compaction ([`TimedQueue::compact_before`]).
#[derive(Clone, Debug, Default)]
pub struct TimedQueue {
    depth: usize,
    /// Whether intervals are recorded at all. Bounded queues always record
    /// (admission needs the history); unbounded queues default to not
    /// recording — they can never stall, so the bookkeeping would be pure
    /// overhead — unless built with [`TimedQueue::unbounded_recording`]
    /// (an observable FIFO like the AXI delayer's response queue).
    record: bool,
    /// The event index: boundary instant → (delta, occupancy level on the
    /// half-open span up to the next boundary).
    timeline: BTreeMap<u64, Boundary>,
    /// Occupancy holding below the earliest retained boundary: 0 until
    /// compaction folds finished history into it.
    base: u32,
    /// Everything before this instant has been compacted away; the caller
    /// guaranteed no arrival or query below it. Queries below the watermark
    /// are clamped to it (they read the folded base constant).
    watermark: u64,
    /// Latest exit among the recorded entries: queries at or past it cannot
    /// be covered by anything, which keeps the common "arrival beyond the
    /// backlog" case O(1) (arrivals are not monotone, so unsolicited pruning
    /// by time is impossible — compaction needs the caller's watermark).
    max_exit: u64,
    /// Boundary events folded away by watermark compaction.
    compacted_events: u64,
    /// Highest occupancy observed at any admission (including the admitted
    /// entry itself). Tracked for every recording queue.
    peak: usize,
    /// Total admission delay accumulated across all pushes.
    stall_cycles: u64,
    /// Entries admitted.
    admissions: u64,
}

impl TimedQueue {
    /// Creates a queue of the given depth (0 is clamped to 1;
    /// `usize::MAX` means unbounded).
    pub fn new(depth: usize) -> Self {
        Self {
            depth: depth.max(1),
            record: depth != usize::MAX,
            ..Self::default()
        }
    }

    /// An unbounded queue that still records every interval, so in-flight
    /// occupancy is observable ([`TimedQueue::occupancy_at`]) even though
    /// nothing can ever stall. Pushes, occupancy queries and the peak
    /// statistic all ride the same O(log n) index as bounded queues.
    pub fn unbounded_recording() -> Self {
        Self {
            depth: usize::MAX,
            record: true,
            ..Self::default()
        }
    }

    /// The configured depth.
    pub const fn depth(&self) -> usize {
        self.depth
    }

    /// Whether the queue is unbounded (depth `usize::MAX`).
    pub const fn is_unbounded(&self) -> bool {
        self.depth == usize::MAX
    }

    /// The occupancy level holding at `t` (clamped to the watermark): one
    /// floor lookup in the event index.
    fn level_at(&self, t: u64) -> u32 {
        let t = t.max(self.watermark);
        match self.timeline.range(..=t).next_back() {
            Some((_, b)) => b.occ,
            None => self.base,
        }
    }

    /// Number of recorded intervals covering `t`.
    ///
    /// Queries below the compaction watermark read the folded base constant
    /// (the caller promised not to ask about compacted history).
    pub fn occupancy_at(&self, t: u64) -> usize {
        if !self.record {
            return 0;
        }
        self.level_at(t) as usize
    }

    /// The combined covering query: the earliest instant at or after `t` at
    /// which a new entry can be admitted **and** the occupancy already
    /// holding at that instant, found in one walk of the event index.
    ///
    /// Occupancy only changes at a boundary, so the admission point is
    /// either `t` itself or the first later boundary whose level is below
    /// the depth; the walk reads the level as it goes instead of re-scanning
    /// per candidate (the folded double scan `push` used to perform).
    pub fn admit_at(&self, t: u64) -> (u64, usize) {
        let t = t.max(self.watermark);
        if self.is_unbounded() || t >= self.max_exit {
            return (t, self.occupancy_at(t));
        }
        let level = self.level_at(t);
        if (level as usize) < self.depth {
            return (t, level as usize);
        }
        for (&at, b) in self.timeline.range((Excluded(t), Unbounded)) {
            if (b.occ as usize) < self.depth {
                return (at, b.occ as usize);
            }
        }
        // Unreachable: every recorded interval is closed, so the trailing
        // boundary's level is 0 < depth.
        debug_assert!(false, "occupancy never dropped below the depth");
        (self.max_exit, 0)
    }

    /// Earliest instant at or after `t` at which a new entry can be
    /// admitted (occupancy below the depth). Pure query — nothing is
    /// recorded.
    pub fn admission_at(&self, t: u64) -> u64 {
        self.admit_at(t).0
    }

    /// Ensures a boundary event exists at `k`, seeding it with the level
    /// holding there (the running prefix stays correct across the split).
    fn ensure_boundary(&mut self, k: u64) {
        if !self.timeline.contains_key(&k) {
            let level = match self.timeline.range(..k).next_back() {
                Some((_, b)) => b.occ,
                None => self.base,
            };
            self.timeline.insert(
                k,
                Boundary {
                    delta: 0,
                    occ: level,
                },
            );
        }
    }

    /// Splices the interval `[enter, exit)` into the index: `+1`/`−1`
    /// boundary deltas and a level increment across every boundary the
    /// interval covers. Returns the occupancy at `enter` *including* the
    /// new entry. O(log n + boundaries covered).
    fn insert(&mut self, enter: u64, exit: u64) -> usize {
        debug_assert!(enter < exit, "intervals occupy at least one cycle");
        debug_assert!(enter >= self.watermark, "insert below the watermark");
        self.ensure_boundary(enter);
        self.ensure_boundary(exit);
        let mut at_enter = 0u32;
        for (&k, b) in self.timeline.range_mut(enter..exit) {
            b.occ += 1;
            if k == enter {
                at_enter = b.occ;
            }
        }
        self.timeline
            .get_mut(&enter)
            .expect("enter boundary exists")
            .delta += 1;
        self.timeline
            .get_mut(&exit)
            .expect("exit boundary exists")
            .delta -= 1;
        self.max_exit = self.max_exit.max(exit);
        at_enter as usize
    }

    /// Admits an entry arriving at `enter` that holds its slot until `exit`
    /// (clamped to occupy at least one cycle past admission). Returns the
    /// admission time and the occupancy including the new entry.
    pub fn push(&mut self, enter: u64, exit: u64) -> (u64, usize) {
        let (admitted, _) = self.admit_at(enter);
        self.stall_cycles += admitted - enter;
        self.admissions += 1;
        if !self.record {
            // Nothing can ever stall and nobody queries occupancy of a
            // non-recording unbounded queue: skip the bookkeeping entirely
            // so the default configuration costs nothing.
            return (admitted, 0);
        }
        let exit = exit.max(admitted + 1);
        let occupancy = self.insert(admitted, exit);
        self.peak = self.peak.max(occupancy);
        (admitted, occupancy)
    }

    /// Folds every boundary event before `w` into the base-occupancy
    /// constant, bounding the index's memory inside a measurement window.
    ///
    /// The caller guarantees no future push **or** query concerns an
    /// instant before `w` — the "earliest possible future arrival" of a
    /// monotone (open-loop) arrival process. Queries below the watermark
    /// are clamped to it and read the folded constant; statistics are
    /// untouched. A no-op for non-recording queues and watermarks that do
    /// not advance.
    pub fn compact_before(&mut self, w: u64) {
        if !self.record || w <= self.watermark {
            return;
        }
        // `split_off` keeps [w, ..) and hands back the compacted prefix.
        let retained = self.timeline.split_off(&w);
        let folded = std::mem::replace(&mut self.timeline, retained);
        if let Some((_, b)) = folded.iter().next_back() {
            self.base = b.occ;
        }
        self.compacted_events += folded.len() as u64;
        self.watermark = w;
    }

    /// Boundary events currently held by the index (2 per recorded entry
    /// minus shared/compacted boundaries) — the memory-bound observable the
    /// compaction tests and the perf gate watch.
    pub fn event_count(&self) -> usize {
        self.timeline.len()
    }

    /// Boundary events folded away by [`TimedQueue::compact_before`].
    pub const fn compacted_events(&self) -> u64 {
        self.compacted_events
    }

    /// The compaction watermark (0 until the first compaction).
    pub const fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Checks the running-prefix invariant of the event index: every
    /// boundary's level equals its predecessor's level (or the folded base)
    /// plus its delta, and the trailing level is zero (every interval is
    /// closed). The property suite runs this after randomized batches.
    ///
    /// # Panics
    ///
    /// Panics when the index is inconsistent.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        let mut level = i64::from(self.base);
        let mut last = 0u32;
        for (k, b) in &self.timeline {
            level += b.delta;
            assert!(level >= 0, "negative occupancy at boundary {k}");
            assert_eq!(
                i64::from(b.occ),
                level,
                "running prefix diverged from the deltas at boundary {k}"
            );
            last = b.occ;
        }
        assert_eq!(last, 0, "trailing occupancy must be zero");
    }

    /// Highest occupancy observed at any admission (0 for non-recording
    /// unbounded queues, whose occupancy is never tracked).
    pub const fn peak(&self) -> usize {
        self.peak
    }

    /// Total admission delay accumulated across all pushes.
    pub const fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Entries admitted so far.
    pub const fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Drops every recorded interval (a new measurement window opens; the
    /// peak/stall statistics survive, like every other fabric statistic).
    pub fn clear_entries(&mut self) {
        self.timeline.clear();
        self.base = 0;
        self.watermark = 0;
        self.max_exit = 0;
    }

    /// Clears entries *and* statistics.
    pub fn reset(&mut self) {
        self.clear_entries();
        self.compacted_events = 0;
        self.peak = 0;
        self.stall_cycles = 0;
        self.admissions = 0;
    }
}

/// One occupancy interval held by a [`NaiveTimedQueue`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct QueueEntry {
    /// First cycle the entry occupies a slot.
    enter: u64,
    /// First cycle the slot is free again (`exit > enter`).
    exit: u64,
}

/// The retained linear-scan reference model of [`TimedQueue`].
///
/// This is the original engine — a flat interval list answering every query
/// with a full scan. It is kept (not test-gated) as the executable
/// specification the event-indexed engine is verified against: the property
/// suite (`crates/common/tests/timed_queue.rs`) drives both on randomized
/// out-of-order interval batches and demands identical admissions, stalls
/// and peaks, and the `simspeed` perf gate records the indexed engine's
/// throughput multiple over this baseline. Do not use it on hot paths.
#[derive(Clone, Debug, Default)]
pub struct NaiveTimedQueue {
    depth: usize,
    record: bool,
    entries: Vec<QueueEntry>,
    max_exit: u64,
    peak: usize,
    stall_cycles: u64,
    admissions: u64,
}

impl NaiveTimedQueue {
    /// Creates a queue of the given depth (0 is clamped to 1;
    /// `usize::MAX` means unbounded).
    pub fn new(depth: usize) -> Self {
        Self {
            depth: depth.max(1),
            record: depth != usize::MAX,
            ..Self::default()
        }
    }

    /// The recording unbounded FIFO, mirroring
    /// [`TimedQueue::unbounded_recording`].
    pub fn unbounded_recording() -> Self {
        Self {
            depth: usize::MAX,
            record: true,
            ..Self::default()
        }
    }

    /// Whether the queue is unbounded (depth `usize::MAX`).
    pub const fn is_unbounded(&self) -> bool {
        self.depth == usize::MAX
    }

    /// Number of recorded intervals covering `t` — a full scan.
    pub fn occupancy_at(&self, t: u64) -> usize {
        self.entries
            .iter()
            .filter(|e| e.enter <= t && t < e.exit)
            .count()
    }

    /// Earliest admission at or after `t` — repeated covering scans, one
    /// per candidate exit.
    pub fn admission_at(&self, t: u64) -> u64 {
        if self.is_unbounded() || t >= self.max_exit {
            return t;
        }
        let mut at = t;
        loop {
            let mut covering = 0usize;
            let mut next_exit = u64::MAX;
            for e in &self.entries {
                if e.enter <= at && at < e.exit {
                    covering += 1;
                    next_exit = next_exit.min(e.exit);
                }
            }
            if covering < self.depth {
                return at;
            }
            debug_assert!(next_exit > at, "exit times strictly exceed covers");
            at = next_exit;
        }
    }

    /// Admits an entry arriving at `enter` held until `exit`; returns the
    /// admission time and the occupancy including the new entry (the same
    /// contract as [`TimedQueue::push`]).
    pub fn push(&mut self, enter: u64, exit: u64) -> (u64, usize) {
        let admitted = self.admission_at(enter);
        self.stall_cycles += admitted - enter;
        self.admissions += 1;
        if !self.record {
            return (admitted, 0);
        }
        let exit = exit.max(admitted + 1);
        self.entries.push(QueueEntry {
            enter: admitted,
            exit,
        });
        self.max_exit = self.max_exit.max(exit);
        let occupancy = self.occupancy_at(admitted);
        self.peak = self.peak.max(occupancy);
        (admitted, occupancy)
    }

    /// Highest occupancy observed at any admission.
    pub const fn peak(&self) -> usize {
        self.peak
    }

    /// Total admission delay accumulated across all pushes.
    pub const fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Entries admitted so far.
    pub const fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Recorded (never pruned) interval count.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Drops every recorded interval; statistics survive.
    pub fn clear_entries(&mut self) {
        self.entries.clear();
        self.max_exit = 0;
    }

    /// Clears entries *and* statistics.
    pub fn reset(&mut self) {
        self.clear_entries();
        self.peak = 0;
        self.stall_cycles = 0;
        self.admissions = 0;
    }
}

/// An end-indexed interval timeline for bus-reservation conflict probes.
///
/// The memory fabric places every grant as an interval `[start, start +
/// occupancy)` on its channel's virtual timeline; a candidate placement
/// `[placed, placed + span)` conflicts with an existing reservation
/// `[start, end)` exactly when `start < placed + span && end > placed`
/// (plus an arbitration-policy predicate over the reservation's owner and
/// priority, which the caller supplies). Reservations overlap freely —
/// priority winners and weighted bypasses land on top of the traffic they
/// outrank — and carry per-entry payloads, so the boundary-delta engine of
/// [`TimedQueue`] does not fit; instead the index keys every reservation by
/// its **end**: `(end, insertion seq) → (start, owner, priority)`.
///
/// Keying by end makes finished history invisible to the hot query: a
/// reservation with `end <= placed` can never conflict with a placement at
/// or after `placed`, and the ordered probe never visits it. Only ends in
/// `(placed, placed + span + max_len)` are walked — an entry whose end lies
/// at or beyond that bound starts at or after `placed + span` (no single
/// reservation is longer than `max_len`) and cannot overlap either. The
/// probe therefore costs O(log n + live backlog) instead of the
/// O(window density) start-keyed scan it replaces, where the former scan's
/// window covered `max_len` cycles of mostly-finished history.
///
/// **Watermark compaction** ([`ReservationIndex::compact_before`]) mirrors
/// the [`TimedQueue::compact_before`] contract: when the caller guarantees
/// no future placement probe or insertion concerns an instant before `w`,
/// every reservation ending at or before `w` is dropped outright — unlike
/// the occupancy timeline there is no base constant to fold into, because a
/// wholly-past reservation can never conflict again. Entries straddling the
/// watermark (`start < w < end`) survive untouched.
#[derive(Clone, Debug, Default)]
pub struct ReservationIndex {
    /// The end-keyed interval map: `(end, seq)` → `(start, owner, prio)`.
    /// The insertion sequence disambiguates equal ends and starts at 1.
    by_end: BTreeMap<(u64, u64), (u64, usize, u8)>,
    /// Longest single reservation seen since the last clear, bounding how
    /// far beyond a placement window a conflicting end can lie.
    max_len: u64,
    /// Monotonic insertion counter.
    seq: u64,
    /// Everything ending at or before this instant has been compacted away;
    /// the caller guaranteed no placement or insertion below it.
    watermark: u64,
    /// Reservations dropped by watermark compaction.
    compacted_events: u64,
}

impl ReservationIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the reservation `[start, end)` owned by `owner` at request
    /// priority `prio`. Intervals occupy at least one cycle.
    pub fn insert(&mut self, start: u64, end: u64, owner: usize, prio: u8) {
        debug_assert!(end > start, "reservations occupy at least one cycle");
        debug_assert!(start >= self.watermark, "insert below the watermark");
        self.seq += 1;
        self.by_end.insert((end, self.seq), (start, owner, prio));
        self.max_len = self.max_len.max(end - start);
    }

    /// The latest end among reservations that overlap the candidate
    /// placement `[placed, placed + span)` **and** satisfy the caller's
    /// arbitration predicate `queues_behind(owner, prio)`; `None` when the
    /// placement is conflict-free.
    ///
    /// Jumping a blocked placement to this end is a sound joint step: every
    /// conflicting reservation overlaps *all* candidate instants in
    /// `[placed, its end)` (its start is below `placed + span`, hence below
    /// every later candidate's window too), so no conflict-free instant
    /// exists before the latest conflicting end. Iterating placement from
    /// this jump reaches the same fixpoint — the earliest conflict-free
    /// instant — as the one-conflict-at-a-time retry it replaces, which is
    /// what keeps the indexed engine cycle-identical to the naive scan.
    pub fn max_conflicting_end(
        &self,
        placed: u64,
        span: u64,
        mut queues_behind: impl FnMut(usize, u8) -> bool,
    ) -> Option<u64> {
        let window_end = placed
            .checked_add(span)
            .and_then(|x| x.checked_add(self.max_len));
        let upper = match window_end {
            Some(hi) => Excluded((hi, 0)),
            None => Unbounded,
        };
        let mut latest = None;
        for (&(end, _), &(start, owner, prio)) in
            self.by_end.range((Excluded((placed, u64::MAX)), upper))
        {
            if start < placed.saturating_add(span) && queues_behind(owner, prio) {
                // The range iterates ends in ascending order, so the last
                // match is the latest conflicting end.
                latest = Some(end);
            }
        }
        latest
    }

    /// Drops every reservation ending at or before `w`.
    ///
    /// The caller guarantees no future insertion or placement probe
    /// concerns an instant before `w` — the "earliest possible future
    /// arrival" of the window (all placements start at or after their
    /// arrival, so a reservation wholly before `w` can never conflict
    /// again). Statistics are untouched; regressing watermarks are ignored.
    pub fn compact_before(&mut self, w: u64) {
        if w <= self.watermark {
            return;
        }
        // `split_off` keeps ends strictly greater than `w` (sequence
        // numbers start at 1, so `(w + 1, 0)` sorts before every real key
        // with that end) and hands back the compacted prefix.
        let retained = self.by_end.split_off(&(w + 1, 0));
        let folded = std::mem::replace(&mut self.by_end, retained);
        self.compacted_events += folded.len() as u64;
        self.watermark = w;
    }

    /// Reservations currently held by the index — the memory-bound
    /// observable the compaction tests and the perf gate watch.
    pub fn event_count(&self) -> usize {
        self.by_end.len()
    }

    /// Reservations dropped by [`ReservationIndex::compact_before`].
    pub const fn compacted_events(&self) -> u64 {
        self.compacted_events
    }

    /// The compaction watermark (0 until the first compaction).
    pub const fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Longest single reservation seen since the last clear.
    pub const fn max_reservation_len(&self) -> u64 {
        self.max_len
    }

    /// Checks the index invariants: every retained reservation occupies at
    /// least one cycle, is no longer than the tracked maximum, and ends
    /// past the watermark.
    ///
    /// # Panics
    ///
    /// Panics when the index is inconsistent.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        for (&(end, seq), &(start, _, _)) in &self.by_end {
            assert!(end > start, "empty reservation at seq {seq}");
            assert!(end - start <= self.max_len, "max_len undercounts {seq}");
            assert!(end > self.watermark, "compacted entry survived: {seq}");
        }
    }

    /// Drops every reservation and resets the watermark/max-length state (a
    /// new measurement window opens; the compaction statistic survives,
    /// like every other fabric statistic).
    pub fn clear(&mut self) {
        self.by_end.clear();
        self.max_len = 0;
        self.seq = 0;
        self.watermark = 0;
    }

    /// Clears reservations *and* statistics.
    pub fn reset(&mut self) {
        self.clear();
        self.compacted_events = 0;
    }
}

/// A cloneable credit handle onto a shared [`TimedQueue`].
///
/// Clones share the queue: credits acquired through one handle are visible
/// through every other, which is what lets the fabric keep a port per
/// channel while handing the same port to the initiators that issue into it.
#[derive(Clone, Debug)]
pub struct CreditPort {
    queue: Rc<RefCell<TimedQueue>>,
}

impl CreditPort {
    /// Creates a port over a fresh queue of the given depth.
    pub fn new(depth: usize) -> Self {
        Self {
            queue: Rc::new(RefCell::new(TimedQueue::new(depth))),
        }
    }

    /// The configured depth of the underlying queue.
    pub fn depth(&self) -> usize {
        self.queue.borrow().depth()
    }

    /// Earliest instant at or after `t` at which a credit is available
    /// (pure query; the credit is not consumed).
    pub fn admission_at(&self, t: Cycles) -> Cycles {
        Cycles::new(self.queue.borrow().admission_at(t.raw()))
    }

    /// Acquires a credit for an entry arriving at `enter` and held until
    /// `exit` (when the credit returns to the pool). Returns the grant time
    /// — `enter` plus any full-queue stall — and the queue occupancy
    /// including the new entry.
    pub fn acquire(&self, enter: Cycles, exit: Cycles) -> (Cycles, usize) {
        let (granted, occupancy) = self.queue.borrow_mut().push(enter.raw(), exit.raw());
        (Cycles::new(granted), occupancy)
    }

    /// Number of credits in use at `t`.
    pub fn in_use_at(&self, t: Cycles) -> usize {
        self.queue.borrow().occupancy_at(t.raw())
    }

    /// Highest occupancy observed at any acquisition.
    pub fn peak(&self) -> usize {
        self.queue.borrow().peak()
    }

    /// Total full-queue stall accumulated across acquisitions.
    pub fn stall_cycles(&self) -> u64 {
        self.queue.borrow().stall_cycles()
    }

    /// Whether `other` is a handle onto the same underlying queue.
    pub fn shares_queue_with(&self, other: &CreditPort) -> bool {
        Rc::ptr_eq(&self.queue, &other.queue)
    }

    /// A port over an independent deep copy of the queue state (used when a
    /// whole simulation is cloned: the copy must not consume the original's
    /// credits).
    pub fn deep_clone(&self) -> CreditPort {
        CreditPort {
            queue: Rc::new(RefCell::new(self.queue.borrow().clone())),
        }
    }

    /// Folds history before `w` into the queue's base constant (see
    /// [`TimedQueue::compact_before`]; the caller guarantees no future
    /// acquisition or query before `w`).
    pub fn compact_before(&self, w: Cycles) {
        self.queue.borrow_mut().compact_before(w.raw());
    }

    /// Boundary events currently held by the underlying index.
    pub fn event_count(&self) -> usize {
        self.queue.borrow().event_count()
    }

    /// Drops every in-flight credit record (a new measurement window opens);
    /// statistics survive.
    pub fn clear_entries(&self) {
        self.queue.borrow_mut().clear_entries();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_labels_and_clamps() {
        assert!(QueueDepths::default().is_unbounded());
        assert_eq!(QueueDepths::UNBOUNDED.label(), "inf");
        let d = QueueDepths::bounded(4, 8);
        assert_eq!(d.label(), "4/8");
        assert_eq!(d.to_string(), "4/8");
        assert!(!d.is_unbounded());
        let clamped = QueueDepths::bounded(0, 0);
        assert_eq!((clamped.req, clamped.rsp), (1, 1));
    }

    #[test]
    fn unbounded_queue_never_stalls_and_records_nothing() {
        let mut q = TimedQueue::new(usize::MAX);
        assert!(q.is_unbounded());
        for i in 0..100u64 {
            let (admitted, occ) = q.push(i, i + 1000);
            assert_eq!(admitted, i);
            assert_eq!(occ, 0);
        }
        assert_eq!(q.stall_cycles(), 0);
        assert_eq!(q.peak(), 0);
        assert_eq!(q.admissions(), 100);
        assert_eq!(q.admission_at(50), 50);
        assert_eq!(q.event_count(), 0, "non-recording queues index nothing");
    }

    #[test]
    fn full_queue_delays_admission_to_the_earliest_exit() {
        let mut q = TimedQueue::new(2);
        q.push(0, 100);
        q.push(0, 60);
        // Both slots busy at t=10: the arrival waits for the earliest exit.
        assert_eq!(q.admission_at(10), 60);
        let (admitted, occ) = q.push(10, 200);
        assert_eq!(admitted, 60);
        assert_eq!(occ, 2, "the freed slot is immediately re-occupied");
        assert_eq!(q.stall_cycles(), 50);
        assert_eq!(q.peak(), 2);
        q.debug_validate();
    }

    #[test]
    fn admission_respects_entries_recorded_out_of_time_order() {
        let mut q = TimedQueue::new(1);
        // Simulation order: a late interval first, then an early one.
        q.push(500, 600);
        q.push(0, 100);
        // An arrival at 50 waits for the early interval, lands in the gap.
        assert_eq!(q.admission_at(50), 100);
        // An arrival at 450 fits before the late interval... but pushing it
        // with a long hold overlaps [500, 600): admission only guarantees
        // occupancy below depth *at the admission instant* (the queue is a
        // timeline, not a scheduler), exactly like a FIFO whose head drains
        // late.
        assert_eq!(q.admission_at(550), 600);
        q.debug_validate();
    }

    #[test]
    fn zero_length_holds_occupy_one_cycle() {
        let mut q = TimedQueue::new(1);
        let (admitted, _) = q.push(10, 10);
        assert_eq!(admitted, 10);
        assert_eq!(q.occupancy_at(10), 1);
        assert_eq!(q.admission_at(10), 11, "degenerate hold still occupies");
    }

    #[test]
    fn clear_entries_keeps_statistics() {
        let mut q = TimedQueue::new(1);
        q.push(0, 100);
        q.push(0, 100);
        assert_eq!(q.stall_cycles(), 100);
        q.clear_entries();
        assert_eq!(q.occupancy_at(50), 0);
        assert_eq!(q.stall_cycles(), 100, "stats survive the window boundary");
        assert_eq!(q.peak(), 1);
        q.reset();
        assert_eq!(q.stall_cycles(), 0);
        assert_eq!(q.peak(), 0);
    }

    #[test]
    fn unbounded_recording_queue_tracks_in_flight_occupancy() {
        let mut q = TimedQueue::unbounded_recording();
        q.push(0, 100);
        q.push(10, 50);
        q.push(200, 300);
        assert_eq!(q.occupancy_at(20), 2);
        assert_eq!(q.occupancy_at(75), 1);
        assert_eq!(q.occupancy_at(150), 0);
        assert_eq!(q.stall_cycles(), 0, "unbounded queues never stall");
        assert_eq!(q.admission_at(20), 20);
        assert_eq!(q.peak(), 2, "recording queues track the peak");
        q.clear_entries();
        assert_eq!(q.occupancy_at(20), 0);
    }

    #[test]
    fn admit_at_returns_admission_and_occupancy_together() {
        let mut q = TimedQueue::new(2);
        q.push(0, 100);
        q.push(0, 60);
        // Full at 10: admitted at the earliest exit, where one entry still
        // covers (occupancy *before* the new entry).
        assert_eq!(q.admit_at(10), (60, 1));
        // Free at 70: immediate admission over the surviving entry.
        assert_eq!(q.admit_at(70), (70, 1));
        // Beyond the backlog: free and empty.
        assert_eq!(q.admit_at(500), (500, 0));
    }

    #[test]
    fn compaction_folds_history_and_preserves_late_queries() {
        let mut q = TimedQueue::new(2);
        q.push(0, 100);
        q.push(50, 150);
        q.push(120, 300);
        let events_before = q.event_count();
        // Everything before 200 is history; [120, 300) straddles the
        // watermark and must survive as the base/boundary split.
        q.compact_before(200);
        assert!(q.event_count() < events_before);
        assert!(q.compacted_events() > 0);
        assert_eq!(q.watermark(), 200);
        assert_eq!(q.occupancy_at(250), 1, "the straddling entry still covers");
        assert_eq!(q.occupancy_at(350), 0);
        assert_eq!(q.admission_at(250), 250, "depth 2, one cover: free");
        // Queries below the watermark clamp onto the folded constant.
        assert_eq!(q.occupancy_at(0), q.occupancy_at(200));
        q.debug_validate();
        // New pushes at or past the watermark behave normally.
        let (admitted, occ) = q.push(250, 400);
        assert_eq!((admitted, occ), (250, 2));
        q.debug_validate();
    }

    #[test]
    fn compaction_is_idempotent_and_monotone() {
        let mut q = TimedQueue::new(1);
        q.push(0, 10);
        q.push(20, 30);
        q.compact_before(15);
        let events = q.event_count();
        q.compact_before(15);
        q.compact_before(5); // regressing watermarks are ignored
        assert_eq!(q.event_count(), events);
        assert_eq!(q.watermark(), 15);
        assert_eq!(q.occupancy_at(25), 1);
        q.debug_validate();
    }

    #[test]
    fn naive_reference_matches_on_the_documented_cases() {
        // The reference model must mirror every documented TimedQueue
        // behaviour (the property suite covers randomized batches).
        let mut q = NaiveTimedQueue::new(2);
        q.push(0, 100);
        q.push(0, 60);
        assert_eq!(q.admission_at(10), 60);
        let (admitted, occ) = q.push(10, 200);
        assert_eq!((admitted, occ), (60, 2));
        assert_eq!(q.stall_cycles(), 50);
        assert_eq!(q.peak(), 2);
        assert_eq!(q.entry_count(), 3);

        let mut u = NaiveTimedQueue::new(usize::MAX);
        let (admitted, occ) = u.push(5, 500);
        assert_eq!((admitted, occ), (5, 0));

        let mut r = NaiveTimedQueue::unbounded_recording();
        r.push(0, 100);
        r.push(10, 50);
        assert_eq!(r.occupancy_at(20), 2);
        assert_eq!(r.peak(), 2);
        r.reset();
        assert_eq!(r.occupancy_at(20), 0);
        assert_eq!(r.admissions(), 0);
    }

    #[test]
    fn credit_port_clones_share_the_queue() {
        let a = CreditPort::new(1);
        let b = a.clone();
        assert!(a.shares_queue_with(&b));
        let (granted, _) = a.acquire(Cycles::ZERO, Cycles::new(100));
        assert_eq!(granted, Cycles::ZERO);
        // The clone sees the consumed credit.
        assert_eq!(b.in_use_at(Cycles::new(50)), 1);
        assert_eq!(b.admission_at(Cycles::new(50)), Cycles::new(100));
        let (granted_b, occ) = b.acquire(Cycles::new(50), Cycles::new(150));
        assert_eq!(granted_b, Cycles::new(100));
        assert_eq!(occ, 1);
        assert_eq!(a.stall_cycles(), 50);
    }

    #[test]
    fn deep_clone_does_not_share_credits() {
        let a = CreditPort::new(1);
        a.acquire(Cycles::ZERO, Cycles::new(100));
        let b = a.deep_clone();
        assert!(!a.shares_queue_with(&b));
        // The copy carries the state at the point of cloning...
        assert_eq!(b.in_use_at(Cycles::new(50)), 1);
        // ...but acquisitions no longer cross over.
        b.acquire(Cycles::new(100), Cycles::new(500));
        assert_eq!(a.admission_at(Cycles::new(200)), Cycles::new(200));
        assert_eq!(b.admission_at(Cycles::new(200)), Cycles::new(500));
    }

    #[test]
    fn reservation_index_probes_only_live_conflicts() {
        let mut idx = ReservationIndex::new();
        idx.insert(0, 100, 0, 0); // long-finished by the probe below
        idx.insert(150, 400, 1, 0); // live: covers the candidate window
        idx.insert(500, 520, 2, 0); // future but within start < placed+span? no
        assert_eq!(idx.max_reservation_len(), 250);
        // Candidate [200, 232): only the live interval conflicts.
        assert_eq!(idx.max_conflicting_end(200, 32, |_, _| true), Some(400));
        // The same probe with the predicate rejecting owner 1 is free.
        assert_eq!(idx.max_conflicting_end(200, 32, |o, _| o != 1), None);
        // A probe past every end is free without iterating history.
        assert_eq!(idx.max_conflicting_end(600, 32, |_, _| true), None);
        // Abutting intervals do not overlap: [500, 520) vs [480, 500).
        assert_eq!(idx.max_conflicting_end(480, 20, |o, _| o == 2), None);
        idx.debug_validate();
    }

    #[test]
    fn reservation_index_returns_the_latest_conflicting_end() {
        let mut idx = ReservationIndex::new();
        // Overlapping reservations (a priority winner on top of the traffic
        // it outranked): the probe must report the latest end, because no
        // conflict-free instant exists before it.
        idx.insert(100, 300, 0, 0);
        idx.insert(120, 500, 1, 1);
        idx.insert(130, 180, 2, 0);
        assert_eq!(idx.max_conflicting_end(150, 8, |_, _| true), Some(500));
        // Filtering to the short middle entry jumps only past it.
        assert_eq!(idx.max_conflicting_end(150, 8, |o, _| o == 2), Some(180));
    }

    #[test]
    fn reservation_index_compaction_drops_only_finished_history() {
        let mut idx = ReservationIndex::new();
        idx.insert(0, 100, 0, 0);
        idx.insert(50, 150, 1, 0);
        idx.insert(120, 300, 2, 0); // straddles the watermark below
        idx.compact_before(150);
        assert_eq!(idx.event_count(), 1, "straddling entries survive");
        assert_eq!(idx.compacted_events(), 2);
        assert_eq!(idx.watermark(), 150);
        // The surviving straddler still conflicts with placements past w.
        assert_eq!(idx.max_conflicting_end(200, 16, |_, _| true), Some(300));
        // Idempotent and monotone: regressing watermarks are ignored.
        idx.compact_before(150);
        idx.compact_before(10);
        assert_eq!(idx.event_count(), 1);
        assert_eq!(idx.watermark(), 150);
        idx.debug_validate();
        // A window boundary resets the watermark but keeps the statistic.
        idx.clear();
        assert_eq!(idx.watermark(), 0);
        assert_eq!(idx.event_count(), 0);
        assert_eq!(idx.compacted_events(), 2);
        idx.reset();
        assert_eq!(idx.compacted_events(), 0);
    }

    #[test]
    fn reservation_index_compaction_is_exact_for_probes_past_the_watermark() {
        // Exactness, not approximation: a compacted index must answer every
        // probe at or past the watermark identically to an uncompacted twin.
        let mut plain = ReservationIndex::new();
        let mut compacted = ReservationIndex::new();
        let spans: [(u64, u64); 6] = [
            (0, 40),
            (30, 90),
            (95, 100),
            (110, 260),
            (255, 270),
            (290, 315),
        ];
        for (i, &(s, e)) in spans.iter().enumerate() {
            plain.insert(s, e, i, (i % 3) as u8);
            compacted.insert(s, e, i, (i % 3) as u8);
        }
        compacted.compact_before(105);
        for placed in 105..350 {
            for span in [1u64, 8, 64] {
                assert_eq!(
                    plain.max_conflicting_end(placed, span, |_, p| p > 0),
                    compacted.max_conflicting_end(placed, span, |_, p| p > 0),
                    "diverged at placed={placed} span={span}"
                );
            }
        }
    }

    #[test]
    fn credit_port_exposes_compaction() {
        let a = CreditPort::new(4);
        a.acquire(Cycles::ZERO, Cycles::new(10));
        a.acquire(Cycles::new(20), Cycles::new(120));
        let before = a.event_count();
        a.compact_before(Cycles::new(50));
        assert!(a.event_count() < before);
        assert_eq!(a.in_use_at(Cycles::new(60)), 1);
    }
}
