//! Bounded request/response channels and issue credits.
//!
//! The memory fabric of this simulator is call-driven: initiators present
//! accesses stamped with arrival times on the global clock rather than being
//! stepped cycle by cycle. A hardware FIFO therefore cannot be modelled as a
//! mutable ring buffer — entries are recorded in *simulation* order, which is
//! not time order (the shards of a multi-cluster offload all restart their
//! cursor at zero). [`TimedQueue`] models a bounded queue as an **occupancy
//! timeline** instead: every entry occupies the interval `[enter, exit)` on
//! the shared virtual timeline, the queue is *full at time `t`* when `depth`
//! entries cover `t`, and admission of a new entry arriving at `t` is delayed
//! to the earliest instant at which occupancy drops below the depth. The
//! delay is exactly the stall a master-side handshake would observe when the
//! channel FIFO is full.
//!
//! [`CreditPort`] is the initiator-facing handle: a cheap, cloneable
//! reference onto one shared [`TimedQueue`]. An initiator (or the fabric
//! acting on its behalf) must **acquire** a credit for every request it
//! issues — [`CreditPort::acquire`] returns the grant time (arrival plus any
//! full-queue stall) and records the entry; the credit is implicitly
//! released at the entry's exit time. Because clones share the queue,
//! handing a port to an initiator and keeping one inside the fabric gives
//! both the same view of the channel's backlog. Cloning a *simulation*
//! (a whole platform) must therefore deep-copy the underlying queues —
//! see `sva_mem::fabric`'s manual `Clone` — or two independent runs would
//! consume each other's credits.
//!
//! [`QueueDepths`] is the configuration vocabulary: a request-queue and a
//! response-queue depth, where [`QueueDepths::UNBOUNDED`] (`usize::MAX`)
//! reproduces the pure reservation model cycle-for-cycle (nothing ever
//! stalls, and the queue machinery is skipped entirely).

use core::cell::RefCell;
use core::fmt;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::cycles::Cycles;

/// Depth configuration of one channel's request and response queues.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDepths {
    /// Request-queue depth (slots a grant occupies from admission until the
    /// bus starts serving it). `usize::MAX` means unbounded.
    pub req: usize,
    /// Response-queue depth (slots a completion occupies from its bus grant
    /// until the initiator retires it). `usize::MAX` means unbounded.
    pub rsp: usize,
}

impl QueueDepths {
    /// Unbounded queues: the pure reservation model, cycle-identical to the
    /// pre-split-transaction fabric.
    pub const UNBOUNDED: QueueDepths = QueueDepths {
        req: usize::MAX,
        rsp: usize::MAX,
    };

    /// Finite depths for both queues (clamped to at least one slot each).
    pub const fn bounded(req: usize, rsp: usize) -> QueueDepths {
        QueueDepths {
            req: if req == 0 { 1 } else { req },
            rsp: if rsp == 0 { 1 } else { rsp },
        }
    }

    /// Whether both queues are unbounded (the default).
    pub const fn is_unbounded(&self) -> bool {
        self.req == usize::MAX && self.rsp == usize::MAX
    }

    /// Stable label for tables and JSON output (`inf` or `req/rsp`).
    pub fn label(&self) -> String {
        if self.is_unbounded() {
            "inf".to_string()
        } else {
            let part = |d: usize| {
                if d == usize::MAX {
                    "inf".to_string()
                } else {
                    d.to_string()
                }
            };
            format!("{}/{}", part(self.req), part(self.rsp))
        }
    }
}

impl Default for QueueDepths {
    fn default() -> Self {
        Self::UNBOUNDED
    }
}

impl fmt::Display for QueueDepths {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One occupancy interval held by a [`TimedQueue`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct QueueEntry {
    /// First cycle the entry occupies a slot.
    enter: u64,
    /// First cycle the slot is free again (`exit > enter`).
    exit: u64,
}

/// A bounded queue modelled as an occupancy timeline.
///
/// Entries may be recorded in any order of `enter` times (simulation order is
/// not time order); occupancy at an instant is the number of recorded
/// intervals covering it. Admission of an arrival at `t` is the earliest
/// `a >= t` at which occupancy is below the configured depth. With
/// `depth == usize::MAX` admission is always immediate and no entries are
/// recorded, so the unbounded queue costs nothing.
#[derive(Clone, Debug, Default)]
pub struct TimedQueue {
    depth: usize,
    /// Whether intervals are recorded at all. Bounded queues always record
    /// (admission needs the history); unbounded queues default to not
    /// recording — they can never stall, so the bookkeeping would be pure
    /// overhead — unless built with [`TimedQueue::unbounded_recording`]
    /// (an observable FIFO like the AXI delayer's response queue).
    record: bool,
    entries: Vec<QueueEntry>,
    /// Latest exit among the recorded entries: queries at or past it cannot
    /// be covered by anything, which keeps the common "arrival beyond the
    /// backlog" case O(1) even though entries are never pruned (arrivals
    /// are not monotone, so pruning by time is impossible).
    max_exit: u64,
    /// Highest occupancy observed at any admission (including the admitted
    /// entry itself). Only tracked for bounded depths.
    peak: usize,
    /// Total admission delay accumulated across all pushes.
    stall_cycles: u64,
    /// Entries admitted.
    admissions: u64,
}

impl TimedQueue {
    /// Creates a queue of the given depth (0 is clamped to 1;
    /// `usize::MAX` means unbounded).
    pub fn new(depth: usize) -> Self {
        Self {
            depth: depth.max(1),
            record: depth != usize::MAX,
            ..Self::default()
        }
    }

    /// An unbounded queue that still records every interval, so in-flight
    /// occupancy is observable ([`TimedQueue::occupancy_at`]) even though
    /// nothing can ever stall. Pushes are O(1); occupancy queries scan.
    pub fn unbounded_recording() -> Self {
        Self {
            depth: usize::MAX,
            record: true,
            ..Self::default()
        }
    }

    /// The configured depth.
    pub const fn depth(&self) -> usize {
        self.depth
    }

    /// Whether the queue is unbounded (depth `usize::MAX`).
    pub const fn is_unbounded(&self) -> bool {
        self.depth == usize::MAX
    }

    /// Number of recorded intervals covering `t`.
    pub fn occupancy_at(&self, t: u64) -> usize {
        self.entries
            .iter()
            .filter(|e| e.enter <= t && t < e.exit)
            .count()
    }

    /// Earliest instant at or after `t` at which a new entry can be
    /// admitted (occupancy below the depth). Pure query — nothing is
    /// recorded.
    pub fn admission_at(&self, t: u64) -> u64 {
        if self.is_unbounded() || t >= self.max_exit {
            return t;
        }
        let mut at = t;
        loop {
            // Exits of the entries covering the candidate instant; if fewer
            // than `depth` cover it, the slot is free. Otherwise the next
            // candidate is the earliest of those exits (occupancy can only
            // drop at an exit), re-checked because other entries — recorded
            // in arbitrary simulation order — may cover the later instant.
            let mut covering = 0usize;
            let mut next_exit = u64::MAX;
            for e in &self.entries {
                if e.enter <= at && at < e.exit {
                    covering += 1;
                    next_exit = next_exit.min(e.exit);
                }
            }
            if covering < self.depth {
                return at;
            }
            debug_assert!(next_exit > at, "exit times strictly exceed covers");
            at = next_exit;
        }
    }

    /// Admits an entry arriving at `enter` that holds its slot until `exit`
    /// (clamped to occupy at least one cycle past admission). Returns the
    /// admission time and the occupancy including the new entry.
    pub fn push(&mut self, enter: u64, exit: u64) -> (u64, usize) {
        let admitted = self.admission_at(enter);
        self.stall_cycles += admitted - enter;
        self.admissions += 1;
        if !self.record {
            // Nothing can ever stall and nobody queries occupancy of a
            // non-recording unbounded queue: skip the bookkeeping entirely
            // so the default configuration costs nothing.
            return (admitted, 0);
        }
        let exit = exit.max(admitted + 1);
        self.entries.push(QueueEntry {
            enter: admitted,
            exit,
        });
        self.max_exit = self.max_exit.max(exit);
        if self.is_unbounded() {
            // Recording-only FIFO: pushes stay O(1); occupancy (and thus a
            // peak) is computed on demand by the caller.
            return (admitted, 0);
        }
        let occupancy = self.occupancy_at(admitted);
        self.peak = self.peak.max(occupancy);
        (admitted, occupancy)
    }

    /// Highest occupancy observed at any admission (0 for unbounded queues,
    /// whose occupancy is never tracked).
    pub const fn peak(&self) -> usize {
        self.peak
    }

    /// Total admission delay accumulated across all pushes.
    pub const fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Entries admitted so far.
    pub const fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Drops every recorded interval (a new measurement window opens; the
    /// peak/stall statistics survive, like every other fabric statistic).
    pub fn clear_entries(&mut self) {
        self.entries.clear();
        self.max_exit = 0;
    }

    /// Clears entries *and* statistics.
    pub fn reset(&mut self) {
        self.clear_entries();
        self.peak = 0;
        self.stall_cycles = 0;
        self.admissions = 0;
    }
}

/// A cloneable credit handle onto a shared [`TimedQueue`].
///
/// Clones share the queue: credits acquired through one handle are visible
/// through every other, which is what lets the fabric keep a port per
/// channel while handing the same port to the initiators that issue into it.
#[derive(Clone, Debug)]
pub struct CreditPort {
    queue: Rc<RefCell<TimedQueue>>,
}

impl CreditPort {
    /// Creates a port over a fresh queue of the given depth.
    pub fn new(depth: usize) -> Self {
        Self {
            queue: Rc::new(RefCell::new(TimedQueue::new(depth))),
        }
    }

    /// The configured depth of the underlying queue.
    pub fn depth(&self) -> usize {
        self.queue.borrow().depth()
    }

    /// Earliest instant at or after `t` at which a credit is available
    /// (pure query; the credit is not consumed).
    pub fn admission_at(&self, t: Cycles) -> Cycles {
        Cycles::new(self.queue.borrow().admission_at(t.raw()))
    }

    /// Acquires a credit for an entry arriving at `enter` and held until
    /// `exit` (when the credit returns to the pool). Returns the grant time
    /// — `enter` plus any full-queue stall — and the queue occupancy
    /// including the new entry.
    pub fn acquire(&self, enter: Cycles, exit: Cycles) -> (Cycles, usize) {
        let (granted, occupancy) = self.queue.borrow_mut().push(enter.raw(), exit.raw());
        (Cycles::new(granted), occupancy)
    }

    /// Number of credits in use at `t`.
    pub fn in_use_at(&self, t: Cycles) -> usize {
        self.queue.borrow().occupancy_at(t.raw())
    }

    /// Highest occupancy observed at any acquisition.
    pub fn peak(&self) -> usize {
        self.queue.borrow().peak()
    }

    /// Total full-queue stall accumulated across acquisitions.
    pub fn stall_cycles(&self) -> u64 {
        self.queue.borrow().stall_cycles()
    }

    /// Whether `other` is a handle onto the same underlying queue.
    pub fn shares_queue_with(&self, other: &CreditPort) -> bool {
        Rc::ptr_eq(&self.queue, &other.queue)
    }

    /// A port over an independent deep copy of the queue state (used when a
    /// whole simulation is cloned: the copy must not consume the original's
    /// credits).
    pub fn deep_clone(&self) -> CreditPort {
        CreditPort {
            queue: Rc::new(RefCell::new(self.queue.borrow().clone())),
        }
    }

    /// Drops every in-flight credit record (a new measurement window opens);
    /// statistics survive.
    pub fn clear_entries(&self) {
        self.queue.borrow_mut().clear_entries();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_labels_and_clamps() {
        assert!(QueueDepths::default().is_unbounded());
        assert_eq!(QueueDepths::UNBOUNDED.label(), "inf");
        let d = QueueDepths::bounded(4, 8);
        assert_eq!(d.label(), "4/8");
        assert_eq!(d.to_string(), "4/8");
        assert!(!d.is_unbounded());
        let clamped = QueueDepths::bounded(0, 0);
        assert_eq!((clamped.req, clamped.rsp), (1, 1));
    }

    #[test]
    fn unbounded_queue_never_stalls_and_records_nothing() {
        let mut q = TimedQueue::new(usize::MAX);
        assert!(q.is_unbounded());
        for i in 0..100u64 {
            let (admitted, occ) = q.push(i, i + 1000);
            assert_eq!(admitted, i);
            assert_eq!(occ, 0);
        }
        assert_eq!(q.stall_cycles(), 0);
        assert_eq!(q.peak(), 0);
        assert_eq!(q.admissions(), 100);
        assert_eq!(q.admission_at(50), 50);
    }

    #[test]
    fn full_queue_delays_admission_to_the_earliest_exit() {
        let mut q = TimedQueue::new(2);
        q.push(0, 100);
        q.push(0, 60);
        // Both slots busy at t=10: the arrival waits for the earliest exit.
        assert_eq!(q.admission_at(10), 60);
        let (admitted, occ) = q.push(10, 200);
        assert_eq!(admitted, 60);
        assert_eq!(occ, 2, "the freed slot is immediately re-occupied");
        assert_eq!(q.stall_cycles(), 50);
        assert_eq!(q.peak(), 2);
    }

    #[test]
    fn admission_respects_entries_recorded_out_of_time_order() {
        let mut q = TimedQueue::new(1);
        // Simulation order: a late interval first, then an early one.
        q.push(500, 600);
        q.push(0, 100);
        // An arrival at 50 waits for the early interval, lands in the gap.
        assert_eq!(q.admission_at(50), 100);
        // An arrival at 450 fits before the late interval... but pushing it
        // with a long hold overlaps [500, 600): admission only guarantees
        // occupancy below depth *at the admission instant* (the queue is a
        // timeline, not a scheduler), exactly like a FIFO whose head drains
        // late.
        assert_eq!(q.admission_at(550), 600);
    }

    #[test]
    fn zero_length_holds_occupy_one_cycle() {
        let mut q = TimedQueue::new(1);
        let (admitted, _) = q.push(10, 10);
        assert_eq!(admitted, 10);
        assert_eq!(q.occupancy_at(10), 1);
        assert_eq!(q.admission_at(10), 11, "degenerate hold still occupies");
    }

    #[test]
    fn clear_entries_keeps_statistics() {
        let mut q = TimedQueue::new(1);
        q.push(0, 100);
        q.push(0, 100);
        assert_eq!(q.stall_cycles(), 100);
        q.clear_entries();
        assert_eq!(q.occupancy_at(50), 0);
        assert_eq!(q.stall_cycles(), 100, "stats survive the window boundary");
        assert_eq!(q.peak(), 1);
        q.reset();
        assert_eq!(q.stall_cycles(), 0);
        assert_eq!(q.peak(), 0);
    }

    #[test]
    fn unbounded_recording_queue_tracks_in_flight_occupancy() {
        let mut q = TimedQueue::unbounded_recording();
        q.push(0, 100);
        q.push(10, 50);
        q.push(200, 300);
        assert_eq!(q.occupancy_at(20), 2);
        assert_eq!(q.occupancy_at(75), 1);
        assert_eq!(q.occupancy_at(150), 0);
        assert_eq!(q.stall_cycles(), 0, "unbounded queues never stall");
        assert_eq!(q.admission_at(20), 20);
        q.clear_entries();
        assert_eq!(q.occupancy_at(20), 0);
    }

    #[test]
    fn credit_port_clones_share_the_queue() {
        let a = CreditPort::new(1);
        let b = a.clone();
        assert!(a.shares_queue_with(&b));
        let (granted, _) = a.acquire(Cycles::ZERO, Cycles::new(100));
        assert_eq!(granted, Cycles::ZERO);
        // The clone sees the consumed credit.
        assert_eq!(b.in_use_at(Cycles::new(50)), 1);
        assert_eq!(b.admission_at(Cycles::new(50)), Cycles::new(100));
        let (granted_b, occ) = b.acquire(Cycles::new(50), Cycles::new(150));
        assert_eq!(granted_b, Cycles::new(100));
        assert_eq!(occ, 1);
        assert_eq!(a.stall_cycles(), 50);
    }

    #[test]
    fn deep_clone_does_not_share_credits() {
        let a = CreditPort::new(1);
        a.acquire(Cycles::ZERO, Cycles::new(100));
        let b = a.deep_clone();
        assert!(!a.shares_queue_with(&b));
        // The copy carries the state at the point of cloning...
        assert_eq!(b.in_use_at(Cycles::new(50)), 1);
        // ...but acquisitions no longer cross over.
        b.acquire(Cycles::new(100), Cycles::new(500));
        assert_eq!(a.admission_at(Cycles::new(200)), Cycles::new(200));
        assert_eq!(b.admission_at(Cycles::new(200)), Cycles::new(500));
    }
}
