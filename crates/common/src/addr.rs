//! Strongly-typed addresses and page arithmetic.
//!
//! The platform uses three distinct address spaces, which the paper's system
//! keeps carefully apart:
//!
//! * [`PhysAddr`] — physical bus addresses, what the crossbar, LLC, L2 SPM and
//!   DRAM controller see.
//! * [`VirtAddr`] — host (CVA6) virtual addresses managed by the OS page
//!   tables.
//! * [`Iova`] — IO virtual addresses used by the accelerator when the IOMMU is
//!   enabled. In the zero-copy offload flow the IOVA space mirrors the host
//!   virtual space.
//!
//! The newtypes prevent accidental mixing (e.g. handing a host virtual address
//! to the DMA engine without translation) at compile time, which is exactly
//! the class of bug shared-virtual-addressing hardware exists to avoid at run
//! time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// log2 of the page size (4 KiB pages, as used by Sv39 and the RISC-V IOMMU).
pub const PAGE_SHIFT: u64 = 12;

/// Size of a base page in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Mask selecting the offset within a page.
pub const PAGE_OFFSET_MASK: u64 = PAGE_SIZE - 1;

/// Number of bytes in a cache line throughout the platform (CVA6 L1 and the
/// Cheshire last-level cache both use 64-byte lines).
pub const CACHE_LINE_SIZE: u64 = 64;

macro_rules! impl_addr {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Creates an address from a raw 64-bit value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The zero address.
            pub const fn zero() -> Self {
                Self(0)
            }

            /// Returns the raw 64-bit value.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the address rounded down to `align` (must be a power of two).
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `align` is not a power of two.
            pub const fn align_down(self, align: u64) -> Self {
                debug_assert!(align.is_power_of_two());
                Self(self.0 & !(align - 1))
            }

            /// Returns the address rounded up to `align` (must be a power of two).
            ///
            /// # Panics
            ///
            /// Panics in debug builds if `align` is not a power of two.
            pub const fn align_up(self, align: u64) -> Self {
                debug_assert!(align.is_power_of_two());
                Self((self.0 + align - 1) & !(align - 1))
            }

            /// Returns `true` if the address is aligned to `align`.
            pub const fn is_aligned(self, align: u64) -> bool {
                self.0 & (align - 1) == 0
            }

            /// The 4 KiB page number containing this address.
            pub const fn page_number(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// The base address of the 4 KiB page containing this address.
            pub const fn page_base(self) -> Self {
                Self(self.0 & !PAGE_OFFSET_MASK)
            }

            /// The byte offset of this address within its 4 KiB page.
            pub const fn page_offset(self) -> u64 {
                self.0 & PAGE_OFFSET_MASK
            }

            /// The base address of the 64-byte cache line containing this address.
            pub const fn cache_line_base(self) -> Self {
                Self(self.0 & !(CACHE_LINE_SIZE - 1))
            }

            /// Byte distance from `self` to `other` (`other - self`).
            ///
            /// # Panics
            ///
            /// Panics if `other < self`.
            pub fn offset_to(self, other: Self) -> u64 {
                other
                    .0
                    .checked_sub(self.0)
                    .expect("offset_to: other address is below self")
            }

            /// Returns the address advanced by `bytes`.
            pub const fn add_bytes(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(addr: $name) -> u64 {
                addr.0
            }
        }

        impl Add<u64> for $name {
            type Output = Self;
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<u64> for $name {
            type Output = Self;
            fn sub(self, rhs: u64) -> Self {
                Self(self.0 - rhs)
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }
    };
}

impl_addr!(
    /// A physical bus address as seen by the crossbar, caches and DRAM
    /// controller.
    PhysAddr
);

impl_addr!(
    /// A host (CVA6) virtual address, translated by the MMU via Sv39 page
    /// tables.
    VirtAddr
);

impl_addr!(
    /// An IO virtual address, translated by the IOMMU via Sv39 page tables.
    ///
    /// In the zero-copy offload model the IOVA space is identical to the host
    /// process' virtual address space, so [`Iova::from_virt`] is a free
    /// conversion.
    Iova
);

impl Iova {
    /// Reinterprets a host virtual address as an IO virtual address.
    ///
    /// In the shared-virtual-addressing model used by the paper, the device
    /// uses the very same virtual addresses as the host process, so this
    /// conversion is the identity.
    pub const fn from_virt(va: VirtAddr) -> Self {
        Self::new(va.raw())
    }
}

impl VirtAddr {
    /// Reinterprets an IO virtual address as a host virtual address.
    pub const fn from_iova(iova: Iova) -> Self {
        Self::new(iova.raw())
    }
}

/// Returns the number of 4 KiB pages needed to cover `bytes` bytes starting at
/// the given offset within a page.
///
/// This matches the way the driver computes how many page-table entries a
/// mapping request needs: a 1-byte buffer crossing a page boundary needs two
/// entries.
pub fn pages_spanned(start_offset: u64, bytes: u64) -> u64 {
    if bytes == 0 {
        return 0;
    }
    let first = start_offset >> PAGE_SHIFT;
    let last = (start_offset + bytes - 1) >> PAGE_SHIFT;
    last - first + 1
}

/// An inclusive-exclusive physical address range `[start, end)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysRange {
    /// First address in the range.
    pub start: PhysAddr,
    /// One past the last address in the range.
    pub end: PhysAddr,
}

impl PhysRange {
    /// Creates a range from a base address and a length in bytes.
    pub const fn from_base_len(start: PhysAddr, len: u64) -> Self {
        Self {
            start,
            end: PhysAddr::new(start.raw() + len),
        }
    }

    /// Length of the range in bytes.
    pub const fn len(&self) -> u64 {
        self.end.raw() - self.start.raw()
    }

    /// Returns `true` if the range covers no bytes.
    pub const fn is_empty(&self) -> bool {
        self.start.raw() >= self.end.raw()
    }

    /// Returns `true` if `addr` lies inside the range.
    pub const fn contains(&self, addr: PhysAddr) -> bool {
        addr.raw() >= self.start.raw() && addr.raw() < self.end.raw()
    }

    /// Returns `true` if the two ranges share at least one byte.
    pub const fn overlaps(&self, other: &PhysRange) -> bool {
        self.start.raw() < other.end.raw() && other.start.raw() < self.end.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_round_trip() {
        let a = PhysAddr::new(0x8000_1234);
        assert_eq!(a.align_down(PAGE_SIZE), PhysAddr::new(0x8000_1000));
        assert_eq!(a.align_up(PAGE_SIZE), PhysAddr::new(0x8000_2000));
        assert_eq!(a.page_offset(), 0x234);
        assert_eq!(a.page_base(), PhysAddr::new(0x8000_1000));
        assert!(!a.is_aligned(PAGE_SIZE));
        assert!(a.page_base().is_aligned(PAGE_SIZE));
    }

    #[test]
    fn aligned_address_is_fixed_point() {
        let a = PhysAddr::new(0x8000_0000);
        assert_eq!(a.align_up(PAGE_SIZE), a);
        assert_eq!(a.align_down(PAGE_SIZE), a);
    }

    #[test]
    fn cache_line_base() {
        let a = VirtAddr::new(0x1003F);
        assert_eq!(a.cache_line_base(), VirtAddr::new(0x10000));
        let b = VirtAddr::new(0x10040);
        assert_eq!(b.cache_line_base(), VirtAddr::new(0x10040));
    }

    #[test]
    fn pages_spanned_counts_boundary_crossings() {
        assert_eq!(pages_spanned(0, 0), 0);
        assert_eq!(pages_spanned(0, 1), 1);
        assert_eq!(pages_spanned(0, PAGE_SIZE), 1);
        assert_eq!(pages_spanned(0, PAGE_SIZE + 1), 2);
        assert_eq!(pages_spanned(PAGE_SIZE - 1, 2), 2);
        assert_eq!(pages_spanned(1, PAGE_SIZE), 2);
        assert_eq!(pages_spanned(0, 16 * PAGE_SIZE), 16);
    }

    #[test]
    fn iova_mirrors_virtual_address() {
        let va = VirtAddr::new(0x3FFF_F000);
        let iova = Iova::from_virt(va);
        assert_eq!(iova.raw(), va.raw());
        assert_eq!(VirtAddr::from_iova(iova), va);
    }

    #[test]
    fn phys_range_contains_and_overlaps() {
        let r = PhysRange::from_base_len(PhysAddr::new(0x1000), 0x1000);
        assert_eq!(r.len(), 0x1000);
        assert!(!r.is_empty());
        assert!(r.contains(PhysAddr::new(0x1000)));
        assert!(r.contains(PhysAddr::new(0x1FFF)));
        assert!(!r.contains(PhysAddr::new(0x2000)));

        let s = PhysRange::from_base_len(PhysAddr::new(0x1800), 0x1000);
        assert!(r.overlaps(&s));
        let t = PhysRange::from_base_len(PhysAddr::new(0x2000), 0x1000);
        assert!(!r.overlaps(&t));
    }

    #[test]
    fn arithmetic_operators() {
        let a = Iova::new(0x100);
        assert_eq!((a + 0x10).raw(), 0x110);
        assert_eq!((a - 0x10).raw(), 0xF0);
        assert_eq!(Iova::new(0x200) - a, 0x100);
        let mut b = a;
        b += 4;
        assert_eq!(b.raw(), 0x104);
        assert_eq!(a.offset_to(Iova::new(0x180)), 0x80);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", PhysAddr::new(0xdead_beef)), "0xdeadbeef");
        assert_eq!(
            format!("{:?}", PhysAddr::new(0x10)),
            "PhysAddr(0x10)".to_string()
        );
    }
}
