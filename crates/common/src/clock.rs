//! The global simulation clock shared by every initiator of the platform.
//!
//! Until PR 3 the simulator had no common time base: the DMA engines tracked
//! their own pipeline cycles, and host loads/stores and page-table walks
//! carried no timestamps at all, so the memory fabric could only observe
//! DMA-vs-DMA contention. [`GlobalClock`] closes that gap: it is a cheap,
//! cloneable handle onto one shared cycle counter that
//!
//! * the memory system consults to stamp accesses whose caller does not
//!   track an issue time of its own (every access now arrives *at* some
//!   point on the shared virtual timeline — there is no untimed traffic
//!   left),
//! * the host CPU and the synthetic host-traffic stream advance as they
//!   execute, and
//! * the cluster executors use as their local time cursor instead of ad-hoc
//!   `Cycles` variables.
//!
//! # Time-base model
//!
//! The platform keeps the *conceptually concurrent streams on one virtual
//! timeline* model of the fabric: the shards of a multi-cluster offload all
//! restart their cursor at zero when a measurement window opens (they run
//! concurrently in simulated time even though they are simulated
//! sequentially), and the host-traffic stream paces itself from the same
//! zero. A clone of a [`GlobalClock`] shares the underlying counter, so
//! every component that holds a clone observes the same "now".

use core::cell::Cell;
use core::fmt;
use std::rc::Rc;

use crate::cycles::Cycles;

/// Anything that can report the current simulation time.
///
/// The trait exists so timing models can take `&dyn TimeSource` (or a
/// generic) without committing to the shared-counter implementation of
/// [`GlobalClock`].
pub trait TimeSource {
    /// The current simulation time, in host-domain cycles.
    fn now(&self) -> Cycles;
}

/// A cloneable handle onto the shared global cycle counter.
///
/// Cloning is cheap and *shares* the counter: `clock.clone().advance(d)`
/// is visible through every other handle. The counter is monotonic under
/// [`GlobalClock::advance`]/[`GlobalClock::advance_to`]; only
/// [`GlobalClock::restart`] moves it backwards (used when a new measurement
/// window opens and every initiator's cursor returns to zero).
#[derive(Clone, Default)]
pub struct GlobalClock {
    now: Rc<Cell<u64>>,
}

impl GlobalClock {
    /// A fresh clock starting at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulation time.
    pub fn now(&self) -> Cycles {
        Cycles::new(self.now.get())
    }

    /// Advances the clock by `delta` cycles.
    pub fn advance(&self, delta: Cycles) {
        self.now.set(self.now.get() + delta.raw());
    }

    /// Advances the clock to `t` if `t` is later than the current time
    /// (no-op otherwise, so out-of-order completion reports cannot move
    /// time backwards).
    pub fn advance_to(&self, t: Cycles) {
        if t.raw() > self.now.get() {
            self.now.set(t.raw());
        }
    }

    /// Resets the clock to zero: a new measurement window opens and every
    /// initiator's local cursor restarts from the same origin.
    pub fn restart(&self) {
        self.now.set(0);
    }

    /// Whether `other` is a handle onto the same underlying counter.
    pub fn shares_counter_with(&self, other: &GlobalClock) -> bool {
        Rc::ptr_eq(&self.now, &other.now)
    }
}

impl TimeSource for GlobalClock {
    fn now(&self) -> Cycles {
        GlobalClock::now(self)
    }
}

impl fmt::Debug for GlobalClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GlobalClock({})", self.now.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_counter() {
        let a = GlobalClock::new();
        let b = a.clone();
        a.advance(Cycles::new(100));
        assert_eq!(b.now(), Cycles::new(100));
        assert!(a.shares_counter_with(&b));
        assert!(!a.shares_counter_with(&GlobalClock::new()));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = GlobalClock::new();
        c.advance_to(Cycles::new(50));
        c.advance_to(Cycles::new(20));
        assert_eq!(c.now(), Cycles::new(50), "completion reports never rewind");
        c.advance_to(Cycles::new(70));
        assert_eq!(c.now(), Cycles::new(70));
    }

    #[test]
    fn restart_reopens_the_window() {
        let c = GlobalClock::new();
        c.advance(Cycles::new(1000));
        c.restart();
        assert_eq!(c.now(), Cycles::ZERO);
    }

    #[test]
    fn time_source_trait_object() {
        let c = GlobalClock::new();
        c.advance(Cycles::new(7));
        let src: &dyn TimeSource = &c;
        assert_eq!(src.now(), Cycles::new(7));
    }
}
