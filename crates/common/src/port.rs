//! Initiator identities and access descriptors of the shared memory fabric.
//!
//! Every agent that can reach main memory — the host core, the IOMMU's
//! page-table walker and each accelerator cluster's DMA engine — is a
//! *fabric initiator*. The memory system exposes one unified entry point
//! (`MemorySystem::access` in `sva_mem`) that takes a [`MemPortReq`]
//! describing who is asking ([`InitiatorId`]), what for (read/write, length,
//! burstiness, priority) and *when* ([`MemPortReq::arrival`], a point on the
//! global simulation clock), so overlapping traffic from different
//! initiators can be arbitrated and accounted.
//!
//! The vocabulary lives here in `sva_common` so that `sva_mem` (the fabric),
//! `sva_cluster` (DMA initiators), `sva_host` and `sva_iommu` all agree on it
//! without depending on each other.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;
use crate::cycles::Cycles;

/// Identity of a memory-fabric initiator.
///
/// DMA initiators are keyed by the IOMMU device ID their traffic presents,
/// so an N-cluster platform has N distinct DMA initiators sharing the fabric.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InitiatorId {
    /// The CVA6 host core (through its L1 caches).
    Host,
    /// The synthetic co-running host-traffic stream (conceptually a second
    /// hart or process on the host side). Distinct from [`InitiatorId::Host`]
    /// so genuine host self-interference — the stream contending with the
    /// offload runtime's own copies and page-table writes — is observable on
    /// the fabric instead of vanishing into the same-initiator exemption.
    HostStream,
    /// The IOMMU's dedicated page-table-walk port.
    Ptw,
    /// The DMA engine presenting IOMMU device ID `device`.
    Dma {
        /// IOMMU device ID of the DMA stream (one per accelerator cluster).
        device: u32,
    },
}

impl InitiatorId {
    /// Convenience constructor for a DMA initiator.
    pub const fn dma(device: u32) -> Self {
        InitiatorId::Dma { device }
    }

    /// The coarse class of the initiator (which crossbar master port and
    /// cache policy its traffic uses).
    pub const fn class(self) -> InitiatorClass {
        match self {
            InitiatorId::Host | InitiatorId::HostStream => InitiatorClass::Host,
            InitiatorId::Ptw => InitiatorClass::Ptw,
            InitiatorId::Dma { .. } => InitiatorClass::Device,
        }
    }

    /// Stable label for tables and JSON output (e.g. `dma[1]`).
    pub fn label(self) -> String {
        match self {
            InitiatorId::Host => "host".to_string(),
            InitiatorId::HostStream => "host_stream".to_string(),
            InitiatorId::Ptw => "ptw".to_string(),
            InitiatorId::Dma { device } => format!("dma[{device}]"),
        }
    }
}

impl fmt::Display for InitiatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Coarse class of an initiator: determines the crossbar master port and the
/// LLC policy applied to its traffic.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitiatorClass {
    /// Host traffic (cached by the LLC when present).
    Host,
    /// Device DMA traffic (bypasses the LLC unless the ablation routes it
    /// through).
    Device,
    /// Page-table-walk traffic (cached by the LLC when the paper's proposal
    /// is enabled).
    Ptw,
}

/// Pluggable arbitration policy of the shared memory fabric.
///
/// The policy decides which already-reserved bus intervals a new grant must
/// queue behind on its channel timeline (the mechanics live in
/// `sva_mem::fabric`; this vocabulary type lives here so configuration layers
/// can name a policy without depending on the fabric implementation).
///
/// * [`ArbitrationPolicy::RoundRobin`] — first-fit placement in simulation
///   order, exactly the PR 1 contention model. A [`MemPortReq::priority`]
///   above zero wins arbitration outright.
/// * [`ArbitrationPolicy::Weighted`] — deficit-weighted QoS: an initiator
///   whose accumulated weighted service lags the conflicting reservation's
///   owner is granted at its arrival instead of queueing. Weights apply to
///   DMA initiators in the order they first reserve the bus (on the
///   platform this is cluster shard order); missing entries default to 1,
///   and host/PTW traffic always weighs 1 (it never consumes a slot, even
///   when the global-clock engine gives it bus occupancy).
///   [`MemPortReq::priority`] is ignored — priorities cannot defeat the
///   configured service split.
/// * [`ArbitrationPolicy::FixedPriority`] — strict ordering by
///   [`MemPortReq::priority`]: a grant queues exactly behind conflicting
///   reservations of equal or higher priority and ignores lower ones.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbitrationPolicy {
    /// First-fit interval placement (the PR 1 model); the default.
    #[default]
    RoundRobin,
    /// Deficit-weighted arbitration with one weight per timed initiator (in
    /// first-reservation order); missing or zero weights count as 1.
    Weighted(Vec<u32>),
    /// Strict priority ordering by [`MemPortReq::priority`].
    FixedPriority,
}

impl ArbitrationPolicy {
    /// Stable label for tables and JSON output (e.g. `weighted[4,1]`).
    pub fn label(&self) -> String {
        match self {
            ArbitrationPolicy::RoundRobin => "round_robin".to_string(),
            ArbitrationPolicy::Weighted(w) => {
                let ws: Vec<String> = w.iter().map(u32::to_string).collect();
                format!("weighted[{}]", ws.join(","))
            }
            ArbitrationPolicy::FixedPriority => "fixed_priority".to_string(),
        }
    }

    /// The weight of the `timed_index`-th timed initiator under this policy.
    /// Non-weighted policies and missing/zero entries weigh 1.
    pub fn weight(&self, timed_index: usize) -> u32 {
        match self {
            ArbitrationPolicy::Weighted(w) => w.get(timed_index).copied().unwrap_or(1).max(1),
            _ => 1,
        }
    }
}

impl fmt::Display for ArbitrationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Direction of a fabric access.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortDir {
    /// Data flows from memory to the initiator.
    Read,
    /// Data flows from the initiator to memory.
    Write,
}

impl PortDir {
    /// Returns `true` for writes.
    pub const fn is_write(self) -> bool {
        matches!(self, PortDir::Write)
    }
}

/// Access descriptor presented at a fabric port.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemPortReq {
    /// Who is asking.
    pub initiator: InitiatorId,
    /// Read or write.
    pub dir: PortDir,
    /// Physical (bus) address of the first byte.
    pub addr: PhysAddr,
    /// Length in bytes.
    pub len: u64,
    /// Whether this is a long streaming burst (DMA) rather than a word/line
    /// access; bursts report separate latency and bus-occupancy components.
    pub burst: bool,
    /// Arbitration priority. Zero (the default) is placed first-fit on the
    /// shared-bus timeline and queues behind other initiators' occupancy;
    /// any higher value wins arbitration outright and never queues (see
    /// `sva_mem::fabric` for the exact policy and its known biases).
    pub priority: u8,
    /// Arrival time of the access on the global simulation clock. Every
    /// access carries one: initiators that track their own pipeline (DMA
    /// engines, the page-table walker, the host-traffic stream) stamp it
    /// explicitly via [`MemPortReq::at`]; for everything else the memory
    /// system fills in the current [`crate::clock::GlobalClock`] reading
    /// before the grant reaches the fabric.
    pub arrival: Cycles,
}

impl MemPortReq {
    /// Descriptor for a read of `len` bytes at `addr`, arriving at cycle 0.
    pub const fn read(initiator: InitiatorId, addr: PhysAddr, len: u64) -> Self {
        Self {
            initiator,
            dir: PortDir::Read,
            addr,
            len,
            burst: false,
            priority: 0,
            arrival: Cycles::ZERO,
        }
    }

    /// Descriptor for a write of `len` bytes at `addr`, arriving at cycle 0.
    pub const fn write(initiator: InitiatorId, addr: PhysAddr, len: u64) -> Self {
        Self {
            initiator,
            dir: PortDir::Write,
            addr,
            len,
            burst: false,
            priority: 0,
            arrival: Cycles::ZERO,
        }
    }

    /// Marks the access as a streaming burst.
    #[must_use]
    pub const fn as_burst(mut self) -> Self {
        self.burst = true;
        self
    }

    /// Sets the arbitration priority.
    #[must_use]
    pub const fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Stamps the arrival time of the access on the global clock.
    #[must_use]
    pub const fn at(mut self, arrival: Cycles) -> Self {
        self.arrival = arrival;
        self
    }
}

/// Timing of one fabric access, split into the latency to first data and the
/// data-bus occupancy (the same split [`sva_mem`'s DRAM model] uses, so burst
/// pipelining can overlap latencies).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortTiming {
    /// Cycles until the first beat (or write acceptance) returns.
    pub latency: Cycles,
    /// Cycles the data bus is busy streaming the payload.
    pub occupancy: Cycles,
}

impl PortTiming {
    /// Total blocking time for an initiator that cannot overlap the access.
    pub fn total(&self) -> Cycles {
        self.latency + self.occupancy
    }
}

/// Per-initiator fabric statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitiatorStats {
    /// Read accesses granted.
    pub reads: u64,
    /// Write accesses granted.
    pub writes: u64,
    /// Burst accesses among the above.
    pub bursts: u64,
    /// Bytes moved in either direction.
    pub bytes: u64,
    /// Summed latency the initiator observed (including queueing when the
    /// fabric charges it).
    pub latency_cycles: u64,
    /// Summed data-bus occupancy attributed to the initiator.
    pub occupancy_cycles: u64,
    /// Cycles spent queued behind another initiator's bus occupancy
    /// (cross-initiator contention).
    pub queue_cycles: u64,
    /// Accesses that arrived while another initiator held the bus.
    pub contended_grants: u64,
    /// Cycles the initiator's issue stalled waiting for a request-queue
    /// credit (the channel's request FIFO was full at the arrival instant).
    /// Always zero with unbounded queue depths.
    pub issue_stall_cycles: u64,
    /// Highest request-queue occupancy observed at any of this initiator's
    /// admissions (including its own entry). Zero with unbounded depths,
    /// whose occupancy is never tracked.
    pub req_queue_peak: u64,
    /// Highest response-queue occupancy observed at any of this initiator's
    /// grants. Zero with unbounded depths.
    pub rsp_queue_peak: u64,
}

impl InitiatorStats {
    /// Total accesses granted.
    pub const fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &InitiatorStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bursts += other.bursts;
        self.bytes += other.bytes;
        self.latency_cycles += other.latency_cycles;
        self.occupancy_cycles += other.occupancy_cycles;
        self.queue_cycles += other.queue_cycles;
        self.contended_grants += other.contended_grants;
        self.issue_stall_cycles += other.issue_stall_cycles;
        self.req_queue_peak = self.req_queue_peak.max(other.req_queue_peak);
        self.rsp_queue_peak = self.rsp_queue_peak.max(other.rsp_queue_peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbitration_policy_labels_and_weights() {
        assert_eq!(ArbitrationPolicy::default(), ArbitrationPolicy::RoundRobin);
        assert_eq!(ArbitrationPolicy::RoundRobin.label(), "round_robin");
        assert_eq!(ArbitrationPolicy::FixedPriority.label(), "fixed_priority");
        let w = ArbitrationPolicy::Weighted(vec![4, 0, 2]);
        assert_eq!(w.label(), "weighted[4,0,2]");
        assert_eq!(w.weight(0), 4);
        assert_eq!(w.weight(1), 1, "zero weights clamp to 1");
        assert_eq!(w.weight(2), 2);
        assert_eq!(w.weight(9), 1, "missing weights default to 1");
        assert_eq!(ArbitrationPolicy::RoundRobin.weight(0), 1);
        assert_eq!(w.to_string(), "weighted[4,0,2]");
    }

    #[test]
    fn initiator_classes_and_labels() {
        assert_eq!(InitiatorId::Host.class(), InitiatorClass::Host);
        assert_eq!(InitiatorId::HostStream.class(), InitiatorClass::Host);
        assert_eq!(InitiatorId::HostStream.label(), "host_stream");
        assert_eq!(InitiatorId::Ptw.class(), InitiatorClass::Ptw);
        assert_eq!(InitiatorId::dma(3).class(), InitiatorClass::Device);
        assert_eq!(InitiatorId::dma(3).label(), "dma[3]");
        assert_eq!(InitiatorId::Host.to_string(), "host");
    }

    #[test]
    fn descriptor_builders() {
        let r = MemPortReq::read(InitiatorId::Host, PhysAddr::new(0x1000), 64);
        assert_eq!(r.dir, PortDir::Read);
        assert!(!r.dir.is_write());
        assert!(!r.burst);
        assert_eq!(r.arrival, Cycles::ZERO);
        let w = MemPortReq::write(InitiatorId::dma(1), PhysAddr::new(0x2000), 2048)
            .as_burst()
            .with_priority(2)
            .at(Cycles::new(640));
        assert!(w.dir.is_write());
        assert!(w.burst);
        assert_eq!(w.priority, 2);
        assert_eq!(w.len, 2048);
        assert_eq!(w.arrival, Cycles::new(640));
    }

    #[test]
    fn port_timing_total() {
        let t = PortTiming {
            latency: Cycles::new(100),
            occupancy: Cycles::new(28),
        };
        assert_eq!(t.total(), Cycles::new(128));
    }

    #[test]
    fn initiator_stats_merge() {
        let mut a = InitiatorStats {
            reads: 1,
            bytes: 64,
            ..InitiatorStats::default()
        };
        let b = InitiatorStats {
            writes: 2,
            bytes: 128,
            queue_cycles: 7,
            issue_stall_cycles: 11,
            req_queue_peak: 3,
            ..InitiatorStats::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses(), 3);
        assert_eq!(a.bytes, 192);
        assert_eq!(a.queue_cycles, 7);
        assert_eq!(a.issue_stall_cycles, 11);
        assert_eq!(a.req_queue_peak, 3, "peaks merge by max, not by sum");
    }
}
