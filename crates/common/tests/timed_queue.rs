//! Property suite: the event-indexed [`TimedQueue`] against the retained
//! linear-scan reference model [`NaiveTimedQueue`].
//!
//! Both engines are driven push-by-push on `DeterministicRng`-generated
//! out-of-order interval batches across a spread of depths; admission
//! times, returned occupancies, interleaved probe queries, stalls, peaks
//! and admission counts must all be identical. The same driver is then
//! pointed at a deliberately broken index (an off-by-one on the exit
//! boundary delta) and must detect the divergence — proving the suite has
//! the power to catch exactly the class of bug the index could hide.

use sva_common::rng::DeterministicRng;
use sva_common::{NaiveTimedQueue, TimedQueue};

/// The behaviour surface the driver compares, implemented by both engines
/// (and by the deliberately broken one).
trait QueueModel {
    fn push(&mut self, enter: u64, exit: u64) -> (u64, usize);
    fn occupancy_at(&self, t: u64) -> usize;
    fn admission_at(&self, t: u64) -> u64;
    fn peak(&self) -> usize;
    fn stall_cycles(&self) -> u64;
    fn admissions(&self) -> u64;
    fn validate(&self) {}
}

impl QueueModel for TimedQueue {
    fn push(&mut self, enter: u64, exit: u64) -> (u64, usize) {
        TimedQueue::push(self, enter, exit)
    }
    fn occupancy_at(&self, t: u64) -> usize {
        TimedQueue::occupancy_at(self, t)
    }
    fn admission_at(&self, t: u64) -> u64 {
        TimedQueue::admission_at(self, t)
    }
    fn peak(&self) -> usize {
        TimedQueue::peak(self)
    }
    fn stall_cycles(&self) -> u64 {
        TimedQueue::stall_cycles(self)
    }
    fn admissions(&self) -> u64 {
        TimedQueue::admissions(self)
    }
    fn validate(&self) {
        self.debug_validate();
    }
}

impl QueueModel for NaiveTimedQueue {
    fn push(&mut self, enter: u64, exit: u64) -> (u64, usize) {
        NaiveTimedQueue::push(self, enter, exit)
    }
    fn occupancy_at(&self, t: u64) -> usize {
        NaiveTimedQueue::occupancy_at(self, t)
    }
    fn admission_at(&self, t: u64) -> u64 {
        NaiveTimedQueue::admission_at(self, t)
    }
    fn peak(&self) -> usize {
        NaiveTimedQueue::peak(self)
    }
    fn stall_cycles(&self) -> u64 {
        NaiveTimedQueue::stall_cycles(self)
    }
    fn admissions(&self) -> u64 {
        NaiveTimedQueue::admissions(self)
    }
}

/// An indexed queue with an injected off-by-one in the delta index: the
/// exit boundary lands one cycle late, so every interval appears to cover
/// one extra cycle. The suite must flag this as divergent from the naive
/// reference.
struct OffByOneQueue(TimedQueue);

impl QueueModel for OffByOneQueue {
    fn push(&mut self, enter: u64, exit: u64) -> (u64, usize) {
        let exit = exit.max(enter).saturating_add(1);
        self.0.push(enter, exit)
    }
    fn occupancy_at(&self, t: u64) -> usize {
        self.0.occupancy_at(t)
    }
    fn admission_at(&self, t: u64) -> u64 {
        self.0.admission_at(t)
    }
    fn peak(&self) -> usize {
        self.0.peak()
    }
    fn stall_cycles(&self) -> u64 {
        self.0.stall_cycles()
    }
    fn admissions(&self) -> u64 {
        self.0.admissions()
    }
}

/// One randomized out-of-order interval batch: `shards` independent streams
/// that each restart their cursor near zero (the multi-cluster shape that
/// makes simulation order diverge from time order), interleaved round-robin.
fn generate_batch(rng: &mut DeterministicRng, pushes: usize) -> Vec<(u64, u64)> {
    let shards = 1 + rng.next_below(4) as usize;
    let mut cursors = vec![0u64; shards];
    let mut batch = Vec::with_capacity(pushes);
    for i in 0..pushes {
        let shard = i % shards;
        // Mostly forward motion within a shard, occasional re-issue at the
        // same instant, occasional long leap.
        let advance = match rng.next_below(10) {
            0 => 0,
            9 => 200 + rng.next_below(800),
            _ => rng.next_below(40),
        };
        cursors[shard] += advance;
        let enter = cursors[shard];
        // Includes zero-length holds (exit == enter), which the queue
        // clamps to one occupied cycle.
        let hold = rng.next_below(120);
        batch.push((enter, enter + hold));
    }
    batch
}

/// Drives `a` and `b` through the same batch, comparing every push result
/// and interleaved probe queries. Returns the first mismatch, if any.
fn compare_on_batch(
    a: &mut dyn QueueModel,
    b: &mut dyn QueueModel,
    batch: &[(u64, u64)],
    rng: &mut DeterministicRng,
) -> Option<String> {
    for (i, &(enter, exit)) in batch.iter().enumerate() {
        let ra = a.push(enter, exit);
        let rb = b.push(enter, exit);
        if ra != rb {
            return Some(format!(
                "push #{i} [{enter}, {exit}): indexed {ra:?} vs reference {rb:?}"
            ));
        }
        a.validate();
        // Probe around the action: the admitted instant, a nearby past
        // instant and a random future one.
        let probes = [
            ra.0,
            enter.saturating_sub(rng.next_below(50)),
            enter + rng.next_below(300),
        ];
        for t in probes {
            let (oa, ob) = (a.occupancy_at(t), b.occupancy_at(t));
            if oa != ob {
                return Some(format!(
                    "occupancy_at({t}) after push #{i}: indexed {oa} vs reference {ob}"
                ));
            }
            let (aa, ab) = (a.admission_at(t), b.admission_at(t));
            if aa != ab {
                return Some(format!(
                    "admission_at({t}) after push #{i}: indexed {aa} vs reference {ab}"
                ));
            }
        }
    }
    if a.peak() != b.peak() {
        return Some(format!("peak: {} vs {}", a.peak(), b.peak()));
    }
    if a.stall_cycles() != b.stall_cycles() {
        return Some(format!(
            "stall_cycles: {} vs {}",
            a.stall_cycles(),
            b.stall_cycles()
        ));
    }
    if a.admissions() != b.admissions() {
        return Some(format!(
            "admissions: {} vs {}",
            a.admissions(),
            b.admissions()
        ));
    }
    None
}

/// Depths the randomized comparison sweeps, including the two unbounded
/// flavours (`None` = `unbounded_recording`).
const DEPTHS: [Option<usize>; 8] = [
    Some(1),
    Some(2),
    Some(3),
    Some(4),
    Some(8),
    Some(16),
    Some(64),
    None,
];

fn build_pair(depth: Option<usize>) -> (TimedQueue, NaiveTimedQueue) {
    match depth {
        Some(d) => (TimedQueue::new(d), NaiveTimedQueue::new(d)),
        None => (
            TimedQueue::unbounded_recording(),
            NaiveTimedQueue::unbounded_recording(),
        ),
    }
}

#[test]
fn indexed_engine_matches_naive_reference_on_randomized_batches() {
    let mut rng = DeterministicRng::new(0x71ED_0001);
    for round in 0..40 {
        let pushes = 60 + rng.next_below(140) as usize;
        let batch = generate_batch(&mut rng, pushes);
        for depth in DEPTHS {
            let (mut indexed, mut naive) = build_pair(depth);
            let mut probe_rng = DeterministicRng::new(0x9000 + round);
            if let Some(err) = compare_on_batch(&mut indexed, &mut naive, &batch, &mut probe_rng) {
                panic!("round {round}, depth {depth:?}: {err}");
            }
        }
    }
}

#[test]
fn suite_catches_an_injected_off_by_one_in_the_delta_index() {
    let mut rng = DeterministicRng::new(0x71ED_0002);
    let mut caught = false;
    for round in 0..10 {
        let batch = generate_batch(&mut rng, 120);
        // Narrow depths make the extra covered cycle observable as a
        // different admission or stall.
        for depth in [1usize, 2, 3, 4] {
            let mut broken = OffByOneQueue(TimedQueue::new(depth));
            let mut naive = NaiveTimedQueue::new(depth);
            let mut probe_rng = DeterministicRng::new(0xB000 + round);
            if compare_on_batch(&mut broken, &mut naive, &batch, &mut probe_rng).is_some() {
                caught = true;
            }
        }
    }
    assert!(
        caught,
        "the off-by-one exit boundary must be observable on at least one batch"
    );
}

#[test]
fn compaction_preserves_results_and_bounds_the_index() {
    // Monotone (open-loop) batches: each batch's earliest arrival is a
    // valid watermark for the history before it, so the compacted queue
    // must behave identically to an uncompacted twin while holding far
    // fewer boundary events.
    let mut rng = DeterministicRng::new(0x71ED_0003);
    for depth in [2usize, 8, 64] {
        let mut compacted = TimedQueue::new(depth);
        let mut plain = TimedQueue::new(depth);
        let mut cursor = 0u64;
        let mut peak_events = 0usize;
        for _ in 0..50 {
            compacted.compact_before(cursor);
            let mut batch = Vec::new();
            for _ in 0..40 {
                cursor += rng.next_below(30);
                batch.push((cursor, cursor + rng.next_below(100)));
            }
            for &(enter, exit) in &batch {
                let rc = compacted.push(enter, exit);
                let rp = plain.push(enter, exit);
                assert_eq!(rc, rp, "compaction changed a push result");
            }
            compacted.debug_validate();
            peak_events = peak_events.max(compacted.event_count());
        }
        assert_eq!(compacted.stall_cycles(), plain.stall_cycles());
        assert_eq!(compacted.peak(), plain.peak());
        assert!(compacted.compacted_events() > 0, "compaction never fired");
        assert!(
            peak_events < plain.event_count() / 4,
            "compaction failed to bound the index: peak {peak_events} vs {} retained",
            plain.event_count()
        );
    }
}
