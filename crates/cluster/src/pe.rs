//! Processing-element geometry and compute-cost helpers.
//!
//! The compute portion of a kernel tile is not simulated instruction by
//! instruction; instead each kernel charges a number of **cluster-domain
//! cycles** derived from its operation count and a per-kernel efficiency
//! factor (how many cycles one PE needs per elementary operation, including
//! loop and SSR/FREP overheads). These helpers centralise the geometry so all
//! kernels use the same conversion.

use serde::{Deserialize, Serialize};
use sva_common::{ClockDomain, Cycles};

/// Geometry of the accelerator cluster.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterGeometry {
    /// Number of compute PEs (the ninth, DMA-driving core is not counted).
    pub num_pes: u32,
    /// TCDM capacity in bytes.
    pub tcdm_bytes: u64,
}

impl ClusterGeometry {
    /// The evaluated configuration: 8 compute PEs, 128 KiB TCDM.
    pub const fn snitch_octa() -> Self {
        Self {
            num_pes: 8,
            tcdm_bytes: crate::tcdm::DEFAULT_TCDM_BYTES,
        }
    }
}

impl Default for ClusterGeometry {
    fn default() -> Self {
        Self::snitch_octa()
    }
}

/// Converts an operation count into host-domain cycles for a parallel region
/// executed by all PEs of the cluster.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PeCost {
    geometry: ClusterGeometry,
    /// Cluster cycles one PE spends per elementary operation (1.0 would be a
    /// perfectly pipelined FMA per cycle; realistic kernels are higher).
    pub cycles_per_op: f64,
    /// Fixed cluster cycles charged per parallel region (fork/join barrier,
    /// loop setup).
    pub region_overhead: u64,
}

impl PeCost {
    /// Creates a cost model for the default cluster geometry.
    pub fn new(cycles_per_op: f64, region_overhead: u64) -> Self {
        Self {
            geometry: ClusterGeometry::default(),
            cycles_per_op,
            region_overhead,
        }
    }

    /// Creates a cost model for an explicit geometry.
    pub fn with_geometry(
        geometry: ClusterGeometry,
        cycles_per_op: f64,
        region_overhead: u64,
    ) -> Self {
        Self {
            geometry,
            cycles_per_op,
            region_overhead,
        }
    }

    /// The cluster geometry this model assumes.
    pub const fn geometry(&self) -> ClusterGeometry {
        self.geometry
    }

    /// Host-domain cycles needed to execute `ops` elementary operations
    /// spread over all PEs.
    ///
    /// Work is divided across PEs (ceiling division models the slowest PE of
    /// an uneven split), each operation costs `cycles_per_op` cluster cycles,
    /// and the per-region overhead is added once.
    pub fn parallel_region(&self, ops: u64) -> Cycles {
        let per_pe = ops.div_ceil(self.geometry.num_pes as u64);
        let cluster_cycles =
            (per_pe as f64 * self.cycles_per_op).ceil() as u64 + self.region_overhead;
        ClockDomain::Cluster.to_host_cycles(cluster_cycles)
    }

    /// Host-domain cycles for work that cannot be parallelised (runs on one
    /// PE).
    pub fn serial_region(&self, ops: u64) -> Cycles {
        let cluster_cycles = (ops as f64 * self.cycles_per_op).ceil() as u64 + self.region_overhead;
        ClockDomain::Cluster.to_host_cycles(cluster_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_region_divides_work_across_pes() {
        let cost = PeCost::new(1.0, 0);
        // 800 ops over 8 PEs at 1 op/cycle = 100 cluster cycles = 250 host cycles.
        assert_eq!(cost.parallel_region(800), Cycles::new(250));
    }

    #[test]
    fn uneven_split_charges_the_slowest_pe() {
        let cost = PeCost::new(1.0, 0);
        assert_eq!(cost.parallel_region(801), cost.parallel_region(808));
    }

    #[test]
    fn overhead_is_charged_once() {
        let with = PeCost::new(1.0, 40);
        let without = PeCost::new(1.0, 0);
        let delta = with.parallel_region(800) - without.parallel_region(800);
        assert_eq!(delta, ClockDomain::Cluster.to_host_cycles(40));
    }

    #[test]
    fn serial_region_uses_one_pe() {
        let cost = PeCost::new(2.0, 0);
        assert_eq!(
            cost.serial_region(100),
            ClockDomain::Cluster.to_host_cycles(200)
        );
        assert!(cost.serial_region(800) > cost.parallel_region(800));
    }
}
