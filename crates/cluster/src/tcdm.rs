//! The tightly-coupled data memory (TCDM) of the Snitch cluster.
//!
//! The TCDM is the cluster's L1 working memory: a banked SRAM the PEs access
//! with single-cycle latency and the DMA engine fills from DRAM. Kernels are
//! tiled so that the working set of one tile (double-buffered) fits here; the
//! model therefore provides both functional storage (so kernels really
//! compute on the data the DMA engine moved) and a simple bump allocator used
//! by kernel implementations to lay out their tile buffers.

use serde::{Deserialize, Serialize};
use sva_common::{Error, Result, KIB};

/// Default TCDM capacity of the evaluated cluster (128 KiB).
pub const DEFAULT_TCDM_BYTES: u64 = 128 * KIB;

/// The cluster's L1 scratchpad.
#[derive(Clone, Debug)]
pub struct Tcdm {
    data: Vec<u8>,
}

impl Tcdm {
    /// Creates a zero-initialised TCDM of `bytes` bytes.
    pub fn new(bytes: u64) -> Self {
        Self {
            data: vec![0u8; bytes as usize],
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    fn check(&self, offset: u64, len: u64) -> Result<()> {
        if offset + len > self.capacity() {
            return Err(Error::TcdmOverflow {
                requested: offset + len,
                available: self.capacity(),
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TcdmOverflow`] if the range exceeds the capacity.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check(offset, buf.len() as u64)?;
        buf.copy_from_slice(&self.data[offset as usize..offset as usize + buf.len()]);
        Ok(())
    }

    /// Writes `buf` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TcdmOverflow`] if the range exceeds the capacity.
    pub fn write(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        self.check(offset, buf.len() as u64)?;
        self.data[offset as usize..offset as usize + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Reads a little-endian `f32` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access is out of bounds (kernel tile layouts are static,
    /// so an out-of-bounds access is a programming error, not a data error).
    pub fn read_f32(&self, offset: u64) -> f32 {
        let o = offset as usize;
        f32::from_le_bytes(self.data[o..o + 4].try_into().expect("4-byte slice"))
    }

    /// Writes a little-endian `f32` at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the access is out of bounds.
    pub fn write_f32(&mut self, offset: u64, value: f32) {
        let o = offset as usize;
        self.data[o..o + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a slice of `f32` starting at `offset`: one bounds check, then a
    /// chunked little-endian conversion over the raw bytes (no per-element
    /// indexing).
    ///
    /// # Errors
    ///
    /// Returns [`Error::TcdmOverflow`] if the range exceeds the capacity.
    pub fn read_f32_slice(&self, offset: u64, out: &mut [f32]) -> Result<()> {
        let bytes = (out.len() * 4) as u64;
        self.check(offset, bytes)?;
        let base = offset as usize;
        let src = &self.data[base..base + out.len() * 4];
        for (v, c) in out.iter_mut().zip(src.chunks_exact(4)) {
            *v = f32::from_le_bytes(c.try_into().expect("4-byte chunk"));
        }
        Ok(())
    }

    /// Writes a slice of `f32` starting at `offset`: one bounds check, then a
    /// chunked little-endian conversion into the raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TcdmOverflow`] if the range exceeds the capacity.
    pub fn write_f32_slice(&mut self, offset: u64, values: &[f32]) -> Result<()> {
        let bytes = (values.len() * 4) as u64;
        self.check(offset, bytes)?;
        let base = offset as usize;
        let dst = &mut self.data[base..base + values.len() * 4];
        for (c, v) in dst.chunks_exact_mut(4).zip(values.iter()) {
            c.copy_from_slice(&v.to_le_bytes());
        }
        Ok(())
    }

    /// Clears the contents to zero.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }
}

impl Default for Tcdm {
    fn default() -> Self {
        Self::new(DEFAULT_TCDM_BYTES)
    }
}

/// A bump allocator for laying out tile buffers inside the TCDM.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcdmAllocator {
    next: u64,
    capacity: u64,
}

impl TcdmAllocator {
    /// Creates an allocator over a TCDM of `capacity` bytes.
    pub const fn new(capacity: u64) -> Self {
        Self { next: 0, capacity }
    }

    /// Allocates `bytes` bytes aligned to 8 bytes, returning the offset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TcdmOverflow`] if the allocation does not fit.
    pub fn alloc(&mut self, bytes: u64) -> Result<u64> {
        let base = (self.next + 7) & !7;
        if base + bytes > self.capacity {
            return Err(Error::TcdmOverflow {
                requested: base + bytes,
                available: self.capacity,
            });
        }
        self.next = base + bytes;
        Ok(base)
    }

    /// Bytes still available.
    pub const fn remaining(&self) -> u64 {
        self.capacity - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_capacity_is_128k() {
        assert_eq!(Tcdm::default().capacity(), 128 * KIB);
    }

    #[test]
    fn byte_and_f32_roundtrip() {
        let mut t = Tcdm::new(1024);
        t.write(10, &[1, 2, 3]).unwrap();
        let mut b = [0u8; 3];
        t.read(10, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3]);

        t.write_f32(100, -2.5);
        assert_eq!(t.read_f32(100), -2.5);

        let vals = [1.0f32, 2.0, 3.0, 4.0];
        t.write_f32_slice(200, &vals).unwrap();
        let mut back = [0f32; 4];
        t.read_f32_slice(200, &mut back).unwrap();
        assert_eq!(back, vals);
    }

    #[test]
    fn overflow_is_reported() {
        let mut t = Tcdm::new(64);
        assert!(t.write(60, &[0u8; 8]).is_err());
        let mut b = [0u8; 8];
        assert!(t.read(60, &mut b).is_err());
        assert!(t.write_f32_slice(0, &[0.0; 17]).is_err());
    }

    #[test]
    fn allocator_aligns_and_tracks_capacity() {
        let mut a = TcdmAllocator::new(128);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(16).unwrap();
        assert_eq!(x, 0);
        assert_eq!(y, 16); // 10 rounded up to 16
        assert_eq!(a.remaining(), 128 - 32);
        assert!(a.alloc(200).is_err());
    }

    #[test]
    fn clear_resets_contents() {
        let mut t = Tcdm::new(64);
        t.write_f32(0, 5.0);
        t.clear();
        assert_eq!(t.read_f32(0), 0.0);
    }
}
