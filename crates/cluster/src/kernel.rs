//! The interface device kernels implement.
//!
//! A device kernel describes its execution as a sequence of **tiles**: for
//! each tile it lists the DMA transfers that bring the tile's inputs into the
//! TCDM, the compute performed on the TCDM-resident data, and the transfers
//! that write the results back. The executor (see [`crate::executor`])
//! schedules these phases with double buffering, exactly like the
//! hand-written Snitch kernels of the paper.

use sva_common::{Cycles, Iova, Result};
use sva_iommu::Iommu;
use sva_mem::MemorySystem;

use crate::dma::DmaRequest;
use crate::tcdm::Tcdm;

/// Functional view of device-visible external memory, handed to
/// [`DeviceKernel::plan_tile`] before a tile's DMA descriptors are read.
///
/// Real PMCA kernels run cheap address-generation pre-passes on the DMA
/// core (e.g. the merge-path binary search of the sort kernel) that *read
/// DRAM-resident data* to compute the next tile's transfer ranges. The
/// context models exactly that: untimed functional reads of external
/// memory through the device's own translation view (IOVA under the IOMMU,
/// bus addresses otherwise). Because the reads go to the **shared**
/// functional memory — not a per-kernel-instance mirror — pre-passes stay
/// correct when one kernel is sharded across several clusters.
pub struct TileCtx<'a> {
    mem: &'a MemorySystem,
    iommu: &'a Iommu,
    device_id: u32,
}

impl<'a> TileCtx<'a> {
    /// A context reading through `device_id`'s translation view.
    pub fn new(mem: &'a MemorySystem, iommu: &'a Iommu, device_id: u32) -> Self {
        Self {
            mem,
            iommu,
            device_id,
        }
    }

    /// The device ID whose translation view the reads use.
    pub const fn device_id(&self) -> u32 {
        self.device_id
    }

    /// Functional read of `buf.len()` bytes of external memory at `iova`
    /// (split at page boundaries, since consecutive IOVA pages may map to
    /// scattered frames).
    ///
    /// # Errors
    ///
    /// Returns translation faults for unmapped addresses and decode errors
    /// for non-memory regions.
    pub fn read(&self, iova: Iova, buf: &mut [u8]) -> Result<()> {
        let mut done = 0u64;
        let len = buf.len() as u64;
        while done < len {
            let cur = iova + done;
            let in_page = sva_common::PAGE_SIZE - cur.page_offset();
            let chunk = in_page.min(len - done);
            let pa = self
                .iommu
                .probe_translation(self.mem, self.device_id, cur)?;
            self.mem
                .read_phys(pa, &mut buf[done as usize..(done + chunk) as usize])?;
            done += chunk;
        }
        Ok(())
    }

    /// Functional read of one little-endian `f32` at `iova`.
    ///
    /// # Errors
    ///
    /// See [`TileCtx::read`].
    pub fn read_f32(&self, iova: Iova) -> Result<f32> {
        // Tile element reads are 4-byte and tile layouts are element-aligned,
        // so the access almost never straddles a page: one translation probe
        // plus the store's typed single-frame read. The generic page-split
        // loop remains as the straddle fallback.
        if iova.page_offset() + 4 <= sva_common::PAGE_SIZE {
            let pa = self
                .iommu
                .probe_translation(self.mem, self.device_id, iova)?;
            return self.mem.read_f32_phys(pa);
        }
        let mut b = [0u8; 4];
        self.read(iova, &mut b)?;
        Ok(f32::from_le_bytes(b))
    }
}

/// The DMA work attached to one tile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TileIo {
    /// Transfers that must complete before the tile can be computed.
    pub inputs: Vec<DmaRequest>,
    /// Transfers that write the tile's results back to external memory.
    pub outputs: Vec<DmaRequest>,
}

impl TileIo {
    /// Creates an empty descriptor (a tile with no external I/O).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes moved into the TCDM for this tile.
    pub fn input_bytes(&self) -> u64 {
        self.inputs.iter().map(|r| r.len).sum()
    }

    /// Total bytes written back from the TCDM for this tile.
    pub fn output_bytes(&self) -> u64 {
        self.outputs.iter().map(|r| r.len).sum()
    }
}

/// A kernel executable on the accelerator cluster.
///
/// Implementations both *model the timing* (by returning the compute cycles
/// of each tile, usually via [`crate::pe::PeCost`]) and *perform the
/// computation* on the TCDM contents, so results can be verified against a
/// host reference.
pub trait DeviceKernel {
    /// Human-readable kernel name (e.g. `"gemm"`).
    fn name(&self) -> &str;

    /// Number of tiles the kernel is split into.
    fn num_tiles(&self) -> usize;

    /// Address-generation pre-pass for tile `tile`: called by the executor
    /// before the first [`DeviceKernel::tile_io`] of that tile, with a
    /// functional view of the shared external memory. Kernels whose
    /// transfer ranges depend on data (sort's merge-path partitions) compute
    /// and cache them here; the default does nothing.
    ///
    /// # Errors
    ///
    /// Returns translation faults or decode errors from the functional
    /// reads.
    fn plan_tile(&mut self, tile: usize, ctx: &TileCtx<'_>) -> Result<()> {
        let _ = (tile, ctx);
        Ok(())
    }

    /// The DMA transfers of tile `tile`.
    ///
    /// Implementations alternate TCDM buffers between even and odd tiles so
    /// the executor can overlap tile `i+1` transfers with tile `i` compute.
    fn tile_io(&self, tile: usize) -> TileIo;

    /// Computes tile `tile` on the TCDM-resident data and returns the
    /// host-domain cycles the compute phase takes on the cluster.
    ///
    /// # Errors
    ///
    /// Returns an error if the tile layout does not fit the TCDM (a kernel
    /// configuration bug).
    fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles>;
}

/// A contiguous tile range of an underlying kernel, used to shard one kernel
/// across several clusters with static block scheduling.
///
/// Tile `t` of the shard maps to tile `start + t` of the inner kernel, for
/// both I/O descriptors and compute, so a shard computes exactly the tiles of
/// its block and nothing else. Each cluster wraps its *own* kernel instance
/// (tiles of distinct shards touch distinct TCDMs).
pub struct TileRange<K: DeviceKernel> {
    inner: K,
    start: usize,
    len: usize,
}

impl<K: DeviceKernel> TileRange<K> {
    /// Restricts `inner` to the `len` tiles starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the inner kernel's tile count.
    pub fn new(inner: K, start: usize, len: usize) -> Self {
        assert!(
            start + len <= inner.num_tiles(),
            "tile range {start}..{} exceeds {} tiles",
            start + len,
            inner.num_tiles()
        );
        Self { inner, start, len }
    }

    /// The first inner tile of the shard.
    pub const fn start(&self) -> usize {
        self.start
    }

    /// Consumes the shard and returns the inner kernel.
    pub fn into_inner(self) -> K {
        self.inner
    }
}

impl<K: DeviceKernel> DeviceKernel for TileRange<K> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_tiles(&self) -> usize {
        self.len
    }

    fn plan_tile(&mut self, tile: usize, ctx: &TileCtx<'_>) -> Result<()> {
        self.inner.plan_tile(self.start + tile, ctx)
    }

    fn tile_io(&self, tile: usize) -> TileIo {
        self.inner.tile_io(self.start + tile)
    }

    fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
        self.inner.compute_tile(self.start + tile, tcdm)
    }
}

impl<'a> DeviceKernel for Box<dyn DeviceKernel + 'a> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn num_tiles(&self) -> usize {
        self.as_ref().num_tiles()
    }

    fn plan_tile(&mut self, tile: usize, ctx: &TileCtx<'_>) -> Result<()> {
        self.as_mut().plan_tile(tile, ctx)
    }

    fn tile_io(&self, tile: usize) -> TileIo {
        self.as_ref().tile_io(tile)
    }

    fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
        self.as_mut().compute_tile(tile, tcdm)
    }
}

/// Splits `total` tiles into `shards` contiguous blocks (static block
/// scheduling): the first `total % shards` blocks get one extra tile.
/// Returns `(start, len)` pairs; shards beyond `total` come back empty.
pub fn block_partition(total: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards > 0, "at least one shard");
    let base = total / shards;
    let extra = total % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::Iova;

    #[test]
    fn block_partition_covers_all_tiles_contiguously() {
        for total in [0usize, 1, 7, 8, 9, 100] {
            for shards in [1usize, 2, 3, 4, 8] {
                let blocks = block_partition(total, shards);
                assert_eq!(blocks.len(), shards);
                let mut next = 0;
                for (start, len) in &blocks {
                    assert_eq!(*start, next);
                    next += len;
                }
                assert_eq!(next, total, "{total} tiles over {shards} shards");
                let max = blocks.iter().map(|(_, l)| *l).max().unwrap();
                let min = blocks.iter().map(|(_, l)| *l).min().unwrap();
                assert!(max - min <= 1, "block schedule is balanced");
            }
        }
    }

    #[test]
    fn tile_range_remaps_tiles() {
        struct Probe;
        impl DeviceKernel for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn num_tiles(&self) -> usize {
                10
            }
            fn tile_io(&self, tile: usize) -> TileIo {
                TileIo {
                    inputs: vec![DmaRequest::input(Iova::new(tile as u64), 0, 1)],
                    outputs: vec![],
                }
            }
            fn compute_tile(&mut self, tile: usize, _tcdm: &mut Tcdm) -> Result<Cycles> {
                Ok(Cycles::new(tile as u64))
            }
        }
        let mut shard = TileRange::new(Probe, 4, 3);
        assert_eq!(shard.num_tiles(), 3);
        assert_eq!(shard.start(), 4);
        assert_eq!(shard.tile_io(0).inputs[0].ext_addr, Iova::new(4));
        assert_eq!(shard.tile_io(2).inputs[0].ext_addr, Iova::new(6));
        let mut tcdm = Tcdm::default();
        assert_eq!(shard.compute_tile(1, &mut tcdm).unwrap(), Cycles::new(5));
    }

    #[test]
    fn block_partition_with_more_shards_than_tiles_leaves_empty_tails() {
        // tiles < num_clusters: the first `total` shards take one tile each,
        // the tail shards are empty ranges anchored at `total`.
        let blocks = block_partition(3, 8);
        assert_eq!(blocks.len(), 8);
        assert_eq!(&blocks[..3], &[(0, 1), (1, 1), (2, 1)]);
        for &(start, len) in &blocks[3..] {
            assert_eq!((start, len), (3, 0));
        }
    }

    #[test]
    fn empty_tile_range_is_valid_and_runs_to_zero_stats() {
        use crate::executor::ClusterExecutor;
        use sva_iommu::{Iommu, IommuConfig};
        use sva_mem::MemorySystem;

        struct Three;
        impl DeviceKernel for Three {
            fn name(&self) -> &str {
                "three"
            }
            fn num_tiles(&self) -> usize {
                3
            }
            fn tile_io(&self, _tile: usize) -> TileIo {
                TileIo::new()
            }
            fn compute_tile(&mut self, _tile: usize, _tcdm: &mut Tcdm) -> Result<Cycles> {
                Ok(Cycles::new(100))
            }
        }

        // The partition tail shard: start == num_tiles, len == 0.
        let mut shard = TileRange::new(Three, 3, 0);
        assert_eq!(shard.num_tiles(), 0);
        assert_eq!(shard.start(), 3);

        let mut mem = MemorySystem::default();
        let mut iommu = Iommu::new(IommuConfig::disabled());
        let mut exec = ClusterExecutor::default();
        // Dirty the engine with a real run first: the empty shard must
        // report fresh zeroes, not the previous run's accounting.
        exec.run(&mut mem, &mut iommu, &mut TileRange::new(Three, 0, 3))
            .unwrap();
        let stats = exec.run(&mut mem, &mut iommu, &mut shard).unwrap();
        assert_eq!(stats.tiles, 0);
        assert_eq!(stats.total, Cycles::ZERO);
        assert_eq!(stats.compute, Cycles::ZERO);
        assert_eq!(stats.dma_wait, Cycles::ZERO);
        assert_eq!(stats.dma.requests, 0, "no stale DMA accounting");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn tile_range_rejects_out_of_bounds() {
        struct Two;
        impl DeviceKernel for Two {
            fn name(&self) -> &str {
                "two"
            }
            fn num_tiles(&self) -> usize {
                2
            }
            fn tile_io(&self, _tile: usize) -> TileIo {
                TileIo::new()
            }
            fn compute_tile(&mut self, _tile: usize, _tcdm: &mut Tcdm) -> Result<Cycles> {
                Ok(Cycles::ZERO)
            }
        }
        let _ = TileRange::new(Two, 1, 2);
    }

    #[test]
    fn tile_io_byte_accounting() {
        let io = TileIo {
            inputs: vec![
                DmaRequest::input(Iova::new(0x1000), 0, 256),
                DmaRequest::input(Iova::new(0x2000), 256, 128),
            ],
            outputs: vec![DmaRequest::output(Iova::new(0x3000), 0, 64)],
        };
        assert_eq!(io.input_bytes(), 384);
        assert_eq!(io.output_bytes(), 64);
        assert_eq!(TileIo::new().input_bytes(), 0);
    }
}
