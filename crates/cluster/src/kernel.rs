//! The interface device kernels implement.
//!
//! A device kernel describes its execution as a sequence of **tiles**: for
//! each tile it lists the DMA transfers that bring the tile's inputs into the
//! TCDM, the compute performed on the TCDM-resident data, and the transfers
//! that write the results back. The executor (see [`crate::executor`])
//! schedules these phases with double buffering, exactly like the
//! hand-written Snitch kernels of the paper.

use sva_common::{Cycles, Result};

use crate::dma::DmaRequest;
use crate::tcdm::Tcdm;

/// The DMA work attached to one tile.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TileIo {
    /// Transfers that must complete before the tile can be computed.
    pub inputs: Vec<DmaRequest>,
    /// Transfers that write the tile's results back to external memory.
    pub outputs: Vec<DmaRequest>,
}

impl TileIo {
    /// Creates an empty descriptor (a tile with no external I/O).
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes moved into the TCDM for this tile.
    pub fn input_bytes(&self) -> u64 {
        self.inputs.iter().map(|r| r.len).sum()
    }

    /// Total bytes written back from the TCDM for this tile.
    pub fn output_bytes(&self) -> u64 {
        self.outputs.iter().map(|r| r.len).sum()
    }
}

/// A kernel executable on the accelerator cluster.
///
/// Implementations both *model the timing* (by returning the compute cycles
/// of each tile, usually via [`crate::pe::PeCost`]) and *perform the
/// computation* on the TCDM contents, so results can be verified against a
/// host reference.
pub trait DeviceKernel {
    /// Human-readable kernel name (e.g. `"gemm"`).
    fn name(&self) -> &str;

    /// Number of tiles the kernel is split into.
    fn num_tiles(&self) -> usize;

    /// The DMA transfers of tile `tile`.
    ///
    /// Implementations alternate TCDM buffers between even and odd tiles so
    /// the executor can overlap tile `i+1` transfers with tile `i` compute.
    fn tile_io(&self, tile: usize) -> TileIo;

    /// Computes tile `tile` on the TCDM-resident data and returns the
    /// host-domain cycles the compute phase takes on the cluster.
    ///
    /// # Errors
    ///
    /// Returns an error if the tile layout does not fit the TCDM (a kernel
    /// configuration bug).
    fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::Iova;

    #[test]
    fn tile_io_byte_accounting() {
        let io = TileIo {
            inputs: vec![
                DmaRequest::input(Iova::new(0x1000), 0, 256),
                DmaRequest::input(Iova::new(0x2000), 256, 128),
            ],
            outputs: vec![DmaRequest::output(Iova::new(0x3000), 0, 64)],
        };
        assert_eq!(io.input_bytes(), 384);
        assert_eq!(io.output_bytes(), 64);
        assert_eq!(TileIo::new().input_bytes(), 0);
    }
}
