//! Model of the Snitch accelerator cluster.
//!
//! The cluster is the paper's device under test: eight `rv32imafd`
//! processing elements sharing a tightly-coupled data memory (TCDM), plus a
//! ninth core driving a DMA engine that refills the TCDM from DRAM in long
//! AXI bursts. Kernels are written in the classic PMCA style: the input is
//! tiled, tiles are double-buffered, and the DMA engine works ahead of the
//! compute cores so that — for compute-bound kernels — the time spent
//! *waiting* for data tends to zero.
//!
//! * [`tcdm`] — the L1 scratchpad (functional storage + allocator);
//! * [`dma`] — the DMA engine: burst splitting, per-page IOMMU translation,
//!   outstanding-transaction pipelining;
//! * [`kernel`] — the [`DeviceKernel`] trait kernels implement (tile
//!   descriptors + per-tile compute);
//! * [`executor`] — the double-buffered run loop producing the
//!   DMA-wait / compute breakdown reported in Table II and Figure 4;
//! * [`pe`] — the processing-element cost helpers shared by kernel cost
//!   models.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dma;
pub mod executor;
pub mod kernel;
pub mod pe;
pub mod tcdm;

pub use dma::{Direction, DmaConfig, DmaEngine, DmaRequest, DmaStats};
pub use executor::{ClusterConfig, ClusterExecutor, KernelRunStats};
pub use kernel::{block_partition, DeviceKernel, TileCtx, TileIo, TileRange};
pub use pe::{ClusterGeometry, PeCost};
pub use tcdm::{Tcdm, TcdmAllocator};
