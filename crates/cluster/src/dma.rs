//! The cluster DMA engine.
//!
//! The ninth core of the Snitch cluster drives a DMA engine that moves tile
//! data between DRAM and the TCDM in long AXI bursts. Its interaction with
//! the IOMMU is the central mechanism of the paper's evaluation:
//!
//! * every burst is capped by the AXI maximum burst length and split at 4 KiB
//!   page boundaries;
//! * when the IOMMU translates, the first burst of every page presents a
//!   translation request; an IOTLB miss serialises the burst behind a
//!   multi-read page-table walk, reducing the engine's effective bandwidth;
//! * without the IOMMU, bursts address the physically contiguous reserved
//!   DRAM (or the LLC-bypass window) directly.
//!
//! The engine can keep a limited number of bursts outstanding; latency is
//! overlapped across them, but the data bus serialises the payloads.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sva_axi::BurstPlan;
use sva_common::{Cycles, Error, InitiatorId, Iova, PhysAddr, Result};
use sva_iommu::{Iommu, PageRequestHandler};
use sva_mem::{MemReq, MemorySystem};

use crate::tcdm::Tcdm;

/// Direction of a DMA transfer.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// DRAM → TCDM (input tile refill).
    ToTcdm,
    /// TCDM → DRAM (output tile write-back).
    FromTcdm,
}

/// One DMA transfer request as programmed by the kernel's DMA core.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaRequest {
    /// Transfer direction.
    pub dir: Direction,
    /// External address: an IO virtual address when the IOMMU translates, or
    /// a bus address (reserved DRAM / bypass window) otherwise.
    pub ext_addr: Iova,
    /// Destination (or source) offset inside the TCDM.
    pub tcdm_offset: u64,
    /// Transfer length in bytes.
    pub len: u64,
}

impl DmaRequest {
    /// Convenience constructor for an input transfer.
    pub const fn input(ext_addr: Iova, tcdm_offset: u64, len: u64) -> Self {
        Self {
            dir: Direction::ToTcdm,
            ext_addr,
            tcdm_offset,
            len,
        }
    }

    /// Convenience constructor for an output transfer.
    pub const fn output(ext_addr: Iova, tcdm_offset: u64, len: u64) -> Self {
        Self {
            dir: Direction::FromTcdm,
            ext_addr,
            tcdm_offset,
            len,
        }
    }
}

/// Configuration of the DMA engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaConfig {
    /// Maximum bytes per AXI burst (256 beats × 8 B).
    pub max_burst_bytes: u64,
    /// Maximum number of bursts kept in flight.
    pub max_outstanding: usize,
    /// Host-domain cycles to program one transfer descriptor.
    pub issue_overhead: Cycles,
    /// Device ID presented to the IOMMU for data traffic.
    pub device_id: u32,
    /// Arbitration priority the engine's bursts present at the fabric port
    /// (see `ArbitrationPolicy` in `sva_common`). Zero — the default — keeps
    /// the engine in the normal arbitration pool.
    pub priority: u8,
}

impl Default for DmaConfig {
    fn default() -> Self {
        Self {
            max_burst_bytes: 2048,
            max_outstanding: 2,
            issue_overhead: Cycles::new(20),
            device_id: 1,
            priority: 0,
        }
    }
}

/// Statistics accumulated by the DMA engine.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaStats {
    /// Transfer requests executed.
    pub requests: u64,
    /// AXI bursts issued.
    pub bursts: u64,
    /// Bytes moved in either direction.
    pub bytes: u64,
    /// Translation requests presented to the IOMMU.
    pub translations: u64,
    /// Cycles spent blocked on address translation.
    pub translation_cycles: u64,
    /// Cycles burst issue stalled waiting for a request-queue credit at the
    /// fabric port (the target channel's request FIFO was full). The stall
    /// pushes the engine's issue pipeline back — the next burst cannot
    /// issue while the current one waits for a credit — which is the
    /// upstream backpressure a split-transaction fabric exerts. Always zero
    /// with the default unbounded queue depths.
    pub issue_stall_cycles: u64,
    /// IO page faults the engine recovered from through the ATS/PRI
    /// stall-and-retry loop (always zero with demand paging off — faults
    /// are errors then).
    pub page_faults: u64,
    /// Cycles bursts stalled waiting for page-request group responses
    /// (fault detection → resume), including overflow backoff. The stall is
    /// charged **serially onto the batch completion time**, not into the
    /// burst issue schedule: bursts keep their fault-free placement on the
    /// contended fabric timelines, so a demand-paged run is always the
    /// matching pre-mapped run plus its fault-service time. (Re-timing
    /// issue instead de-correlates the DMA streams — staggered bursts can
    /// dodge each other's contention and report a *lower* contended wall
    /// clock than the pre-mapped run, which made the comparison lie.)
    pub fault_stall_cycles: u64,
    /// Total cycles the engine was busy (issue to last completion), summed
    /// over transfer batches.
    pub busy_cycles: u64,
}

/// The cluster DMA engine.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DmaEngine {
    config: DmaConfig,
    stats: DmaStats,
}

impl DmaEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: DmaConfig) -> Self {
        Self {
            config,
            stats: DmaStats::default(),
        }
    }

    /// The engine configuration.
    pub const fn config(&self) -> &DmaConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub const fn stats(&self) -> &DmaStats {
        &self.stats
    }

    /// Clears the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = DmaStats::default();
    }

    /// Executes a batch of transfer requests starting no earlier than
    /// `start`, moving the data between `mem` and `tcdm`, translating through
    /// `iommu`, and returns the completion time of the last burst.
    ///
    /// # Errors
    ///
    /// Propagates IO page faults from the IOMMU and out-of-range TCDM or
    /// memory accesses.
    pub fn execute(
        &mut self,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        tcdm: &mut Tcdm,
        requests: &[DmaRequest],
        start: Cycles,
    ) -> Result<Cycles> {
        self.execute_with_pri(mem, iommu, tcdm, requests, start, None)
    }

    /// [`DmaEngine::execute`] with an optional ATS/PRI page-request handler.
    ///
    /// With a handler present and demand paging configured on the IOMMU, a
    /// translation fault no longer aborts the transfer: the engine issues a
    /// **page-request group** covering the rest of the faulting transfer,
    /// **stalls** until the host's group response completes (plus a backoff
    /// penalty when the group overflowed the bounded page-request queue),
    /// and **retries** the translation — up to the IOMMU's
    /// `max_fault_retries` bound, after which the fault is terminal. The
    /// full round trip is charged **serially** onto the batch completion
    /// ([`DmaStats::fault_stall_cycles`]): the bursts keep the fault-free
    /// issue schedule on the fabric, and the accumulated fault-service time
    /// is added to the returned completion, so a cold-start demand-paged
    /// batch always finishes no earlier than its pre-mapped twin.
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable IO page faults (no handler, demand paging
    /// off, retry budget exhausted, or the host has no backing mapping) and
    /// out-of-range TCDM or memory accesses.
    pub fn execute_with_pri(
        &mut self,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        tcdm: &mut Tcdm,
        requests: &[DmaRequest],
        start: Cycles,
        mut pri: Option<&mut (dyn PageRequestHandler + '_)>,
    ) -> Result<Cycles> {
        let mut issue_free = start;
        let mut data_bus_free = start;
        let mut completion = start;
        // Fault-service time accumulated across the batch. Charged serially
        // onto the completion below instead of pushing `issue_t` back, so
        // the bursts keep their fault-free fabric placement (see
        // [`DmaStats::fault_stall_cycles`]).
        let mut fault_stall = Cycles::ZERO;
        let mut outstanding: VecDeque<Cycles> = VecDeque::new();
        let mut buf = vec![0u8; self.config.max_burst_bytes as usize];

        for req in requests {
            self.stats.requests += 1;
            issue_free += self.config.issue_overhead;
            let plan = BurstPlan::split(
                PhysAddr::new(req.ext_addr.raw()),
                req.len,
                self.config.max_burst_bytes,
            );
            let mut done: u64 = 0;
            for (burst, _new_page) in plan.iter_with_new_page() {
                // Respect the outstanding-transaction limit.
                let mut issue_t = issue_free;
                if outstanding.len() >= self.config.max_outstanding {
                    let oldest = outstanding
                        .pop_front()
                        .expect("outstanding queue is non-empty");
                    issue_t = issue_t.max(oldest);
                }

                // Translation: the engine presents the burst address to the
                // IOMMU at its issue time, so an IOTLB miss's page-table
                // walk lands at the right point on the fabric timelines;
                // IOTLB hits are cheap, misses serialise the burst behind
                // the walk. Under demand paging a fault turns into an
                // ATS/PRI stall-and-retry instead of an error.
                let is_write = req.dir == Direction::FromTcdm;
                let mut attempts = 0u32;
                let (pa, trans) = loop {
                    match iommu.translate_at(
                        mem,
                        self.config.device_id,
                        Iova::new(burst.addr.raw()),
                        is_write,
                        issue_t,
                    ) {
                        Ok(res) => break res,
                        Err(fault @ Error::IoPageFault { .. }) => {
                            let recoverable = iommu.demand_paging() && pri.is_some();
                            attempts += 1;
                            if !recoverable || attempts > iommu.config().max_fault_retries {
                                // Under demand paging the IOMMU routed this
                                // fault to the page-request path; the device
                                // is giving up, so the terminal fault must
                                // still reach the driver's fault queue.
                                if iommu.demand_paging() {
                                    iommu.record_terminal_fault(
                                        self.config.device_id,
                                        Iova::new(burst.addr.raw()),
                                        is_write,
                                    );
                                }
                                return Err(fault);
                            }
                            let handler = pri.as_deref_mut().expect("recoverable implies handler");
                            // The device issues a page-request group for
                            // the rest of this transfer: the faulting page
                            // plus everything it is about to touch.
                            let (_, dropped) = iommu.enqueue_page_requests(
                                mem,
                                self.config.device_id,
                                Iova::new(burst.addr.raw()),
                                req.len - done,
                                is_write,
                                issue_t,
                            );
                            let mut resume = handler.service(mem, iommu, issue_t)?;
                            if dropped > 0 {
                                // The queue overflowed mid-group: the tail
                                // pages will re-fault, so the device backs
                                // off before retrying.
                                resume += iommu.config().page_request_backoff;
                            }
                            // Charge at least one cycle even if the host
                            // answered instantaneously.
                            resume = resume.max(issue_t + Cycles::new(1));
                            self.stats.page_faults += 1;
                            let stall = resume - issue_t;
                            self.stats.fault_stall_cycles += stall.raw();
                            fault_stall += stall;
                        }
                        Err(other) => return Err(other),
                    }
                };
                self.stats.translations += 1;
                self.stats.translation_cycles += trans.raw();
                issue_t += trans;

                // Data movement + timing. The engine presents its own device
                // identity and issue time at the fabric port, so per-cluster
                // contention is observable in the fabric statistics.
                let initiator = InitiatorId::dma(self.config.device_id);
                let chunk = &mut buf[..burst.len as usize];
                let priority = self.config.priority;
                let rsp = match req.dir {
                    Direction::ToTcdm => {
                        let rsp = mem.access(
                            MemReq::read(initiator, pa, chunk)
                                .burst()
                                .priority(priority)
                                .at(issue_t),
                        )?;
                        tcdm.write(req.tcdm_offset + done, chunk)?;
                        rsp
                    }
                    Direction::FromTcdm => {
                        tcdm.read(req.tcdm_offset + done, chunk)?;
                        mem.access(
                            MemReq::write(initiator, pa, chunk)
                                .burst()
                                .priority(priority)
                                .at(issue_t),
                        )?
                    }
                };
                let timing = rsp.timing;
                // Credit-based issue: if the target channel's request queue
                // was full, the burst sat at the fabric port for
                // `issue_stall` cycles before it could even enter the
                // fabric. The stall holds the engine's request channel —
                // the next burst cannot issue until the credit was granted
                // — which is how full channel FIFOs push contention
                // upstream into the engine. (When contention charging is
                // on, the stall is also part of the returned latency, so
                // the data path sees it too.)
                let credit_granted = issue_t + rsp.issue_stall;
                self.stats.issue_stall_cycles += rsp.issue_stall.raw();

                let data_start = (issue_t + timing.latency).max(data_bus_free);
                let burst_done = data_start + timing.occupancy;
                data_bus_free = burst_done;
                completion = completion.max(burst_done);
                outstanding.push_back(burst_done);

                // The request channel is free again shortly after the
                // request-queue credit was granted.
                issue_free = credit_granted + Cycles::new(1);

                self.stats.bursts += 1;
                self.stats.bytes += burst.len;
                done += burst.len;
            }
        }
        completion += fault_stall;
        self.stats.busy_cycles += (completion.saturating_sub(start)).raw();
        Ok(completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_axi::addrmap::{DRAM_BASE, LLC_BYPASS_OFFSET};
    use sva_common::PAGE_SIZE;
    use sva_iommu::IommuConfig;
    use sva_mem::MemSysConfig;
    use sva_vm::{AddressSpace, FrameAllocator};

    fn bypass_addr(offset: u64) -> Iova {
        Iova::new(DRAM_BASE + LLC_BYPASS_OFFSET + offset)
    }

    #[test]
    fn baseline_transfer_moves_data_both_ways() {
        let mut mem = MemorySystem::default();
        let mut iommu = Iommu::new(IommuConfig::disabled());
        let mut tcdm = Tcdm::default();
        let mut dma = DmaEngine::new(DmaConfig::default());

        // Put a pattern in DRAM, DMA it in, mangle it, DMA it out elsewhere.
        let src: Vec<u8> = (0..8192u32).map(|i| (i % 250) as u8).collect();
        mem.write_phys(PhysAddr::new(DRAM_BASE + 0x10_0000), &src)
            .unwrap();

        let t_in = dma
            .execute(
                &mut mem,
                &mut iommu,
                &mut tcdm,
                &[DmaRequest::input(bypass_addr(0x10_0000), 0, 8192)],
                Cycles::ZERO,
            )
            .unwrap();
        assert!(t_in.raw() > 0);
        let mut check = vec![0u8; 8192];
        tcdm.read(0, &mut check).unwrap();
        assert_eq!(check, src);

        dma.execute(
            &mut mem,
            &mut iommu,
            &mut tcdm,
            &[DmaRequest::output(bypass_addr(0x20_0000), 0, 8192)],
            t_in,
        )
        .unwrap();
        let mut out = vec![0u8; 8192];
        mem.read_phys(PhysAddr::new(DRAM_BASE + 0x20_0000), &mut out)
            .unwrap();
        assert_eq!(out, src);

        let stats = dma.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.bytes, 16384);
        assert_eq!(stats.bursts, 8);
        assert_eq!(stats.translation_cycles, 0, "disabled IOMMU is free");
    }

    #[test]
    fn translated_transfer_reads_scattered_user_pages() {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 4 * PAGE_SIZE)
            .unwrap();
        let data: Vec<u8> = (0..4 * PAGE_SIZE).map(|i| (i % 241) as u8).collect();
        space.write_virt(&mut mem, va, &data).unwrap();

        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let mut tcdm = Tcdm::default();
        let mut dma = DmaEngine::new(DmaConfig::default());
        dma.execute(
            &mut mem,
            &mut iommu,
            &mut tcdm,
            &[DmaRequest::input(Iova::from_virt(va), 0, 4 * PAGE_SIZE)],
            Cycles::ZERO,
        )
        .unwrap();
        let mut check = vec![0u8; data.len()];
        tcdm.read(0, &mut check).unwrap();
        assert_eq!(check, data);
        assert_eq!(iommu.stats().iotlb.misses, 4);
        assert!(dma.stats().translation_cycles > 0);
    }

    #[test]
    fn translation_faults_propagate() {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let mut tcdm = Tcdm::default();
        let mut dma = DmaEngine::new(DmaConfig::default());
        let err = dma.execute(
            &mut mem,
            &mut iommu,
            &mut tcdm,
            &[DmaRequest::input(Iova::new(0x6666_0000), 0, 64)],
            Cycles::ZERO,
        );
        assert!(err.is_err());
    }

    /// The ATS/PRI loop end to end at the engine level: nothing is
    /// device-mapped up front, every page faults on first touch, the host
    /// servicer pages them in, and the transfer still completes with the
    /// right data — slower than the pre-mapped run, with the fault stalls
    /// accounted.
    #[test]
    fn demand_paged_transfer_stalls_retries_and_completes() {
        use sva_host::{FaultServicer, IommuDriver};
        use sva_iommu::TlbHierarchyConfig;
        use sva_vm::AddressSpace;

        let len = 8 * PAGE_SIZE;
        let run = |demand: bool| -> (Cycles, DmaStats, sva_iommu::IommuStats, Vec<u8>) {
            let mut mem = MemorySystem::default();
            let mut frames = FrameAllocator::linux_pool();
            let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
            let va = space.alloc_buffer(&mut mem, &mut frames, len).unwrap();
            let data: Vec<u8> = (0..len).map(|i| (i % 239) as u8).collect();
            space.write_virt(&mut mem, va, &data).unwrap();

            let mut iommu = Iommu::new(IommuConfig {
                demand_paging: demand,
                tlb_hierarchy: Some(TlbHierarchyConfig::default()),
                ..IommuConfig::default()
            });
            let mut cpu = sva_host::HostCpu::default();
            let mut driver = IommuDriver::default();
            driver
                .attach(&mut cpu, &mut mem, &mut iommu, &mut frames, space.pscid())
                .unwrap();
            if !demand {
                driver
                    .map_buffer(&mut cpu, &mut mem, &mut iommu, &space, &mut frames, va, len)
                    .unwrap();
            }

            let mut tcdm = Tcdm::default();
            let mut dma = DmaEngine::new(DmaConfig::default());
            let mut servicer = FaultServicer::new(&mut driver, &space, &mut frames);
            let done = dma
                .execute_with_pri(
                    &mut mem,
                    &mut iommu,
                    &mut tcdm,
                    &[DmaRequest::input(Iova::from_virt(va), 0, len)],
                    Cycles::ZERO,
                    Some(&mut servicer),
                )
                .unwrap();
            let mut check = vec![0u8; len as usize];
            tcdm.read(0, &mut check).unwrap();
            (done, *dma.stats(), iommu.stats(), check)
        };

        let (premapped_done, premapped_stats, _, premapped_data) = run(false);
        assert_eq!(
            premapped_stats.page_faults, 0,
            "pre-mapped run never faults"
        );
        let (demand_done, demand_stats, iommu_stats, demand_data) = run(true);

        assert_eq!(demand_data, premapped_data, "paged-in data is correct");
        assert!(demand_stats.page_faults > 0, "cold start must fault");
        assert!(demand_stats.fault_stall_cycles > 0);
        assert!(
            demand_done > premapped_done,
            "demand paging must cost cycles: {demand_done} vs {premapped_done}"
        );
        let pri = iommu_stats.page_requests;
        assert_eq!(pri.serviced, 8, "every page was paged in exactly once");
        assert_eq!(pri.failed, 0);
        assert!(pri.group_responses > 0);
        assert_eq!(pri.service_time.count(), 8);
        assert!(iommu_stats.page_request_p50 > 0);
        assert!(iommu_stats.page_request_p99 >= iommu_stats.page_request_p50);
    }

    /// A truly unmapped address (no host backing) stays a terminal fault
    /// even with demand paging and a handler: the bounded retry loop gives
    /// up.
    #[test]
    fn demand_paging_cannot_recover_bad_addresses() {
        use sva_host::{FaultServicer, IommuDriver};
        use sva_vm::AddressSpace;

        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let mut iommu = Iommu::new(IommuConfig {
            demand_paging: true,
            max_fault_retries: 3,
            ..IommuConfig::default()
        });
        let mut cpu = sva_host::HostCpu::default();
        let mut driver = IommuDriver::default();
        driver
            .attach(&mut cpu, &mut mem, &mut iommu, &mut frames, space.pscid())
            .unwrap();
        let mut tcdm = Tcdm::default();
        let mut dma = DmaEngine::new(DmaConfig::default());
        let mut servicer = FaultServicer::new(&mut driver, &space, &mut frames);
        let err = dma.execute_with_pri(
            &mut mem,
            &mut iommu,
            &mut tcdm,
            &[DmaRequest::input(Iova::new(0x6666_0000), 0, 64)],
            Cycles::ZERO,
            Some(&mut servicer),
        );
        assert!(matches!(err, Err(sva_common::Error::IoPageFault { .. })));
        assert!(
            iommu.stats().page_requests.failed > 0,
            "the host marked the unresolvable request failed"
        );
        // The abort is not silent: giving up records a terminal fault the
        // driver can observe on the fault queue.
        let fault = iommu.pop_fault().expect("terminal fault recorded");
        assert_eq!(fault.iova, Iova::new(0x6666_0000));
        assert_eq!(fault.reason, sva_iommu::FaultReason::PageNotMapped);
    }

    #[test]
    fn translation_stalls_increase_transfer_time() {
        // Same 64 KiB transfer: once from contiguous reserved DRAM without
        // translation, once through the IOMMU at high DRAM latency without
        // an LLC. The translated variant must be noticeably slower.
        let latency = 1000;
        let len = 16 * PAGE_SIZE;

        let mut mem_a = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            llc_enabled: false,
            ..MemSysConfig::default()
        });
        let mut iommu_a = Iommu::new(IommuConfig::disabled());
        let mut tcdm_a = Tcdm::default();
        let mut dma_a = DmaEngine::new(DmaConfig::default());
        let t_baseline = dma_a
            .execute(
                &mut mem_a,
                &mut iommu_a,
                &mut tcdm_a,
                &[DmaRequest::input(bypass_addr(0x40_0000), 0, len)],
                Cycles::ZERO,
            )
            .unwrap();

        let mut mem_b = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            llc_enabled: false,
            ..MemSysConfig::default()
        });
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem_b, &mut frames).unwrap();
        let va = space.alloc_buffer(&mut mem_b, &mut frames, len).unwrap();
        let mut iommu_b = Iommu::default();
        iommu_b
            .attach_device(&mut mem_b, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let mut tcdm_b = Tcdm::default();
        let mut dma_b = DmaEngine::new(DmaConfig::default());
        let t_translated = dma_b
            .execute(
                &mut mem_b,
                &mut iommu_b,
                &mut tcdm_b,
                &[DmaRequest::input(Iova::from_virt(va), 0, len)],
                Cycles::ZERO,
            )
            .unwrap();

        assert!(
            t_translated.raw() as f64 > t_baseline.raw() as f64 * 1.5,
            "translated {t_translated} should be much slower than baseline {t_baseline}"
        );
    }

    /// Queue-aware issue: under a split-transaction fabric with a one-slot
    /// request queue, an engine issuing into a bus already backed up by
    /// another initiator stalls at the port (its own waiting request holds
    /// the slot), and the stall is visible both in the engine's statistics
    /// and in the fabric's per-initiator row. With unbounded depths the
    /// same workload never stalls and the completion time matches the pure
    /// reservation model.
    #[test]
    fn shallow_request_queue_stalls_burst_issue() {
        let run = |bounded: bool| -> (Cycles, u64, u64) {
            let mut fabric = sva_mem::FabricConfig {
                contention_enabled: true,
                ..sva_mem::FabricConfig::default()
            };
            if bounded {
                fabric.req_queue_depth = 1;
                fabric.rsp_queue_depth = 1;
            }
            let mut mem = MemorySystem::new(MemSysConfig {
                dram_latency: Cycles::new(600),
                fabric,
                ..MemSysConfig::default()
            });
            let mut iommu = Iommu::new(IommuConfig::disabled());
            let mut tcdm = Tcdm::default();
            // Stream 1 saturates the bus first (shard order: it is placed
            // first-fit and never queues)...
            let mut dma_a = DmaEngine::new(DmaConfig {
                device_id: 1,
                ..DmaConfig::default()
            });
            dma_a
                .execute(
                    &mut mem,
                    &mut iommu,
                    &mut tcdm,
                    &[DmaRequest::input(bypass_addr(0), 0, 32 * 1024)],
                    Cycles::ZERO,
                )
                .unwrap();
            // ...then stream 2 issues the same transfer from the same local
            // zero: every burst queues behind stream 1's reservations, so
            // its waiting requests pile up at the one-slot request FIFO.
            let mut dma_b = DmaEngine::new(DmaConfig {
                device_id: 3,
                ..DmaConfig::default()
            });
            let done = dma_b
                .execute(
                    &mut mem,
                    &mut iommu,
                    &mut tcdm,
                    &[DmaRequest::input(bypass_addr(0x10_0000), 0, 32 * 1024)],
                    Cycles::ZERO,
                )
                .unwrap();
            let row = mem
                .fabric()
                .initiator_stats(sva_common::InitiatorId::dma(3))
                .unwrap();
            (
                done,
                dma_b.stats().issue_stall_cycles,
                row.issue_stall_cycles,
            )
        };
        let (unbounded_done, unbounded_stall, _) = run(false);
        assert_eq!(unbounded_stall, 0, "unbounded depths never stall");
        let (bounded_done, engine_stall, fabric_stall) = run(true);
        assert!(
            engine_stall > 0,
            "burst issue must stall at the full request queue"
        );
        assert_eq!(
            engine_stall, fabric_stall,
            "engine and fabric agree on the stall"
        );
        assert!(
            bounded_done >= unbounded_done,
            "backpressure cannot finish earlier: {bounded_done} vs {unbounded_done}"
        );
    }

    /// Regression (measurement windows must not leak credits): after
    /// `open_measurement_window`, a fresh engine re-running the same
    /// transfer from local cycle zero observes exactly what a fresh memory
    /// system would — stale queue entries and outstanding reservations from
    /// the previous window are gone, for the engine's stats and the
    /// fabric's alike.
    #[test]
    fn measurement_window_does_not_leak_credits_or_outstanding_entries() {
        let shallow_mem = || {
            MemorySystem::new(MemSysConfig {
                dram_latency: Cycles::new(600),
                fabric: sva_mem::FabricConfig {
                    contention_enabled: true,
                    req_queue_depth: 1,
                    rsp_queue_depth: 1,
                    ..sva_mem::FabricConfig::default()
                },
                ..MemSysConfig::default()
            })
        };
        // Runs one transfer on a private clone of `mem` (the probe must not
        // perturb the system it probes).
        let transfer = |mem: &MemorySystem, device_id: u32| -> (Cycles, u64) {
            let mut mem = mem.clone();
            let mut iommu = Iommu::new(IommuConfig::disabled());
            let mut tcdm = Tcdm::default();
            let mut dma = DmaEngine::new(DmaConfig {
                device_id,
                ..DmaConfig::default()
            });
            let done = dma
                .execute(
                    &mut mem,
                    &mut iommu,
                    &mut tcdm,
                    &[DmaRequest::input(bypass_addr(0), 0, 16 * 1024)],
                    Cycles::ZERO,
                )
                .unwrap();
            (done, dma.stats().issue_stall_cycles)
        };
        // Window 1: two engines congest the shallow queues.
        let mut mem = shallow_mem();
        {
            let mut iommu = Iommu::new(IommuConfig::disabled());
            let mut tcdm = Tcdm::default();
            for device in [1u32, 3] {
                DmaEngine::new(DmaConfig {
                    device_id: device,
                    ..DmaConfig::default()
                })
                .execute(
                    &mut mem,
                    &mut iommu,
                    &mut tcdm,
                    &[DmaRequest::input(bypass_addr(0), 0, 32 * 1024)],
                    Cycles::ZERO,
                )
                .unwrap();
            }
        }
        // Window 2 on the used system vs window 1 on a fresh system.
        mem.open_measurement_window();
        let used = transfer(&mem, 5);
        let fresh = transfer(&shallow_mem(), 5);
        assert_eq!(
            used, fresh,
            "a fresh window must behave like a fresh system (no leaked credits)"
        );
        // A cloned platform is equally independent: congesting the original
        // after the clone must not stall the clone.
        let mem_clone = mem.clone();
        {
            let mut iommu = Iommu::new(IommuConfig::disabled());
            let mut tcdm = Tcdm::default();
            DmaEngine::new(DmaConfig {
                device_id: 7,
                ..DmaConfig::default()
            })
            .execute(
                &mut mem,
                &mut iommu,
                &mut tcdm,
                &[DmaRequest::input(bypass_addr(0), 0, 32 * 1024)],
                Cycles::ZERO,
            )
            .unwrap();
        }
        let clone_run = transfer(&mem_clone, 5);
        assert_eq!(clone_run, fresh, "clones must not share credit queues");

        // Dropped-record carryover: a window that overflowed the fault
        // queue AND the PRI queue must not leak its drop counters or its
        // PRI occupancy into the next window's accounting. (The memory
        // half is `open_measurement_window` above; the IOMMU half is
        // `Iommu::reset_stats`, invoked per measurement window by the
        // offload runner.)
        let mut frames = FrameAllocator::linux_pool();
        let mut space_mem = MemorySystem::default();
        let space = AddressSpace::new(&mut space_mem, &mut frames).unwrap();
        let mut iommu = Iommu::new(IommuConfig {
            demand_paging: true,
            fault_queue_entries: 2,
            page_request_entries: 2,
            ..IommuConfig::default()
        });
        iommu
            .attach_device(&mut space_mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        // Overflow the fault queue with terminal faults (what the bounded
        // PRI retry loop records when it gives up on an address).
        for i in 0..5u64 {
            let bad = Iova::new(0x7F00_0000 + i * sva_common::PAGE_SIZE);
            iommu.record_terminal_fault(1, bad, false);
        }
        // Overflow the 2-entry PRI queue with a 4-page group and leave its
        // serviced entries on the occupancy timeline.
        let (enqueued, dropped) = iommu.enqueue_page_requests(
            &space_mem,
            1,
            Iova::new(0x7F10_0000),
            4 * sva_common::PAGE_SIZE,
            false,
            Cycles::new(10),
        );
        assert_eq!((enqueued, dropped), (2, 2), "2-entry queue drops the rest");
        while iommu.pop_page_request().is_some() {}
        iommu.note_page_request_serviced(Cycles::new(10), Cycles::new(500));
        let dirty = iommu.stats();
        assert!(dirty.fault_records_dropped > 0);
        assert!(dirty.page_requests.dropped > 0);
        assert!(dirty.page_request_peak_in_flight > 0);

        // Next window: every drop counter and the PRI occupancy restart
        // from zero, exactly like a fresh IOMMU's.
        space_mem.open_measurement_window();
        iommu.reset_stats();
        let next = iommu.stats();
        assert_eq!(next.fault_records_dropped, 0, "fault drops carried over");
        assert_eq!(next.page_requests.dropped, 0, "PRI drops carried over");
        assert_eq!(next.page_requests.requests, 0);
        assert_eq!(next.page_requests.service_time.count(), 0);
        assert_eq!(
            next.page_request_peak_in_flight, 0,
            "PRI occupancy timeline carried over"
        );
    }

    #[test]
    fn outstanding_bursts_overlap_latency() {
        let run = |outstanding: usize| -> u64 {
            let mut mem = MemorySystem::new(MemSysConfig {
                dram_latency: Cycles::new(1000),
                ..MemSysConfig::default()
            });
            let mut iommu = Iommu::new(IommuConfig::disabled());
            let mut tcdm = Tcdm::default();
            let mut dma = DmaEngine::new(DmaConfig {
                max_outstanding: outstanding,
                ..DmaConfig::default()
            });
            dma.execute(
                &mut mem,
                &mut iommu,
                &mut tcdm,
                &[DmaRequest::input(bypass_addr(0), 0, 32 * 1024)],
                Cycles::ZERO,
            )
            .unwrap()
            .raw()
        };
        let serial = run(1);
        let pipelined = run(4);
        assert!(
            pipelined * 2 < serial,
            "4 outstanding bursts ({pipelined}) should be at least 2x faster than 1 ({serial})"
        );
    }
}
