//! The double-buffered kernel executor.
//!
//! The executor plays the role of the cluster's runtime: it walks the
//! kernel's tiles, keeps the DMA engine working one tile ahead of the compute
//! cores (double buffering), and accounts time in two regions exactly as the
//! paper does:
//!
//! * **DMA wait** — cycles the compute cores spend stalled because the data
//!   they need has not arrived (or final results are still draining);
//! * **compute** — cycles spent executing the tile on the PEs.
//!
//! With double buffering and a compute-bound kernel the DMA-wait region tends
//! to zero even when megabytes are transferred; with the IOMMU enabled and no
//! LLC, translation stalls eat into the overlap and the DMA-wait region grows
//! — that difference is Table II.

use serde::{Deserialize, Serialize};
use sva_common::{Cycles, Error, GlobalClock, Result};
use sva_iommu::{Iommu, PageRequestHandler};
use sva_mem::MemorySystem;

use crate::dma::{DmaConfig, DmaEngine, DmaStats};
use crate::kernel::{DeviceKernel, TileCtx};
use crate::pe::ClusterGeometry;
use crate::tcdm::Tcdm;

/// Configuration of the cluster executor.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Cluster geometry (PE count, TCDM size).
    pub geometry: ClusterGeometry,
    /// DMA engine configuration.
    pub dma: DmaConfig,
    /// Whether tile transfers are overlapped with compute (double buffering).
    /// Disabling it is an ablation; all paper experiments have it on.
    pub double_buffer: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            geometry: ClusterGeometry::default(),
            dma: DmaConfig::default(),
            double_buffer: true,
        }
    }
}

/// Timing breakdown of one kernel run on the cluster.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelRunStats {
    /// Total runtime of the kernel on the device.
    pub total: Cycles,
    /// Cycles the compute cores spent waiting for DMA transfers.
    pub dma_wait: Cycles,
    /// Cycles spent computing tiles.
    pub compute: Cycles,
    /// Number of tiles executed.
    pub tiles: u64,
    /// DMA engine statistics for this run.
    pub dma: DmaStats,
}

impl KernelRunStats {
    /// Fraction of the runtime spent waiting for DMA (the "% DMA" rows of
    /// Table II).
    pub fn dma_fraction(&self) -> f64 {
        self.dma_wait.fraction_of(self.total)
    }

    /// Merges the per-shard breakdowns of one kernel run sharded across
    /// parallel clusters: the wall-clock `total` is the slowest shard, while
    /// compute, DMA-wait, tile and DMA-engine counters aggregate across
    /// shards. With a single shard this is the identity.
    pub fn merge_parallel(shards: &[KernelRunStats]) -> KernelRunStats {
        let mut merged = KernelRunStats::default();
        for s in shards {
            merged.total = merged.total.max(s.total);
            merged.dma_wait += s.dma_wait;
            merged.compute += s.compute;
            merged.tiles += s.tiles;
            merged.dma.requests += s.dma.requests;
            merged.dma.bursts += s.dma.bursts;
            merged.dma.bytes += s.dma.bytes;
            merged.dma.translations += s.dma.translations;
            merged.dma.translation_cycles += s.dma.translation_cycles;
            merged.dma.issue_stall_cycles += s.dma.issue_stall_cycles;
            merged.dma.page_faults += s.dma.page_faults;
            merged.dma.fault_stall_cycles += s.dma.fault_stall_cycles;
            merged.dma.busy_cycles += s.dma.busy_cycles;
        }
        merged
    }
}

/// The cluster executor: TCDM + DMA engine + run loop.
#[derive(Debug)]
pub struct ClusterExecutor {
    config: ClusterConfig,
    tcdm: Tcdm,
    dma: DmaEngine,
    /// The cluster's local cursor on the shared virtual timeline. Every
    /// shard of an offload restarts its cursor at zero when a run begins —
    /// shards execute concurrently in simulated time even though they are
    /// simulated sequentially — so each executor keeps its own
    /// [`GlobalClock`] instance rather than sharing the platform's.
    clock: GlobalClock,
}

impl Clone for ClusterExecutor {
    /// Clones get their own time cursor ([`GlobalClock`] handles share
    /// their counter, and a cursor must belong to exactly one executor);
    /// the cursor is restarted at every run, so no reading is carried over.
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            tcdm: self.tcdm.clone(),
            dma: self.dma.clone(),
            clock: GlobalClock::new(),
        }
    }
}

impl ClusterExecutor {
    /// Creates an executor with the given configuration.
    pub fn new(config: ClusterConfig) -> Self {
        Self {
            tcdm: Tcdm::new(config.geometry.tcdm_bytes),
            dma: DmaEngine::new(config.dma),
            clock: GlobalClock::new(),
            config,
        }
    }

    /// The executor configuration.
    pub const fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cluster's TCDM (e.g. to pre-load lookup tables in tests).
    pub fn tcdm_mut(&mut self) -> &mut Tcdm {
        &mut self.tcdm
    }

    /// Runs a kernel to completion and returns its timing breakdown.
    ///
    /// # Errors
    ///
    /// Propagates IOMMU faults and TCDM/memory range errors.
    pub fn run(
        &mut self,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        kernel: &mut dyn DeviceKernel,
    ) -> Result<KernelRunStats> {
        self.run_with_pri(mem, iommu, kernel, None)
    }

    /// [`ClusterExecutor::run`] with an optional ATS/PRI page-request
    /// handler: every DMA batch of the tile loop can recover from IO page
    /// faults through the handler's stall-and-retry loop (demand paging).
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable IOMMU faults and TCDM/memory range errors.
    pub fn run_with_pri(
        &mut self,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        kernel: &mut dyn DeviceKernel,
        mut pri: Option<&mut (dyn PageRequestHandler + '_)>,
    ) -> Result<KernelRunStats> {
        self.dma.reset_stats();
        let n = kernel.num_tiles();
        let mut stats = KernelRunStats {
            tiles: n as u64,
            ..KernelRunStats::default()
        };
        if n == 0 {
            // Empty shard (static block scheduling can hand a cluster zero
            // tiles): snapshot the engine accounting like the normal exit
            // path does, so both exits report the same way.
            stats.dma = *self.dma.stats();
            return Ok(stats);
        }

        // The cluster's cursor on the shared virtual timeline: every shard
        // restarts at zero (shards of one offload run concurrently in
        // simulated time).
        self.clock.restart();
        let device_id = self.config.dma.device_id;
        // Completion time of the input transfers of each tile.
        let mut input_ready: Vec<Option<Cycles>> = vec![None; n];

        // Prefetch the first tile. `dma_free` tracks the completion time of
        // the most recently issued DMA batch; the engine processes batches in
        // issue order. Each tile is planned (address-generation pre-pass on
        // shared functional memory) before its descriptors are first read;
        // under cold-start demand paging the pre-pass pages its reads in
        // through the ATS/PRI handler and the wait lands on the critical
        // path like any other stall.
        let stall =
            Self::plan_tile_with_pri(kernel, 0, mem, iommu, device_id, &mut pri, self.clock.now())?;
        if stall > Cycles::ZERO {
            stats.dma_wait += stall;
            self.clock.advance(stall);
        }
        let first_io = kernel.tile_io(0);
        let mut dma_free = self.dma.execute_with_pri(
            mem,
            iommu,
            &mut self.tcdm,
            &first_io.inputs,
            self.clock.now(),
            pri.as_deref_mut(),
        )?;
        input_ready[0] = Some(dma_free);

        for tile in 0..n {
            // Wait for this tile's inputs.
            let ready = input_ready[tile].expect("inputs of the current tile were issued");
            if ready > self.clock.now() {
                stats.dma_wait += ready - self.clock.now();
                self.clock.advance_to(ready);
            }

            // Kick off the next tile's inputs so they overlap with compute.
            if self.config.double_buffer && tile + 1 < n {
                let stall = Self::plan_tile_with_pri(
                    kernel,
                    tile + 1,
                    mem,
                    iommu,
                    device_id,
                    &mut pri,
                    self.clock.now(),
                )?;
                if stall > Cycles::ZERO {
                    stats.dma_wait += stall;
                    self.clock.advance(stall);
                }
                let next_io = kernel.tile_io(tile + 1);
                dma_free = self.dma.execute_with_pri(
                    mem,
                    iommu,
                    &mut self.tcdm,
                    &next_io.inputs,
                    self.clock.now().max(dma_free),
                    pri.as_deref_mut(),
                )?;
                input_ready[tile + 1] = Some(dma_free);
            }

            // Compute the tile.
            let compute = kernel.compute_tile(tile, &mut self.tcdm)?;
            stats.compute += compute;
            self.clock.advance(compute);

            // Write back this tile's outputs (overlaps with the next tile's
            // compute when double buffering).
            let io = kernel.tile_io(tile);
            dma_free = self.dma.execute_with_pri(
                mem,
                iommu,
                &mut self.tcdm,
                &io.outputs,
                self.clock.now().max(dma_free),
                pri.as_deref_mut(),
            )?;

            if !self.config.double_buffer {
                // Single-buffered ablation: wait for the write-back before
                // reusing the buffers, and only then fetch the next tile.
                if dma_free > self.clock.now() {
                    stats.dma_wait += dma_free - self.clock.now();
                    self.clock.advance_to(dma_free);
                }
                if tile + 1 < n {
                    let stall = Self::plan_tile_with_pri(
                        kernel,
                        tile + 1,
                        mem,
                        iommu,
                        device_id,
                        &mut pri,
                        self.clock.now(),
                    )?;
                    if stall > Cycles::ZERO {
                        stats.dma_wait += stall;
                        self.clock.advance(stall);
                    }
                    let next_io = kernel.tile_io(tile + 1);
                    dma_free = self.dma.execute_with_pri(
                        mem,
                        iommu,
                        &mut self.tcdm,
                        &next_io.inputs,
                        self.clock.now().max(dma_free),
                        pri.as_deref_mut(),
                    )?;
                    input_ready[tile + 1] = Some(dma_free);
                }
            }
        }

        // Drain the final write-backs.
        if dma_free > self.clock.now() {
            stats.dma_wait += dma_free - self.clock.now();
            self.clock.advance_to(dma_free);
        }

        stats.total = self.clock.now();
        stats.dma = *self.dma.stats();
        Ok(stats)
    }

    /// Runs the kernel's address-generation pre-pass for `tile`, recovering
    /// from cold-start demand-paging faults exactly like a faulting DMA
    /// burst: an unmapped plan-pass read enqueues a page request, waits for
    /// the host's group response (plus overflow backoff), and retries the
    /// plan — bounded by the IOMMU's `max_fault_retries` per attempt chain,
    /// after which the fault is terminal and recorded on the fault queue.
    /// Returns the cycles the pre-pass stalled waiting for page-ins (zero
    /// when nothing faulted). Without a handler, or with demand paging off,
    /// a fault propagates unchanged.
    ///
    /// This is what makes data-dependent kernels (the sort kernel's
    /// merge-path pre-pass) work under cold-start demand paging: the plan
    /// reads run *before* the first DMA touch, so without the fault-in loop
    /// they would hit unmapped pages and abort the offload.
    #[allow(clippy::too_many_arguments)] // mirrors the DMA fault loop's inputs
    fn plan_tile_with_pri(
        kernel: &mut dyn DeviceKernel,
        tile: usize,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        device_id: u32,
        pri: &mut Option<&mut (dyn PageRequestHandler + '_)>,
        now: Cycles,
    ) -> Result<Cycles> {
        let mut stall = Cycles::ZERO;
        // The retry budget is per faulting address: one plan pass may
        // legitimately fault on many *distinct* pages in sequence (each
        // page-in lets the pre-pass read further), so the counter resets
        // whenever the faulting address makes progress.
        let mut attempts = 0u32;
        let mut last_fault = None;
        loop {
            match kernel.plan_tile(tile, &TileCtx::new(mem, iommu, device_id)) {
                Ok(()) => return Ok(stall),
                Err(fault @ Error::IoPageFault { iova, is_write }) => {
                    let recoverable = iommu.demand_paging() && pri.is_some();
                    if last_fault != Some(iova) {
                        attempts = 0;
                        last_fault = Some(iova);
                    }
                    attempts += 1;
                    if !recoverable || attempts > iommu.config().max_fault_retries {
                        if iommu.demand_paging() {
                            iommu.record_terminal_fault(device_id, iova, is_write);
                        }
                        return Err(fault);
                    }
                    let handler = pri.as_deref_mut().expect("recoverable implies handler");
                    let t = now + stall;
                    // One page per request: the pre-pass reads single
                    // elements (there is no "rest of the transfer" to
                    // prefetch, unlike the DMA fault path).
                    let (_, dropped) =
                        iommu.enqueue_page_requests(mem, device_id, iova, 1, is_write, t);
                    let mut resume = handler.service(mem, iommu, t)?;
                    if dropped > 0 {
                        resume += iommu.config().page_request_backoff;
                    }
                    resume = resume.max(t + Cycles::new(1));
                    stall += resume - t;
                }
                Err(other) => return Err(other),
            }
        }
    }
}

impl Default for ClusterExecutor {
    fn default() -> Self {
        Self::new(ClusterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::DmaRequest;
    use crate::kernel::TileIo;
    use sva_axi::addrmap::{DRAM_BASE, LLC_BYPASS_OFFSET};
    use sva_common::Iova;
    use sva_common::PhysAddr;
    use sva_iommu::IommuConfig;
    use sva_mem::MemSysConfig;

    /// A synthetic kernel that streams `tiles` tiles of `tile_bytes` each and
    /// spends a configurable number of compute cycles per tile, doubling
    /// every value it touches.
    struct StreamKernel {
        tiles: usize,
        tile_bytes: u64,
        compute_per_tile: Cycles,
        src: u64,
        dst: u64,
    }

    impl DeviceKernel for StreamKernel {
        fn name(&self) -> &str {
            "stream"
        }

        fn num_tiles(&self) -> usize {
            self.tiles
        }

        fn tile_io(&self, tile: usize) -> TileIo {
            let buf = (tile % 2) as u64 * self.tile_bytes;
            let off = tile as u64 * self.tile_bytes;
            TileIo {
                inputs: vec![DmaRequest::input(
                    Iova::new(self.src + off),
                    buf,
                    self.tile_bytes,
                )],
                outputs: vec![DmaRequest::output(
                    Iova::new(self.dst + off),
                    buf,
                    self.tile_bytes,
                )],
            }
        }

        fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
            let buf = (tile % 2) as u64 * self.tile_bytes;
            for i in 0..self.tile_bytes / 4 {
                let v = tcdm.read_f32(buf + i * 4);
                tcdm.write_f32(buf + i * 4, v * 2.0);
            }
            Ok(self.compute_per_tile)
        }
    }

    fn setup(latency: u64) -> (MemorySystem, Iommu) {
        let mem = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            ..MemSysConfig::default()
        });
        let iommu = Iommu::new(IommuConfig::disabled());
        (mem, iommu)
    }

    fn bypass(offset: u64) -> u64 {
        DRAM_BASE + LLC_BYPASS_OFFSET + offset
    }

    #[test]
    fn kernel_computes_correct_results() {
        let (mut mem, mut iommu) = setup(200);
        let n_f32 = 4096usize;
        let src_vals: Vec<f32> = (0..n_f32).map(|i| i as f32).collect();
        let bytes: Vec<u8> = src_vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        mem.write_phys(PhysAddr::new(DRAM_BASE + 0x10_0000), &bytes)
            .unwrap();

        let mut kernel = StreamKernel {
            tiles: 8,
            tile_bytes: (n_f32 * 4 / 8) as u64,
            compute_per_tile: Cycles::new(500),
            src: bypass(0x10_0000),
            dst: bypass(0x20_0000),
        };
        let mut exec = ClusterExecutor::default();
        let stats = exec.run(&mut mem, &mut iommu, &mut kernel).unwrap();

        let mut out = vec![0u8; bytes.len()];
        mem.read_phys(PhysAddr::new(DRAM_BASE + 0x20_0000), &mut out)
            .unwrap();
        for (i, chunk) in out.chunks_exact(4).enumerate() {
            let v = f32::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(v, 2.0 * i as f32, "element {i}");
        }
        assert_eq!(stats.tiles, 8);
        assert_eq!(stats.compute, Cycles::new(4000));
        assert!(stats.total > stats.compute);
        assert_eq!(stats.dma.bytes, 2 * bytes.len() as u64);
    }

    #[test]
    fn compute_bound_kernel_hides_dma() {
        let (mut mem, mut iommu) = setup(200);
        let mut kernel = StreamKernel {
            tiles: 16,
            tile_bytes: 2048,
            compute_per_tile: Cycles::new(20_000),
            src: bypass(0),
            dst: bypass(0x100_0000),
        };
        let mut exec = ClusterExecutor::default();
        let stats = exec.run(&mut mem, &mut iommu, &mut kernel).unwrap();
        assert!(
            stats.dma_fraction() < 0.05,
            "compute-bound kernel should hide DMA, got {:.1}%",
            stats.dma_fraction() * 100.0
        );
    }

    #[test]
    fn memory_bound_kernel_waits_for_dma() {
        let (mut mem, mut iommu) = setup(1000);
        let mut kernel = StreamKernel {
            tiles: 16,
            tile_bytes: 8192,
            compute_per_tile: Cycles::new(100),
            src: bypass(0),
            dst: bypass(0x100_0000),
        };
        let mut exec = ClusterExecutor::default();
        let stats = exec.run(&mut mem, &mut iommu, &mut kernel).unwrap();
        assert!(
            stats.dma_fraction() > 0.5,
            "memory-bound kernel should be dominated by DMA, got {:.1}%",
            stats.dma_fraction() * 100.0
        );
    }

    #[test]
    fn dma_wait_grows_with_memory_latency() {
        let run = |latency| {
            let (mut mem, mut iommu) = setup(latency);
            let mut kernel = StreamKernel {
                tiles: 8,
                tile_bytes: 8192,
                compute_per_tile: Cycles::new(2_000),
                src: bypass(0),
                dst: bypass(0x100_0000),
            };
            let mut exec = ClusterExecutor::default();
            exec.run(&mut mem, &mut iommu, &mut kernel).unwrap()
        };
        let fast = run(200);
        let slow = run(1000);
        assert!(slow.dma_wait > fast.dma_wait);
        assert!(slow.total > fast.total);
        assert_eq!(slow.compute, fast.compute);
    }

    #[test]
    fn double_buffering_beats_single_buffering() {
        let run = |double_buffer| {
            let (mut mem, mut iommu) = setup(600);
            let mut kernel = StreamKernel {
                tiles: 16,
                tile_bytes: 4096,
                compute_per_tile: Cycles::new(3_000),
                src: bypass(0),
                dst: bypass(0x100_0000),
            };
            let mut exec = ClusterExecutor::new(ClusterConfig {
                double_buffer,
                ..ClusterConfig::default()
            });
            exec.run(&mut mem, &mut iommu, &mut kernel).unwrap()
        };
        let double = run(true);
        let single = run(false);
        assert!(
            double.total < single.total,
            "double buffering ({}) should beat single buffering ({})",
            double.total,
            single.total
        );
    }

    #[test]
    fn empty_kernel_returns_zero_stats() {
        let (mut mem, mut iommu) = setup(200);
        struct Empty;
        impl DeviceKernel for Empty {
            fn name(&self) -> &str {
                "empty"
            }
            fn num_tiles(&self) -> usize {
                0
            }
            fn tile_io(&self, _tile: usize) -> TileIo {
                TileIo::new()
            }
            fn compute_tile(&mut self, _tile: usize, _tcdm: &mut Tcdm) -> Result<Cycles> {
                Ok(Cycles::ZERO)
            }
        }
        let mut exec = ClusterExecutor::default();
        let stats = exec.run(&mut mem, &mut iommu, &mut Empty).unwrap();
        assert_eq!(stats.total, Cycles::ZERO);
        assert_eq!(stats.tiles, 0);
    }

    /// A kernel whose transfer ranges are data-dependent: `plan_tile` reads
    /// a per-tile offset table from external memory *before* that tile's
    /// first DMA touch — the sort kernel's merge-path shape, historically
    /// documented as incompatible with cold-start demand paging because the
    /// untimed plan read hit an unmapped page.
    struct PlanPeekKernel {
        tiles: usize,
        tile_bytes: u64,
        table: Iova,
        src: Iova,
        dst: Iova,
        planned: Vec<u64>,
    }

    impl DeviceKernel for PlanPeekKernel {
        fn name(&self) -> &str {
            "plan-peek"
        }

        fn num_tiles(&self) -> usize {
            self.tiles
        }

        fn plan_tile(&mut self, tile: usize, ctx: &TileCtx<'_>) -> Result<()> {
            // One descriptor per tile, a page apart, so under cold-start
            // demand paging every plan read touches an unmapped page first.
            let chunk = ctx.read_f32(self.table + tile as u64 * sva_common::PAGE_SIZE)? as u64;
            if self.planned.len() == tile {
                self.planned.push(chunk * self.tile_bytes);
            }
            Ok(())
        }

        fn tile_io(&self, tile: usize) -> TileIo {
            let off = self.planned[tile];
            let buf = (tile % 2) as u64 * self.tile_bytes;
            TileIo {
                inputs: vec![DmaRequest::input(self.src + off, buf, self.tile_bytes)],
                outputs: vec![DmaRequest::output(self.dst + off, buf, self.tile_bytes)],
            }
        }

        fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
            let buf = (tile % 2) as u64 * self.tile_bytes;
            for i in 0..self.tile_bytes / 4 {
                let v = tcdm.read_f32(buf + i * 4);
                tcdm.write_f32(buf + i * 4, v * 2.0);
            }
            Ok(Cycles::new(100))
        }
    }

    /// Builds a cold-start demand-paging scene for [`PlanPeekKernel`]: a
    /// reversed per-tile offset table plus source data, none of it
    /// device-mapped.
    fn plan_peek_scene(
        tiles: usize,
        tile_bytes: u64,
    ) -> (
        MemorySystem,
        sva_vm::FrameAllocator,
        sva_vm::AddressSpace,
        sva_host::IommuDriver,
        Iommu,
        PlanPeekKernel,
    ) {
        use sva_common::PAGE_SIZE;
        use sva_iommu::IommuConfig;
        use sva_vm::{AddressSpace, FrameAllocator};

        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();

        let table_va = space
            .alloc_buffer(&mut mem, &mut frames, tiles as u64 * PAGE_SIZE)
            .unwrap();
        for t in 0..tiles {
            // Reversed chunk order: the partitions genuinely depend on the
            // table contents.
            let chunk = (tiles - 1 - t) as f32;
            space
                .write_virt(
                    &mut mem,
                    table_va + t as u64 * PAGE_SIZE,
                    &chunk.to_le_bytes(),
                )
                .unwrap();
        }
        let len = tiles as u64 * tile_bytes;
        let src_va = space.alloc_buffer(&mut mem, &mut frames, len).unwrap();
        let data: Vec<u8> = (0..len / 4)
            .flat_map(|i| (i as f32).to_le_bytes())
            .collect();
        space.write_virt(&mut mem, src_va, &data).unwrap();
        let dst_va = space.alloc_buffer(&mut mem, &mut frames, len).unwrap();

        let mut iommu = Iommu::new(IommuConfig {
            demand_paging: true,
            tlb_hierarchy: Some(sva_iommu::TlbHierarchyConfig::default()),
            ..IommuConfig::default()
        });
        let mut cpu = sva_host::HostCpu::default();
        let mut driver = sva_host::IommuDriver::default();
        driver
            .attach(&mut cpu, &mut mem, &mut iommu, &mut frames, space.pscid())
            .unwrap();

        let kernel = PlanPeekKernel {
            tiles,
            tile_bytes,
            table: Iova::from_virt(table_va),
            src: Iova::from_virt(src_va),
            dst: Iova::from_virt(dst_va),
            planned: Vec::new(),
        };
        (mem, frames, space, driver, iommu, kernel)
    }

    /// Regression: a data-dependent plan pass pages its reads in through
    /// the ATS/PRI handler under cold-start demand paging and the run
    /// completes with correct, partition-faithful results.
    #[test]
    fn plan_pass_pages_its_reads_in_under_demand_paging() {
        use sva_host::FaultServicer;

        let tiles = 4usize;
        let tile_bytes = sva_common::PAGE_SIZE;
        let (mut mem, mut frames, space, mut driver, mut iommu, mut kernel) =
            plan_peek_scene(tiles, tile_bytes);

        let mut exec = ClusterExecutor::default();
        let mut servicer = FaultServicer::new(&mut driver, &space, &mut frames);
        let stats = exec
            .run_with_pri(&mut mem, &mut iommu, &mut kernel, Some(&mut servicer))
            .unwrap();

        assert_eq!(
            kernel.planned,
            (0..tiles)
                .map(|t| (tiles - 1 - t) as u64 * tile_bytes)
                .collect::<Vec<_>>(),
            "partitions must follow the (cold) table contents"
        );
        // Every chunk doubled in place: the reversed partition order left
        // the data layout identity, so dst[i] == 2 * src[i].
        let len = tiles as u64 * tile_bytes;
        let mut out = vec![0u8; len as usize];
        space
            .read_virt(&mem, sva_common::VirtAddr::from_iova(kernel.dst), &mut out)
            .unwrap();
        for (i, chunk) in out.chunks_exact(4).enumerate() {
            let v = f32::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(v, 2.0 * i as f32, "element {i}");
        }
        // The plan-pass faults were serviced (table pages) on top of the
        // DMA faults (src/dst pages), and the stalls landed on the clock.
        let serviced = iommu.stats().page_requests.serviced;
        assert!(
            serviced >= 3 * tiles as u64,
            "table + src + dst pages all fault in, got {serviced}"
        );
        assert!(stats.dma_wait > Cycles::ZERO);
    }

    /// Without a PRI handler the cold plan read stays a terminal fault —
    /// a descriptive error plus a fault record, never a wrong partition.
    #[test]
    fn plan_pass_fault_is_terminal_without_handler() {
        let (mut mem, _frames, _space, _driver, mut iommu, mut kernel) =
            plan_peek_scene(4, sva_common::PAGE_SIZE);

        let mut exec = ClusterExecutor::default();
        let err = exec.run(&mut mem, &mut iommu, &mut kernel);
        assert!(matches!(err, Err(Error::IoPageFault { .. })));
        let fault = iommu.pop_fault().expect("terminal fault recorded");
        assert_eq!(fault.iova, kernel.table, "tile 0's plan read faulted");
        assert!(kernel.planned.is_empty(), "no partition was fabricated");
    }
}
