//! The double-buffered kernel executor.
//!
//! The executor plays the role of the cluster's runtime: it walks the
//! kernel's tiles, keeps the DMA engine working one tile ahead of the compute
//! cores (double buffering), and accounts time in two regions exactly as the
//! paper does:
//!
//! * **DMA wait** — cycles the compute cores spend stalled because the data
//!   they need has not arrived (or final results are still draining);
//! * **compute** — cycles spent executing the tile on the PEs.
//!
//! With double buffering and a compute-bound kernel the DMA-wait region tends
//! to zero even when megabytes are transferred; with the IOMMU enabled and no
//! LLC, translation stalls eat into the overlap and the DMA-wait region grows
//! — that difference is Table II.

use serde::{Deserialize, Serialize};
use sva_common::{Cycles, GlobalClock, Result};
use sva_iommu::{Iommu, PageRequestHandler};
use sva_mem::MemorySystem;

use crate::dma::{DmaConfig, DmaEngine, DmaStats};
use crate::kernel::{DeviceKernel, TileCtx};
use crate::pe::ClusterGeometry;
use crate::tcdm::Tcdm;

/// Configuration of the cluster executor.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Cluster geometry (PE count, TCDM size).
    pub geometry: ClusterGeometry,
    /// DMA engine configuration.
    pub dma: DmaConfig,
    /// Whether tile transfers are overlapped with compute (double buffering).
    /// Disabling it is an ablation; all paper experiments have it on.
    pub double_buffer: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            geometry: ClusterGeometry::default(),
            dma: DmaConfig::default(),
            double_buffer: true,
        }
    }
}

/// Timing breakdown of one kernel run on the cluster.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelRunStats {
    /// Total runtime of the kernel on the device.
    pub total: Cycles,
    /// Cycles the compute cores spent waiting for DMA transfers.
    pub dma_wait: Cycles,
    /// Cycles spent computing tiles.
    pub compute: Cycles,
    /// Number of tiles executed.
    pub tiles: u64,
    /// DMA engine statistics for this run.
    pub dma: DmaStats,
}

impl KernelRunStats {
    /// Fraction of the runtime spent waiting for DMA (the "% DMA" rows of
    /// Table II).
    pub fn dma_fraction(&self) -> f64 {
        self.dma_wait.fraction_of(self.total)
    }

    /// Merges the per-shard breakdowns of one kernel run sharded across
    /// parallel clusters: the wall-clock `total` is the slowest shard, while
    /// compute, DMA-wait, tile and DMA-engine counters aggregate across
    /// shards. With a single shard this is the identity.
    pub fn merge_parallel(shards: &[KernelRunStats]) -> KernelRunStats {
        let mut merged = KernelRunStats::default();
        for s in shards {
            merged.total = merged.total.max(s.total);
            merged.dma_wait += s.dma_wait;
            merged.compute += s.compute;
            merged.tiles += s.tiles;
            merged.dma.requests += s.dma.requests;
            merged.dma.bursts += s.dma.bursts;
            merged.dma.bytes += s.dma.bytes;
            merged.dma.translations += s.dma.translations;
            merged.dma.translation_cycles += s.dma.translation_cycles;
            merged.dma.issue_stall_cycles += s.dma.issue_stall_cycles;
            merged.dma.page_faults += s.dma.page_faults;
            merged.dma.fault_stall_cycles += s.dma.fault_stall_cycles;
            merged.dma.busy_cycles += s.dma.busy_cycles;
        }
        merged
    }
}

/// The cluster executor: TCDM + DMA engine + run loop.
#[derive(Debug)]
pub struct ClusterExecutor {
    config: ClusterConfig,
    tcdm: Tcdm,
    dma: DmaEngine,
    /// The cluster's local cursor on the shared virtual timeline. Every
    /// shard of an offload restarts its cursor at zero when a run begins —
    /// shards execute concurrently in simulated time even though they are
    /// simulated sequentially — so each executor keeps its own
    /// [`GlobalClock`] instance rather than sharing the platform's.
    clock: GlobalClock,
}

impl Clone for ClusterExecutor {
    /// Clones get their own time cursor ([`GlobalClock`] handles share
    /// their counter, and a cursor must belong to exactly one executor);
    /// the cursor is restarted at every run, so no reading is carried over.
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            tcdm: self.tcdm.clone(),
            dma: self.dma.clone(),
            clock: GlobalClock::new(),
        }
    }
}

impl ClusterExecutor {
    /// Creates an executor with the given configuration.
    pub fn new(config: ClusterConfig) -> Self {
        Self {
            tcdm: Tcdm::new(config.geometry.tcdm_bytes),
            dma: DmaEngine::new(config.dma),
            clock: GlobalClock::new(),
            config,
        }
    }

    /// The executor configuration.
    pub const fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cluster's TCDM (e.g. to pre-load lookup tables in tests).
    pub fn tcdm_mut(&mut self) -> &mut Tcdm {
        &mut self.tcdm
    }

    /// Runs a kernel to completion and returns its timing breakdown.
    ///
    /// # Errors
    ///
    /// Propagates IOMMU faults and TCDM/memory range errors.
    pub fn run(
        &mut self,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        kernel: &mut dyn DeviceKernel,
    ) -> Result<KernelRunStats> {
        self.run_with_pri(mem, iommu, kernel, None)
    }

    /// [`ClusterExecutor::run`] with an optional ATS/PRI page-request
    /// handler: every DMA batch of the tile loop can recover from IO page
    /// faults through the handler's stall-and-retry loop (demand paging).
    ///
    /// # Errors
    ///
    /// Propagates unrecoverable IOMMU faults and TCDM/memory range errors.
    pub fn run_with_pri(
        &mut self,
        mem: &mut MemorySystem,
        iommu: &mut Iommu,
        kernel: &mut dyn DeviceKernel,
        mut pri: Option<&mut (dyn PageRequestHandler + '_)>,
    ) -> Result<KernelRunStats> {
        self.dma.reset_stats();
        let n = kernel.num_tiles();
        let mut stats = KernelRunStats {
            tiles: n as u64,
            ..KernelRunStats::default()
        };
        if n == 0 {
            // Empty shard (static block scheduling can hand a cluster zero
            // tiles): snapshot the engine accounting like the normal exit
            // path does, so both exits report the same way.
            stats.dma = *self.dma.stats();
            return Ok(stats);
        }

        // The cluster's cursor on the shared virtual timeline: every shard
        // restarts at zero (shards of one offload run concurrently in
        // simulated time).
        self.clock.restart();
        let device_id = self.config.dma.device_id;
        // Completion time of the input transfers of each tile.
        let mut input_ready: Vec<Option<Cycles>> = vec![None; n];

        // Prefetch the first tile. `dma_free` tracks the completion time of
        // the most recently issued DMA batch; the engine processes batches in
        // issue order. Each tile is planned (address-generation pre-pass on
        // shared functional memory) before its descriptors are first read.
        kernel.plan_tile(0, &TileCtx::new(mem, iommu, device_id))?;
        let first_io = kernel.tile_io(0);
        let mut dma_free = self.dma.execute_with_pri(
            mem,
            iommu,
            &mut self.tcdm,
            &first_io.inputs,
            self.clock.now(),
            pri.as_deref_mut(),
        )?;
        input_ready[0] = Some(dma_free);

        for tile in 0..n {
            // Wait for this tile's inputs.
            let ready = input_ready[tile].expect("inputs of the current tile were issued");
            if ready > self.clock.now() {
                stats.dma_wait += ready - self.clock.now();
                self.clock.advance_to(ready);
            }

            // Kick off the next tile's inputs so they overlap with compute.
            if self.config.double_buffer && tile + 1 < n {
                kernel.plan_tile(tile + 1, &TileCtx::new(mem, iommu, device_id))?;
                let next_io = kernel.tile_io(tile + 1);
                dma_free = self.dma.execute_with_pri(
                    mem,
                    iommu,
                    &mut self.tcdm,
                    &next_io.inputs,
                    self.clock.now().max(dma_free),
                    pri.as_deref_mut(),
                )?;
                input_ready[tile + 1] = Some(dma_free);
            }

            // Compute the tile.
            let compute = kernel.compute_tile(tile, &mut self.tcdm)?;
            stats.compute += compute;
            self.clock.advance(compute);

            // Write back this tile's outputs (overlaps with the next tile's
            // compute when double buffering).
            let io = kernel.tile_io(tile);
            dma_free = self.dma.execute_with_pri(
                mem,
                iommu,
                &mut self.tcdm,
                &io.outputs,
                self.clock.now().max(dma_free),
                pri.as_deref_mut(),
            )?;

            if !self.config.double_buffer {
                // Single-buffered ablation: wait for the write-back before
                // reusing the buffers, and only then fetch the next tile.
                if dma_free > self.clock.now() {
                    stats.dma_wait += dma_free - self.clock.now();
                    self.clock.advance_to(dma_free);
                }
                if tile + 1 < n {
                    kernel.plan_tile(tile + 1, &TileCtx::new(mem, iommu, device_id))?;
                    let next_io = kernel.tile_io(tile + 1);
                    dma_free = self.dma.execute_with_pri(
                        mem,
                        iommu,
                        &mut self.tcdm,
                        &next_io.inputs,
                        self.clock.now().max(dma_free),
                        pri.as_deref_mut(),
                    )?;
                    input_ready[tile + 1] = Some(dma_free);
                }
            }
        }

        // Drain the final write-backs.
        if dma_free > self.clock.now() {
            stats.dma_wait += dma_free - self.clock.now();
            self.clock.advance_to(dma_free);
        }

        stats.total = self.clock.now();
        stats.dma = *self.dma.stats();
        Ok(stats)
    }
}

impl Default for ClusterExecutor {
    fn default() -> Self {
        Self::new(ClusterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dma::DmaRequest;
    use crate::kernel::TileIo;
    use sva_axi::addrmap::{DRAM_BASE, LLC_BYPASS_OFFSET};
    use sva_common::Iova;
    use sva_common::PhysAddr;
    use sva_iommu::IommuConfig;
    use sva_mem::MemSysConfig;

    /// A synthetic kernel that streams `tiles` tiles of `tile_bytes` each and
    /// spends a configurable number of compute cycles per tile, doubling
    /// every value it touches.
    struct StreamKernel {
        tiles: usize,
        tile_bytes: u64,
        compute_per_tile: Cycles,
        src: u64,
        dst: u64,
    }

    impl DeviceKernel for StreamKernel {
        fn name(&self) -> &str {
            "stream"
        }

        fn num_tiles(&self) -> usize {
            self.tiles
        }

        fn tile_io(&self, tile: usize) -> TileIo {
            let buf = (tile % 2) as u64 * self.tile_bytes;
            let off = tile as u64 * self.tile_bytes;
            TileIo {
                inputs: vec![DmaRequest::input(
                    Iova::new(self.src + off),
                    buf,
                    self.tile_bytes,
                )],
                outputs: vec![DmaRequest::output(
                    Iova::new(self.dst + off),
                    buf,
                    self.tile_bytes,
                )],
            }
        }

        fn compute_tile(&mut self, tile: usize, tcdm: &mut Tcdm) -> Result<Cycles> {
            let buf = (tile % 2) as u64 * self.tile_bytes;
            for i in 0..self.tile_bytes / 4 {
                let v = tcdm.read_f32(buf + i * 4);
                tcdm.write_f32(buf + i * 4, v * 2.0);
            }
            Ok(self.compute_per_tile)
        }
    }

    fn setup(latency: u64) -> (MemorySystem, Iommu) {
        let mem = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            ..MemSysConfig::default()
        });
        let iommu = Iommu::new(IommuConfig::disabled());
        (mem, iommu)
    }

    fn bypass(offset: u64) -> u64 {
        DRAM_BASE + LLC_BYPASS_OFFSET + offset
    }

    #[test]
    fn kernel_computes_correct_results() {
        let (mut mem, mut iommu) = setup(200);
        let n_f32 = 4096usize;
        let src_vals: Vec<f32> = (0..n_f32).map(|i| i as f32).collect();
        let bytes: Vec<u8> = src_vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        mem.write_phys(PhysAddr::new(DRAM_BASE + 0x10_0000), &bytes)
            .unwrap();

        let mut kernel = StreamKernel {
            tiles: 8,
            tile_bytes: (n_f32 * 4 / 8) as u64,
            compute_per_tile: Cycles::new(500),
            src: bypass(0x10_0000),
            dst: bypass(0x20_0000),
        };
        let mut exec = ClusterExecutor::default();
        let stats = exec.run(&mut mem, &mut iommu, &mut kernel).unwrap();

        let mut out = vec![0u8; bytes.len()];
        mem.read_phys(PhysAddr::new(DRAM_BASE + 0x20_0000), &mut out)
            .unwrap();
        for (i, chunk) in out.chunks_exact(4).enumerate() {
            let v = f32::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(v, 2.0 * i as f32, "element {i}");
        }
        assert_eq!(stats.tiles, 8);
        assert_eq!(stats.compute, Cycles::new(4000));
        assert!(stats.total > stats.compute);
        assert_eq!(stats.dma.bytes, 2 * bytes.len() as u64);
    }

    #[test]
    fn compute_bound_kernel_hides_dma() {
        let (mut mem, mut iommu) = setup(200);
        let mut kernel = StreamKernel {
            tiles: 16,
            tile_bytes: 2048,
            compute_per_tile: Cycles::new(20_000),
            src: bypass(0),
            dst: bypass(0x100_0000),
        };
        let mut exec = ClusterExecutor::default();
        let stats = exec.run(&mut mem, &mut iommu, &mut kernel).unwrap();
        assert!(
            stats.dma_fraction() < 0.05,
            "compute-bound kernel should hide DMA, got {:.1}%",
            stats.dma_fraction() * 100.0
        );
    }

    #[test]
    fn memory_bound_kernel_waits_for_dma() {
        let (mut mem, mut iommu) = setup(1000);
        let mut kernel = StreamKernel {
            tiles: 16,
            tile_bytes: 8192,
            compute_per_tile: Cycles::new(100),
            src: bypass(0),
            dst: bypass(0x100_0000),
        };
        let mut exec = ClusterExecutor::default();
        let stats = exec.run(&mut mem, &mut iommu, &mut kernel).unwrap();
        assert!(
            stats.dma_fraction() > 0.5,
            "memory-bound kernel should be dominated by DMA, got {:.1}%",
            stats.dma_fraction() * 100.0
        );
    }

    #[test]
    fn dma_wait_grows_with_memory_latency() {
        let run = |latency| {
            let (mut mem, mut iommu) = setup(latency);
            let mut kernel = StreamKernel {
                tiles: 8,
                tile_bytes: 8192,
                compute_per_tile: Cycles::new(2_000),
                src: bypass(0),
                dst: bypass(0x100_0000),
            };
            let mut exec = ClusterExecutor::default();
            exec.run(&mut mem, &mut iommu, &mut kernel).unwrap()
        };
        let fast = run(200);
        let slow = run(1000);
        assert!(slow.dma_wait > fast.dma_wait);
        assert!(slow.total > fast.total);
        assert_eq!(slow.compute, fast.compute);
    }

    #[test]
    fn double_buffering_beats_single_buffering() {
        let run = |double_buffer| {
            let (mut mem, mut iommu) = setup(600);
            let mut kernel = StreamKernel {
                tiles: 16,
                tile_bytes: 4096,
                compute_per_tile: Cycles::new(3_000),
                src: bypass(0),
                dst: bypass(0x100_0000),
            };
            let mut exec = ClusterExecutor::new(ClusterConfig {
                double_buffer,
                ..ClusterConfig::default()
            });
            exec.run(&mut mem, &mut iommu, &mut kernel).unwrap()
        };
        let double = run(true);
        let single = run(false);
        assert!(
            double.total < single.total,
            "double buffering ({}) should beat single buffering ({})",
            double.total,
            single.total
        );
    }

    #[test]
    fn empty_kernel_returns_zero_stats() {
        let (mut mem, mut iommu) = setup(200);
        struct Empty;
        impl DeviceKernel for Empty {
            fn name(&self) -> &str {
                "empty"
            }
            fn num_tiles(&self) -> usize {
                0
            }
            fn tile_io(&self, _tile: usize) -> TileIo {
                TileIo::new()
            }
            fn compute_tile(&mut self, _tile: usize, _tcdm: &mut Tcdm) -> Result<Cycles> {
                Ok(Cycles::ZERO)
            }
        }
        let mut exec = ClusterExecutor::default();
        let stats = exec.run(&mut mem, &mut iommu, &mut Empty).unwrap();
        assert_eq!(stats.total, Cycles::ZERO);
        assert_eq!(stats.tiles, 0);
    }
}
