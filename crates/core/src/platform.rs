//! The assembled prototype platform (Figure 1 of the paper).

use sva_cluster::ClusterExecutor;
use sva_common::rng::DeterministicRng;
use sva_common::Result;
use sva_host::{CopyEngine, HostCpu, IommuDriver};
use sva_iommu::Iommu;
use sva_mem::MemorySystem;
use sva_vm::{AddressSpace, FrameAllocator};

use crate::config::PlatformConfig;

/// The full SoC: host subsystem, IOMMU, accelerator cluster, memory system
/// and the software state (process address space, driver, allocators).
#[derive(Clone, Debug)]
pub struct Platform {
    config: PlatformConfig,
    /// The shared memory system (LLC, DRAM, delayer, L2 SPM).
    pub mem: MemorySystem,
    /// The CVA6 host core.
    pub cpu: HostCpu,
    /// The RISC-V IOMMU (disabled/translating depending on the variant).
    pub iommu: Iommu,
    /// The Snitch cluster executor.
    pub cluster: ClusterExecutor,
    /// The user process running the heterogeneous application.
    pub space: AddressSpace,
    /// Frame allocator for Linux-managed memory (user pages, page tables).
    pub frames: FrameAllocator,
    /// Frame allocator for the reserved physically contiguous DMA area.
    pub reserved: FrameAllocator,
    /// The IOMMU driver (kernel module + userspace library model).
    pub driver: IommuDriver,
    /// The host copy engine used by copy-based offloading.
    pub copy: CopyEngine,
    /// Deterministic random source for workload initialisation.
    pub rng: DeterministicRng,
}

impl Platform {
    /// Builds and boots a platform: constructs the memory system, creates the
    /// user process, and — when the variant has an IOMMU — attaches the
    /// accelerator to a fresh IOMMU domain through the driver.
    ///
    /// # Errors
    ///
    /// Returns allocation failures while setting up the address space or the
    /// IOMMU structures.
    pub fn new(config: PlatformConfig) -> Result<Self> {
        let mut mem = MemorySystem::new(config.mem);
        mem.set_interference(config.interference.to_config(config.seed ^ 0xA11CE));

        let mut cpu = HostCpu::new(config.cpu);
        let mut iommu = Iommu::new(config.iommu);
        let cluster = ClusterExecutor::new(config.cluster);
        let mut frames = FrameAllocator::linux_pool();
        let reserved = FrameAllocator::reserved_pool();
        let space = AddressSpace::new(&mut mem, &mut frames)?;
        let mut driver = IommuDriver::new(config.driver);

        if iommu.is_translating() {
            driver.attach(&mut cpu, &mut mem, &mut iommu, &mut frames, space.pscid())?;
            // The instruction-fetch path of the cluster uses a second device
            // ID with a bypassed device context (Section III-B).
            iommu.attach_bypass_device(&mut mem, &mut frames, config.driver.device_id + 1)?;
        }

        Ok(Self {
            rng: DeterministicRng::new(config.seed),
            config,
            mem,
            cpu,
            iommu,
            cluster,
            space,
            frames,
            reserved,
            driver,
            copy: CopyEngine::new(),
        })
    }

    /// The configuration this platform was built from.
    pub const fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Convenience: the DRAM latency knob of this instance.
    pub fn dram_latency(&self) -> u64 {
        self.config.dram_latency.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SocVariant;

    #[test]
    fn all_variants_boot() {
        for variant in SocVariant::ALL {
            let config = PlatformConfig::variant(variant, 600);
            let platform = Platform::new(config).unwrap();
            assert_eq!(platform.config().variant, variant);
            assert_eq!(platform.dram_latency(), 600);
            assert_eq!(platform.iommu.is_translating(), variant.has_iommu());
            assert_eq!(platform.mem.llc().is_some(), variant.has_llc());
        }
    }

    #[test]
    fn translating_platforms_have_an_attached_device() {
        let platform = Platform::new(PlatformConfig::iommu_with_llc(200)).unwrap();
        assert!(platform.iommu.ddt().is_some());
        assert!(platform.driver.io_table().is_some());
    }

    #[test]
    fn baseline_platform_has_no_device_directory() {
        let platform = Platform::new(PlatformConfig::baseline(200)).unwrap();
        assert!(platform.iommu.ddt().is_none());
    }
}
