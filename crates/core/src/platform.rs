//! The assembled prototype platform (Figure 1 of the paper), scaled to N
//! accelerator clusters.
//!
//! The paper's prototype instantiates one Snitch cluster behind the IOMMU.
//! [`Platform`] generalises that to `num_clusters` executors sharing the
//! IOMMU and the memory fabric: cluster `i` presents IOMMU device ID
//! `base + 2·i` for data traffic and `base + 2·i + 1` (a bypassed context)
//! for instruction fetches, all attached to the same process address space.
//! With `num_clusters == 1` the platform is exactly the paper's.

use sva_cluster::ClusterExecutor;
use sva_common::rng::DeterministicRng;
use sva_common::{GlobalClock, Result};
use sva_host::{CopyEngine, HostCpu, HostTrafficStream, IommuDriver};
use sva_iommu::Iommu;
use sva_mem::MemorySystem;
use sva_vm::{AddressSpace, FrameAllocator};

use crate::config::PlatformConfig;

/// The full SoC: host subsystem, IOMMU, accelerator clusters, memory system
/// and the software state (process address space, driver, allocators).
#[derive(Debug)]
pub struct Platform {
    config: PlatformConfig,
    /// The global simulation clock owned by the platform: shared with the
    /// memory system (which stamps otherwise-unstamped accesses with it)
    /// and the host CPU (which advances it as it executes). Cluster
    /// executors keep their own per-shard cursors — shards of one offload
    /// run concurrently in simulated time.
    pub clock: GlobalClock,
    /// The shared memory system (LLC, DRAM, delayer, L2 SPM).
    pub mem: MemorySystem,
    /// The CVA6 host core.
    pub cpu: HostCpu,
    /// The timed host-traffic stream injected into device measurement
    /// windows, when configured.
    pub host_traffic: Option<HostTrafficStream>,
    /// The RISC-V IOMMU (disabled/translating depending on the variant),
    /// shared by every cluster.
    pub iommu: Iommu,
    /// The Snitch cluster executors. Cluster `i`'s DMA engine presents
    /// device ID [`Platform::cluster_device_id`]`(i)`.
    pub clusters: Vec<ClusterExecutor>,
    /// The user process running the heterogeneous application.
    pub space: AddressSpace,
    /// Frame allocator for Linux-managed memory (user pages, page tables).
    pub frames: FrameAllocator,
    /// Frame allocator for the reserved physically contiguous DMA area.
    pub reserved: FrameAllocator,
    /// The IOMMU driver (kernel module + userspace library model).
    pub driver: IommuDriver,
    /// The host copy engine used by copy-based offloading.
    pub copy: CopyEngine,
    /// Deterministic random source for workload initialisation.
    pub rng: DeterministicRng,
}

impl Clone for Platform {
    /// A cloned platform is an **independent** simulation: because
    /// [`GlobalClock`] handles share their counter, a derived clone would
    /// leave both platforms advancing (and rewinding) each other's time.
    /// The manual impl fresh-wires a new clock seeded at the original's
    /// current reading and re-attaches it to the memory system and the
    /// host CPU.
    fn clone(&self) -> Self {
        let clock = GlobalClock::new();
        clock.advance_to(self.clock.now());
        let mut mem = self.mem.clone();
        mem.attach_clock(&clock);
        let mut cpu = self.cpu.clone();
        cpu.attach_clock(&clock);
        Self {
            config: self.config.clone(),
            clock,
            mem,
            cpu,
            host_traffic: self.host_traffic.clone(),
            iommu: self.iommu.clone(),
            clusters: self.clusters.clone(),
            space: self.space.clone(),
            frames: self.frames.clone(),
            reserved: self.reserved.clone(),
            driver: self.driver.clone(),
            copy: self.copy.clone(),
            rng: self.rng.clone(),
        }
    }
}

impl Platform {
    /// Builds and boots a platform: constructs the memory system, creates the
    /// user process, and — when the variant has an IOMMU — attaches every
    /// cluster to the process's IOMMU domain (cluster 0 through the driver,
    /// the paper's flow; further clusters directly against the same IO page
    /// table).
    ///
    /// # Errors
    ///
    /// Returns allocation failures while setting up the address space or the
    /// IOMMU structures.
    pub fn new(config: PlatformConfig) -> Result<Self> {
        let clock = GlobalClock::new();
        let mut mem = MemorySystem::new(config.mem.clone());
        mem.attach_clock(&clock);
        mem.set_interference(config.interference.to_config(config.seed ^ 0xA11CE));

        let mut cpu = HostCpu::new(config.cpu);
        cpu.attach_clock(&clock);
        let host_traffic = config.host_traffic.map(HostTrafficStream::new);
        let mut iommu = Iommu::new(config.iommu);
        let num_clusters = config.num_clusters.max(1);
        let clusters = (0..num_clusters)
            .map(|i| {
                let mut cluster_cfg = config.cluster;
                cluster_cfg.dma.device_id = config.driver.device_id + 2 * i as u32;
                cluster_cfg.dma.priority = config.cluster_priorities.get(i).copied().unwrap_or(0);
                ClusterExecutor::new(cluster_cfg)
            })
            .collect();
        let mut frames = FrameAllocator::linux_pool();
        let reserved = FrameAllocator::reserved_pool();
        let space = AddressSpace::new(&mut mem, &mut frames)?;
        let mut driver = IommuDriver::new(config.driver);

        if iommu.is_translating() {
            driver.attach(&mut cpu, &mut mem, &mut iommu, &mut frames, space.pscid())?;
            // The instruction-fetch path of each cluster uses a second device
            // ID with a bypassed device context (Section III-B).
            iommu.attach_bypass_device(&mut mem, &mut frames, config.driver.device_id + 1)?;
            // Clusters beyond the first share the IO page table the driver
            // built for cluster 0 — same process, same mappings.
            let root = driver.io_table().expect("driver attached").root();
            for i in 1..num_clusters {
                let data_id = config.driver.device_id + 2 * i as u32;
                iommu.attach_device(&mut mem, &mut frames, data_id, space.pscid(), root)?;
                iommu.attach_bypass_device(&mut mem, &mut frames, data_id + 1)?;
            }
        }

        Ok(Self {
            rng: DeterministicRng::new(config.seed),
            config,
            clock,
            mem,
            cpu,
            host_traffic,
            iommu,
            clusters,
            space,
            frames,
            reserved,
            driver,
            copy: CopyEngine::new(),
        })
    }

    /// The configuration this platform was built from.
    pub const fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Number of accelerator clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The first cluster executor (the paper's single cluster).
    pub fn cluster(&self) -> &ClusterExecutor {
        &self.clusters[0]
    }

    /// Mutable access to the first cluster executor.
    pub fn cluster_mut(&mut self) -> &mut ClusterExecutor {
        &mut self.clusters[0]
    }

    /// IOMMU device ID presented by cluster `index`'s DMA data traffic.
    pub fn cluster_device_id(&self, index: usize) -> u32 {
        self.config.driver.device_id + 2 * index as u32
    }

    /// Convenience: the DRAM latency knob of this instance.
    pub fn dram_latency(&self) -> u64 {
        self.config.dram_latency.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SocVariant;

    #[test]
    fn all_variants_boot() {
        for variant in SocVariant::ALL {
            let config = PlatformConfig::variant(variant, 600);
            let platform = Platform::new(config).unwrap();
            assert_eq!(platform.config().variant, variant);
            assert_eq!(platform.dram_latency(), 600);
            assert_eq!(platform.iommu.is_translating(), variant.has_iommu());
            assert_eq!(platform.mem.llc().is_some(), variant.has_llc());
        }
    }

    #[test]
    fn translating_platforms_have_an_attached_device() {
        let platform = Platform::new(PlatformConfig::iommu_with_llc(200)).unwrap();
        assert!(platform.iommu.ddt().is_some());
        assert!(platform.driver.io_table().is_some());
    }

    #[test]
    fn baseline_platform_has_no_device_directory() {
        let platform = Platform::new(PlatformConfig::baseline(200)).unwrap();
        assert!(platform.iommu.ddt().is_none());
    }

    #[test]
    fn default_platform_has_one_cluster() {
        let platform = Platform::new(PlatformConfig::iommu_with_llc(200)).unwrap();
        assert_eq!(platform.num_clusters(), 1);
        assert_eq!(platform.cluster_device_id(0), 1);
        assert_eq!(platform.iommu.attached_devices(), &[1, 2]);
    }

    #[test]
    fn multi_cluster_platform_attaches_every_device_pair() {
        let config = PlatformConfig::iommu_with_llc(200).with_clusters(4);
        let platform = Platform::new(config).unwrap();
        assert_eq!(platform.num_clusters(), 4);
        for i in 0..4 {
            assert_eq!(
                platform.clusters[i].config().dma.device_id,
                platform.cluster_device_id(i)
            );
        }
        // Data + instruction-fetch contexts for each cluster: 1..=8.
        assert_eq!(platform.iommu.attached_devices(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn multi_cluster_baseline_boots_without_iommu_state() {
        let config = PlatformConfig::baseline(200).with_clusters(3);
        let platform = Platform::new(config).unwrap();
        assert_eq!(platform.num_clusters(), 3);
        assert!(platform.iommu.ddt().is_none());
    }
}
