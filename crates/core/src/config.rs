//! Platform configurations.
//!
//! The evaluation compares three variants of the same SoC (Table II and
//! Figure 4):
//!
//! * **Baseline** — no IOMMU; the accelerator addresses the physically
//!   contiguous reserved DRAM directly (explicit copies are needed for
//!   offloading);
//! * **IOMMU** — the IOMMU translates device traffic, but the LLC is
//!   disabled, so page-table walks go to DRAM;
//! * **IOMMU + LLC** — the paper's proposal: the shared LLC caches host and
//!   page-table-walk traffic while device DMA bypasses it.
//!
//! All variants share the DRAM-latency knob (the AXI delayer) swept over
//! 200 / 600 / 1000 cycles.

use serde::{Deserialize, Serialize};
use sva_cluster::{ClusterConfig, DmaConfig};
use sva_common::{ArbitrationPolicy, Cycles, QueueDepths};
use sva_host::{DriverConfig, HostCpuConfig, HostTrafficConfig, InterferenceLevel};
use sva_iommu::{IommuConfig, IommuMode, TlbHierarchyConfig};
use sva_mem::{DramChannelConfig, LlcConfig, MemSysConfig};

/// The three platform variants of the evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SocVariant {
    /// No IOMMU (physical addressing, copy-based offload only).
    Baseline,
    /// IOMMU enabled, LLC disabled.
    Iommu,
    /// IOMMU enabled and the shared LLC caches host + PTW traffic.
    IommuLlc,
}

impl SocVariant {
    /// All variants, in the order of Table II.
    pub const ALL: [SocVariant; 3] = [
        SocVariant::Baseline,
        SocVariant::Iommu,
        SocVariant::IommuLlc,
    ];

    /// Label used in tables and figures.
    pub const fn label(self) -> &'static str {
        match self {
            SocVariant::Baseline => "Baseline",
            SocVariant::Iommu => "IOMMU",
            SocVariant::IommuLlc => "IOMMU+LLC",
        }
    }

    /// Whether the variant instantiates the IOMMU.
    pub const fn has_iommu(self) -> bool {
        !matches!(self, SocVariant::Baseline)
    }

    /// Whether the variant instantiates the LLC.
    pub const fn has_llc(self) -> bool {
        matches!(self, SocVariant::IommuLlc | SocVariant::Baseline)
    }
}

/// The DRAM-latency sweep used throughout the paper.
pub const PAPER_LATENCIES: [u64; 3] = [200, 600, 1000];

/// Full configuration of a platform instance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Which of the paper's variants this is.
    pub variant: SocVariant,
    /// Extra DRAM latency from the AXI delayer.
    pub dram_latency: Cycles,
    /// Memory-system details (LLC geometry, bypass policy, ...).
    pub mem: MemSysConfig,
    /// Host CPU details.
    pub cpu: HostCpuConfig,
    /// IOMMU details (IOTLB size etc.).
    pub iommu: IommuConfig,
    /// Cluster details (DMA outstanding transactions, double buffering).
    pub cluster: ClusterConfig,
    /// Driver cost model.
    pub driver: DriverConfig,
    /// Synthetic host interference while the device runs (Figure 5's
    /// statistical model; superseded by [`PlatformConfig::host_traffic`]
    /// for fabric sweeps).
    pub interference: InterferenceLevel,
    /// Timed host-traffic stream injected into device measurement windows
    /// (`None` = host idle). Setting it turns on the global-clock engine
    /// (`FabricConfig::timed_host_ptw`), so the stream's accesses reserve
    /// bus occupancy and host/PTW queueing is charged when fabric
    /// contention charging is enabled.
    pub host_traffic: Option<HostTrafficConfig>,
    /// Number of accelerator clusters sharing the IOMMU and memory fabric.
    /// The paper's prototype has one; offloads are sharded across clusters
    /// with static block scheduling when more are instantiated.
    pub num_clusters: usize,
    /// Fabric arbitration priority of each cluster's DMA engine (index =
    /// cluster; missing entries default to 0). Pair with
    /// [`ArbitrationPolicy::FixedPriority`] for strict ordering. Beware:
    /// under the default `RoundRobin` policy a non-zero priority takes the
    /// win-outright escape hatch — that cluster's bursts never queue, which
    /// disables contention modelling for it; under `Weighted` priorities
    /// are ignored.
    pub cluster_priorities: Vec<u8>,
    /// Seed for all stochastic components of a run.
    pub seed: u64,
}

impl PlatformConfig {
    /// Builds one of the paper's three variants at a given DRAM latency.
    pub fn variant(variant: SocVariant, dram_latency: u64) -> Self {
        let dram_latency = Cycles::new(dram_latency);
        let mem = MemSysConfig {
            dram_latency,
            llc_enabled: variant.has_llc(),
            llc: LlcConfig::cheshire_128k(),
            llc_serves_ptw: true,
            llc_serves_dma: false,
            ..MemSysConfig::default()
        };
        let iommu = IommuConfig {
            mode: if variant.has_iommu() {
                IommuMode::Translating
            } else {
                IommuMode::Disabled
            },
            iotlb_entries: 4,
            ..IommuConfig::default()
        };
        Self {
            variant,
            dram_latency,
            mem,
            cpu: HostCpuConfig::default(),
            iommu,
            cluster: ClusterConfig {
                dma: DmaConfig::default(),
                ..ClusterConfig::default()
            },
            driver: DriverConfig::default(),
            interference: InterferenceLevel::Idle,
            host_traffic: None,
            num_clusters: 1,
            cluster_priorities: Vec::new(),
            seed: 0x5EED,
        }
    }

    /// The paper's baseline platform (no IOMMU) at a given latency.
    pub fn baseline(dram_latency: u64) -> Self {
        Self::variant(SocVariant::Baseline, dram_latency)
    }

    /// IOMMU without LLC at a given latency.
    pub fn iommu_no_llc(dram_latency: u64) -> Self {
        Self::variant(SocVariant::Iommu, dram_latency)
    }

    /// IOMMU with the shared LLC at a given latency.
    pub fn iommu_with_llc(dram_latency: u64) -> Self {
        Self::variant(SocVariant::IommuLlc, dram_latency)
    }

    /// Returns a copy with a different IOTLB capacity (ablation).
    pub fn with_iotlb_entries(mut self, entries: usize) -> Self {
        self.iommu.iotlb_entries = entries;
        self
    }

    /// Returns a copy with a different number of outstanding DMA bursts
    /// (ablation).
    pub fn with_dma_outstanding(mut self, outstanding: usize) -> Self {
        self.cluster.dma.max_outstanding = outstanding;
        self
    }

    /// Returns a copy that routes device DMA through the LLC instead of the
    /// bypass (ablation of the paper's bypass argument).
    pub fn with_dma_through_llc(mut self) -> Self {
        self.mem.llc_serves_dma = true;
        self
    }

    /// Returns a copy with the given interference level (Figure 5).
    pub fn with_interference(mut self, level: InterferenceLevel) -> Self {
        self.interference = level;
        self
    }

    /// Returns a copy with double buffering disabled (ablation).
    pub fn with_single_buffering(mut self) -> Self {
        self.cluster.double_buffer = false;
        self
    }

    /// Returns a copy with `n` accelerator clusters sharing the IOMMU and
    /// the memory fabric (clamped to at least one).
    pub fn with_clusters(mut self, n: usize) -> Self {
        self.num_clusters = n.max(1);
        self
    }

    /// Returns a copy whose memory fabric *charges* the cross-initiator
    /// queueing it measures (contention becomes part of reported latencies).
    pub fn with_fabric_contention(mut self) -> Self {
        self.mem.fabric.contention_enabled = true;
        self
    }

    /// Returns a copy whose DRAM backend is split into `n` page-interleaved
    /// channels (clamped to at least one; `n = 1` is the paper's single
    /// shared data path).
    pub fn with_memory_channels(mut self, n: usize) -> Self {
        self.mem.fabric.channels = DramChannelConfig {
            num_channels: n.max(1),
            ..self.mem.fabric.channels
        };
        self
    }

    /// Returns a copy with a fully specified multi-channel DRAM geometry
    /// (channel count, rank folding, interleave granule).
    pub fn with_channel_config(mut self, channels: DramChannelConfig) -> Self {
        self.mem.fabric.channels = channels;
        self
    }

    /// Returns a copy using the given fabric arbitration policy.
    pub fn with_arbitration(mut self, policy: ArbitrationPolicy) -> Self {
        self.mem.fabric.policy = policy;
        self
    }

    /// Returns a copy whose DRAM channels carry **finite request/response
    /// queues** of the given depths (clamped to at least one slot each):
    /// the split-transaction fabric. A full request queue stalls initiator
    /// issue (credit-based backpressure, reported as
    /// `issue_stall_cycles`); a full response queue delays grants. The
    /// default `usize::MAX` depths are cycle-identical to the pure
    /// reservation model.
    pub fn with_channel_depths(mut self, req: usize, rsp: usize) -> Self {
        let depths = QueueDepths::bounded(req, rsp);
        self.mem.fabric.req_queue_depth = depths.req;
        self.mem.fabric.rsp_queue_depth = depths.rsp;
        self
    }

    /// Returns a copy with the given [`QueueDepths`] (including
    /// [`QueueDepths::UNBOUNDED`], the default reservation model).
    pub fn with_queue_depths(mut self, depths: QueueDepths) -> Self {
        self.mem.fabric.req_queue_depth = depths.req;
        self.mem.fabric.rsp_queue_depth = depths.rsp;
        self
    }

    /// Returns a copy giving cluster `i` the DMA arbitration priority
    /// `priorities[i]` (missing entries default to 0). Pair with
    /// [`ArbitrationPolicy::FixedPriority`] for strict QoS ordering.
    pub fn with_cluster_priorities(mut self, priorities: Vec<u8>) -> Self {
        self.cluster_priorities = priorities;
        self
    }

    /// Returns a copy with the global-clock engine on: host and PTW
    /// accesses reserve bus occupancy on the fabric timelines and their
    /// measured queueing is charged into latencies whenever fabric
    /// contention charging is also enabled.
    pub fn with_global_clock(mut self) -> Self {
        self.mem.fabric.timed_host_ptw = true;
        self
    }

    /// Returns a copy that injects a timed host-traffic stream into every
    /// device measurement window (and turns the global-clock engine on —
    /// untimed host traffic could not contend).
    pub fn with_host_traffic(mut self, traffic: HostTrafficConfig) -> Self {
        self.host_traffic = Some(traffic);
        self.mem.fabric.timed_host_ptw = true;
        self
    }

    /// Returns a copy with the IOMMU's MSHR-style batched page-table walker
    /// enabled: concurrent walks that need a PTE read already in flight
    /// coalesce onto it instead of issuing their own.
    pub fn with_ptw_batching(mut self) -> Self {
        self.iommu.ptw_batching = true;
        self
    }

    /// Returns a copy with the batched walker enabled and its walk table
    /// sized to `entries` in-flight PTE reads.
    pub fn with_ptw_mshr_entries(mut self, entries: usize) -> Self {
        self.iommu.ptw_batching = true;
        self.iommu.ptw_mshr_entries = entries.max(1);
        self
    }

    /// Returns a copy whose IOMMU runs the **two-level translation
    /// hierarchy**: a private L1 ATC per device in front of a shared L2
    /// IOTLB, each with its own organisation, replacement policy and
    /// lookup latency (charged into every translation). The default
    /// (`None`) is the paper prototype's single IOTLB, cycle-identical to
    /// the pre-hierarchy model.
    pub fn with_tlb_hierarchy(mut self, hierarchy: TlbHierarchyConfig) -> Self {
        self.iommu.tlb_hierarchy = Some(hierarchy);
        self
    }

    /// Returns a copy with the default two-level hierarchy (4-entry
    /// fully-associative ATC per device, 32-entry 8×4 shared L2, true
    /// LRU).
    pub fn with_default_tlb_hierarchy(self) -> Self {
        self.with_tlb_hierarchy(TlbHierarchyConfig::default())
    }

    /// Returns a copy with **ATS/PRI-style demand paging**: zero-copy
    /// offloads skip the driver's up-front `map_buffer` pass, every page
    /// the device touches faults on first access, the fault enqueues a
    /// page request on the IOMMU's bounded queue, and the host driver
    /// services it by mapping the page through the timed memory system
    /// while the faulting DMA engine stalls-and-retries. Fault service
    /// latency is surfaced through `OffloadReport::iommu`
    /// (`page_requests`, percentiles) and the DMA engines'
    /// `fault_stall_cycles`.
    ///
    /// Workloads whose tile planning peeks device-visible memory before
    /// the first DMA touch (the sort kernel's merge-path pre-pass) work
    /// too: the executor's plan pass pages its reads in through the same
    /// ATS/PRI stall-and-retry loop, so a cold probe faults, waits for the
    /// host to map the page, and re-reads instead of failing.
    pub fn with_demand_paging(mut self) -> Self {
        self.iommu.demand_paging = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_match_table2_configurations() {
        let base = PlatformConfig::baseline(600);
        assert!(!base.mem.llc_enabled || base.variant == SocVariant::Baseline);
        assert_eq!(base.iommu.mode, IommuMode::Disabled);
        assert!(
            base.mem.llc_enabled,
            "the baseline platform keeps its LLC for the host"
        );

        let no_llc = PlatformConfig::iommu_no_llc(600);
        assert_eq!(no_llc.iommu.mode, IommuMode::Translating);
        assert!(!no_llc.mem.llc_enabled);

        let with_llc = PlatformConfig::iommu_with_llc(600);
        assert_eq!(with_llc.iommu.mode, IommuMode::Translating);
        assert!(with_llc.mem.llc_enabled);
        assert!(
            !with_llc.mem.llc_serves_dma,
            "DMA must bypass the LLC by default"
        );
    }

    #[test]
    fn paper_iotlb_has_four_entries() {
        for v in SocVariant::ALL {
            assert_eq!(PlatformConfig::variant(v, 200).iommu.iotlb_entries, 4);
        }
    }

    #[test]
    fn ablation_builders() {
        let c = PlatformConfig::iommu_with_llc(200)
            .with_iotlb_entries(16)
            .with_dma_outstanding(8)
            .with_dma_through_llc()
            .with_single_buffering()
            .with_interference(InterferenceLevel::RandomTraffic);
        assert_eq!(c.iommu.iotlb_entries, 16);
        assert_eq!(c.cluster.dma.max_outstanding, 8);
        assert!(c.mem.llc_serves_dma);
        assert!(!c.cluster.double_buffer);
        assert_eq!(c.interference, InterferenceLevel::RandomTraffic);
    }

    #[test]
    fn labels_are_paper_labels() {
        assert_eq!(SocVariant::Baseline.label(), "Baseline");
        assert_eq!(SocVariant::Iommu.label(), "IOMMU");
        assert_eq!(SocVariant::IommuLlc.label(), "IOMMU+LLC");
    }
}
