//! The prototype heterogeneous SoC and the paper's experiments.
//!
//! This crate is the reproduction's primary contribution: it assembles the
//! full platform of Figure 1 — CVA6 host with L1 and shared LLC, the RISC-V
//! IOMMU, the Snitch accelerator cluster, the L2 scratchpad and the DRAM
//! delayer — and implements the heterogeneous offload runtime and the
//! experiment drivers that regenerate every table and figure of the
//! evaluation.
//!
//! * [`config`] — platform configurations, including the three variants of
//!   Table II (*Baseline*, *IOMMU*, *IOMMU + LLC*);
//! * [`platform`] — the assembled [`Platform`];
//! * [`offload`] — the OpenMP-target-style offload flows: host-only
//!   execution, copy-based offload and zero-copy (SVA) offload as in
//!   Listing 1;
//! * [`serving`] — the open-loop serving simulation: multi-tenant arrival
//!   traces scheduled onto the clusters with SLO percentile reporting;
//! * [`experiments`] — one module per table/figure with a `run` entry point
//!   returning structured results;
//! * [`report`] — plain-text table rendering used by the benchmark binaries
//!   and EXPERIMENTS.md.
//!
//! # Quickstart
//!
//! ```
//! use sva_soc::config::{PlatformConfig, SocVariant};
//! use sva_soc::offload::{OffloadMode, OffloadRunner};
//! use sva_soc::platform::Platform;
//! use sva_kernels::AxpyWorkload;
//!
//! let config = PlatformConfig::variant(SocVariant::IommuLlc, 200);
//! let mut platform = Platform::new(config).unwrap();
//! let workload = AxpyWorkload::with_elems(8_192);
//! let report = OffloadRunner::new(7)
//!     .run(&mut platform, &workload, OffloadMode::ZeroCopy)
//!     .unwrap();
//! assert!(report.verified);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod experiments;
pub mod offload;
pub mod platform;
pub mod report;
pub mod serving;

pub use config::{PlatformConfig, SocVariant};
pub use offload::{OffloadMode, OffloadReport, OffloadRunner};
pub use platform::Platform;
