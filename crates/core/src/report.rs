//! Plain-text table rendering for experiment results.
//!
//! The experiment binaries print their results in a layout close to the
//! paper's tables so that EXPERIMENTS.md can quote them directly.

/// A simple fixed-width text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as the header).
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned plain-text string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal (e.g. `17.6%`).
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a cycle count in the paper's scientific style (e.g. `2.03e6`).
pub fn sci(cycles: u64) -> String {
    sva_common::size::format_sci(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["kernel", "cycles"]);
        t.row(vec!["gemm", "2.03e6"]);
        t.row(vec!["heat3d", "7.21e6"]);
        let s = t.render();
        assert!(s.contains("kernel"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.176), "17.6%");
        assert_eq!(sci(2_030_000), "2.03e6");
    }
}
