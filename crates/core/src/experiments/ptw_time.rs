//! Figure 5: average IOMMU page-table-walk time with and without the shared
//! LLC and with and without concurrent host traffic.
//!
//! The experiment runs the axpy kernel as a zero-copy offload and records the
//! IOMMU's per-walk latency statistics for every combination of
//! `{LLC, no LLC}` × `{host idle, host random traffic}` over a DRAM-latency
//! sweep. The paper's observations to reproduce: the LLC cuts the average
//! walk time by an order of magnitude (~15× on average, staying below
//! 200 cycles even at 1000 cycles of DRAM latency), and host interference
//! adds roughly 20 % to the walk time.

use serde::{Deserialize, Serialize};

use sva_common::Result;
use sva_host::InterferenceLevel;
use sva_kernels::AxpyWorkload;

use crate::config::{PlatformConfig, SocVariant};
use crate::offload::OffloadRunner;
use crate::platform::Platform;
use crate::report::TextTable;

/// One `(latency, llc, interference)` measurement.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct PtwPoint {
    /// DRAM latency (delayer cycles).
    pub dram_latency: u64,
    /// Whether the shared LLC served page-table walks.
    pub llc: bool,
    /// Whether the host issued concurrent random traffic.
    pub interference: bool,
    /// Average page-table-walk latency in cycles.
    pub avg_ptw_cycles: f64,
    /// Number of walks observed.
    pub walks: u64,
}

/// The full sweep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PtwResultSet {
    /// All measurement points.
    pub points: Vec<PtwPoint>,
}

impl PtwResultSet {
    /// Finds a point.
    pub fn get(&self, latency: u64, llc: bool, interference: bool) -> Option<&PtwPoint> {
        self.points
            .iter()
            .find(|p| p.dram_latency == latency && p.llc == llc && p.interference == interference)
    }

    /// Average factor by which the LLC reduces the walk time over the sweep
    /// (the paper reports ~15×), host idle.
    pub fn llc_speedup(&self) -> f64 {
        let mut ratios = Vec::new();
        for p in self.points.iter().filter(|p| !p.llc && !p.interference) {
            if let Some(with) = self.get(p.dram_latency, true, false) {
                if with.avg_ptw_cycles > 0.0 {
                    ratios.push(p.avg_ptw_cycles / with.avg_ptw_cycles);
                }
            }
        }
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// Average slowdown caused by host interference when the LLC is present
    /// (the paper reports ~20 %), as a fraction.
    pub fn interference_slowdown(&self) -> f64 {
        let mut ratios = Vec::new();
        for p in self.points.iter().filter(|p| p.llc && p.interference) {
            if let Some(quiet) = self.get(p.dram_latency, true, false) {
                if quiet.avg_ptw_cycles > 0.0 {
                    ratios.push(p.avg_ptw_cycles / quiet.avg_ptw_cycles - 1.0);
                }
            }
        }
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// Renders the Figure 5 data.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "DRAM latency",
            "LLC",
            "Host traffic",
            "Avg PTW cycles",
            "Walks",
        ]);
        for p in &self.points {
            table.row(vec![
                p.dram_latency.to_string(),
                if p.llc { "yes" } else { "no" }.to_string(),
                if p.interference { "random" } else { "idle" }.to_string(),
                format!("{:.1}", p.avg_ptw_cycles),
                p.walks.to_string(),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "LLC reduces the average PTW time by {:.1}x (paper: ~15x); \
             host interference adds {:.0}% (paper: ~20%)\n",
            self.llc_speedup(),
            self.interference_slowdown() * 100.0
        ));
        out
    }
}

/// Runs the sweep: axpy of `elems` elements, for every latency, with and
/// without LLC and host interference.
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn run(elems: usize, latencies: &[u64]) -> Result<PtwResultSet> {
    let workload = AxpyWorkload::with_elems(elems);
    let mut result = PtwResultSet::default();
    for &latency in latencies {
        for llc in [false, true] {
            for interference in [false, true] {
                let variant = if llc {
                    SocVariant::IommuLlc
                } else {
                    SocVariant::Iommu
                };
                let level = if interference {
                    InterferenceLevel::RandomTraffic
                } else {
                    InterferenceLevel::Idle
                };
                let config = PlatformConfig::variant(variant, latency).with_interference(level);
                let mut platform = Platform::new(config)?;
                let report =
                    OffloadRunner::new(0xF165).run_device_only(&mut platform, &workload)?;
                result.points.push(PtwPoint {
                    dram_latency: latency,
                    llc,
                    interference,
                    avg_ptw_cycles: report.iommu.ptw_time.mean(),
                    walks: report.iommu.ptw_walks,
                });
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llc_and_interference_shape_matches_figure5() {
        let result = run(16_384, &[600]).unwrap();
        assert_eq!(result.points.len(), 4);

        let no_llc = result.get(600, false, false).unwrap();
        let with_llc = result.get(600, true, false).unwrap();
        assert!(no_llc.walks > 0 && with_llc.walks > 0);

        // The LLC reduces the walk time by an order of magnitude and keeps it
        // below ~200 cycles.
        assert!(
            result.llc_speedup() > 5.0,
            "speedup {:.1}",
            result.llc_speedup()
        );
        assert!(
            with_llc.avg_ptw_cycles < 200.0,
            "avg walk with LLC should stay under 200 cycles, got {:.1}",
            with_llc.avg_ptw_cycles
        );

        // Interference slows walks down, both with and without the LLC.
        let noisy = result.get(600, true, true).unwrap();
        assert!(noisy.avg_ptw_cycles > with_llc.avg_ptw_cycles);
        assert!(result.interference_slowdown() > 0.0);
        assert!(result.render().contains("Avg PTW cycles"));
    }
}
