//! Beyond the paper — the open-loop serving sweep.
//!
//! The paper's evaluation is closed-loop: one offload at a time, measured
//! in isolation. This sweep asks the deployment question instead — *what
//! SLO can N clusters actually hold under offered load?* — by driving the
//! calibrated platform with multi-tenant open-loop arrival traces (the
//! three [`ArrivalMix`] shapes) through a bounded admission queue and each
//! [`DispatchPolicy`], at utilizations below and above the aggregate
//! service capacity. Each point reports end-to-end latency p50/p99/p999,
//! per-tenant goodput against offered load, admission rejects and the
//! waiting-queue depth timeline.
//!
//! Service times are calibrated once per kernel with a real device-only
//! run ([`ServiceTable::calibrate`]) and shared by every grid point, so
//! the sweep's cost is dominated by the (cheap, purely event-driven)
//! serving loops and stays bench-friendly.

use serde::{Deserialize, Serialize};

use sva_common::ArrivalMix;
use sva_host::serving::DispatchPolicy;

use crate::report::{sci, TextTable};
use crate::serving::{self, ServiceTable, ServingConfig, ServingReport};
use sva_common::Result;

pub use crate::experiments::fabric::SweepMeta;

/// Utilization factors of the full grid: one point with headroom and one
/// past saturation (rejects and a stretched tail are expected there).
pub const GRID_UTILIZATIONS: [f64; 2] = [0.7, 1.2];

/// Seed shared by the sweep's calibration runs and arrival traces.
pub const SERVING_SEED: u64 = 0x5E4B;

/// The full serving sweep: every grid point plus the shared calibration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServingSweepResult {
    /// One report per grid point, in grid order.
    pub points: Vec<ServingReport>,
}

/// The grid of serving points: every arrival mix × every dispatch policy ×
/// [`GRID_UTILIZATIONS`], on a four-cluster platform. `smoke` shrinks the
/// grid (one utilization, two policies, shorter traces) for CI.
pub fn grid(smoke: bool) -> Vec<ServingConfig> {
    let policies: &[DispatchPolicy] = if smoke {
        &[DispatchPolicy::Fcfs, DispatchPolicy::Priority]
    } else {
        &DispatchPolicy::ALL
    };
    let utilizations: &[f64] = if smoke { &[1.2] } else { &GRID_UTILIZATIONS };
    let mut configs = Vec::new();
    for mix in ArrivalMix::ALL {
        for &policy in policies {
            for &utilization in utilizations {
                let mut config = ServingConfig::small(4, policy, mix);
                config.utilization = utilization;
                config.seed = SERVING_SEED;
                if smoke {
                    for tenant in &mut config.tenants {
                        tenant.requests /= 4;
                    }
                }
                configs.push(config);
            }
        }
    }
    configs
}

/// Calibrates the service table the whole grid shares (one device-only run
/// per distinct kernel of the default tenant set).
///
/// # Errors
///
/// Propagates platform construction and offload failures.
pub fn calibrate() -> Result<ServiceTable> {
    let kernels = ServingConfig::small(4, DispatchPolicy::Fcfs, ArrivalMix::Poisson).kernels();
    ServiceTable::calibrate(&kernels, SERVING_SEED)
}

/// Runs one grid point against the shared calibration.
pub fn run_point(config: &ServingConfig, services: &ServiceTable) -> ServingReport {
    serving::run(config, services)
}

impl ServingSweepResult {
    /// Paper-style text table, one row per point.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "mix", "policy", "util", "offered", "rejected", "p50", "p99", "p999", "peak_q",
            "makespan",
        ]);
        for p in &self.points {
            table.row(vec![
                p.mix.clone(),
                p.policy.clone(),
                format!("{:.1}", p.utilization),
                p.offered.to_string(),
                p.rejected.to_string(),
                sci(p.latency.p50),
                sci(p.latency.p99),
                sci(p.latency.p999),
                p.queue_peak.to_string(),
                sci(p.makespan),
            ]);
        }
        table.render()
    }

    /// Serialises the sweep as JSON (hand-rolled; the build is offline and
    /// carries no serde_json).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"serving_sweep\",\n  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let tenants: Vec<String> = p
                .tenants
                .iter()
                .map(|t| {
                    format!(
                        "{{\"tenant\": \"{}\", \"kernel\": \"{}\", \"offered\": {}, \
                         \"rejected\": {}, \"completed\": {}, \
                         \"offered_per_mcycle\": {:.4}, \"goodput_per_mcycle\": {:.4}, \
                         \"p50\": {}, \"p99\": {}, \"p999\": {}}}",
                        t.name,
                        t.kernel,
                        t.offered,
                        t.rejected,
                        t.completed,
                        t.offered_per_mcycle,
                        t.goodput_per_mcycle,
                        t.latency.p50,
                        t.latency.p99,
                        t.latency.p999
                    )
                })
                .collect();
            let services: Vec<String> = p
                .services
                .iter()
                .map(|(k, c)| format!("{{\"kernel\": \"{k}\", \"service_cycles\": {c}}}"))
                .collect();
            let samples: Vec<String> = p.queue_depth_samples.iter().map(usize::to_string).collect();
            out.push_str(&format!(
                "    {{\"mix\": \"{}\", \"policy\": \"{}\", \"utilization\": {:.2}, \
                 \"clusters\": {}, \"admission_depth\": {}, \
                 \"offered\": {}, \"admitted\": {}, \"rejected\": {}, \"completed\": {}, \
                 \"makespan\": {}, \
                 \"latency_p50\": {}, \"latency_p99\": {}, \"latency_p999\": {}, \
                 \"queue_peak\": {}, \"queue_depth_samples\": [{}], \
                 \"services\": [{}], \"tenants\": [{}]}}{}\n",
                p.mix,
                p.policy,
                p.utilization,
                p.clusters,
                p.admission_depth,
                p.offered,
                p.admitted,
                p.rejected,
                p.completed,
                p.makespan,
                p.latency.p50,
                p.latency.p99,
                p.latency.p999,
                p.queue_peak,
                samples.join(", "),
                services.join(", "),
                tenants.join(", "),
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// [`ServingSweepResult::to_json`] with the execution-metadata block
    /// spliced in, mirroring the fabric sweep's format: worker count and
    /// wallclock timings aligned with `points` by index. The plain
    /// `to_json` stays meta-free so replayed/merged result files compare
    /// structurally.
    pub fn to_json_with_meta(&self, meta: &SweepMeta) -> String {
        let timings: Vec<String> = meta
            .points_wallclock_ms
            .iter()
            .map(u64::to_string)
            .collect();
        let block = format!(
            "\n  \"meta\": {{\"workers\": {}, \"total_wallclock_ms\": {}, \
             \"points_wallclock_ms\": [{}]}},",
            meta.workers,
            meta.total_wallclock_ms,
            timings.join(", ")
        );
        let marker = "\"experiment\": \"serving_sweep\",";
        self.to_json()
            .replacen(marker, &format!("{marker}{block}"), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_mix_and_policy() {
        let full = grid(false);
        assert_eq!(full.len(), 3 * 4 * 2);
        let smoke = grid(true);
        assert_eq!(smoke.len(), 3 * 2);
        assert!(smoke
            .iter()
            .all(|c| c.tenants.iter().all(|t| t.requests > 0)));
        // Smoke points must be materially smaller than full ones.
        let full_reqs: usize = full[0].tenants.iter().map(|t| t.requests).sum();
        let smoke_reqs: usize = smoke[0].tenants.iter().map(|t| t.requests).sum();
        assert!(smoke_reqs * 2 < full_reqs);
    }

    #[test]
    fn json_round_trip_is_well_formed_and_meta_splices() {
        let configs = grid(true);
        let services = crate::serving::tests_support::synthetic_table();
        let points = configs
            .iter()
            .take(2)
            .map(|c| run_point(c, &services))
            .collect();
        let result = ServingSweepResult { points };
        let json = result.to_json();
        assert!(json.contains("\"experiment\": \"serving_sweep\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        let meta = SweepMeta {
            workers: 3,
            total_wallclock_ms: 42,
            points_wallclock_ms: vec![20, 22],
        };
        let with_meta = result.to_json_with_meta(&meta);
        assert!(with_meta.contains("\"meta\": {\"workers\": 3, \"total_wallclock_ms\": 42"));
        assert!(with_meta.contains("\"points_wallclock_ms\": [20, 22]"));
        assert_eq!(
            with_meta.matches('{').count(),
            with_meta.matches('}').count()
        );
    }
}
