//! Ablations of the design choices called out in DESIGN.md.
//!
//! These go beyond the paper's figures and probe the sensitivity of its
//! conclusions:
//!
//! * **IOTLB capacity** — the paper uses only 4 entries and argues the LLC
//!   makes a larger IOTLB unnecessary; the ablation sweeps the capacity.
//! * **DMA through the LLC** — the paper routes device DMA around the LLC to
//!   preserve burst bandwidth; the ablation forces DMA through it.
//! * **Outstanding DMA bursts** — how much the DMA engine's pipelining hides
//!   memory latency.
//! * **Flush-before-map** — Listing 1 flushes the LLC before mapping; the
//!   ablation skips the flush, which leaves stale dirty lines but also shows
//!   how much of the mapping cost the flush contributes.

use serde::{Deserialize, Serialize};

use sva_common::Result;
use sva_kernels::{KernelKind, Workload};

use crate::config::{PlatformConfig, SocVariant};
use crate::offload::OffloadRunner;
use crate::platform::Platform;
use crate::report::TextTable;

/// A generic labelled measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Configuration label.
    pub label: String,
    /// Device runtime in cycles.
    pub total: u64,
    /// DMA-wait share of the runtime.
    pub dma_fraction: f64,
    /// Average page-table-walk cycles (0 when the IOMMU is off).
    pub avg_ptw_cycles: f64,
}

/// A set of ablation points.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AblationResult {
    /// What was swept.
    pub name: String,
    /// The measurements.
    pub points: Vec<AblationPoint>,
}

impl AblationResult {
    /// Renders the ablation as a table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["Configuration", "Device cycles", "%DMA", "Avg PTW"]);
        for p in &self.points {
            table.row(vec![
                p.label.clone(),
                p.total.to_string(),
                format!("{:.1}%", p.dma_fraction * 100.0),
                format!("{:.1}", p.avg_ptw_cycles),
            ]);
        }
        format!("{}\n{}", self.name, table.render())
    }
}

fn measure(
    config: PlatformConfig,
    workload: &dyn Workload,
    label: String,
) -> Result<AblationPoint> {
    let mut platform = Platform::new(config)?;
    let report = OffloadRunner::new(0xAB1A7E).run_device_only(&mut platform, workload)?;
    Ok(AblationPoint {
        label,
        total: report.stats.total.raw(),
        dma_fraction: report.stats.dma_fraction(),
        avg_ptw_cycles: report.iommu.ptw_time.mean(),
    })
}

/// Sweeps the IOTLB capacity on the IOMMU-without-LLC platform, where the
/// IOTLB is the only thing standing between the DMA engine and full-latency
/// walks.
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn iotlb_size(kernel: KernelKind, latency: u64, sizes: &[usize]) -> Result<AblationResult> {
    let workload = kernel.small_workload();
    let mut result = AblationResult {
        name: format!(
            "IOTLB capacity sweep ({} @ {latency} cycles, no LLC)",
            workload.name()
        ),
        points: Vec::new(),
    };
    for &entries in sizes {
        let config =
            PlatformConfig::variant(SocVariant::Iommu, latency).with_iotlb_entries(entries);
        result.points.push(measure(
            config,
            workload.as_ref(),
            format!("{entries} IOTLB entries"),
        )?);
    }
    Ok(result)
}

/// Compares the paper's DMA-bypass design against routing DMA through the
/// LLC.
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn dma_through_llc(kernel: KernelKind, latency: u64) -> Result<AblationResult> {
    let workload = kernel.small_workload();
    let mut result = AblationResult {
        name: format!(
            "LLC bypass for device DMA ({} @ {latency} cycles)",
            workload.name()
        ),
        points: Vec::new(),
    };
    let bypass = PlatformConfig::variant(SocVariant::IommuLlc, latency);
    result.points.push(measure(
        bypass,
        workload.as_ref(),
        "DMA bypasses LLC (paper)".to_string(),
    )?);
    let through = PlatformConfig::variant(SocVariant::IommuLlc, latency).with_dma_through_llc();
    result.points.push(measure(
        through,
        workload.as_ref(),
        "DMA through LLC".to_string(),
    )?);
    Ok(result)
}

/// Sweeps the number of outstanding DMA bursts.
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn dma_outstanding(
    kernel: KernelKind,
    latency: u64,
    depths: &[usize],
) -> Result<AblationResult> {
    let workload = kernel.small_workload();
    let mut result = AblationResult {
        name: format!(
            "Outstanding DMA bursts ({} @ {latency} cycles, baseline platform)",
            workload.name()
        ),
        points: Vec::new(),
    };
    for &depth in depths {
        let config = PlatformConfig::baseline(latency).with_dma_outstanding(depth);
        result.points.push(measure(
            config,
            workload.as_ref(),
            format!("{depth} outstanding"),
        )?);
    }
    Ok(result)
}

/// Compares double buffering against single buffering on the baseline
/// platform.
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn double_buffering(kernel: KernelKind, latency: u64) -> Result<AblationResult> {
    let workload = kernel.small_workload();
    let mut result = AblationResult {
        name: format!("Double buffering ({} @ {latency} cycles)", workload.name()),
        points: Vec::new(),
    };
    result.points.push(measure(
        PlatformConfig::baseline(latency),
        workload.as_ref(),
        "double buffered (paper)".to_string(),
    )?);
    result.points.push(measure(
        PlatformConfig::baseline(latency).with_single_buffering(),
        workload.as_ref(),
        "single buffered".to_string(),
    )?);
    Ok(result)
}

/// Listing 1 flushes the LLC *before* creating the IOVA mappings so the
/// freshly written page-table entries stay resident for the IOMMU. This
/// ablation compares the average page-table-walk latency of the first offload
/// when the flush happens before mapping (the paper's order) versus after
/// mapping (which evicts the PTEs again).
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn flush_before_map(latency: u64) -> Result<AblationResult> {
    use sva_kernels::{AxpyWorkload, Workload as _};

    let workload = AxpyWorkload::with_elems(16_384);
    let mut result = AblationResult {
        name: format!("LLC flush ordering around create_iommu_mapping (axpy @ {latency} cycles)"),
        points: Vec::new(),
    };

    for flush_after in [false, true] {
        let mut p = Platform::new(PlatformConfig::variant(SocVariant::IommuLlc, latency))?;
        let mut rng = sva_common::rng::DeterministicRng::new(7);
        let initial = workload.init(&mut rng);

        // Allocate and fill the user buffers.
        let specs = workload.buffers();
        let mut vas = Vec::new();
        for (spec, data) in specs.iter().zip(&initial) {
            let va = p
                .space
                .alloc_buffer(&mut p.mem, &mut p.frames, spec.bytes())?;
            let bytes: Vec<u8> = data.iter().flat_map(|v| v.to_le_bytes()).collect();
            p.space.write_virt(&mut p.mem, va, &bytes)?;
            vas.push((va, spec.bytes()));
        }

        if !flush_after {
            // Paper's order (Listing 1): flush, then map.
            p.cpu.flush_l1();
            p.mem.flush_llc();
        }
        for &(va, bytes) in &vas {
            p.driver.map_buffer(
                &mut p.cpu,
                &mut p.mem,
                &mut p.iommu,
                &p.space,
                &mut p.frames,
                va,
                bytes,
            )?;
        }
        if flush_after {
            // Ablation: flush after mapping, evicting the PTE lines.
            p.cpu.flush_l1();
            p.mem.flush_llc();
        }
        p.iommu.reset_stats();

        let device_ptrs: Vec<sva_common::Iova> = vas
            .iter()
            .map(|(va, _)| sva_common::Iova::from_virt(*va))
            .collect();
        let mut kernel = workload.device_kernel(&device_ptrs);
        let stats = p.clusters[0].run(&mut p.mem, &mut p.iommu, kernel.as_mut())?;
        result.points.push(AblationPoint {
            label: if flush_after {
                "flush after mapping (PTEs evicted)".to_string()
            } else {
                "flush before mapping (paper, Listing 1)".to_string()
            },
            total: stats.total.raw(),
            dma_fraction: stats.dma_fraction(),
            avg_ptw_cycles: p.iommu.stats().ptw_time.mean(),
        });
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_iotlb_helps_without_llc() {
        let result = iotlb_size(KernelKind::Gesummv, 1000, &[1, 4, 64]).unwrap();
        assert_eq!(result.points.len(), 3);
        let one = result.points[0].total;
        let four = result.points[1].total;
        let many = result.points[2].total;
        assert!(
            many <= four && four <= one,
            "{one} >= {four} >= {many} expected"
        );
        assert!(result.render().contains("IOTLB"));
    }

    #[test]
    fn dma_bypass_beats_dma_through_llc() {
        let result = dma_through_llc(KernelKind::Heat3d, 600).unwrap();
        let bypass = result.points[0].total;
        let through = result.points[1].total;
        assert!(
            bypass < through,
            "bypassing the LLC ({bypass}) should beat DMA through it ({through})"
        );
    }

    #[test]
    fn more_outstanding_bursts_reduce_runtime() {
        let result = dma_outstanding(KernelKind::Heat3d, 1000, &[1, 4]).unwrap();
        assert!(result.points[1].total < result.points[0].total);
    }

    #[test]
    fn double_buffering_helps() {
        let result = double_buffering(KernelKind::Gesummv, 600).unwrap();
        assert!(result.points[0].total <= result.points[1].total);
    }

    #[test]
    fn flushing_before_mapping_keeps_walks_fast() {
        let result = flush_before_map(1000).unwrap();
        let before = &result.points[0];
        let after = &result.points[1];
        assert!(
            before.avg_ptw_cycles < after.avg_ptw_cycles,
            "flushing before mapping ({:.1}) should give faster walks than flushing after ({:.1})",
            before.avg_ptw_cycles,
            after.avg_ptw_cycles
        );
        assert!(before.avg_ptw_cycles < 200.0);
    }
}
