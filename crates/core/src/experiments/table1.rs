//! Table I: the benchmark-kernel inventory.

use sva_kernels::KernelSuite;

use crate::report::TextTable;

/// Renders Table I (kernel, input size, description).
pub fn render() -> String {
    let mut table = TextTable::new(vec!["Kernel", "Input size", "Description"]);
    for (name, size, desc) in KernelSuite::table1_rows() {
        table.row(vec![name, size, desc]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_lists_all_five_kernels() {
        let rendered = super::render();
        for k in ["gemm", "gesummv", "heat3d", "axpy", "merge sort"] {
            assert!(rendered.contains(k), "missing {k} in:\n{rendered}");
        }
    }
}
