//! Figure 2 (left): application-level breakdown of an axpy offload.
//!
//! The experiment runs the same axpy problem three ways — host-only,
//! copy-based offload and zero-copy offload — and splits the runtime into
//! the copy-or-map region, the offload/fork-join overhead and the
//! computation, exactly like the stacked bars of Figure 2. It also computes
//! the headline claim of Section IV-A: how much faster zero-copy offloading
//! is than copy-based offloading.

use serde::{Deserialize, Serialize};

use sva_common::Result;
use sva_kernels::AxpyWorkload;

use crate::config::PlatformConfig;
use crate::offload::{OffloadMode, OffloadRunner};
use crate::platform::Platform;
use crate::report::{sci, TextTable};

/// One bar of the figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OffloadCase {
    /// Which offload flow.
    pub mode: OffloadMode,
    /// Cycles spent copying or mapping.
    pub copy_or_map: u64,
    /// Cycles spent triggering / synchronising the offload.
    pub offload_overhead: u64,
    /// Cycles spent computing (device or host).
    pub compute: u64,
    /// End-to-end cycles.
    pub total: u64,
    /// Whether results verified against the reference.
    pub verified: bool,
}

/// The three bars plus derived headline numbers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OffloadBreakdownResult {
    /// Problem size (elements per vector).
    pub elems: usize,
    /// DRAM latency used.
    pub dram_latency: u64,
    /// The three cases: host-only, copy, zero-copy.
    pub cases: Vec<OffloadCase>,
}

impl OffloadBreakdownResult {
    /// Returns the case for a mode.
    pub fn case(&self, mode: OffloadMode) -> Option<&OffloadCase> {
        self.cases.iter().find(|c| c.mode == mode)
    }

    /// Section IV-A headline: fraction by which zero-copy offloading is
    /// faster than copy-based offloading (the paper measures 47 %).
    pub fn zero_copy_speedup(&self) -> Option<f64> {
        let copy = self.case(OffloadMode::CopyOffload)?;
        let zero = self.case(OffloadMode::ZeroCopy)?;
        Some(1.0 - zero.total as f64 / copy.total as f64)
    }

    /// Renders the Figure 2 (left) stacked-bar data as a table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Scenario",
            "Copy/Map",
            "Offload overhead",
            "Compute",
            "Total",
            "Verified",
        ]);
        for case in &self.cases {
            table.row(vec![
                case.mode.label().to_string(),
                sci(case.copy_or_map),
                sci(case.offload_overhead),
                sci(case.compute),
                sci(case.total),
                case.verified.to_string(),
            ]);
        }
        let mut out = format!(
            "axpy {} elements, DRAM latency {} cycles\n{}",
            self.elems,
            self.dram_latency,
            table.render()
        );
        if let Some(speedup) = self.zero_copy_speedup() {
            out.push_str(&format!(
                "zero-copy offloading is {:.0}% faster than copy-based offloading (paper: 47%)\n",
                speedup * 100.0
            ));
        }
        out
    }
}

/// Runs the three scenarios for an axpy of `elems` elements at the given
/// DRAM latency (the paper uses 32 768 elements).
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn run(elems: usize, dram_latency: u64) -> Result<OffloadBreakdownResult> {
    let workload = AxpyWorkload::with_elems(elems);
    let mut cases = Vec::new();
    for mode in [
        OffloadMode::HostOnly,
        OffloadMode::CopyOffload,
        OffloadMode::ZeroCopy,
    ] {
        // Each scenario runs on a freshly booted platform of the paper's full
        // configuration (IOMMU + LLC) so caches do not leak state across bars.
        let mut platform = Platform::new(PlatformConfig::iommu_with_llc(dram_latency))?;
        let report = OffloadRunner::new(0xF162).run(&mut platform, &workload, mode)?;
        let compute = report
            .device
            .map(|d| d.total.raw())
            .or(report.host.map(|h| h.total.raw()))
            .unwrap_or(0);
        cases.push(OffloadCase {
            mode,
            copy_or_map: report.copy_or_map.raw(),
            offload_overhead: report.offload_overhead.raw(),
            compute,
            total: report.total.raw(),
            verified: report.verified,
        });
    }
    Ok(OffloadBreakdownResult {
        elems,
        dram_latency,
        cases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_matches_figure2_shape() {
        let result = run(16_384, 200).unwrap();
        assert_eq!(result.cases.len(), 3);
        assert!(result.cases.iter().all(|c| c.verified));

        let host = result.case(OffloadMode::HostOnly).unwrap();
        let copy = result.case(OffloadMode::CopyOffload).unwrap();
        let zero = result.case(OffloadMode::ZeroCopy).unwrap();

        // Device compute is faster than host compute (8 PEs vs 1 core).
        assert!(copy.compute < host.compute);
        // Mapping is cheaper than copying.
        assert!(zero.copy_or_map < copy.copy_or_map);
        // Zero-copy offloading wins overall.
        assert!(result.zero_copy_speedup().unwrap() > 0.0);
        // And the rendered report mentions the headline.
        assert!(result.render().contains("faster than copy-based"));
    }
}
