//! Figure 2 (right) and Figure 3: copy time vs map time over input size and
//! DRAM latency.
//!
//! The experiment allocates a user buffer of a given number of pages,
//! measures the host cycles needed to (a) copy it into the reserved
//! physically contiguous DRAM and (b) create IOMMU mappings for it
//! (including the cache flushes of Listing 1), and sweeps both the buffer
//! size (Figure 2 right) and the DRAM latency (Figure 3). The paper's
//! observations to reproduce: copying 16 pages becomes ~3.4× slower when the
//! latency grows from 200 to 1000 cycles, while mapping becomes only ~2.1×
//! slower because the driver's working set is mostly cache-resident.

use serde::{Deserialize, Serialize};

use sva_common::{Result, PAGE_SIZE};

use crate::config::PlatformConfig;
use crate::platform::Platform;
use crate::report::{sci, TextTable};

/// One `(pages, latency)` measurement.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct CopyVsMapPoint {
    /// Buffer size in 4 KiB pages.
    pub pages: u64,
    /// DRAM latency (delayer cycles).
    pub dram_latency: u64,
    /// Host cycles to copy the buffer to reserved DRAM.
    pub copy_cycles: u64,
    /// Host cycles to create the IOMMU mapping (flushes + ioctl + PTEs).
    pub map_cycles: u64,
}

/// The full sweep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CopyVsMapResult {
    /// All measurement points.
    pub points: Vec<CopyVsMapPoint>,
}

impl CopyVsMapResult {
    /// Finds a point.
    pub fn get(&self, pages: u64, latency: u64) -> Option<&CopyVsMapPoint> {
        self.points
            .iter()
            .find(|p| p.pages == pages && p.dram_latency == latency)
    }

    /// Ratio of copy time between two latencies at a fixed size (the paper's
    /// 3.4× for 16 pages, 200 → 1000).
    pub fn copy_scaling(&self, pages: u64, low: u64, high: u64) -> Option<f64> {
        Some(self.get(pages, high)?.copy_cycles as f64 / self.get(pages, low)?.copy_cycles as f64)
    }

    /// Ratio of map time between two latencies at a fixed size (the paper's
    /// 2.1×).
    pub fn map_scaling(&self, pages: u64, low: u64, high: u64) -> Option<f64> {
        Some(self.get(pages, high)?.map_cycles as f64 / self.get(pages, low)?.map_cycles as f64)
    }

    /// Renders the sweep as a table (Figures 2 right / 3).
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Pages",
            "DRAM latency",
            "Copy cycles",
            "Map cycles",
            "Copy/Map",
        ]);
        for p in &self.points {
            table.row(vec![
                p.pages.to_string(),
                p.dram_latency.to_string(),
                sci(p.copy_cycles),
                sci(p.map_cycles),
                format!("{:.2}", p.copy_cycles as f64 / p.map_cycles.max(1) as f64),
            ]);
        }
        table.render()
    }
}

/// Measures copy and map cost for each `(pages, latency)` combination.
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn run(page_counts: &[u64], latencies: &[u64]) -> Result<CopyVsMapResult> {
    let mut result = CopyVsMapResult::default();
    for &latency in latencies {
        for &pages in page_counts {
            let bytes = pages * PAGE_SIZE;

            // Copy measurement: fresh platform, cold caches (the input was
            // produced long before the offload in the application).
            let mut p = Platform::new(PlatformConfig::iommu_with_llc(latency))?;
            let va = p.space.alloc_buffer(&mut p.mem, &mut p.frames, bytes)?;
            p.cpu.flush_l1();
            p.mem.flush_llc();
            let dst = p.reserved.alloc_bytes(bytes)?;
            let copy = p
                .copy
                .copy_to_device(&mut p.cpu, &mut p.mem, &p.space, va, dst, bytes)?;

            // Map measurement: fresh platform, Listing 1 flow (flush L1 and
            // LLC, then create the mapping).
            let mut q = Platform::new(PlatformConfig::iommu_with_llc(latency))?;
            let va = q.space.alloc_buffer(&mut q.mem, &mut q.frames, bytes)?;
            let mut map_cycles = q.cpu.flush_l1();
            map_cycles += q.mem.flush_llc();
            let (_, cost) = q.driver.map_buffer(
                &mut q.cpu,
                &mut q.mem,
                &mut q.iommu,
                &q.space,
                &mut q.frames,
                va,
                bytes,
            )?;
            map_cycles += cost.cycles;
            map_cycles += q.cpu.flush_l1();

            result.points.push(CopyVsMapPoint {
                pages,
                dram_latency: latency,
                copy_cycles: copy.cycles.raw(),
                map_cycles: map_cycles.raw(),
            });
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_cheaper_and_scales_better_than_copying() {
        let result = run(&[4, 16], &[200, 1000]).unwrap();
        assert_eq!(result.points.len(), 4);

        // Mapping beats copying at every measured point (Figure 2 right).
        for p in &result.points {
            assert!(
                p.map_cycles < p.copy_cycles,
                "mapping ({}) should be cheaper than copying ({}) for {} pages",
                p.map_cycles,
                p.copy_cycles,
                p.pages
            );
        }

        // Figure 3: copy scales harder with DRAM latency than map.
        let copy_scale = result.copy_scaling(16, 200, 1000).unwrap();
        let map_scale = result.map_scaling(16, 200, 1000).unwrap();
        assert!(
            copy_scale > map_scale,
            "copy {copy_scale:.2} !> map {map_scale:.2}"
        );
        assert!(
            copy_scale > 2.0,
            "copy scaling {copy_scale:.2} should be pronounced"
        );
        assert!(
            map_scale < 3.0,
            "map scaling {map_scale:.2} should stay moderate"
        );

        // Copy and map both grow with the input size.
        for latency in [200, 1000] {
            let small = result.get(4, latency).unwrap();
            let big = result.get(16, latency).unwrap();
            assert!(big.copy_cycles > small.copy_cycles);
            assert!(big.map_cycles > small.map_cycles);
        }
        assert!(result.render().contains("Copy cycles"));
    }
}
