//! Fabric-scaling sweep: cluster count × platform variant × DRAM latency.
//!
//! This experiment goes beyond the paper: it scales the platform to N
//! accelerator clusters sharing the IOMMU and the memory fabric, shards one
//! kernel across them with static block scheduling, and reports
//!
//! * the device wall-clock (slowest shard) and its compute/DMA-wait split,
//! * the run's IOTLB hit rate (entries are tagged per device ID; note that
//!   shards are *simulated* sequentially, so cross-device thrashing of the
//!   four entries only appears at shard boundaries — truly concurrent
//!   IOTLB pressure needs the global-clock engine on the ROADMAP, and this
//!   metric should be read as near-flat in N until then),
//! * per-initiator fabric statistics — accesses, bytes, bus occupancy and
//!   the cross-initiator queueing each DMA stream observed. Queueing is
//!   first-fit in shard order (a staircase across clusters, pessimistic for
//!   the last shard; see `sva_mem::fabric`), so read per-initiator queue
//!   cycles as a placement-order-dependent bound, not a fairness split.
//!
//! The sweep enables [fabric contention charging]
//! (`sva_mem::fabric::FabricConfig::contention_enabled`), so measured
//! queueing feeds back into latencies; with one cluster nothing queues and
//! the numbers equal the paper's single-cluster figures.
//!
//! [`run_point`] measures one combination and is deliberately standalone so
//! the `sva_bench` sweep driver can fan combinations out across worker
//! threads; [`run`] is the sequential convenience over the full grid.

use serde::{Deserialize, Serialize};

use sva_kernels::KernelKind;

use crate::config::{PlatformConfig, SocVariant};
use crate::offload::OffloadRunner;
use crate::platform::Platform;
use crate::report::{percent, sci, TextTable};
use sva_common::{ArbitrationPolicy, Result};
use sva_mem::ChannelStats;

/// Per-initiator numbers of one measurement point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InitiatorRow {
    /// Initiator label (`host`, `ptw`, `dma[3]`, …).
    pub initiator: String,
    /// Accesses granted by the fabric.
    pub accesses: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Data-bus occupancy attributed to the initiator.
    pub occupancy_cycles: u64,
    /// Cross-initiator queueing the initiator observed.
    pub queue_cycles: u64,
    /// Accesses that arrived while another initiator held the bus.
    pub contended_grants: u64,
}

/// Per-channel numbers of one measurement point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChannelRow {
    /// Channel index.
    pub channel: usize,
    /// The channel's fabric-port accounting (see `sva_mem::channels`).
    pub stats: ChannelStats,
}

/// One measurement point of the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FabricPoint {
    /// Kernel measured.
    pub kernel: String,
    /// Number of accelerator clusters.
    pub clusters: usize,
    /// Platform variant.
    pub variant: SocVariant,
    /// DRAM latency (delayer cycles).
    pub dram_latency: u64,
    /// Number of DRAM channels.
    pub channels: usize,
    /// Arbitration policy label (`round_robin`, `weighted[..]`,
    /// `fixed_priority`).
    pub policy: String,
    /// Device wall-clock cycles (slowest shard).
    pub total: u64,
    /// Aggregate compute cycles across shards.
    pub compute: u64,
    /// Aggregate DMA-wait cycles across shards.
    pub dma_wait: u64,
    /// IOTLB hit rate over the whole run (0 when the variant has no IOMMU).
    pub iotlb_hit_rate: f64,
    /// Whether the device results matched the host reference.
    pub verified: bool,
    /// Grants whose initiator differed from the previous grant's.
    pub grant_switches: u64,
    /// Per-initiator fabric statistics.
    pub initiators: Vec<InitiatorRow>,
    /// Per-channel DRAM statistics.
    pub per_channel: Vec<ChannelRow>,
}

impl FabricPoint {
    /// Total cross-initiator queueing observed at this point.
    pub fn queue_cycles(&self) -> u64 {
        self.initiators.iter().map(|r| r.queue_cycles).sum()
    }
}

/// The full sweep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FabricSweepResult {
    /// All measurement points.
    pub points: Vec<FabricPoint>,
}

impl FabricSweepResult {
    /// Finds the point for a given cluster/variant/latency combination with
    /// the given channel count and policy label.
    pub fn get_with(
        &self,
        clusters: usize,
        variant: SocVariant,
        latency: u64,
        channels: usize,
        policy: &str,
    ) -> Option<&FabricPoint> {
        self.points.iter().find(|p| {
            p.clusters == clusters
                && p.variant == variant
                && p.dram_latency == latency
                && p.channels == channels
                && p.policy == policy
        })
    }

    /// Finds the baseline point (single channel, round-robin) for a given
    /// cluster/variant/latency combination.
    pub fn get(&self, clusters: usize, variant: SocVariant, latency: u64) -> Option<&FabricPoint> {
        self.get_with(clusters, variant, latency, 1, "round_robin")
    }

    /// Renders the scaling table: one row per point with wall-clock, speedup
    /// over one cluster, DMA share, IOTLB hit rate and fabric contention.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Clusters",
            "Config",
            "Latency",
            "Ch",
            "Policy",
            "Wall cyc",
            "Speedup",
            "%DMA",
            "IOTLB hit",
            "Queue cyc",
            "Switches",
        ]);
        for p in &self.points {
            let speedup = self
                .get_with(1, p.variant, p.dram_latency, p.channels, &p.policy)
                .or_else(|| self.get(1, p.variant, p.dram_latency))
                .map(|one| one.total as f64 / p.total as f64)
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string());
            let dma_share = if p.total == 0 {
                0.0
            } else {
                p.dma_wait as f64 / (p.total as f64 * p.clusters as f64)
            };
            table.row(vec![
                p.clusters.to_string(),
                p.variant.label().to_string(),
                p.dram_latency.to_string(),
                p.channels.to_string(),
                p.policy.clone(),
                sci(p.total),
                speedup,
                percent(dma_share),
                percent(p.iotlb_hit_rate),
                p.queue_cycles().to_string(),
                p.grant_switches.to_string(),
            ]);
        }
        table.render()
    }

    /// Serialises the sweep as JSON (hand-rolled; the build is offline and
    /// carries no serde_json).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"fabric_sweep\",\n  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let initiators: Vec<String> = p
                .initiators
                .iter()
                .map(|r| {
                    format!(
                        "{{\"initiator\": \"{}\", \"accesses\": {}, \"bytes\": {}, \
                         \"occupancy_cycles\": {}, \"queue_cycles\": {}, \"contended_grants\": {}}}",
                        r.initiator,
                        r.accesses,
                        r.bytes,
                        r.occupancy_cycles,
                        r.queue_cycles,
                        r.contended_grants
                    )
                })
                .collect();
            let channels: Vec<String> = p
                .per_channel
                .iter()
                .map(|c| {
                    format!(
                        "{{\"channel\": {}, \"grants\": {}, \"bytes\": {}, \
                         \"occupancy_cycles\": {}, \"queue_cycles\": {}}}",
                        c.channel,
                        c.stats.grants,
                        c.stats.bytes,
                        c.stats.occupancy_cycles,
                        c.stats.queue_cycles
                    )
                })
                .collect();
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"clusters\": {}, \"variant\": \"{}\", \
                 \"dram_latency\": {}, \"channels\": {}, \"policy\": \"{}\", \
                 \"total\": {}, \"compute\": {}, \"dma_wait\": {}, \
                 \"iotlb_hit_rate\": {:.6}, \"verified\": {}, \"grant_switches\": {}, \
                 \"initiators\": [{}], \"per_channel\": [{}]}}{}\n",
                p.kernel,
                p.clusters,
                p.variant.label(),
                p.dram_latency,
                p.channels,
                p.policy,
                p.total,
                p.compute,
                p.dma_wait,
                p.iotlb_hit_rate,
                p.verified,
                p.grant_switches,
                initiators.join(", "),
                channels.join(", "),
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Measures one (kernel, clusters, variant, latency, channels, policy)
/// combination on a fresh platform with fabric-contention charging enabled.
///
/// Under [`ArbitrationPolicy::FixedPriority`] cluster `i` is given DMA
/// priority `i`, so the strict ordering is observable: shards are simulated
/// in cluster order, and first-fit placement already lets the earliest
/// shard reserve first — ascending priorities let *later* shards outrank
/// those earlier reservations, which is exactly the part round-robin cannot
/// express (descending or equal priorities would degenerate to it).
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn run_point(
    kind: KernelKind,
    paper_size: bool,
    clusters: usize,
    variant: SocVariant,
    latency: u64,
    channels: usize,
    policy: &ArbitrationPolicy,
) -> Result<FabricPoint> {
    let workload = if paper_size {
        kind.paper_workload()
    } else {
        kind.small_workload()
    };
    let mut config = PlatformConfig::variant(variant, latency)
        .with_clusters(clusters)
        .with_fabric_contention()
        .with_memory_channels(channels)
        .with_arbitration(policy.clone());
    if matches!(policy, ArbitrationPolicy::FixedPriority) {
        config = config.with_cluster_priorities((0..clusters).map(|i| i as u8).collect());
    }
    let mut platform = Platform::new(config)?;
    let report = OffloadRunner::new(0xFAB).run_device_only(&mut platform, workload.as_ref())?;

    let initiators = platform
        .mem
        .fabric_stats()
        .into_iter()
        .map(|snap| InitiatorRow {
            initiator: snap.id.label(),
            accesses: snap.stats.accesses(),
            bytes: snap.stats.bytes,
            occupancy_cycles: snap.stats.occupancy_cycles,
            queue_cycles: snap.stats.queue_cycles,
            contended_grants: snap.stats.contended_grants,
        })
        .collect();

    let per_channel = platform
        .mem
        .channel_stats()
        .into_iter()
        .enumerate()
        .map(|(channel, stats)| ChannelRow { channel, stats })
        .collect();

    Ok(FabricPoint {
        kernel: workload.name().to_string(),
        clusters,
        variant,
        dram_latency: latency,
        channels: platform.mem.fabric().channel_count(),
        policy: policy.label(),
        total: report.stats.total.raw(),
        compute: report.stats.compute.raw(),
        dma_wait: report.stats.dma_wait.raw(),
        iotlb_hit_rate: report.iommu.iotlb.hit_rate(),
        verified: report.verified,
        grant_switches: platform.mem.fabric().grant_switches(),
        initiators,
        per_channel,
    })
}

/// Runs the full grid sequentially (the `sva_bench` driver parallelises over
/// [`run_point`] instead).
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn run(
    kind: KernelKind,
    paper_size: bool,
    clusters: &[usize],
    variants: &[SocVariant],
    latencies: &[u64],
    channels: &[usize],
    policies: &[ArbitrationPolicy],
) -> Result<FabricSweepResult> {
    let mut result = FabricSweepResult::default();
    for &n in clusters {
        for &variant in variants {
            for &latency in latencies {
                for &ch in channels {
                    for policy in policies {
                        result.points.push(run_point(
                            kind, paper_size, n, variant, latency, ch, policy,
                        )?);
                    }
                }
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_scales_and_reports_contention() {
        let result = run(
            KernelKind::Gemm,
            false,
            &[1, 2, 4],
            &[SocVariant::IommuLlc],
            &[200],
            &[1],
            &[ArbitrationPolicy::RoundRobin],
        )
        .unwrap();
        assert_eq!(result.points.len(), 3);
        assert!(result.points.iter().all(|p| p.verified));

        let one = result.get(1, SocVariant::IommuLlc, 200).unwrap();
        let four = result.get(4, SocVariant::IommuLlc, 200).unwrap();
        assert!(four.total < one.total, "sharding must cut wall-clock");
        // A single cluster observes no cross-initiator queueing; four
        // overlapping DMA streams must.
        assert_eq!(one.queue_cycles(), 0);
        assert!(four.queue_cycles() > 0);
        // One DMA initiator per cluster shows up in the fabric stats.
        let dma_rows = |p: &FabricPoint| {
            p.initiators
                .iter()
                .filter(|r| r.initiator.starts_with("dma"))
                .count()
        };
        assert_eq!(dma_rows(one), 1);
        assert_eq!(dma_rows(four), 4);
    }

    #[test]
    fn render_and_json_contain_every_point() {
        let result = run(
            KernelKind::Axpy,
            false,
            &[1, 2],
            &[SocVariant::Baseline, SocVariant::IommuLlc],
            &[200],
            &[2],
            &[ArbitrationPolicy::RoundRobin],
        )
        .unwrap();
        let text = result.render();
        assert!(text.contains("Baseline") && text.contains("IOMMU+LLC"));
        assert!(text.contains("round_robin"));
        let json = result.to_json();
        assert_eq!(json.matches("\"kernel\"").count(), 4);
        assert!(json.contains("\"initiators\""));
        assert!(json.contains("dma[1]"));
        assert!(json.contains("\"channels\": 2"));
        assert!(json.contains("\"policy\": \"round_robin\""));
        assert!(json.contains("\"per_channel\""));
    }

    #[test]
    fn more_channels_do_not_slow_a_contended_platform() {
        // The acceptance criterion of the multi-channel backend: at 4
        // clusters, wall-clock is monotonically non-increasing as the DRAM
        // path splits 1 → 2 → 4 ways.
        let totals: Vec<u64> = [1usize, 2, 4]
            .iter()
            .map(|&ch| {
                run_point(
                    KernelKind::Gemm,
                    false,
                    4,
                    SocVariant::IommuLlc,
                    200,
                    ch,
                    &ArbitrationPolicy::RoundRobin,
                )
                .unwrap()
                .total
            })
            .collect();
        assert!(
            totals[0] >= totals[1] && totals[1] >= totals[2],
            "wall-clock must not grow with channels: {totals:?}"
        );
    }

    #[test]
    fn policies_sweep_and_verify() {
        for policy in [
            ArbitrationPolicy::RoundRobin,
            ArbitrationPolicy::Weighted(vec![4, 2, 1, 1]),
            ArbitrationPolicy::FixedPriority,
        ] {
            let p = run_point(
                KernelKind::Axpy,
                false,
                4,
                SocVariant::IommuLlc,
                200,
                2,
                &policy,
            )
            .unwrap();
            assert!(p.verified, "{policy:?} run must verify");
            assert_eq!(p.policy, policy.label());
            assert_eq!(p.per_channel.len(), 2);
        }
    }
}
