//! Fabric-scaling sweep: cluster count × platform variant × DRAM latency,
//! plus the global-clock sub-grid (timed host interference × MSHR-style
//! PTW batching, [`FabricKnobs`]) and the translation sub-grid (two-level
//! TLB hierarchy × replacement policy × ATS/PRI demand paging,
//! [`TlbKnobs`] — per-level hit splits and page-request latency
//! percentiles in every point).
//!
//! This experiment goes beyond the paper: it scales the platform to N
//! accelerator clusters sharing the IOMMU and the memory fabric, shards one
//! kernel across them with static block scheduling, and reports
//!
//! * the device wall-clock (slowest shard) and its compute/DMA-wait split,
//! * the run's IOTLB hit rate (entries are tagged per device ID; note that
//!   shards are *simulated* sequentially, so cross-device thrashing of the
//!   four entries only appears at shard boundaries and the metric reads as
//!   near-flat in N — the global clock orders *accesses* on one timeline,
//!   but the IOTLB content itself still evolves in simulation order),
//! * per-initiator fabric statistics — accesses, bytes, bus occupancy and
//!   the cross-initiator queueing each DMA stream observed. Queueing is
//!   first-fit in shard order (a staircase across clusters, pessimistic for
//!   the last shard; see `sva_mem::fabric`), so read per-initiator queue
//!   cycles as a placement-order-dependent bound, not a fairness split.
//!
//! The sweep enables [fabric contention charging]
//! (`sva_mem::fabric::FabricConfig::contention_enabled`), so measured
//! queueing feeds back into latencies; with one cluster nothing queues and
//! the numbers equal the paper's single-cluster figures.
//!
//! [`run_point`] measures one combination and is deliberately standalone so
//! the `sva_bench` sweep driver can fan combinations out across worker
//! threads; [`run`] is the sequential convenience over the full grid.

use serde::{Deserialize, Serialize};

use sva_kernels::KernelKind;

use crate::config::{PlatformConfig, SocVariant};
use crate::offload::OffloadRunner;
use crate::platform::Platform;
use crate::report::{percent, sci, TextTable};
use sva_common::{ArbitrationPolicy, QueueDepths, Result};
use sva_host::HostTrafficConfig;
pub use sva_iommu::{TlbHierarchyConfig, TlbLevelConfig};
use sva_mem::ChannelStats;

/// The global-clock knobs of one measurement point: timed host traffic in
/// the window and the MSHR-style batched walker. `FabricKnobs::default()`
/// is the host-idle serial-walker baseline (the PR 1/2 engine).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FabricKnobs {
    /// Inject the default timed host-traffic stream into the window.
    pub host_traffic: bool,
    /// Enable the MSHR-style batched page-table walker.
    pub ptw_batching: bool,
}

impl FabricKnobs {
    /// Every combination, baseline first.
    pub const ALL: [FabricKnobs; 4] = [
        FabricKnobs {
            host_traffic: false,
            ptw_batching: false,
        },
        FabricKnobs {
            host_traffic: false,
            ptw_batching: true,
        },
        FabricKnobs {
            host_traffic: true,
            ptw_batching: false,
        },
        FabricKnobs {
            host_traffic: true,
            ptw_batching: true,
        },
    ];
}

/// The translation knobs of one measurement point: the two-level TLB
/// hierarchy and ATS/PRI demand paging. `TlbKnobs::default()` is the
/// paper prototype's single IOTLB with faults-are-errors.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TlbKnobs {
    /// Two-level hierarchy configuration (`None` = single-level IOTLB).
    pub hierarchy: Option<TlbHierarchyConfig>,
    /// Run with demand paging: no up-front mapping, faults are paged in
    /// through the page-request loop.
    pub demand_paging: bool,
}

impl TlbKnobs {
    /// Compact label used as the point's `tlb` field
    /// (`"single"` or e.g. `"l1:1x4-lru+l2:8x4-lru"`).
    pub fn label(&self) -> String {
        match self.hierarchy {
            None => "single".to_string(),
            Some(h) => format!(
                "l1:{}-{}+l2:{}-{}",
                h.l1.org.label(),
                h.l1.policy.label(),
                h.l2.org.label(),
                h.l2.policy.label()
            ),
        }
    }
}

/// Per-initiator numbers of one measurement point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InitiatorRow {
    /// Initiator label (`host`, `ptw`, `dma[3]`, …).
    pub initiator: String,
    /// Accesses granted by the fabric.
    pub accesses: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Data-bus occupancy attributed to the initiator.
    pub occupancy_cycles: u64,
    /// Cross-initiator queueing the initiator observed.
    pub queue_cycles: u64,
    /// Accesses that arrived while another initiator held the bus.
    pub contended_grants: u64,
    /// Issue stalls at full request queues (zero with unbounded depths).
    pub issue_stall_cycles: u64,
    /// Highest request-queue occupancy the initiator observed at admission.
    pub req_queue_peak: u64,
    /// Highest response-queue occupancy the initiator observed at a grant.
    pub rsp_queue_peak: u64,
}

/// Per-channel numbers of one measurement point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChannelRow {
    /// Channel index.
    pub channel: usize,
    /// The channel's fabric-port accounting (see `sva_mem::channels`).
    pub stats: ChannelStats,
}

/// One measurement point of the sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FabricPoint {
    /// Kernel measured.
    pub kernel: String,
    /// Number of accelerator clusters.
    pub clusters: usize,
    /// Platform variant.
    pub variant: SocVariant,
    /// DRAM latency (delayer cycles).
    pub dram_latency: u64,
    /// Number of DRAM channels.
    pub channels: usize,
    /// Arbitration policy label (`round_robin`, `weighted[..]`,
    /// `fixed_priority`).
    pub policy: String,
    /// Channel queue-depth label (`inf` for the unbounded reservation
    /// model, `req/rsp` for the split-transaction configuration).
    pub queue_depths: String,
    /// Request-queue depth (0 encodes unbounded in the JSON schema).
    pub req_queue_depth: u64,
    /// Response-queue depth (0 encodes unbounded in the JSON schema).
    pub rsp_queue_depth: u64,
    /// Whether the timed host-traffic stream was injected into the window.
    pub host_traffic: bool,
    /// Whether the MSHR-style batched walker was enabled.
    pub ptw_batching: bool,
    /// Translation-hierarchy label (`"single"` for the prototype IOTLB).
    pub tlb: String,
    /// Whether the run cold-started through ATS/PRI demand paging.
    pub demand_paging: bool,
    /// Device wall-clock cycles (slowest shard).
    pub total: u64,
    /// Aggregate compute cycles across shards.
    pub compute: u64,
    /// Aggregate DMA-wait cycles across shards.
    pub dma_wait: u64,
    /// Hit rate of the shared IOTLB (the L2 of the hierarchy; 0 when the
    /// variant has no IOMMU).
    pub iotlb_hit_rate: f64,
    /// Aggregate hit rate of the per-device L1 ATCs (0 in the single-level
    /// configuration).
    pub atc_hit_rate: f64,
    /// Page requests accepted into the page-request queue.
    pub page_requests: u64,
    /// Page requests dropped at the full queue (overflow ⇒ device backoff).
    pub page_requests_dropped: u64,
    /// Page faults serviced by the host (pages paged in on demand).
    pub faults_serviced: u64,
    /// Mean page-request service latency in cycles (0 without samples).
    pub page_req_latency_mean: f64,
    /// Approximate median page-request service latency.
    pub page_req_latency_p50: u64,
    /// Approximate 90th-percentile page-request service latency.
    pub page_req_latency_p90: u64,
    /// Approximate 99th-percentile page-request service latency.
    pub page_req_latency_p99: u64,
    /// Page-table walks performed.
    pub ptw_walks: u64,
    /// PTE reads the walker issued to memory.
    pub ptw_reads: u64,
    /// Walk levels served by MSHR coalescing (nonzero only with batching).
    pub ptw_coalesced_reads: u64,
    /// Peak live window-record count of the walker's MSHR walk table
    /// (0 with batching off).
    pub ptw_walk_table_events_peak: u64,
    /// Walk-table records folded by watermark compaction at device-window
    /// boundaries (0 with batching off).
    pub ptw_walk_table_compacted: u64,
    /// Peak size of the PRI `(device, page)` dedup index — the most page
    /// requests pending at once (0 with demand paging off).
    pub pri_pending_peak: u64,
    /// Whether the device results matched the host reference.
    pub verified: bool,
    /// Grants whose initiator differed from the previous grant's.
    pub grant_switches: u64,
    /// Per-initiator fabric statistics.
    pub initiators: Vec<InitiatorRow>,
    /// Per-channel DRAM statistics.
    pub per_channel: Vec<ChannelRow>,
}

impl FabricPoint {
    /// Total cross-initiator queueing observed at this point.
    pub fn queue_cycles(&self) -> u64 {
        self.initiators.iter().map(|r| r.queue_cycles).sum()
    }

    /// Total issue stalls (request-queue backpressure) observed at this
    /// point.
    pub fn issue_stall_cycles(&self) -> u64 {
        self.initiators.iter().map(|r| r.issue_stall_cycles).sum()
    }
}

/// The full sweep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FabricSweepResult {
    /// All measurement points.
    pub points: Vec<FabricPoint>,
}

impl FabricSweepResult {
    /// Finds the point for a given cluster/variant/latency combination with
    /// the given channel count and policy label, at the host-idle
    /// serial-walker baseline knobs.
    pub fn get_with(
        &self,
        clusters: usize,
        variant: SocVariant,
        latency: u64,
        channels: usize,
        policy: &str,
    ) -> Option<&FabricPoint> {
        self.points.iter().find(|p| {
            p.clusters == clusters
                && p.variant == variant
                && p.dram_latency == latency
                && p.channels == channels
                && p.policy == policy
                && p.queue_depths == "inf"
                && !p.host_traffic
                && !p.ptw_batching
                && p.tlb == "single"
                && !p.demand_paging
        })
    }

    /// Finds the point of the TLB sub-grid for a given cluster count, TLB
    /// label and demand-paging flag (single channel, round-robin,
    /// IOMMU+LLC, baseline fabric knobs).
    pub fn get_tlb(
        &self,
        clusters: usize,
        latency: u64,
        tlb: &str,
        demand_paging: bool,
    ) -> Option<&FabricPoint> {
        self.points.iter().find(|p| {
            p.clusters == clusters
                && p.variant == SocVariant::IommuLlc
                && p.dram_latency == latency
                && p.channels == 1
                && p.policy == "round_robin"
                && p.queue_depths == "inf"
                && !p.host_traffic
                && !p.ptw_batching
                && p.tlb == tlb
                && p.demand_paging == demand_paging
        })
    }

    /// Finds the point of the queue-depth sub-grid for a given cluster
    /// count, depth label and knob combination (single channel,
    /// round-robin, IOMMU+LLC).
    pub fn get_depths(
        &self,
        clusters: usize,
        latency: u64,
        depths: &str,
        knobs: FabricKnobs,
    ) -> Option<&FabricPoint> {
        self.points.iter().find(|p| {
            p.clusters == clusters
                && p.variant == SocVariant::IommuLlc
                && p.dram_latency == latency
                && p.channels == 1
                && p.policy == "round_robin"
                && p.queue_depths == depths
                && p.host_traffic == knobs.host_traffic
                && p.ptw_batching == knobs.ptw_batching
                && p.tlb == "single"
                && !p.demand_paging
        })
    }

    /// Finds the point of the host-interference × PTW-batching sub-grid for
    /// a given cluster count and knob combination (single channel,
    /// round-robin, IOMMU+LLC).
    pub fn get_knobs(
        &self,
        clusters: usize,
        latency: u64,
        knobs: FabricKnobs,
    ) -> Option<&FabricPoint> {
        self.points.iter().find(|p| {
            p.clusters == clusters
                && p.variant == SocVariant::IommuLlc
                && p.dram_latency == latency
                && p.channels == 1
                && p.policy == "round_robin"
                && p.queue_depths == "inf"
                && p.host_traffic == knobs.host_traffic
                && p.ptw_batching == knobs.ptw_batching
                && p.tlb == "single"
                && !p.demand_paging
        })
    }

    /// Finds the baseline point (single channel, round-robin) for a given
    /// cluster/variant/latency combination.
    pub fn get(&self, clusters: usize, variant: SocVariant, latency: u64) -> Option<&FabricPoint> {
        self.get_with(clusters, variant, latency, 1, "round_robin")
    }

    /// Renders the scaling table: one row per point with wall-clock, speedup
    /// over one cluster, DMA share, IOTLB hit rate and fabric contention.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Clusters",
            "Config",
            "Latency",
            "Ch",
            "Policy",
            "Qdepth",
            "Host",
            "PTW",
            "TLB",
            "Paging",
            "Wall cyc",
            "Speedup",
            "%DMA",
            "ATC hit",
            "IOTLB hit",
            "Faults",
            "Queue cyc",
            "Stall cyc",
            "Switches",
        ]);
        for p in &self.points {
            let speedup = self
                .get_with(1, p.variant, p.dram_latency, p.channels, &p.policy)
                .or_else(|| self.get(1, p.variant, p.dram_latency))
                .map(|one| one.total as f64 / p.total as f64)
                .map(|s| format!("{s:.2}x"))
                .unwrap_or_else(|| "-".to_string());
            let dma_share = if p.total == 0 {
                0.0
            } else {
                p.dma_wait as f64 / (p.total as f64 * p.clusters as f64)
            };
            table.row(vec![
                p.clusters.to_string(),
                p.variant.label().to_string(),
                p.dram_latency.to_string(),
                p.channels.to_string(),
                p.policy.clone(),
                p.queue_depths.clone(),
                if p.host_traffic { "noisy" } else { "idle" }.to_string(),
                if p.ptw_batching { "batched" } else { "serial" }.to_string(),
                p.tlb.clone(),
                if p.demand_paging { "demand" } else { "premap" }.to_string(),
                sci(p.total),
                speedup,
                percent(dma_share),
                percent(p.atc_hit_rate),
                percent(p.iotlb_hit_rate),
                p.faults_serviced.to_string(),
                p.queue_cycles().to_string(),
                p.issue_stall_cycles().to_string(),
                p.grant_switches.to_string(),
            ]);
        }
        table.render()
    }

    /// Serialises the sweep as JSON (hand-rolled; the build is offline and
    /// carries no serde_json).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"fabric_sweep\",\n  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let initiators: Vec<String> = p
                .initiators
                .iter()
                .map(|r| {
                    format!(
                        "{{\"initiator\": \"{}\", \"accesses\": {}, \"bytes\": {}, \
                         \"occupancy_cycles\": {}, \"queue_cycles\": {}, \"contended_grants\": {}, \
                         \"issue_stall_cycles\": {}, \"req_queue_peak\": {}, \"rsp_queue_peak\": {}}}",
                        r.initiator,
                        r.accesses,
                        r.bytes,
                        r.occupancy_cycles,
                        r.queue_cycles,
                        r.contended_grants,
                        r.issue_stall_cycles,
                        r.req_queue_peak,
                        r.rsp_queue_peak
                    )
                })
                .collect();
            let channels: Vec<String> = p
                .per_channel
                .iter()
                .map(|c| {
                    format!(
                        "{{\"channel\": {}, \"grants\": {}, \"bytes\": {}, \
                         \"occupancy_cycles\": {}, \"queue_cycles\": {}, \
                         \"issue_stall_cycles\": {}, \"req_queue_peak\": {}, \"rsp_queue_peak\": {}}}",
                        c.channel,
                        c.stats.grants,
                        c.stats.bytes,
                        c.stats.occupancy_cycles,
                        c.stats.queue_cycles,
                        c.stats.issue_stall_cycles,
                        c.stats.req_queue_peak,
                        c.stats.rsp_queue_peak
                    )
                })
                .collect();
            out.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"clusters\": {}, \"variant\": \"{}\", \
                 \"dram_latency\": {}, \"channels\": {}, \"policy\": \"{}\", \
                 \"queue_depths\": \"{}\", \"req_queue_depth\": {}, \"rsp_queue_depth\": {}, \
                 \"host_traffic\": {}, \"ptw_batching\": {}, \
                 \"tlb\": \"{}\", \"demand_paging\": {}, \
                 \"total\": {}, \"compute\": {}, \"dma_wait\": {}, \
                 \"iotlb_hit_rate\": {:.6}, \"atc_hit_rate\": {:.6}, \
                 \"page_requests\": {}, \"page_requests_dropped\": {}, \
                 \"faults_serviced\": {}, \"page_req_latency_mean\": {:.1}, \
                 \"page_req_latency_p50\": {}, \"page_req_latency_p90\": {}, \
                 \"page_req_latency_p99\": {}, \
                 \"ptw_walks\": {}, \"ptw_reads\": {}, \"ptw_coalesced_reads\": {}, \
                 \"ptw_walk_table_events_peak\": {}, \"ptw_walk_table_compacted\": {}, \
                 \"pri_pending_peak\": {}, \
                 \"verified\": {}, \"grant_switches\": {}, \
                 \"initiators\": [{}], \"per_channel\": [{}]}}{}\n",
                p.kernel,
                p.clusters,
                p.variant.label(),
                p.dram_latency,
                p.channels,
                p.policy,
                p.queue_depths,
                p.req_queue_depth,
                p.rsp_queue_depth,
                p.host_traffic,
                p.ptw_batching,
                p.tlb,
                p.demand_paging,
                p.total,
                p.compute,
                p.dma_wait,
                p.iotlb_hit_rate,
                p.atc_hit_rate,
                p.page_requests,
                p.page_requests_dropped,
                p.faults_serviced,
                p.page_req_latency_mean,
                p.page_req_latency_p50,
                p.page_req_latency_p90,
                p.page_req_latency_p99,
                p.ptw_walks,
                p.ptw_reads,
                p.ptw_coalesced_reads,
                p.ptw_walk_table_events_peak,
                p.ptw_walk_table_compacted,
                p.pri_pending_peak,
                p.verified,
                p.grant_switches,
                initiators.join(", "),
                channels.join(", "),
                if i + 1 == self.points.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// [`FabricSweepResult::to_json`] with an execution-metadata block
    /// spliced in (`"meta"`, between the experiment tag and the points):
    /// worker count and wallclock timings, aligned with `points` by index.
    /// The plain `to_json` stays meta-free so replayed/merged result files
    /// compare structurally.
    pub fn to_json_with_meta(&self, meta: &SweepMeta) -> String {
        let timings: Vec<String> = meta
            .points_wallclock_ms
            .iter()
            .map(u64::to_string)
            .collect();
        let block = format!(
            "\n  \"meta\": {{\"workers\": {}, \"total_wallclock_ms\": {}, \
             \"points_wallclock_ms\": [{}]}},",
            meta.workers,
            meta.total_wallclock_ms,
            timings.join(", ")
        );
        let marker = "\"experiment\": \"fabric_sweep\",";
        self.to_json()
            .replacen(marker, &format!("{marker}{block}"), 1)
    }
}

/// Execution metadata of one sweep run: how the work was parallelised and
/// how long it took, recorded into the bench JSON so thread-scaling and
/// speed regressions are visible PR-over-PR.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SweepMeta {
    /// Worker threads the sweep ran on.
    pub workers: usize,
    /// End-to-end wallclock of the sweep, milliseconds.
    pub total_wallclock_ms: u64,
    /// Per-point wallclock, milliseconds, aligned with `points` by index.
    pub points_wallclock_ms: Vec<u64>,
}

/// Measures one (kernel, clusters, variant, latency, channels, policy,
/// knobs) combination on a fresh platform with fabric-contention charging
/// enabled.
///
/// Under [`ArbitrationPolicy::FixedPriority`] cluster `i` is given DMA
/// priority `i`, so the strict ordering is observable: shards are simulated
/// in cluster order, and first-fit placement already lets the earliest
/// shard reserve first — ascending priorities let *later* shards outrank
/// those earlier reservations, which is exactly the part round-robin cannot
/// express (descending or equal priorities would degenerate to it).
///
/// With [`FabricKnobs::host_traffic`] the default timed host stream is
/// injected into the measurement window (turning the global-clock engine
/// on, so host and PTW queueing is charged); with
/// [`FabricKnobs::ptw_batching`] the walker coalesces concurrent walks in
/// its MSHR-style walk table. Finite `depths` switch the fabric into the
/// split-transaction model: full request queues stall initiator issue
/// (reported per initiator as `issue_stall_cycles`), full response queues
/// delay grants. [`TlbKnobs`] select the translation hierarchy (per-device
/// L1 ATC + shared L2 IOTLB with per-level hit splits in the point) and
/// ATS/PRI demand paging (cold-start page-in with fault-latency
/// percentiles).
///
/// # Errors
///
/// Propagates platform construction and execution failures.
#[allow(clippy::too_many_arguments)] // one parameter per sweep dimension
pub fn run_point(
    kind: KernelKind,
    paper_size: bool,
    clusters: usize,
    variant: SocVariant,
    latency: u64,
    channels: usize,
    policy: &ArbitrationPolicy,
    depths: QueueDepths,
    knobs: FabricKnobs,
    tlb: TlbKnobs,
) -> Result<FabricPoint> {
    let workload = if paper_size {
        kind.paper_workload()
    } else {
        kind.small_workload()
    };
    let mut config = PlatformConfig::variant(variant, latency)
        .with_clusters(clusters)
        .with_fabric_contention()
        .with_memory_channels(channels)
        .with_arbitration(policy.clone())
        .with_queue_depths(depths);
    if matches!(policy, ArbitrationPolicy::FixedPriority) {
        config = config.with_cluster_priorities((0..clusters).map(|i| i as u8).collect());
    }
    if knobs.host_traffic {
        config = config.with_host_traffic(HostTrafficConfig::default());
    }
    if knobs.ptw_batching {
        config = config.with_ptw_batching();
    }
    if let Some(hierarchy) = tlb.hierarchy {
        config = config.with_tlb_hierarchy(hierarchy);
    }
    if tlb.demand_paging {
        config = config.with_demand_paging();
    }
    let mut platform = Platform::new(config)?;
    let report = OffloadRunner::new(0xFAB).run_device_only(&mut platform, workload.as_ref())?;

    let initiators = platform
        .mem
        .fabric_stats()
        .into_iter()
        .map(|snap| InitiatorRow {
            initiator: snap.id.label(),
            accesses: snap.stats.accesses(),
            bytes: snap.stats.bytes,
            occupancy_cycles: snap.stats.occupancy_cycles,
            queue_cycles: snap.stats.queue_cycles,
            contended_grants: snap.stats.contended_grants,
            issue_stall_cycles: snap.stats.issue_stall_cycles,
            req_queue_peak: snap.stats.req_queue_peak,
            rsp_queue_peak: snap.stats.rsp_queue_peak,
        })
        .collect();

    let per_channel = platform
        .mem
        .channel_stats()
        .into_iter()
        .enumerate()
        .map(|(channel, stats)| ChannelRow { channel, stats })
        .collect();

    Ok(FabricPoint {
        kernel: workload.name().to_string(),
        clusters,
        variant,
        dram_latency: latency,
        channels: platform.mem.fabric().channel_count(),
        policy: policy.label(),
        queue_depths: depths.label(),
        req_queue_depth: if depths.req == usize::MAX {
            0
        } else {
            depths.req as u64
        },
        rsp_queue_depth: if depths.rsp == usize::MAX {
            0
        } else {
            depths.rsp as u64
        },
        host_traffic: knobs.host_traffic,
        ptw_batching: knobs.ptw_batching,
        tlb: tlb.label(),
        demand_paging: tlb.demand_paging,
        total: report.stats.total.raw(),
        compute: report.stats.compute.raw(),
        dma_wait: report.stats.dma_wait.raw(),
        iotlb_hit_rate: report.iommu.iotlb.hit_rate(),
        atc_hit_rate: report.iommu.atc.hit_rate(),
        page_requests: report.iommu.page_requests.requests,
        page_requests_dropped: report.iommu.page_requests.dropped,
        faults_serviced: report.iommu.page_requests.serviced,
        page_req_latency_mean: report.iommu.page_requests.service_time.mean(),
        page_req_latency_p50: report.iommu.page_request_p50,
        page_req_latency_p90: report.iommu.page_request_p90,
        page_req_latency_p99: report.iommu.page_request_p99,
        ptw_walks: report.iommu.ptw_walks,
        ptw_reads: report.iommu.ptw_reads,
        ptw_coalesced_reads: report.iommu.ptw_coalesced_reads,
        ptw_walk_table_events_peak: report.iommu.ptw_walk_table_events_peak as u64,
        ptw_walk_table_compacted: report.iommu.ptw_walk_table_compacted,
        pri_pending_peak: report.iommu.page_request_pending_peak as u64,
        verified: report.verified,
        grant_switches: platform.mem.fabric().grant_switches(),
        initiators,
        per_channel,
    })
}

/// Runs the full grid sequentially at the baseline knobs (the `sva_bench`
/// driver parallelises over [`run_point`] instead and adds the
/// host-interference × PTW-batching sub-grid).
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn run(
    kind: KernelKind,
    paper_size: bool,
    clusters: &[usize],
    variants: &[SocVariant],
    latencies: &[u64],
    channels: &[usize],
    policies: &[ArbitrationPolicy],
) -> Result<FabricSweepResult> {
    let mut result = FabricSweepResult::default();
    for &n in clusters {
        for &variant in variants {
            for &latency in latencies {
                for &ch in channels {
                    for policy in policies {
                        result.points.push(run_point(
                            kind,
                            paper_size,
                            n,
                            variant,
                            latency,
                            ch,
                            policy,
                            QueueDepths::UNBOUNDED,
                            FabricKnobs::default(),
                            TlbKnobs::default(),
                        )?);
                    }
                }
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_scales_and_reports_contention() {
        let result = run(
            KernelKind::Gemm,
            false,
            &[1, 2, 4],
            &[SocVariant::IommuLlc],
            &[200],
            &[1],
            &[ArbitrationPolicy::RoundRobin],
        )
        .unwrap();
        assert_eq!(result.points.len(), 3);
        assert!(result.points.iter().all(|p| p.verified));

        let one = result.get(1, SocVariant::IommuLlc, 200).unwrap();
        let four = result.get(4, SocVariant::IommuLlc, 200).unwrap();
        assert!(four.total < one.total, "sharding must cut wall-clock");
        // A single DMA stream observes no cross-initiator queueing (its own
        // bursts never conflict with themselves); four overlapping streams
        // must. PTW probes may *record* waits behind DMA occupancy at any
        // cluster count — that accounting is live since the global clock —
        // so the invariant is on the DMA rows.
        let dma_queue = |p: &FabricPoint| -> u64 {
            p.initiators
                .iter()
                .filter(|r| r.initiator.starts_with("dma"))
                .map(|r| r.queue_cycles)
                .sum()
        };
        assert_eq!(dma_queue(one), 0);
        assert!(dma_queue(four) > 0);
        // One DMA initiator per cluster shows up in the fabric stats.
        let dma_rows = |p: &FabricPoint| {
            p.initiators
                .iter()
                .filter(|r| r.initiator.starts_with("dma"))
                .count()
        };
        assert_eq!(dma_rows(one), 1);
        assert_eq!(dma_rows(four), 4);
    }

    #[test]
    fn knob_sub_grid_reports_host_and_walker_effects() {
        let points: Vec<FabricPoint> = FabricKnobs::ALL
            .iter()
            .map(|&knobs| {
                run_point(
                    KernelKind::Gemm,
                    false,
                    4,
                    SocVariant::IommuLlc,
                    200,
                    1,
                    &ArbitrationPolicy::RoundRobin,
                    QueueDepths::UNBOUNDED,
                    knobs,
                    TlbKnobs::default(),
                )
                .unwrap()
            })
            .collect();
        assert!(points.iter().all(|p| p.verified));
        let result = FabricSweepResult { points };
        let base = result.get_knobs(4, 200, FabricKnobs::ALL[0]).unwrap();
        let batched = result.get_knobs(4, 200, FabricKnobs::ALL[1]).unwrap();
        let noisy = result.get_knobs(4, 200, FabricKnobs::ALL[2]).unwrap();
        // Host interference slows the device and shows up in the host row.
        assert!(noisy.total > base.total, "host traffic must cost cycles");
        let host_queue = |p: &FabricPoint| {
            p.initiators
                .iter()
                .find(|r| r.initiator == "host_stream")
                .map(|r| r.queue_cycles)
                .unwrap_or(0)
        };
        assert!(host_queue(noisy) > 0, "host stream queues behind DMA");
        // The batched walker coalesces and cuts memory reads.
        assert_eq!(base.ptw_coalesced_reads, 0);
        assert!(batched.ptw_coalesced_reads > 0);
        assert!(batched.ptw_reads < base.ptw_reads);
        assert_eq!(
            batched.ptw_reads + batched.ptw_coalesced_reads,
            base.ptw_reads,
            "walk levels conserve between the serial and batched walkers"
        );
        // JSON carries the sub-grid fields.
        let json = result.to_json();
        assert!(json.contains("\"host_traffic\": true"));
        assert!(json.contains("\"ptw_batching\": true"));
        assert!(json.contains("\"ptw_coalesced_reads\""));
    }

    #[test]
    fn queue_depth_sub_grid_reports_issue_stalls() {
        let run_depths = |depths: QueueDepths| {
            run_point(
                KernelKind::Gemm,
                false,
                4,
                SocVariant::IommuLlc,
                200,
                1,
                &ArbitrationPolicy::RoundRobin,
                depths,
                FabricKnobs {
                    host_traffic: true,
                    ptw_batching: true,
                },
                TlbKnobs::default(),
            )
            .unwrap()
        };
        let unbounded = run_depths(QueueDepths::UNBOUNDED);
        let shallow = run_depths(QueueDepths::bounded(4, 4));
        assert!(unbounded.verified && shallow.verified);
        assert_eq!(unbounded.issue_stall_cycles(), 0, "inf depths never stall");
        assert!(
            shallow.issue_stall_cycles() > 0,
            "finite request queues must stall issue under contention"
        );
        assert!(
            shallow.total >= unbounded.total,
            "backpressure cannot speed the device up: {} vs {}",
            shallow.total,
            unbounded.total
        );
        let dma_stalls: u64 = shallow
            .initiators
            .iter()
            .filter(|r| r.initiator.starts_with("dma"))
            .map(|r| r.issue_stall_cycles)
            .sum();
        assert!(dma_stalls > 0, "DMA issue must observe backpressure");
        let result = FabricSweepResult {
            points: vec![unbounded, shallow],
        };
        let point = result
            .get_depths(
                4,
                200,
                "4/4",
                FabricKnobs {
                    host_traffic: true,
                    ptw_batching: true,
                },
            )
            .expect("depth sub-grid point is addressable");
        assert_eq!(point.req_queue_depth, 4);
        let json = result.to_json();
        assert!(json.contains("\"queue_depths\": \"inf\""));
        assert!(json.contains("\"queue_depths\": \"4/4\""));
        assert!(json.contains("\"req_queue_depth\": 4"));
        assert!(json.contains("\"issue_stall_cycles\""));
        assert!(json.contains("\"req_queue_peak\""));
    }

    #[test]
    fn sweep_meta_is_spliced_into_the_json() {
        let result = FabricSweepResult::default();
        let meta = SweepMeta {
            workers: 3,
            total_wallclock_ms: 1234,
            points_wallclock_ms: vec![400, 800],
        };
        let json = result.to_json_with_meta(&meta);
        assert!(json.contains("\"experiment\": \"fabric_sweep\""));
        assert!(json.contains(
            "\"meta\": {\"workers\": 3, \"total_wallclock_ms\": 1234, \
             \"points_wallclock_ms\": [400, 800]}"
        ));
        assert!(
            !result.to_json().contains("\"meta\""),
            "the plain serialisation stays meta-free"
        );
    }

    #[test]
    fn tlb_sub_grid_reports_hierarchy_splits_and_demand_paging() {
        let hierarchy = TlbHierarchyConfig::default();
        let run_tlb = |tlb: TlbKnobs| {
            run_point(
                KernelKind::Gemm,
                false,
                2,
                SocVariant::IommuLlc,
                200,
                1,
                &ArbitrationPolicy::RoundRobin,
                QueueDepths::UNBOUNDED,
                FabricKnobs::default(),
                tlb,
            )
            .unwrap()
        };
        let single = run_tlb(TlbKnobs::default());
        let hier = run_tlb(TlbKnobs {
            hierarchy: Some(hierarchy),
            demand_paging: false,
        });
        let demand = run_tlb(TlbKnobs {
            hierarchy: Some(hierarchy),
            demand_paging: true,
        });
        assert!(single.verified && hier.verified && demand.verified);

        assert_eq!(single.tlb, "single");
        assert_eq!(single.atc_hit_rate, 0.0, "no ATC without the hierarchy");
        assert_eq!(single.faults_serviced, 0);

        assert!(hier.atc_hit_rate > 0.0, "the hierarchy splits hits into L1");
        assert_eq!(hier.faults_serviced, 0, "pre-mapped runs never fault");

        assert!(demand.demand_paging);
        assert!(demand.faults_serviced > 0, "cold start pages in on demand");
        assert!(demand.page_requests >= demand.faults_serviced);
        assert!(demand.page_req_latency_p50 > 0);
        assert!(demand.page_req_latency_p99 >= demand.page_req_latency_p50);
        assert!(
            demand.total > hier.total,
            "demand paging must cost wall-clock: {} vs {}",
            demand.total,
            hier.total
        );

        // Points are addressable and the JSON schema carries the fields.
        let label = hier.tlb.clone();
        let result = FabricSweepResult {
            points: vec![single, hier, demand],
        };
        assert!(result.get_tlb(2, 200, "single", false).is_some());
        assert!(result.get_tlb(2, 200, &label, true).is_some());
        assert!(
            result.get(2, SocVariant::IommuLlc, 200).is_some(),
            "the baseline getter still finds the single-level point"
        );
        let json = result.to_json();
        assert!(json.contains("\"tlb\": \"single\""));
        assert!(json.contains("\"tlb\": \"l1:1x4-lru+l2:8x4-lru\""));
        assert!(json.contains("\"demand_paging\": true"));
        assert!(json.contains("\"atc_hit_rate\""));
        assert!(json.contains("\"faults_serviced\""));
        assert!(json.contains("\"page_req_latency_p99\""));
    }

    #[test]
    fn render_and_json_contain_every_point() {
        let result = run(
            KernelKind::Axpy,
            false,
            &[1, 2],
            &[SocVariant::Baseline, SocVariant::IommuLlc],
            &[200],
            &[2],
            &[ArbitrationPolicy::RoundRobin],
        )
        .unwrap();
        let text = result.render();
        assert!(text.contains("Baseline") && text.contains("IOMMU+LLC"));
        assert!(text.contains("round_robin"));
        let json = result.to_json();
        assert_eq!(json.matches("\"kernel\"").count(), 4);
        assert!(json.contains("\"initiators\""));
        assert!(json.contains("dma[1]"));
        assert!(json.contains("\"channels\": 2"));
        assert!(json.contains("\"policy\": \"round_robin\""));
        assert!(json.contains("\"per_channel\""));
    }

    #[test]
    fn more_channels_do_not_slow_a_contended_platform() {
        // The acceptance criterion of the multi-channel backend: at 4
        // clusters, wall-clock is monotonically non-increasing as the DRAM
        // path splits 1 → 2 → 4 ways.
        let totals: Vec<u64> = [1usize, 2, 4]
            .iter()
            .map(|&ch| {
                run_point(
                    KernelKind::Gemm,
                    false,
                    4,
                    SocVariant::IommuLlc,
                    200,
                    ch,
                    &ArbitrationPolicy::RoundRobin,
                    QueueDepths::UNBOUNDED,
                    FabricKnobs::default(),
                    TlbKnobs::default(),
                )
                .unwrap()
                .total
            })
            .collect();
        assert!(
            totals[0] >= totals[1] && totals[1] >= totals[2],
            "wall-clock must not grow with channels: {totals:?}"
        );
    }

    #[test]
    fn policies_sweep_and_verify() {
        for policy in [
            ArbitrationPolicy::RoundRobin,
            ArbitrationPolicy::Weighted(vec![4, 2, 1, 1]),
            ArbitrationPolicy::FixedPriority,
        ] {
            let p = run_point(
                KernelKind::Axpy,
                false,
                4,
                SocVariant::IommuLlc,
                200,
                2,
                &policy,
                QueueDepths::UNBOUNDED,
                FabricKnobs::default(),
                TlbKnobs::default(),
            )
            .unwrap();
            assert!(p.verified, "{policy:?} run must verify");
            assert_eq!(p.policy, policy.label());
            assert_eq!(p.per_channel.len(), 2);
        }
    }
}
