//! One module per table / figure of the paper's evaluation.
//!
//! Every experiment exposes a `run` function taking explicit parameters
//! (sweeps, problem sizes) and returning structured results, plus a
//! `render`-style helper producing the paper-style text table. The benchmark
//! binaries in `sva-bench` are thin wrappers around these entry points, and
//! EXPERIMENTS.md records their output next to the paper's numbers.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table1`] | Table I — kernel inventory |
//! | [`kernel_runtime`] | Table II and Figure 4 — device runtime and %DMA per kernel, latency and variant |
//! | [`offload_breakdown`] | Figure 2 (left) — axpy application breakdown per offload mode |
//! | [`copy_vs_map`] | Figure 2 (right) and Figure 3 — copy vs map time over input size and latency |
//! | [`ptw_time`] | Figure 5 — average page-table-walk time with/without LLC and host interference |
//! | [`ablation`] | Design-choice ablations called out in DESIGN.md (IOTLB size, DMA bypass, outstanding bursts, flush-before-map) |
//! | [`fabric`] | Beyond the paper — N-cluster fabric scaling with per-initiator contention statistics |
//! | [`serving`] | Beyond the paper — open-loop multi-tenant serving with SLO percentiles |

pub mod ablation;
pub mod copy_vs_map;
pub mod fabric;
pub mod kernel_runtime;
pub mod offload_breakdown;
pub mod ptw_time;
pub mod serving;
pub mod table1;

pub use copy_vs_map::{CopyVsMapPoint, CopyVsMapResult};
pub use fabric::{FabricPoint, FabricSweepResult};
pub use kernel_runtime::{KernelRuntimePoint, KernelRuntimeResult};
pub use offload_breakdown::{OffloadBreakdownResult, OffloadCase};
pub use ptw_time::{PtwPoint, PtwResultSet};
pub use serving::ServingSweepResult;
