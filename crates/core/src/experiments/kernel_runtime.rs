//! Table II / Figure 4: device runtime, DMA share and IOMMU overhead per
//! kernel, DRAM latency and platform variant.
//!
//! For every kernel and DRAM latency the experiment runs the three platform
//! variants (*Baseline*, *IOMMU*, *IOMMU + LLC*), measuring only the
//! accelerator's execution (offload and synchronisation time excluded, as in
//! the paper). Table II reports absolute cycles and the share of time spent
//! waiting for DMA; Figure 4 reports the same data normalised to the
//! baseline, with the IOMMU overhead percentage annotated.

use serde::{Deserialize, Serialize};

use sva_kernels::KernelKind;

use crate::config::{PlatformConfig, SocVariant};
use crate::offload::OffloadRunner;
use crate::platform::Platform;
use crate::report::{percent, sci, TextTable};
use sva_common::Result;

/// One measurement point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KernelRuntimePoint {
    /// Kernel measured.
    pub kernel: String,
    /// DRAM latency (delayer cycles).
    pub dram_latency: u64,
    /// Platform variant.
    pub variant: SocVariant,
    /// Total device cycles.
    pub total: u64,
    /// Cycles the cluster waited for DMA.
    pub dma_wait: u64,
    /// DMA share of the runtime.
    pub dma_fraction: f64,
    /// Whether the device results matched the host reference.
    pub verified: bool,
}

/// The full sweep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct KernelRuntimeResult {
    /// All measurement points.
    pub points: Vec<KernelRuntimePoint>,
}

impl KernelRuntimeResult {
    /// Finds the point for a given combination.
    pub fn get(
        &self,
        kernel: &str,
        latency: u64,
        variant: SocVariant,
    ) -> Option<&KernelRuntimePoint> {
        self.points
            .iter()
            .find(|p| p.kernel == kernel && p.dram_latency == latency && p.variant == variant)
    }

    /// Runtime overhead of a variant relative to the baseline at the same
    /// latency (Figure 4's annotations), as a fraction.
    pub fn overhead_vs_baseline(
        &self,
        kernel: &str,
        latency: u64,
        variant: SocVariant,
    ) -> Option<f64> {
        let base = self.get(kernel, latency, SocVariant::Baseline)?;
        let v = self.get(kernel, latency, variant)?;
        Some(v.total as f64 / base.total as f64 - 1.0)
    }

    /// Renders the Table II layout: one block of rows per kernel, one column
    /// per latency, three variant rows (cycles and %DMA).
    pub fn render_table2(&self, latencies: &[u64]) -> String {
        let mut header = vec!["Kernel".to_string(), "Config".to_string()];
        for l in latencies {
            header.push(format!("{l} cyc"));
            header.push(format!("%DMA@{l}"));
        }
        let mut table = TextTable::new(header);
        let kernels: Vec<String> = {
            let mut seen = Vec::new();
            for p in &self.points {
                if !seen.contains(&p.kernel) {
                    seen.push(p.kernel.clone());
                }
            }
            seen
        };
        for kernel in &kernels {
            for variant in SocVariant::ALL {
                let mut row = vec![kernel.clone(), variant.label().to_string()];
                for &l in latencies {
                    if let Some(p) = self.get(kernel, l, variant) {
                        row.push(sci(p.total));
                        row.push(percent(p.dma_fraction));
                    } else {
                        row.push("-".to_string());
                        row.push("-".to_string());
                    }
                }
                table.row(row);
            }
        }
        table.render()
    }

    /// Renders the Figure 4 layout: runtime relative to the baseline plus the
    /// overhead annotation for the IOMMU variants.
    pub fn render_fig4(&self, latencies: &[u64]) -> String {
        let mut table = TextTable::new(vec![
            "Kernel",
            "Latency",
            "Config",
            "Relative runtime",
            "IOMMU overhead",
        ]);
        let kernels: Vec<String> = {
            let mut seen = Vec::new();
            for p in &self.points {
                if !seen.contains(&p.kernel) {
                    seen.push(p.kernel.clone());
                }
            }
            seen
        };
        for kernel in &kernels {
            for &l in latencies {
                for variant in SocVariant::ALL {
                    let (Some(p), Some(base)) = (
                        self.get(kernel, l, variant),
                        self.get(kernel, l, SocVariant::Baseline),
                    ) else {
                        continue;
                    };
                    let rel = p.total as f64 / base.total as f64;
                    let overhead = if variant == SocVariant::Baseline {
                        "-".to_string()
                    } else {
                        percent(rel - 1.0)
                    };
                    table.row(vec![
                        kernel.clone(),
                        l.to_string(),
                        variant.label().to_string(),
                        format!("{rel:.3}"),
                        overhead,
                    ]);
                }
            }
        }
        table.render()
    }
}

/// Runs the sweep for the given kernels and latencies.
///
/// `paper_size` selects the paper's problem sizes; `false` selects reduced
/// sizes for fast functional testing.
///
/// # Errors
///
/// Propagates platform construction and execution failures.
pub fn run(
    kernels: &[KernelKind],
    latencies: &[u64],
    paper_size: bool,
) -> Result<KernelRuntimeResult> {
    let mut result = KernelRuntimeResult::default();
    for &kind in kernels {
        let workload = if paper_size {
            kind.paper_workload()
        } else {
            kind.small_workload()
        };
        for &latency in latencies {
            for variant in SocVariant::ALL {
                let mut platform = Platform::new(PlatformConfig::variant(variant, latency))?;
                let report =
                    OffloadRunner::new(0xBEEF).run_device_only(&mut platform, workload.as_ref())?;
                result.points.push(KernelRuntimePoint {
                    kernel: workload.name().to_string(),
                    dram_latency: latency,
                    variant,
                    total: report.stats.total.raw(),
                    dma_wait: report.stats.dma_wait.raw(),
                    dma_fraction: report.stats.dma_fraction(),
                    verified: report.verified,
                });
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_reproduces_the_papers_shape() {
        let result = run(&[KernelKind::Gemm, KernelKind::Heat3d], &[200, 1000], false).unwrap();
        assert_eq!(result.points.len(), 2 * 2 * 3);
        assert!(result.points.iter().all(|p| p.verified));

        // DMA share grows with latency for the baseline.
        for kernel in ["gemm", "heat3d"] {
            let low = result.get(kernel, 200, SocVariant::Baseline).unwrap();
            let high = result.get(kernel, 1000, SocVariant::Baseline).unwrap();
            assert!(high.dma_fraction >= low.dma_fraction, "{kernel}");
            assert!(high.total > low.total, "{kernel}");
        }

        // heat3d is more memory bound than gemm.
        let gemm = result.get("gemm", 1000, SocVariant::Baseline).unwrap();
        let heat = result.get("heat3d", 1000, SocVariant::Baseline).unwrap();
        assert!(heat.dma_fraction > gemm.dma_fraction);

        // The IOMMU without LLC costs more than with the LLC, which is close
        // to the baseline.
        for kernel in ["gemm", "heat3d"] {
            let no_llc = result
                .overhead_vs_baseline(kernel, 1000, SocVariant::Iommu)
                .unwrap();
            let with_llc = result
                .overhead_vs_baseline(kernel, 1000, SocVariant::IommuLlc)
                .unwrap();
            assert!(no_llc > with_llc, "{kernel}: {no_llc} !> {with_llc}");
            assert!(
                with_llc < 0.10,
                "{kernel}: LLC overhead should be small, got {with_llc}"
            );
        }
    }

    #[test]
    fn rendering_contains_all_variants() {
        let result = run(&[KernelKind::Gesummv], &[200], false).unwrap();
        let t2 = result.render_table2(&[200]);
        let f4 = result.render_fig4(&[200]);
        for label in ["Baseline", "IOMMU", "IOMMU+LLC"] {
            assert!(t2.contains(label));
            assert!(f4.contains(label));
        }
    }
}
