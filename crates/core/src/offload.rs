//! The heterogeneous offload runtime (OpenMP `target` model).
//!
//! The paper builds its applications with OpenMP target offloading on top of
//! the driver's userspace library. Three execution flows are compared in
//! Figure 2 and implemented here:
//!
//! * **host-only** — the kernel runs on the CVA6 core;
//! * **copy-based offload** — inputs are copied into the physically
//!   contiguous reserved DRAM, the device computes on physical addresses,
//!   results are copied back;
//! * **zero-copy offload (SVA)** — the user buffers are mapped into the
//!   device's IO virtual address space (Listing 1: flush L1, flush LLC,
//!   `create_iommu_mapping`, flush L1) and the device computes directly on
//!   the user pages through the IOMMU.
//!
//! [`OffloadRunner::run`] executes a full application (used for Figure 2);
//! [`OffloadRunner::run_device_only`] prepares the data according to the
//! platform variant and measures only the accelerator's runtime (used for
//! Table II / Figure 4, which exclude offload and synchronisation time).

use serde::{Deserialize, Serialize};
use sva_cluster::{block_partition, KernelRunStats, TileRange};
use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, Error, Iova, PhysAddr, Result, VirtAddr};
use sva_host::{
    FaultServicer, HostKernelRunner, HostRunStats, HostTrafficStats, MappingHandle, TrafficPhase,
};
use sva_iommu::{Iommu, IommuConfig, IommuStats};
use sva_kernels::{BufferKind, Workload};

use crate::platform::Platform;

/// Host cycles to trigger an offload: writing the task descriptor and the
/// mailbox in the L2 scratchpad and waking the cluster.
pub const OFFLOAD_TRIGGER_CYCLES: u64 = 25_000;

/// Host cycles to synchronise at the end of an offload: completion polling /
/// interrupt handling and the OpenMP fork-join bookkeeping.
pub const OFFLOAD_SYNC_CYCLES: u64 = 35_000;

/// How a workload is executed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OffloadMode {
    /// Single-threaded execution on the CVA6 host.
    HostOnly,
    /// Copy inputs to reserved DRAM, run on the device, copy results back.
    CopyOffload,
    /// Map the user buffers through the IOMMU and run on the device in place.
    ZeroCopy,
}

impl OffloadMode {
    /// Label used in reports (matches Figure 2's legend).
    pub const fn label(self) -> &'static str {
        match self {
            OffloadMode::HostOnly => "host execution",
            OffloadMode::CopyOffload => "copy + device execution",
            OffloadMode::ZeroCopy => "map + device execution (zero-copy)",
        }
    }
}

/// Result of one application run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OffloadReport {
    /// Kernel name.
    pub kernel: String,
    /// Execution flow used.
    pub mode: OffloadMode,
    /// Cycles spent copying (copy mode: in + out) or mapping (zero-copy:
    /// cache flushes + `create_iommu_mapping`).
    pub copy_or_map: Cycles,
    /// Cycles spent triggering the offload and synchronising (fork/join).
    pub offload_overhead: Cycles,
    /// Device-side breakdown (absent for host-only runs). On a multi-cluster
    /// platform this is the parallel merge of the per-cluster shards.
    pub device: Option<KernelRunStats>,
    /// Per-cluster device breakdowns (one entry per cluster for offloaded
    /// runs; empty for host-only runs).
    pub device_per_cluster: Vec<KernelRunStats>,
    /// Host-side breakdown (present for host-only runs).
    pub host: Option<HostRunStats>,
    /// Cycles spent tearing the mapping down again (zero-copy only; not part
    /// of [`OffloadReport::total`], matching the paper's breakdown).
    pub unmap: Cycles,
    /// End-to-end application cycles.
    pub total: Cycles,
    /// Whether the results matched the host reference.
    pub verified: bool,
    /// IOMMU statistics accumulated during the run.
    pub iommu: IommuStats,
    /// Host-traffic stream accounting for the whole flow, split between the
    /// setup (copy/map) and device phases (`None` when no stream is
    /// configured). Setup-phase queueing is host *self*-interference: the
    /// stream contending with the runtime's own copies and page-table
    /// writes.
    pub host_traffic: Option<HostTrafficStats>,
}

impl OffloadReport {
    /// Device computation cycles (zero for host-only runs).
    pub fn device_total(&self) -> Cycles {
        self.device.map(|d| d.total).unwrap_or(Cycles::ZERO)
    }
}

/// Result of a device-only measurement (Table II / Figures 4 and 5).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceOnlyReport {
    /// Kernel name.
    pub kernel: String,
    /// Device-side breakdown (parallel merge of the per-cluster shards).
    pub stats: KernelRunStats,
    /// Per-cluster device breakdowns, indexed like `Platform::clusters`.
    pub per_cluster: Vec<KernelRunStats>,
    /// IOMMU statistics accumulated during the run.
    pub iommu: IommuStats,
    /// Whether the results matched the host reference.
    pub verified: bool,
}

/// Executes workloads on a platform.
#[derive(Copy, Clone, Debug)]
pub struct OffloadRunner {
    seed: u64,
}

impl OffloadRunner {
    /// Creates a runner; `seed` determines the workload input data, so the
    /// same seed produces identical data across platform variants.
    pub const fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Runs a full application in the given mode and reports the breakdown
    /// of Figure 2.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IommuNotPresent`] for zero-copy runs on a platform
    /// without an IOMMU, and propagates faults and allocation failures.
    pub fn run(
        &self,
        platform: &mut Platform,
        workload: &dyn Workload,
        mode: OffloadMode,
    ) -> Result<OffloadReport> {
        let mut rng = DeterministicRng::new(self.seed);
        let initial = workload.init(&mut rng);
        let expected = workload.expected(&initial);
        let buffers = self.allocate_user_buffers(platform, workload, &initial)?;
        if let Some(stream) = platform.host_traffic.as_mut() {
            stream.reset_stats();
        }

        match mode {
            OffloadMode::HostOnly => self.run_host_only(platform, workload, &buffers, &expected),
            OffloadMode::CopyOffload => {
                self.run_copy_offload(platform, workload, &buffers, &expected)
            }
            OffloadMode::ZeroCopy => self.run_zero_copy(platform, workload, &buffers, &expected),
        }
    }

    /// Prepares data according to the platform variant (physical buffers for
    /// the baseline, IOVA mappings otherwise) and measures only the device
    /// execution, as Table II does.
    ///
    /// # Errors
    ///
    /// Propagates faults and allocation failures.
    pub fn run_device_only(
        &self,
        platform: &mut Platform,
        workload: &dyn Workload,
    ) -> Result<DeviceOnlyReport> {
        let mut rng = DeterministicRng::new(self.seed);
        let initial = workload.init(&mut rng);
        let expected = workload.expected(&initial);
        if let Some(stream) = platform.host_traffic.as_mut() {
            stream.reset_stats();
        }

        if platform.iommu.is_translating() {
            let buffers = self.allocate_user_buffers(platform, workload, &initial)?;
            // Listing 1: flush caches, then map right before the offload so
            // the freshly written PTEs sit in the LLC. Under demand paging
            // the up-front map pass is skipped entirely — every page the
            // device touches cold-starts through the page-request loop.
            platform.cpu.flush_l1();
            platform.mem.flush_llc();
            if !platform.iommu.demand_paging() {
                for buf in &buffers {
                    platform.driver.map_buffer(
                        &mut platform.cpu,
                        &mut platform.mem,
                        &mut platform.iommu,
                        &platform.space,
                        &mut platform.frames,
                        buf.va,
                        buf.bytes,
                    )?;
                }
            }
            platform.cpu.flush_l1();
            platform.iommu.reset_stats();

            let device_ptrs: Vec<Iova> = buffers.iter().map(|b| Iova::from_virt(b.va)).collect();
            let (stats, per_cluster) =
                Self::run_device_sharded(platform, workload, &device_ptrs, None)?;
            let actual = self.read_back_virtual(platform, workload, &buffers)?;
            let verified = workload.verify(&expected, &actual).is_ok();
            Ok(DeviceOnlyReport {
                kernel: workload.name().to_string(),
                stats,
                per_cluster,
                iommu: platform.iommu.stats(),
                verified,
            })
        } else {
            let placements = self.place_in_reserved(platform, workload, &initial)?;
            let device_ptrs: Vec<Iova> = placements
                .iter()
                .map(|pa| Iova::new(platform.mem.map().remap().to_bypass(*pa).raw()))
                .collect();
            let (stats, per_cluster) =
                Self::run_device_sharded(platform, workload, &device_ptrs, None)?;
            let actual = self.read_back_physical(platform, workload, &placements)?;
            let verified = workload.verify(&expected, &actual).is_ok();
            Ok(DeviceOnlyReport {
                kernel: workload.name().to_string(),
                stats,
                per_cluster,
                iommu: platform.iommu.stats(),
                verified,
            })
        }
    }

    // ------------------------------------------------------------------
    // Sharded device execution
    // ------------------------------------------------------------------

    /// Runs the workload's device kernel sharded across every cluster of the
    /// platform with static block scheduling: cluster `i` executes the
    /// `i`-th contiguous block of tiles on its own TCDM while all DMA traffic
    /// shares the IOMMU and the memory fabric. Returns the parallel-merged
    /// breakdown (wall-clock = slowest shard) plus the per-cluster shards.
    ///
    /// The call opens a **measurement window**: the fabric's channel
    /// timelines are cleared (statistics survive) and the global clock
    /// restarts, so every shard's local cursor — and the host-traffic
    /// stream, when configured — starts from the same zero on the shared
    /// virtual timeline. The stream is injected in slices interleaved with
    /// the shards (one slice before each shard, the remainder after the
    /// last), which makes the queueing bidirectional under first-fit
    /// placement: early slices reserve bus time the shards queue behind,
    /// later slices queue behind the shards' reservations.
    ///
    /// When the workload has fewer tiles than the platform has clusters, the
    /// tail clusters receive empty [`TileRange`] shards and report zero
    /// stats without instantiating a kernel — the executor path would
    /// return the same zeroes for an empty shard (a unit-tested
    /// equivalence in `sva_cluster::kernel`), so the shortcut cannot drift.
    ///
    /// With one cluster and no host traffic this degenerates to exactly the
    /// paper's single `ClusterExecutor::run` call.
    fn run_device_sharded(
        platform: &mut Platform,
        workload: &dyn Workload,
        device_ptrs: &[Iova],
        iommu_override: Option<&mut Iommu>,
    ) -> Result<(KernelRunStats, Vec<KernelRunStats>)> {
        let num_clusters = platform.clusters.len();
        platform.mem.open_measurement_window();
        let traffic_slice = match platform.host_traffic.as_mut() {
            Some(stream) => {
                stream.begin_window(TrafficPhase::Device);
                stream
                    .config()
                    .accesses
                    .div_ceil(num_clusters as u64 + 1)
                    .max(1)
            }
            None => 0,
        };
        let total_tiles = workload.device_kernel(device_ptrs).num_tiles();
        let blocks = block_partition(total_tiles, num_clusters);
        let mut shards = Vec::with_capacity(num_clusters);
        // Demand paging is only live for the platform's own translating
        // IOMMU — a bypass override (copy-based offload) never faults.
        let demand_paging = iommu_override.is_none() && platform.iommu.demand_paging();
        let mut override_iommu = iommu_override;
        for (cluster_idx, (start, len)) in blocks.into_iter().enumerate() {
            if let Some(stream) = platform.host_traffic.as_mut() {
                stream.inject(&mut platform.mem, &platform.clock, traffic_slice)?;
            }
            if len == 0 {
                // Empty tail shard: skip building a whole kernel instance
                // to run zero tiles. Default stats are exactly what the
                // executor returns for an empty shard — pinned by
                // `empty_tile_range_is_valid_and_runs_to_zero_stats` in
                // `sva_cluster::kernel`.
                shards.push(KernelRunStats::default());
                continue;
            }
            let mut shard = TileRange::new(workload.device_kernel(device_ptrs), start, len);
            let iommu: &mut Iommu = match override_iommu.as_deref_mut() {
                Some(i) => i,
                None => &mut platform.iommu,
            };
            let stats = if demand_paging {
                // The host driver stands by to service page-request groups:
                // faults stall the shard's DMA instead of aborting it.
                let mut servicer =
                    FaultServicer::new(&mut platform.driver, &platform.space, &mut platform.frames);
                platform.clusters[cluster_idx].run_with_pri(
                    &mut platform.mem,
                    iommu,
                    &mut shard,
                    Some(&mut servicer),
                )?
            } else {
                platform.clusters[cluster_idx].run(&mut platform.mem, iommu, &mut shard)?
            };
            shards.push(stats);
        }
        // Drain the rest of the configured stream so every window injects
        // the same host load regardless of cluster count.
        if let Some(stream) = platform.host_traffic.as_mut() {
            let rest = stream.remaining();
            stream.inject(&mut platform.mem, &platform.clock, rest)?;
        }
        // The device window is over: every shard (and the stream drain) has
        // been simulated, so all later accesses are stamped from the
        // monotone global clock — "now" is a valid no-earlier-arrival
        // watermark and finished reservations can be folded out of the
        // placement index before any post-window traffic runs.
        platform.mem.compact_fabric_before(platform.clock.now());
        // The translation path compacts under the same watermark: walk-table
        // windows that completed before it can no longer serve a coalescing
        // probe or count as in-flight, for the same monotone-clock reason.
        match override_iommu {
            Some(i) => i.compact_translation_before(platform.clock.now()),
            None => platform
                .iommu
                .compact_translation_before(platform.clock.now()),
        }
        Ok((KernelRunStats::merge_parallel(&shards), shards))
    }

    // ------------------------------------------------------------------
    // Setup-phase host traffic
    // ------------------------------------------------------------------

    /// Opens a setup-phase traffic window when a stream is configured
    /// (ROADMAP item "Host traffic during full-app flows"): the fabric
    /// timelines are cleared, the global clock restarts — the runtime's
    /// copies and page-table writes are stamped from zero — and the stream
    /// rewinds, accounted to [`TrafficPhase::Setup`]. Because the stream
    /// presents its own `host_stream` identity, it genuinely contends with
    /// the runtime's `host` traffic on the fabric: host self-interference
    /// during offload setup becomes measurable. Returns the slice of stream
    /// accesses to inject before each of the `ops` runtime operations
    /// (mirroring the device window's shard interleaving).
    fn begin_setup_traffic(platform: &mut Platform, ops: u64) -> u64 {
        match platform.host_traffic.as_mut() {
            Some(stream) => {
                platform.mem.open_measurement_window();
                stream.begin_window(TrafficPhase::Setup);
                stream.config().accesses.div_ceil(ops + 1).max(1)
            }
            None => 0,
        }
    }

    /// Injects up to `count` stream accesses into the current window.
    fn inject_traffic(platform: &mut Platform, count: u64) -> Result<()> {
        if let Some(stream) = platform.host_traffic.as_mut() {
            stream.inject(&mut platform.mem, &platform.clock, count)?;
        }
        Ok(())
    }

    /// Drains whatever the current traffic window still holds, so every
    /// window injects the same host load regardless of operation count.
    fn drain_traffic(platform: &mut Platform) -> Result<()> {
        if let Some(stream) = platform.host_traffic.as_mut() {
            let rest = stream.remaining();
            stream.inject(&mut platform.mem, &platform.clock, rest)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Buffer management helpers
    // ------------------------------------------------------------------

    fn allocate_user_buffers(
        &self,
        platform: &mut Platform,
        workload: &dyn Workload,
        initial: &[Vec<f32>],
    ) -> Result<Vec<UserBufferAlloc>> {
        let specs = workload.buffers();
        let mut out = Vec::with_capacity(specs.len());
        for (spec, data) in specs.iter().zip(initial) {
            let va = platform.space.alloc_buffer(
                &mut platform.mem,
                &mut platform.frames,
                spec.bytes(),
            )?;
            platform
                .space
                .write_virt(&mut platform.mem, va, &f32s_to_bytes(data))?;
            out.push(UserBufferAlloc {
                va,
                bytes: spec.bytes(),
                kind: spec.kind,
            });
        }
        Ok(out)
    }

    fn place_in_reserved(
        &self,
        platform: &mut Platform,
        workload: &dyn Workload,
        initial: &[Vec<f32>],
    ) -> Result<Vec<PhysAddr>> {
        let specs = workload.buffers();
        let mut out = Vec::with_capacity(specs.len());
        for (spec, data) in specs.iter().zip(initial) {
            let pa = platform.reserved.alloc_bytes(spec.bytes())?;
            platform.mem.write_phys(pa, &f32s_to_bytes(data))?;
            out.push(pa);
        }
        Ok(out)
    }

    fn read_back_virtual(
        &self,
        platform: &Platform,
        workload: &dyn Workload,
        buffers: &[UserBufferAlloc],
    ) -> Result<Vec<Vec<f32>>> {
        let specs = workload.buffers();
        let mut out = Vec::with_capacity(specs.len());
        for (spec, buf) in specs.iter().zip(buffers) {
            let mut bytes = vec![0u8; spec.bytes() as usize];
            platform
                .space
                .read_virt(&platform.mem, buf.va, &mut bytes)?;
            out.push(bytes_to_f32s(&bytes));
        }
        Ok(out)
    }

    fn read_back_physical(
        &self,
        platform: &Platform,
        workload: &dyn Workload,
        placements: &[PhysAddr],
    ) -> Result<Vec<Vec<f32>>> {
        let specs = workload.buffers();
        let mut out = Vec::with_capacity(specs.len());
        for (spec, pa) in specs.iter().zip(placements) {
            let mut bytes = vec![0u8; spec.bytes() as usize];
            platform.mem.read_phys(*pa, &mut bytes)?;
            out.push(bytes_to_f32s(&bytes));
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // The three execution flows
    // ------------------------------------------------------------------

    fn run_host_only(
        &self,
        platform: &mut Platform,
        workload: &dyn Workload,
        buffers: &[UserBufferAlloc],
        expected: &[Vec<f32>],
    ) -> Result<OffloadReport> {
        let inputs: Vec<(VirtAddr, u64)> = buffers
            .iter()
            .filter(|b| matches!(b.kind, BufferKind::Input | BufferKind::InOut))
            .map(|b| (b.va, b.bytes))
            .collect();
        let outputs: Vec<(VirtAddr, u64)> = buffers
            .iter()
            .filter(|b| b.kind.is_result())
            .map(|b| (b.va, b.bytes))
            .collect();
        let host = HostKernelRunner::new().run(
            &mut platform.cpu,
            &mut platform.mem,
            &platform.space,
            workload.host_cost(),
            &inputs,
            &outputs,
        )?;

        // Functionally, the host computes the reference result; store it so
        // verification reflects a correct host execution.
        let specs = workload.buffers();
        for ((spec, buf), data) in specs.iter().zip(buffers).zip(expected) {
            if spec.kind.is_result() {
                platform
                    .space
                    .write_virt(&mut platform.mem, buf.va, &f32s_to_bytes(data))?;
            }
        }
        let actual = self.read_back_virtual(platform, workload, buffers)?;
        let verified = workload.verify(expected, &actual).is_ok();

        Ok(OffloadReport {
            kernel: workload.name().to_string(),
            mode: OffloadMode::HostOnly,
            copy_or_map: Cycles::ZERO,
            offload_overhead: Cycles::ZERO,
            device: None,
            device_per_cluster: Vec::new(),
            host: Some(host),
            unmap: Cycles::ZERO,
            total: host.total,
            verified,
            iommu: platform.iommu.stats(),
            host_traffic: platform.host_traffic.as_ref().map(|s| *s.stats()),
        })
    }

    fn run_copy_offload(
        &self,
        platform: &mut Platform,
        workload: &dyn Workload,
        buffers: &[UserBufferAlloc],
        expected: &[Vec<f32>],
    ) -> Result<OffloadReport> {
        // Allocate the physically contiguous shadow buffers.
        let specs = workload.buffers();
        let mut shadows = Vec::with_capacity(specs.len());
        for spec in &specs {
            shadows.push(platform.reserved.alloc_bytes(spec.bytes())?);
        }

        // Copy inputs to the device-visible area (timed + functional). When
        // a host-traffic stream is configured it runs through the copy
        // phase too — the stream's reads interleave with the copy engine's
        // accesses, so the copies queue behind genuine concurrent host
        // load (setup-phase self-interference).
        let copies_in = buffers.iter().filter(|b| b.kind.copied_to_device()).count() as u64;
        let slice = Self::begin_setup_traffic(platform, copies_in);
        let mut copy_cycles = Cycles::ZERO;
        for (buf, pa) in buffers.iter().zip(&shadows) {
            if buf.kind.copied_to_device() {
                Self::inject_traffic(platform, slice)?;
                let stats = platform.copy.copy_to_device(
                    &mut platform.cpu,
                    &mut platform.mem,
                    &platform.space,
                    buf.va,
                    *pa,
                    buf.bytes,
                )?;
                copy_cycles += stats.cycles;
            }
        }
        Self::drain_traffic(platform)?;

        // Run the device on physical (bypass-window) addresses. Copy-based
        // offloads present the bypassed device ID, so translation is off.
        let device_ptrs: Vec<Iova> = shadows
            .iter()
            .map(|pa| Iova::new(platform.mem.map().remap().to_bypass(*pa).raw()))
            .collect();
        let mut bypass_iommu = Iommu::new(IommuConfig::disabled());
        let (device, device_per_cluster) =
            Self::run_device_sharded(platform, workload, &device_ptrs, Some(&mut bypass_iommu))?;

        // Copy the results back into the user buffers, again under the
        // setup-phase stream (a fresh window: the device run consumed the
        // previous one).
        let copies_out = buffers
            .iter()
            .filter(|b| b.kind.copied_from_device())
            .count() as u64;
        let slice = Self::begin_setup_traffic(platform, copies_out);
        for (buf, pa) in buffers.iter().zip(&shadows) {
            if buf.kind.copied_from_device() {
                Self::inject_traffic(platform, slice)?;
                let stats = platform.copy.copy_from_device(
                    &mut platform.cpu,
                    &mut platform.mem,
                    &platform.space,
                    *pa,
                    buf.va,
                    buf.bytes,
                )?;
                copy_cycles += stats.cycles;
            }
        }
        Self::drain_traffic(platform)?;

        let actual = self.read_back_virtual(platform, workload, buffers)?;
        let verified = workload.verify(expected, &actual).is_ok();
        let overhead = Cycles::new(OFFLOAD_TRIGGER_CYCLES + OFFLOAD_SYNC_CYCLES);

        Ok(OffloadReport {
            kernel: workload.name().to_string(),
            mode: OffloadMode::CopyOffload,
            copy_or_map: copy_cycles,
            offload_overhead: overhead,
            device: Some(device),
            device_per_cluster,
            host: None,
            unmap: Cycles::ZERO,
            total: copy_cycles + overhead + device.total,
            verified,
            iommu: platform.iommu.stats(),
            host_traffic: platform.host_traffic.as_ref().map(|s| *s.stats()),
        })
    }

    fn run_zero_copy(
        &self,
        platform: &mut Platform,
        workload: &dyn Workload,
        buffers: &[UserBufferAlloc],
        expected: &[Vec<f32>],
    ) -> Result<OffloadReport> {
        if !platform.iommu.is_translating() {
            return Err(Error::IommuNotPresent);
        }

        // Listing 1: flush L1 and LLC so device-visible memory is coherent,
        // then create the IOVA mappings, then flush L1 again. A configured
        // host-traffic stream runs through the map phase: its reads contend
        // with the driver's page-table writes on the fabric and evict the
        // freshly written PTEs from the LLC — the setup-phase
        // self-interference the ROADMAP called out. Under demand paging the
        // map pass is skipped: pages become device-resident through the
        // page-request loop on first touch, and there is nothing to tear
        // down up front (the unmap section below is likewise empty).
        let demand_paging = platform.iommu.demand_paging();
        let slice = Self::begin_setup_traffic(platform, buffers.len() as u64);
        let mut map_cycles = platform.cpu.flush_l1();
        map_cycles += platform.mem.flush_llc();
        let mut handles: Vec<MappingHandle> = Vec::with_capacity(buffers.len());
        if !demand_paging {
            for buf in buffers {
                Self::inject_traffic(platform, slice)?;
                let (handle, cost) = platform.driver.map_buffer(
                    &mut platform.cpu,
                    &mut platform.mem,
                    &mut platform.iommu,
                    &platform.space,
                    &mut platform.frames,
                    buf.va,
                    buf.bytes,
                )?;
                map_cycles += cost.cycles;
                handles.push(handle);
            }
        }
        Self::drain_traffic(platform)?;
        map_cycles += platform.cpu.flush_l1();

        // Device execution on IO virtual addresses, sharded across clusters.
        let device_ptrs: Vec<Iova> = buffers.iter().map(|b| Iova::from_virt(b.va)).collect();
        let (device, device_per_cluster) =
            Self::run_device_sharded(platform, workload, &device_ptrs, None)?;

        // Tear the mappings down (reported separately, like the paper).
        let mut unmap_cycles = Cycles::ZERO;
        for handle in handles {
            let cost = platform.driver.unmap_buffer(
                &mut platform.cpu,
                &mut platform.mem,
                &mut platform.iommu,
                handle,
            )?;
            unmap_cycles += cost.cycles;
        }

        let actual = self.read_back_virtual(platform, workload, buffers)?;
        let verified = workload.verify(expected, &actual).is_ok();
        let overhead = Cycles::new(OFFLOAD_TRIGGER_CYCLES + OFFLOAD_SYNC_CYCLES);

        Ok(OffloadReport {
            kernel: workload.name().to_string(),
            mode: OffloadMode::ZeroCopy,
            copy_or_map: map_cycles,
            offload_overhead: overhead,
            device: Some(device),
            device_per_cluster,
            host: None,
            unmap: unmap_cycles,
            total: map_cycles + overhead + device.total,
            verified,
            iommu: platform.iommu.stats(),
            host_traffic: platform.host_traffic.as_ref().map(|s| *s.stats()),
        })
    }
}

/// A user buffer allocated for a run.
#[derive(Copy, Clone, Debug)]
struct UserBufferAlloc {
    va: VirtAddr,
    bytes: u64,
    kind: BufferKind,
}

/// Converts a slice of `f32` into little-endian bytes.
fn f32s_to_bytes(values: &[f32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Converts little-endian bytes into `f32` values.
fn bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PlatformConfig, SocVariant};
    use sva_kernels::{AxpyWorkload, GemmWorkload, KernelKind};

    #[test]
    fn bytes_roundtrip() {
        let vals = vec![1.0f32, -2.5, 3.25, f32::MIN_POSITIVE];
        assert_eq!(bytes_to_f32s(&f32s_to_bytes(&vals)), vals);
    }

    #[test]
    fn zero_copy_requires_an_iommu() {
        let mut platform = Platform::new(PlatformConfig::baseline(200)).unwrap();
        let wl = AxpyWorkload::with_elems(4096);
        let err = OffloadRunner::new(1).run(&mut platform, &wl, OffloadMode::ZeroCopy);
        assert!(matches!(err, Err(Error::IommuNotPresent)));
    }

    #[test]
    fn all_three_modes_produce_verified_results_for_axpy() {
        let wl = AxpyWorkload::with_elems(6_000);
        for mode in [
            OffloadMode::HostOnly,
            OffloadMode::CopyOffload,
            OffloadMode::ZeroCopy,
        ] {
            let mut platform = Platform::new(PlatformConfig::iommu_with_llc(200)).unwrap();
            let report = OffloadRunner::new(3).run(&mut platform, &wl, mode).unwrap();
            assert!(report.verified, "{mode:?} must produce correct results");
            assert!(report.total.raw() > 0);
            match mode {
                OffloadMode::HostOnly => {
                    assert!(report.host.is_some());
                    assert_eq!(report.copy_or_map, Cycles::ZERO);
                }
                OffloadMode::CopyOffload => {
                    assert!(report.device.is_some());
                    assert!(report.copy_or_map.raw() > 0);
                    assert_eq!(report.unmap, Cycles::ZERO);
                }
                OffloadMode::ZeroCopy => {
                    assert!(report.device.is_some());
                    assert!(report.copy_or_map.raw() > 0);
                    assert!(report.unmap.raw() > 0);
                    assert!(report.iommu.translations > 0);
                }
            }
        }
    }

    #[test]
    fn zero_copy_beats_copy_based_offload() {
        let wl = AxpyWorkload::paper();
        let mut p1 = Platform::new(PlatformConfig::iommu_with_llc(200)).unwrap();
        let copy = OffloadRunner::new(5)
            .run(&mut p1, &wl, OffloadMode::CopyOffload)
            .unwrap();
        let mut p2 = Platform::new(PlatformConfig::iommu_with_llc(200)).unwrap();
        let zero = OffloadRunner::new(5)
            .run(&mut p2, &wl, OffloadMode::ZeroCopy)
            .unwrap();
        assert!(
            zero.total < copy.total,
            "zero-copy ({}) must beat copy-based offload ({})",
            zero.total,
            copy.total
        );
        assert!(zero.copy_or_map < copy.copy_or_map);
    }

    #[test]
    fn device_only_runs_verify_on_every_variant() {
        let wl = GemmWorkload::with_dim(32);
        for variant in SocVariant::ALL {
            let mut platform = Platform::new(PlatformConfig::variant(variant, 200)).unwrap();
            let report = OffloadRunner::new(11)
                .run_device_only(&mut platform, &wl)
                .unwrap();
            assert!(report.verified, "{variant:?} gemm results must verify");
            assert!(report.stats.total.raw() > 0);
            if variant.has_iommu() {
                assert!(report.iommu.translations > 0);
            } else {
                assert_eq!(report.iommu.iotlb.total(), 0);
            }
        }
    }

    #[test]
    fn small_workloads_verify_end_to_end_on_the_device() {
        for kind in KernelKind::ALL {
            let wl = kind.small_workload();
            let mut platform = Platform::new(PlatformConfig::iommu_with_llc(200)).unwrap();
            let report = OffloadRunner::new(13)
                .run_device_only(&mut platform, wl.as_ref())
                .unwrap();
            assert!(
                report.verified,
                "{kind:?} device results must match the reference"
            );
        }
    }

    #[test]
    fn multi_cluster_offloads_verify_and_shard_every_tile() {
        let wl = GemmWorkload::with_dim(96);
        for clusters in [1usize, 2, 3, 4] {
            let config = PlatformConfig::iommu_with_llc(200).with_clusters(clusters);
            let mut platform = Platform::new(config).unwrap();
            let report = OffloadRunner::new(21)
                .run_device_only(&mut platform, &wl)
                .unwrap();
            assert!(report.verified, "{clusters} clusters must verify");
            assert_eq!(report.per_cluster.len(), clusters);
            let shard_tiles: u64 = report.per_cluster.iter().map(|s| s.tiles).sum();
            assert_eq!(report.stats.tiles, shard_tiles);
            // Wall-clock is the slowest shard.
            let slowest = report.per_cluster.iter().map(|s| s.total).max().unwrap();
            assert_eq!(report.stats.total, slowest);
        }
    }

    #[test]
    fn more_clusters_than_tiles_runs_empty_shards_cleanly() {
        // axpy at 10k elements has 3 tiles; shard it across 8 clusters.
        let small = AxpyWorkload::with_elems(10_000);
        let big = GemmWorkload::with_dim(96);
        let config = PlatformConfig::iommu_with_llc(200).with_clusters(8);
        let mut platform = Platform::new(config).unwrap();
        let runner = OffloadRunner::new(17);
        // First occupy every cluster so their DMA engines accumulate stats.
        let warm = runner.run_device_only(&mut platform, &big).unwrap();
        assert!(warm.per_cluster.iter().all(|s| s.dma.bytes > 0));
        // Then the 3-tile workload: the 5 idle clusters report zeroes.
        let report = runner.run_device_only(&mut platform, &small).unwrap();
        assert!(report.verified);
        assert_eq!(report.per_cluster.len(), 8);
        assert_eq!(
            report.per_cluster.iter().filter(|s| s.tiles > 0).count(),
            3,
            "exactly one shard per tile"
        );
        for idle in &report.per_cluster[3..] {
            assert_eq!(idle.tiles, 0);
            assert_eq!(idle.total, Cycles::ZERO);
            assert_eq!(idle.dma.bytes, 0, "idle shard must report zero DMA stats");
        }
        assert_eq!(report.stats.tiles, 3);
        let slowest = report.per_cluster.iter().map(|s| s.total).max().unwrap();
        assert_eq!(report.stats.total, slowest);
    }

    #[test]
    fn sort_shards_across_clusters_and_verifies() {
        // The merge-path partitions are recomputed from shared functional
        // memory in the plan pre-pass, so the non-linear kernel now shards:
        // every cluster sees the runs exactly as the previous pass left
        // them, wherever that pass executed.
        use sva_kernels::SortWorkload;
        // 16 384 elements = 2 merge passes (even parity, local sort in
        // place); 32 768 = 3 passes (odd parity, the ping-pong starts in
        // the aux array so the result still lands in `data`).
        for n in [16_384usize, 32_768] {
            let wl = SortWorkload::with_elems(n);
            for clusters in [1usize, 2, 3, 4] {
                let config = PlatformConfig::iommu_with_llc(200)
                    .with_clusters(clusters)
                    .with_fabric_contention();
                let mut platform = Platform::new(config).unwrap();
                let report = OffloadRunner::new(31)
                    .run_device_only(&mut platform, &wl)
                    .unwrap();
                assert!(
                    report.verified,
                    "sort({n}) must verify on {clusters} clusters"
                );
                assert_eq!(report.per_cluster.len(), clusters);
                let shard_tiles: u64 = report.per_cluster.iter().map(|s| s.tiles).sum();
                assert_eq!(report.stats.tiles, shard_tiles, "every tile executed once");
            }
        }
    }

    #[test]
    fn sharding_speeds_up_the_device_wall_clock() {
        let wl = GemmWorkload::with_dim(64);
        let run = |clusters| {
            let config = PlatformConfig::iommu_with_llc(200).with_clusters(clusters);
            let mut platform = Platform::new(config).unwrap();
            OffloadRunner::new(7)
                .run_device_only(&mut platform, &wl)
                .unwrap()
                .stats
                .total
                .raw()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            (four as f64) < one as f64 * 0.5,
            "4 clusters ({four}) should at least halve the 1-cluster wall clock ({one})"
        );
    }

    #[test]
    fn host_traffic_extends_into_copy_and_map_phases() {
        use sva_host::HostTrafficConfig;
        let run = |mode: OffloadMode, traffic: bool| {
            let mut config = PlatformConfig::iommu_with_llc(200)
                .with_clusters(2)
                .with_fabric_contention();
            if traffic {
                config = config.with_host_traffic(HostTrafficConfig {
                    accesses: 512,
                    ..HostTrafficConfig::default()
                });
            }
            let mut platform = Platform::new(config).unwrap();
            OffloadRunner::new(23)
                .run(&mut platform, &AxpyWorkload::with_elems(16_384), mode)
                .unwrap()
        };
        for mode in [OffloadMode::CopyOffload, OffloadMode::ZeroCopy] {
            let idle = run(mode, false);
            let noisy = run(mode, true);
            assert!(idle.verified && noisy.verified);
            assert!(idle.host_traffic.is_none(), "no stream, no report row");
            let stats = noisy.host_traffic.expect("stream accounting reported");
            // The stream ran in both phases: each copy/map window and the
            // device window injected their full configured load.
            assert!(stats.setup.issued > 0, "{mode:?}: setup phase injected");
            assert!(stats.device.issued > 0, "{mode:?}: device phase injected");
            assert_eq!(
                stats.issued,
                stats.setup.issued + stats.device.issued,
                "{mode:?}: phases partition the stream"
            );
            // Host self-interference: the stream queues behind the
            // runtime's own copies / page-table writes during setup.
            assert!(
                stats.setup.queue_cycles > 0,
                "{mode:?}: setup-phase queueing must be observable"
            );
            assert!(
                noisy.copy_or_map >= idle.copy_or_map,
                "{mode:?}: interference cannot speed setup up ({} vs {})",
                noisy.copy_or_map,
                idle.copy_or_map
            );
        }
        // The copy engine streams through the polluted LLC and shares the
        // bus with the stream, so copy-based setup must get strictly
        // slower. (The map path's timed accesses are cold misses and
        // posted writes either way, and first-fit placement simulates the
        // runtime's accesses before the overlapping stream slices, so its
        // cost is interference-insensitive — the stream's own setup-phase
        // queueing above is where map-phase contention surfaces.)
        let idle_copy = run(OffloadMode::CopyOffload, false);
        let noisy_copy = run(OffloadMode::CopyOffload, true);
        assert!(
            noisy_copy.copy_or_map > idle_copy.copy_or_map,
            "copy-phase interference must cost cycles ({} vs {})",
            noisy_copy.copy_or_map,
            idle_copy.copy_or_map
        );
    }

    #[test]
    fn tlb_hierarchy_runs_verify_and_split_hits_across_levels() {
        let wl = GemmWorkload::with_dim(64);
        let config = PlatformConfig::iommu_with_llc(200)
            .with_clusters(2)
            .with_fabric_contention()
            .with_default_tlb_hierarchy();
        let mut platform = Platform::new(config).unwrap();
        let report = OffloadRunner::new(19)
            .run_device_only(&mut platform, &wl)
            .unwrap();
        assert!(report.verified);
        assert!(report.iommu.atc.hits > 0, "the private ATCs serve hits");
        assert!(report.iommu.atc.misses > 0);
        assert!(
            report.iommu.iotlb.hits > 0,
            "the shared L2 serves ATC misses"
        );
        assert!(
            report.iommu.iotlb.total() < report.iommu.atc.total(),
            "L1 filters traffic away from L2"
        );
        assert_eq!(
            report.iommu.atc.total(),
            report.iommu.translations - report.iommu.bypassed,
            "every translated access probes L1"
        );
    }

    #[test]
    fn demand_paged_device_runs_verify_and_account_the_fault_loop() {
        let wl = GemmWorkload::with_dim(64);
        let base = || {
            PlatformConfig::iommu_with_llc(200)
                .with_clusters(2)
                .with_fabric_contention()
                .with_default_tlb_hierarchy()
        };
        let mut pre = Platform::new(base()).unwrap();
        let premapped = OffloadRunner::new(29)
            .run_device_only(&mut pre, &wl)
            .unwrap();
        assert_eq!(premapped.iommu.page_requests.serviced, 0);

        let mut platform = Platform::new(base().with_demand_paging()).unwrap();
        let report = OffloadRunner::new(29)
            .run_device_only(&mut platform, &wl)
            .unwrap();
        assert!(report.verified, "demand-paged results are correct");
        let pri = report.iommu.page_requests;
        assert!(pri.serviced > 0, "pages were paged in on demand");
        assert_eq!(pri.failed, 0);
        assert!(pri.group_responses > 0);
        assert!(report.iommu.page_request_p50 > 0, "latency percentiles");
        assert!(report.stats.dma.page_faults > 0);
        assert!(report.stats.dma.fault_stall_cycles > 0);
        assert!(
            report.stats.total > premapped.stats.total,
            "cold-start paging must cost device cycles ({} vs {})",
            report.stats.total,
            premapped.stats.total
        );
    }

    #[test]
    fn demand_paged_zero_copy_application_verifies_without_premap() {
        let wl = AxpyWorkload::with_elems(16_384);
        let config = PlatformConfig::iommu_with_llc(200)
            .with_demand_paging()
            .with_fabric_contention();
        let mut platform = Platform::new(config).unwrap();
        let report = OffloadRunner::new(37)
            .run(&mut platform, &wl, OffloadMode::ZeroCopy)
            .unwrap();
        assert!(report.verified);
        assert!(
            report.iommu.page_requests.serviced > 0,
            "the application faulted its working set in"
        );
        assert_eq!(
            report.unmap,
            Cycles::ZERO,
            "nothing was pre-mapped, nothing to tear down"
        );
    }

    #[test]
    fn page_request_queue_overflow_backs_off_and_still_completes() {
        let wl = AxpyWorkload::with_elems(16_384);
        let run = |entries: usize| {
            let mut config = PlatformConfig::iommu_with_llc(200)
                .with_fabric_contention()
                .with_demand_paging();
            config.iommu.page_request_entries = entries;
            let mut platform = Platform::new(config).unwrap();
            OffloadRunner::new(41)
                .run_device_only(&mut platform, &wl)
                .unwrap()
        };
        let roomy = run(64);
        let tiny = run(1);
        assert!(roomy.verified && tiny.verified);
        assert_eq!(roomy.iommu.page_requests.dropped, 0, "64 slots never drop");
        assert!(
            tiny.iommu.page_requests.dropped > 0,
            "a one-slot queue must overflow on multi-page groups"
        );
        assert!(
            tiny.iommu.page_requests.group_responses > roomy.iommu.page_requests.group_responses,
            "smaller groups, more responses"
        );
        assert!(
            tiny.stats.total >= roomy.stats.total,
            "overflow backoff cannot speed the device up"
        );
    }

    #[test]
    fn multi_cluster_zero_copy_application_verifies() {
        let wl = AxpyWorkload::with_elems(16_384);
        let config = PlatformConfig::iommu_with_llc(200).with_clusters(2);
        let mut platform = Platform::new(config).unwrap();
        let report = OffloadRunner::new(9)
            .run(&mut platform, &wl, OffloadMode::ZeroCopy)
            .unwrap();
        assert!(report.verified);
        assert_eq!(report.device_per_cluster.len(), 2);
        // Both clusters' DMA streams translated through the shared IOMMU.
        let per_device = platform.iommu.device_iotlb_stats();
        assert!(
            per_device.len() >= 2,
            "both data devices present: {per_device:?}"
        );
    }
}
