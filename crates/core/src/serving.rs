//! Open-loop serving simulation: SLO percentiles under offered load.
//!
//! The closed-loop experiment drivers launch one offload at a time and
//! measure its breakdown. Production accelerator deployments do not get
//! that luxury: requests from many tenants arrive on their own schedule
//! (the *open loop*), queue at a bounded admission buffer, and either make
//! their latency SLO or visibly miss it. This module ties the pieces
//! together:
//!
//! * [`sva_common::ArrivalMix`] generates deterministic multi-tenant
//!   arrival traces (Poisson / bursty / diurnal);
//! * [`sva_host::serving`] is the host runtime — bounded admission and the
//!   pluggable [`DispatchPolicy`];
//! * this module calibrates per-kernel service times with a **real**
//!   device-only run on the simulated platform
//!   ([`ServiceTable::calibrate`]), then runs a discrete-event loop over
//!   `clusters` servers on one shared timeline.
//!
//! The end-to-end latency of a request is `completion − arrival`: queueing
//! delay plus the calibrated offload cost (trigger + device execution +
//! sync). The report carries p50/p99/p999 overall and per tenant, goodput
//! against offered load, the waiting-queue depth timeline (via
//! [`TimedQueue`]), and conservation counters
//! (`offered = completed + rejected` once the run drains).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use sva_common::channel::TimedQueue;
use sva_common::rng::DeterministicRng;
use sva_common::stats::Histogram;
use sva_common::{ArrivalMix, Cycles, Result};
use sva_host::serving::{DispatchPolicy, Dispatcher, ServingRequest, Tenant};
use sva_kernels::KernelKind;

use crate::config::PlatformConfig;
use crate::offload::{OffloadRunner, OFFLOAD_SYNC_CYCLES, OFFLOAD_TRIGGER_CYCLES};
use crate::platform::Platform;

/// Latency percentiles reported per serving point (p50 / p99 / p999).
pub const SLO_PERCENTILES: [f64; 3] = [0.50, 0.99, 0.999];

/// Width of one latency histogram bucket in cycles (≈1% resolution at the
/// p50 latencies the default grid produces).
const LATENCY_BUCKET_CYCLES: u64 = 1_024;

/// Number of latency histogram buckets (range ≈ 16.8 M cycles before
/// overflow clamps to the top edge — comfortably past the worst
/// admission-bounded tail of the default grid).
const LATENCY_BUCKETS: usize = 16_384;

/// Number of evenly spaced queue-depth samples in the report.
const QUEUE_SAMPLES: usize = 32;

/// One tenant's offered load.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantLoad {
    /// Display name ("latency-sensitive").
    pub name: String,
    /// The kernel this tenant offloads.
    pub kernel: KernelKind,
    /// Dispatch priority (larger wins under [`DispatchPolicy::Priority`]).
    pub priority: u8,
    /// Number of requests in the tenant's trace.
    pub requests: usize,
}

/// Full specification of one serving point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Number of accelerator clusters serving requests.
    pub clusters: usize,
    /// Bound on waiting requests; arrivals beyond it are rejected.
    pub admission_depth: usize,
    /// How free clusters pick among admitted requests.
    pub policy: DispatchPolicy,
    /// Shape of the arrival process (shared by all tenants).
    pub mix: ArrivalMix,
    /// The tenants and their offered load.
    pub tenants: Vec<TenantLoad>,
    /// Offered utilization: 1.0 loads the clusters at exactly their
    /// aggregate service capacity, values above saturate (rejects and a
    /// widening p99/p50 gap are expected), values below leave headroom.
    pub utilization: f64,
    /// Seed for the arrival traces (service times are calibrated
    /// deterministically and do not consume this stream).
    pub seed: u64,
}

impl ServingConfig {
    /// A small three-tenant default: one latency-sensitive high-priority
    /// axpy tenant and two throughput tenants (gesummv, heat3d).
    pub fn small(clusters: usize, policy: DispatchPolicy, mix: ArrivalMix) -> Self {
        Self {
            clusters,
            admission_depth: 8 * clusters,
            policy,
            mix,
            tenants: vec![
                TenantLoad {
                    name: "interactive".into(),
                    kernel: KernelKind::Axpy,
                    priority: 2,
                    requests: 600,
                },
                TenantLoad {
                    name: "batch-gesummv".into(),
                    kernel: KernelKind::Gesummv,
                    priority: 1,
                    requests: 400,
                },
                TenantLoad {
                    name: "batch-heat3d".into(),
                    kernel: KernelKind::Heat3d,
                    priority: 0,
                    requests: 400,
                },
            ],
            utilization: 0.7,
            seed: 0x5E4B,
        }
    }

    /// The distinct kernels across all tenants, in first-seen order.
    pub fn kernels(&self) -> Vec<KernelKind> {
        let mut kinds: Vec<KernelKind> = Vec::new();
        for t in &self.tenants {
            if !kinds.contains(&t.kernel) {
                kinds.push(t.kernel);
            }
        }
        kinds
    }
}

/// Calibrated end-to-end service time per kernel: offload trigger + the
/// measured device-only execution + completion sync.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceTable {
    entries: Vec<(KernelKind, Cycles)>,
}

impl ServiceTable {
    /// Measures each kernel's small workload with a real device-only run on
    /// a one-cluster *IOMMU + LLC* platform (pre-mapped, no contention
    /// add-ons) and books trigger + sync on top. One run per kernel: the
    /// serving loop replays this cost thousands of times without paying for
    /// thousands of full platform simulations.
    ///
    /// # Errors
    ///
    /// Propagates platform construction and offload failures.
    pub fn calibrate(kernels: &[KernelKind], seed: u64) -> Result<Self> {
        let mut entries = Vec::with_capacity(kernels.len());
        for &kind in kernels {
            let config = PlatformConfig::iommu_with_llc(200).with_clusters(1);
            let mut platform = Platform::new(config)?;
            let workload = kind.small_workload();
            let report = OffloadRunner::new(seed).run_device_only(&mut platform, &*workload)?;
            let service = OFFLOAD_TRIGGER_CYCLES + report.stats.total.raw() + OFFLOAD_SYNC_CYCLES;
            entries.push((kind, Cycles::new(service)));
        }
        Ok(Self { entries })
    }

    /// The calibrated service time for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` was not calibrated.
    pub fn service(&self, kind: KernelKind) -> Cycles {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or_else(|| panic!("kernel {:?} was not calibrated", kind))
    }

    /// The calibrated `(kernel, service)` pairs.
    pub fn entries(&self) -> &[(KernelKind, Cycles)] {
        &self.entries
    }
}

/// Latency SLO summary (cycles at the histogram bucket resolution).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median end-to-end latency.
    pub p50: u64,
    /// 99th-percentile end-to-end latency.
    pub p99: u64,
    /// 99.9th-percentile end-to-end latency.
    pub p999: u64,
    /// Completions the summary covers.
    pub count: u64,
}

impl LatencySummary {
    fn from_histogram(hist: &Histogram) -> Self {
        let ps = hist.percentiles(&SLO_PERCENTILES);
        Self {
            p50: ps[0],
            p99: ps[1],
            p999: ps[2],
            count: hist.count(),
        }
    }
}

/// Per-tenant serving outcome: the goodput-vs-offered-load curve's data
/// point for this tenant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Kernel the tenant offloads.
    pub kernel: String,
    /// Requests the tenant presented.
    pub offered: u64,
    /// Requests dropped at the full admission queue.
    pub rejected: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Offered load in requests per million cycles of the run.
    pub offered_per_mcycle: f64,
    /// Goodput in completions per million cycles of the run.
    pub goodput_per_mcycle: f64,
    /// End-to-end latency percentiles over this tenant's completions.
    pub latency: LatencySummary,
}

/// Everything one serving point produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServingReport {
    /// Dispatch policy label.
    pub policy: String,
    /// Arrival mix label.
    pub mix: String,
    /// Offered utilization factor.
    pub utilization: f64,
    /// Clusters serving.
    pub clusters: usize,
    /// Admission bound.
    pub admission_depth: usize,
    /// Requests presented across all tenants.
    pub offered: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected at the admission bound.
    pub rejected: u64,
    /// Requests that completed service (equals `admitted` after drain).
    pub completed: u64,
    /// Cycle of the last completion.
    pub makespan: u64,
    /// Overall end-to-end latency percentiles.
    pub latency: LatencySummary,
    /// Per-tenant outcomes, in tenant-table order.
    pub tenants: Vec<TenantReport>,
    /// Peak number of admitted requests waiting at once.
    pub queue_peak: usize,
    /// Waiting-queue depth sampled at [`QUEUE_SAMPLES`] evenly spaced
    /// instants across the run.
    pub queue_depth_samples: Vec<usize>,
    /// Calibrated `(kernel, service cycles)` pairs the point replayed.
    pub services: Vec<(String, u64)>,
}

impl ServingReport {
    /// The conservation invariant every run must satisfy after drain:
    /// every offered request is accounted for exactly once.
    pub fn conserved(&self) -> bool {
        self.offered == self.completed + self.rejected && self.admitted == self.completed
    }
}

/// A heap entry ordered by `(time, seq)` ascending; `seq` is the global
/// event issue order, making pops fully deterministic.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum EventKind {
    /// A request arrives at the admission queue.
    Arrival(ServingRequest),
    /// `cluster` finishes its current request and frees up.
    Free(usize),
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs one serving point: generates the arrival traces, replays them
/// through the admission queue and dispatcher over `clusters` servers, and
/// drains to completion.
///
/// Offered load is derived from the calibrated service times: utilization
/// `ρ` splits the aggregate capacity `clusters / s̄` evenly across tenants,
/// so tenant `i` arrives with mean gap `T · sᵢ / (ρ · clusters)` for `T`
/// tenants. The whole run is a pure function of `(config, services)` — no
/// wall-clock, no global state — so it replays bit-identically regardless
/// of how many worker threads run sibling points.
pub fn run(config: &ServingConfig, services: &ServiceTable) -> ServingReport {
    assert!(config.utilization > 0.0, "utilization must be positive");
    let tenants: Vec<Tenant> = config
        .tenants
        .iter()
        .map(|t| Tenant {
            name: t.name.clone(),
            priority: t.priority,
        })
        .collect();
    let mut dispatcher = Dispatcher::new(
        config.policy,
        config.clusters,
        config.admission_depth,
        tenants,
    );

    // Arrival traces: a dedicated forked RNG stream per tenant keeps the
    // traces independent of tenant order and of each other.
    let mut rng = DeterministicRng::new(config.seed);
    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut next_id = 0u64;
    for (idx, tenant) in config.tenants.iter().enumerate() {
        let service = services.service(tenant.kernel);
        let mean_gap = (config.tenants.len() as f64 * service.raw() as f64
            / (config.utilization * config.clusters as f64))
            .max(1.0) as u64;
        let mut stream = rng.fork(idx as u64);
        let trace = config
            .mix
            .generate(&mut stream, tenant.requests, Cycles::new(mean_gap));
        for arrival in trace {
            heap.push(Event {
                time: arrival.raw(),
                seq,
                kind: EventKind::Arrival(ServingRequest {
                    id: next_id,
                    tenant: idx,
                    arrival,
                    service,
                }),
            });
            seq += 1;
            next_id += 1;
        }
    }

    let mut busy: Vec<Option<ServingRequest>> = vec![None; config.clusters];
    let mut waiting = TimedQueue::unbounded_recording();
    let mut overall = Histogram::new(LATENCY_BUCKET_CYCLES, LATENCY_BUCKETS);
    let mut per_tenant_hist: Vec<Histogram> = config
        .tenants
        .iter()
        .map(|_| Histogram::new(LATENCY_BUCKET_CYCLES, LATENCY_BUCKETS))
        .collect();
    let mut completed_per_tenant = vec![0u64; config.tenants.len()];
    let mut completed = 0u64;
    let mut makespan = 0u64;

    while let Some(event) = heap.pop() {
        let now = event.time;
        match event.kind {
            EventKind::Arrival(request) => {
                dispatcher.admit(request);
            }
            EventKind::Free(cluster) => {
                let request = busy[cluster].take().expect("Free event on idle cluster");
                let latency = now - request.arrival.raw();
                overall.record(latency);
                per_tenant_hist[request.tenant].record(latency);
                completed_per_tenant[request.tenant] += 1;
                completed += 1;
                makespan = makespan.max(now);
            }
        }
        // Dispatch sweep: every free cluster pulls work while any is
        // eligible. Ascending cluster order keeps the sweep deterministic.
        for (cluster, slot) in busy.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            if let Some(request) = dispatcher.next_for(cluster) {
                waiting.push(request.arrival.raw(), now);
                *slot = Some(request);
                heap.push(Event {
                    time: now + request.service.raw(),
                    seq,
                    kind: EventKind::Free(cluster),
                });
                seq += 1;
            }
        }
    }

    let stats = dispatcher.stats().clone();
    debug_assert_eq!(dispatcher.queued(), 0, "drained run left requests queued");

    let horizon_mcycles = (makespan.max(1)) as f64 / 1e6;
    let tenant_reports = config
        .tenants
        .iter()
        .enumerate()
        .map(|(idx, t)| TenantReport {
            name: t.name.clone(),
            kernel: t.kernel.name().to_string(),
            offered: stats.offered_per_tenant[idx],
            rejected: stats.rejected_per_tenant[idx],
            completed: completed_per_tenant[idx],
            offered_per_mcycle: stats.offered_per_tenant[idx] as f64 / horizon_mcycles,
            goodput_per_mcycle: completed_per_tenant[idx] as f64 / horizon_mcycles,
            latency: LatencySummary::from_histogram(&per_tenant_hist[idx]),
        })
        .collect();

    let queue_depth_samples = (0..QUEUE_SAMPLES)
        .map(|i| waiting.occupancy_at(makespan * i as u64 / QUEUE_SAMPLES as u64))
        .collect();

    ServingReport {
        policy: config.policy.label().to_string(),
        mix: config.mix.label().to_string(),
        utilization: config.utilization,
        clusters: config.clusters,
        admission_depth: config.admission_depth,
        offered: stats.offered,
        admitted: stats.admitted,
        rejected: stats.rejected,
        completed,
        makespan,
        latency: LatencySummary::from_histogram(&overall),
        tenants: tenant_reports,
        queue_peak: waiting.peak(),
        queue_depth_samples,
        services: services
            .entries()
            .iter()
            .map(|(k, c)| (k.name().to_string(), c.raw()))
            .collect(),
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;

    /// Synthetic calibration: keeps unit tests off the full platform (the
    /// real calibration path is covered by the experiment driver and the
    /// pinned golden).
    pub(crate) fn synthetic_table() -> ServiceTable {
        ServiceTable {
            entries: vec![
                (KernelKind::Axpy, Cycles::new(70_000)),
                (KernelKind::Gesummv, Cycles::new(100_000)),
                (KernelKind::Heat3d, Cycles::new(120_000)),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::synthetic_table as table;
    use super::*;

    fn base(policy: DispatchPolicy, mix: ArrivalMix, utilization: f64) -> ServingConfig {
        let mut config = ServingConfig::small(4, policy, mix);
        config.utilization = utilization;
        config
    }

    #[test]
    fn conservation_holds_and_run_drains() {
        for mix in ArrivalMix::ALL {
            for policy in DispatchPolicy::ALL {
                let report = run(&base(policy, mix, 0.9), &table());
                assert!(
                    report.conserved(),
                    "{}/{}: offered {} != completed {} + rejected {}",
                    report.policy,
                    report.mix,
                    report.offered,
                    report.completed,
                    report.rejected
                );
                assert_eq!(report.offered, 1_400);
                assert!(report.makespan > 0);
            }
        }
    }

    #[test]
    fn saturation_rejects_and_stretches_the_tail() {
        let relaxed = run(
            &base(DispatchPolicy::Fcfs, ArrivalMix::Poisson, 0.5),
            &table(),
        );
        assert_eq!(relaxed.rejected, 0, "half load must not overflow admission");

        // Sustained overload: the admission bound fills and stays full, so
        // rejects pile up and the queue peaks at its depth.
        let overloaded = run(
            &base(DispatchPolicy::Fcfs, ArrivalMix::Poisson, 1.4),
            &table(),
        );
        assert!(
            overloaded.rejected > 100,
            "1.4x load must overflow admission ({} rejects)",
            overloaded.rejected
        );
        assert!(overloaded.queue_peak >= overloaded.admission_depth);
        assert!(overloaded.latency.p999 >= overloaded.latency.p99);

        // Transient saturation: bursts at 0.9 mean utilization overflow the
        // queue during clumps but drain between them, so rejects coexist
        // with a fat tail instead of a uniformly clamped distribution.
        let bursty = run(
            &base(DispatchPolicy::Fcfs, ArrivalMix::Bursty, 0.9),
            &table(),
        );
        assert!(bursty.rejected > 0, "bursty clumps must overflow admission");
        assert!(
            bursty.latency.p99 > 2 * bursty.latency.p50,
            "bursty p99 {} must dwarf p50 {}",
            bursty.latency.p99,
            bursty.latency.p50
        );
    }

    #[test]
    fn replay_is_bit_identical() {
        let config = base(DispatchPolicy::ShortestQueue, ArrivalMix::Bursty, 1.1);
        let a = run(&config, &table());
        let b = run(&config, &table());
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn priority_policy_protects_the_high_priority_tenant() {
        let fcfs = run(
            &base(DispatchPolicy::Fcfs, ArrivalMix::Bursty, 1.2),
            &table(),
        );
        let prio = run(
            &base(DispatchPolicy::Priority, ArrivalMix::Bursty, 1.2),
            &table(),
        );
        // Tenant 0 ("interactive") has the highest priority: under
        // saturation the priority policy must serve it with a tighter p99
        // than FCFS gives it.
        let fcfs_p99 = fcfs.tenants[0].latency.p99;
        let prio_p99 = prio.tenants[0].latency.p99;
        assert!(
            prio_p99 < fcfs_p99,
            "priority p99 {prio_p99} must beat fcfs p99 {fcfs_p99} for the interactive tenant"
        );
    }

    #[test]
    fn queue_depth_timeline_tracks_backlog() {
        let report = run(
            &base(DispatchPolicy::Fcfs, ArrivalMix::Bursty, 1.2),
            &table(),
        );
        assert!(report.queue_peak > 0);
        assert!(
            report.queue_depth_samples.iter().any(|&d| d > 0),
            "saturated run must show nonzero sampled backlog"
        );
        assert_eq!(report.queue_depth_samples.len(), QUEUE_SAMPLES);
    }
}
