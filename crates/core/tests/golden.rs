//! Golden regression tests: pinned end-to-end device cycle counts for the
//! small kernel suite at 1 and 4 clusters, so arbitration, channel and
//! clock refactors fail loudly instead of silently drifting the timing
//! model.
//!
//! The pinned numbers were produced by this exact configuration (seed
//! `0x601D`, IOMMU+LLC variant at 200 delayer cycles, fabric contention
//! charged) and are fully deterministic: workload data comes from
//! `DeterministicRng` and all timing is integer cycle arithmetic. If a
//! change legitimately alters cycle counts, update the table **in the same
//! commit** and call the change out in the PR description.
//!
//! The default-knob table doubles as the global-clock engine's identity
//! proof: with host traffic disabled, one channel, round-robin and PTW
//! batching off, the timed engine must reproduce the pre-clock (PR 2)
//! counts bit for bit. A second table pins the timed engine itself — host
//! traffic + 4 clusters + batched PTW.

use sva_host::HostTrafficConfig;
use sva_kernels::KernelKind;
use sva_soc::config::PlatformConfig;
use sva_soc::offload::OffloadRunner;
use sva_soc::platform::Platform;

const GOLDEN_SEED: u64 = 0x601D;
const GOLDEN_LATENCY: u64 = 200;

/// (kernel, clusters, device wall-clock cycles).
///
/// Every count except the `sort @ 4` row predates the global clock (PR 2);
/// `sort @ 4` became possible when the merge-path partitions moved to
/// shared functional memory.
const GOLDEN: &[(KernelKind, usize, u64)] = &[
    (KernelKind::Axpy, 1, 18_151),
    (KernelKind::Axpy, 4, 15_236),
    (KernelKind::Gemm, 1, 245_041),
    (KernelKind::Gemm, 4, 98_455),
    (KernelKind::Gesummv, 1, 38_714),
    (KernelKind::Gesummv, 4, 20_379),
    (KernelKind::Heat3d, 1, 90_652),
    (KernelKind::Heat3d, 4, 31_903),
    (KernelKind::Sort, 1, 1_361_325),
    (KernelKind::Sort, 4, 927_870),
];

/// Pinned counts for the timed engine: 4 clusters, fabric contention
/// charged, the default host-traffic stream injected into the window and
/// the MSHR-style batched walker on.
const TIMED_GOLDEN: &[(KernelKind, u64)] = &[
    (KernelKind::Axpy, 86_890),
    (KernelKind::Gemm, 229_936),
    (KernelKind::Gesummv, 169_225),
    (KernelKind::Heat3d, 180_900),
    (KernelKind::Sort, 966_869),
];

/// Pinned counts for the split-transaction fabric: the timed-engine
/// configuration with **finite channel queues** (request/response depth 4).
/// Issue now sees request-channel backpressure — full FIFOs stall the DMA
/// engines and the page-table walker upstream instead of only pricing the
/// bus after the fact.
const SHALLOW_GOLDEN: &[(KernelKind, u64)] = &[
    (KernelKind::Axpy, 440_456),
    (KernelKind::Gemm, 948_264),
    (KernelKind::Gesummv, 876_780),
    (KernelKind::Heat3d, 907_963),
    (KernelKind::Sort, 1_142_344),
];

/// Queue depth of the shallow-queue golden configuration.
const SHALLOW_DEPTH: usize = 4;

/// Pinned counts for the translation hierarchy + demand paging: **2**
/// clusters (at 4, every device runs a single small-workload tile and —
/// entries being device-tagged — never re-references a page, so no level
/// could hit), fabric contention charged, a two-level TLB hierarchy with
/// a deliberately tight L1 and ATS/PRI demand paging — nothing is
/// pre-mapped, every page cold-starts through the page-request loop. `(kernel, device wall-clock, faults serviced)`.
/// Fault stalls are charged serially onto the batch completion (bursts
/// keep their fault-free fabric placement), so every row is its pre-mapped
/// twin plus the fault-service time — demand paging can never report a
/// *lower* contended wall clock. Sort joined the table once the executor's
/// plan pass learnt to page its reads in through the ATS/PRI handler
/// (previously a documented incompatibility); axpy stays excluded because
/// it streams with zero page reuse, so its shared L2 can never hit (there
/// is no two-level split to pin).
const DEMAND_GOLDEN: &[(KernelKind, u64, u64)] = &[
    (KernelKind::Gemm, 141_964, 12),
    (KernelKind::Gesummv, 54_090, 34),
    (KernelKind::Heat3d, 62_792, 8),
    (KernelKind::Sort, 1_279_423, 32),
];

/// Pinned outcome of one small open-loop serving point (bursty arrivals,
/// FCFS dispatch, 1.2× utilization, quarter-length traces — the smoke
/// grid's transiently saturated shape): `(offered, admitted, rejected,
/// completed, p50, p99)`. The whole serving path — real device-only
/// calibration, arrival trace generation, admission, dispatch, the event
/// loop — is deterministic, so these must hold bit for bit.
const SERVING_GOLDEN: (u64, u64, u64, u64, u64, u64) = (350, 330, 20, 330, 321_536, 1_005_568);

fn golden_config(clusters: usize) -> PlatformConfig {
    PlatformConfig::iommu_with_llc(GOLDEN_LATENCY)
        .with_clusters(clusters)
        .with_fabric_contention()
}

fn device_total(config: PlatformConfig, kind: KernelKind) -> u64 {
    let wl = kind.small_workload();
    let mut platform = Platform::new(config).unwrap();
    let report = OffloadRunner::new(GOLDEN_SEED)
        .run_device_only(&mut platform, wl.as_ref())
        .unwrap();
    assert!(report.verified, "{kind:?} golden run must verify");
    report.stats.total.raw()
}

#[test]
fn pinned_cycle_counts_hold() {
    let mut failures = Vec::new();
    for &(kind, clusters, expected) in GOLDEN {
        let actual = device_total(golden_config(clusters), kind);
        if actual != expected {
            failures.push(format!(
                "{kind:?} @ {clusters} cluster(s): pinned {expected}, measured {actual}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden cycle counts drifted:\n  {}",
        failures.join("\n  ")
    );
}

#[test]
fn pinned_serving_point_holds() {
    use sva_common::ArrivalMix;
    use sva_host::serving::DispatchPolicy;
    use sva_soc::experiments::serving as sweep;
    use sva_soc::serving::{run, ServingConfig};

    let mut config = ServingConfig::small(4, DispatchPolicy::Fcfs, ArrivalMix::Bursty);
    config.utilization = 1.2;
    config.seed = sweep::SERVING_SEED;
    for tenant in &mut config.tenants {
        tenant.requests /= 4;
    }
    let services = sweep::calibrate().expect("service calibration");
    let report = run(&config, &services);
    assert!(report.conserved(), "serving conservation violated");
    let measured = (
        report.offered,
        report.admitted,
        report.rejected,
        report.completed,
        report.latency.p50,
        report.latency.p99,
    );
    assert_eq!(
        measured, SERVING_GOLDEN,
        "serving golden drifted (offered, admitted, rejected, completed, p50, p99)"
    );
}

/// The explicit baseline fabric — one DRAM channel, round-robin arbitration
/// — is cycle-identical to the default configuration (which is the PR 1
/// single-timeline model): the channel/policy layer costs nothing when
/// dialled back to the paper's prototype.
#[test]
fn single_channel_round_robin_is_cycle_identical_to_default() {
    use sva_common::ArbitrationPolicy;
    for &(kind, clusters, expected) in GOLDEN {
        let explicit = golden_config(clusters)
            .with_memory_channels(1)
            .with_arbitration(ArbitrationPolicy::RoundRobin);
        let actual = device_total(explicit, kind);
        assert_eq!(
            actual, expected,
            "{kind:?} @ {clusters}: explicit 1-channel round-robin diverged from the default"
        );
    }
}

/// Multi-channel splits must never slow the contended platform down, and
/// the pinned 4-cluster numbers are an upper bound for every wider split.
#[test]
fn more_channels_never_exceed_the_pinned_single_channel_counts() {
    for &(kind, clusters, expected) in GOLDEN {
        if clusters == 1 {
            continue;
        }
        for channels in [2usize, 4] {
            let actual = device_total(golden_config(clusters).with_memory_channels(channels), kind);
            assert!(
                actual <= expected,
                "{kind:?} @ {clusters} with {channels} channels took {actual} > pinned {expected}"
            );
        }
    }
}

/// The timed engine locked down: host traffic + 4 clusters + batched PTW
/// reproduce their pinned counts, the device is slower than in the
/// host-idle run (interference costs cycles), the host and PTW initiators
/// observe queueing on the fabric timelines, and the walker coalesces.
#[test]
fn timed_engine_golden_counts_hold() {
    let mut failures = Vec::new();
    for &(kind, expected) in TIMED_GOLDEN {
        let config = golden_config(4)
            .with_host_traffic(HostTrafficConfig::default())
            .with_ptw_batching();
        let wl = kind.small_workload();
        let mut platform = Platform::new(config).unwrap();
        let report = OffloadRunner::new(GOLDEN_SEED)
            .run_device_only(&mut platform, wl.as_ref())
            .unwrap();
        assert!(report.verified, "{kind:?} timed golden run must verify");
        let actual = report.stats.total.raw();
        if actual != expected {
            failures.push(format!(
                "{kind:?} timed engine: pinned {expected}, measured {actual}"
            ));
        }
        let idle = GOLDEN
            .iter()
            .find(|&&(k, clusters, _)| k == kind && clusters == 4)
            .map(|&(_, _, total)| total)
            .expect("every timed kernel has a 4-cluster idle pin");
        assert!(
            actual > idle,
            "{kind:?}: host interference must cost cycles ({actual} vs idle {idle})"
        );
        let queue_of = |id: sva_common::InitiatorId| {
            platform
                .mem
                .fabric()
                .initiator_stats(id)
                .map(|s| s.queue_cycles)
                .unwrap_or(0)
        };
        assert!(
            queue_of(sva_common::InitiatorId::HostStream) > 0,
            "{kind:?}: the host stream must observe queueing"
        );
        assert!(
            queue_of(sva_common::InitiatorId::Ptw) > 0,
            "{kind:?}: page-table walks must observe queueing"
        );
        assert!(
            report.iommu.ptw_coalesced_reads > 0,
            "{kind:?}: the batched walker must coalesce concurrent walks"
        );
    }
    assert!(
        failures.is_empty(),
        "timed-engine golden counts drifted:\n  {}",
        failures.join("\n  ")
    );
}

/// The translation hierarchy + demand paging locked down: the two-level
/// TLB + cold-start page-request configuration reproduces its pinned
/// counts, the hit traffic splits across both levels (nonzero L1 *and* L2
/// hits, with L1 filtering traffic away from L2), a nonzero number of
/// page faults is serviced through the ATS/PRI loop with its latency
/// accounted, and the **default configuration stays bit-identical to
/// PR 4** (the `GOLDEN` table above proves that side).
#[test]
fn demand_paging_golden_counts_hold() {
    let mut failures = Vec::new();
    for &(kind, expected_total, expected_faults) in DEMAND_GOLDEN {
        // A deliberately tight 2-entry L1: the small-workload reuse windows
        // must spill out of the ATC so the shared L2 demonstrably serves
        // them (with the default 4-entry ATC the small kernels' per-tile
        // sets never leave L1 and the L2 would sit idle).
        let hierarchy = sva_iommu::TlbHierarchyConfig {
            l1: sva_iommu::TlbLevelConfig::new(
                sva_common::TlbOrg::fully_associative(2),
                sva_common::ReplacementPolicy::TrueLru,
                sva_common::Cycles::new(1),
            ),
            ..sva_iommu::TlbHierarchyConfig::default()
        };
        let config = golden_config(2)
            .with_tlb_hierarchy(hierarchy)
            .with_demand_paging();
        let wl = kind.small_workload();
        let mut platform = Platform::new(config).unwrap();
        let report = OffloadRunner::new(GOLDEN_SEED)
            .run_device_only(&mut platform, wl.as_ref())
            .unwrap();
        assert!(report.verified, "{kind:?} demand-paging run must verify");
        let actual = report.stats.total.raw();
        let faults = report.iommu.page_requests.serviced;
        if actual != expected_total || faults != expected_faults {
            failures.push(format!(
                "{kind:?} demand paging: pinned ({expected_total}, {expected_faults}), \
                 measured ({actual}, {faults})"
            ));
        }
        assert!(faults > 0, "{kind:?}: serviced page faults must be nonzero");
        assert_eq!(
            report.iommu.page_requests.failed, 0,
            "{kind:?}: every fault is resolvable"
        );
        assert!(
            report.iommu.atc.hits > 0 && report.iommu.iotlb.hits > 0,
            "{kind:?}: hits must split across L1 and L2 ({:?} / {:?})",
            report.iommu.atc,
            report.iommu.iotlb
        );
        assert!(
            report.iommu.iotlb.total() < report.iommu.atc.total(),
            "{kind:?}: the L1 ATCs must filter traffic away from L2"
        );
        assert!(
            report.iommu.page_request_p50 > 0
                && report.iommu.page_request_p99 >= report.iommu.page_request_p50,
            "{kind:?}: fault-latency percentiles must be populated"
        );
        assert!(
            report.stats.dma.fault_stall_cycles > 0,
            "{kind:?}: the DMA engines must account their fault stalls"
        );
        // Cold-start paging must cost cycles against the same platform
        // without demand paging (the hierarchy alone barely moves the
        // needle; the fault loop dominates).
        let mut premapped_platform =
            Platform::new(golden_config(2).with_tlb_hierarchy(hierarchy)).unwrap();
        let premapped = OffloadRunner::new(GOLDEN_SEED)
            .run_device_only(&mut premapped_platform, wl.as_ref())
            .unwrap();
        assert!(
            actual > premapped.stats.total.raw(),
            "{kind:?}: cold-start paging must cost cycles ({actual} vs premapped {})",
            premapped.stats.total.raw()
        );
    }
    assert!(
        failures.is_empty(),
        "demand-paging golden counts drifted:\n  {}",
        failures.join("\n  ")
    );
}

/// The split-transaction fabric locked down: finite request/response queues
/// (depth 4) on the timed-engine configuration reproduce their pinned
/// counts, are never faster than the unbounded-queue run (backpressure
/// only delays), and — the point of the model — both the DMA engines and
/// the page-table walker observe nonzero `issue_stall_cycles`: full channel
/// FIFOs stall issue upstream.
#[test]
fn shallow_queue_golden_counts_hold() {
    let mut failures = Vec::new();
    for &(kind, expected) in SHALLOW_GOLDEN {
        let config = golden_config(4)
            .with_host_traffic(HostTrafficConfig::default())
            .with_ptw_batching()
            .with_channel_depths(SHALLOW_DEPTH, SHALLOW_DEPTH);
        let wl = kind.small_workload();
        let mut platform = Platform::new(config).unwrap();
        let report = OffloadRunner::new(GOLDEN_SEED)
            .run_device_only(&mut platform, wl.as_ref())
            .unwrap();
        assert!(report.verified, "{kind:?} shallow-queue run must verify");
        let actual = report.stats.total.raw();
        if actual != expected {
            failures.push(format!(
                "{kind:?} shallow queues: pinned {expected}, measured {actual}"
            ));
        }
        let timed = TIMED_GOLDEN
            .iter()
            .find(|&&(k, _)| k == kind)
            .map(|&(_, total)| total)
            .expect("every shallow kernel has a timed pin");
        assert!(
            actual >= timed,
            "{kind:?}: backpressure cannot speed the device up ({actual} vs unbounded {timed})"
        );
        let stall_of = |id: sva_common::InitiatorId| {
            platform
                .mem
                .fabric()
                .initiator_stats(id)
                .map(|s| s.issue_stall_cycles)
                .unwrap_or(0)
        };
        let dma_stall: u64 = (0..4)
            .map(|i| stall_of(sva_common::InitiatorId::dma(1 + 2 * i)))
            .sum();
        assert!(
            dma_stall > 0,
            "{kind:?}: DMA issue must stall at the full request queue"
        );
        assert!(
            stall_of(sva_common::InitiatorId::Ptw) > 0,
            "{kind:?}: the walker must stall at the full request queue"
        );
        assert_eq!(
            stall_of(sva_common::InitiatorId::Host),
            0,
            "{kind:?}: untimed-cursor host accesses do not stall"
        );
        // The per-initiator peaks never exceed the configured depth.
        for snap in platform.mem.fabric_stats() {
            assert!(
                snap.stats.req_queue_peak <= SHALLOW_DEPTH as u64
                    && snap.stats.rsp_queue_peak <= SHALLOW_DEPTH as u64,
                "{kind:?}: {} peak exceeds depth: {:?}",
                snap.id,
                snap.stats
            );
        }
    }
    assert!(
        failures.is_empty(),
        "shallow-queue golden counts drifted:\n  {}",
        failures.join("\n  ")
    );
}
