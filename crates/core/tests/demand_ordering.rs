//! Regression: cold-start demand paging never reports a *lower* contended
//! wall clock than the identical pre-mapped run.
//!
//! Two historic mechanisms let it happen:
//!
//! 1. **Issue-time stagger** — the DMA fault loop used to push the burst
//!    issue cursor back to the fault-service resume time, so post-fault
//!    bursts left their fault-free fabric placement. The staggered streams
//!    de-correlated across shards and could dodge enough contention to beat
//!    the pre-mapped run outright (worst observed: Gemm on 4 clusters,
//!    ~11% faster *with* faults). Fault service is now charged serially
//!    onto the batch completion; bursts keep their schedule.
//! 2. **Walk warming** — a faulting translation used to run its timed
//!    page-table walk before discovering the leaf was missing. The failed
//!    walk's PTE reads warmed the LLC, making the post-fault retry cheaper
//!    than the same translation in a pre-mapped run and shifting fabric
//!    placement for every later burst. Faulting attempts are now squashed
//!    by an untimed probe before any timed read is issued.
//!
//! The grid below covers every configuration the old code inverted plus
//! the surrounding points. Bounded queue depths combined with the
//! closed-loop host-traffic stream are deliberately excluded: in that
//! backpressure-dominated regime the fault stalls shift later tiles into
//! genuinely quieter fabric windows, so either ordering is physically
//! legitimate scheduling luck (observed margins are under 0.6%, versus the
//! ~11% accounting artifact this test pins). The per-shard
//! `fault_stall_cycles` totals assert the stall is separately visible
//! regardless.

use sva_common::channel::QueueDepths;
use sva_host::HostTrafficConfig;
use sva_kernels::KernelKind;
use sva_soc::config::PlatformConfig;
use sva_soc::offload::OffloadRunner;
use sva_soc::platform::Platform;

const SEED: u64 = 0x601D;

fn run(
    kind: KernelKind,
    clusters: usize,
    depths: Option<QueueDepths>,
    traffic: bool,
    demand: bool,
) -> (u64, u64) {
    let mut config = PlatformConfig::iommu_with_llc(200)
        .with_clusters(clusters)
        .with_fabric_contention()
        .with_default_tlb_hierarchy();
    if let Some(d) = depths {
        config = config.with_queue_depths(d);
    }
    if traffic {
        config = config.with_host_traffic(HostTrafficConfig::default());
    }
    if demand {
        config = config.with_demand_paging();
    }
    let workload = kind.small_workload();
    let mut platform = Platform::new(config).expect("platform");
    let report = OffloadRunner::new(SEED)
        .run_device_only(&mut platform, workload.as_ref())
        .expect("device run");
    assert!(report.verified, "{kind:?} results must verify");
    let fault_stall: u64 = report
        .per_cluster
        .iter()
        .map(|s| s.dma.fault_stall_cycles)
        .sum();
    (report.stats.total.raw(), fault_stall)
}

#[test]
fn demand_paging_wall_clock_never_beats_premapped() {
    let bounded = QueueDepths::bounded(4, 4);
    let mut grid: Vec<(KernelKind, usize, Option<QueueDepths>, bool)> = Vec::new();
    for kind in [KernelKind::Gemm, KernelKind::Gesummv, KernelKind::Heat3d] {
        for clusters in [2usize, 4] {
            // Isolated offloads: both depth settings.
            grid.push((kind, clusters, None, false));
            grid.push((kind, clusters, Some(bounded), false));
            // Contended-by-host-traffic offloads with unbounded queues.
            grid.push((kind, clusters, None, true));
        }
    }
    let mut failures = Vec::new();
    for (kind, clusters, depths, traffic) in grid {
        let (premapped, _) = run(kind, clusters, depths, traffic, false);
        let (demand, fault_stall) = run(kind, clusters, depths, traffic, true);
        assert!(
            fault_stall > 0,
            "{kind:?} c={clusters}: demand run must record fault stalls"
        );
        if demand < premapped {
            failures.push(format!(
                "{kind:?} c={clusters} depths={depths:?} traffic={traffic}: \
                 demand {demand} < premapped {premapped}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "demand paging beat the pre-mapped wall clock:\n  {}",
        failures.join("\n  ")
    );
}
