//! Integration tests of the QoS-aware fabric arbitration: starvation-freedom
//! of the weighted policy, strict ordering of fixed-priority arbitration
//! under synthetic two-initiator contention, the IOTLB/fabric stat-sum
//! invariants on a multi-cluster platform running each policy, and the
//! global-clock engine (timed host traffic contending with DMA/PTW, the
//! MSHR-style batched walker).

use sva_common::{ArbitrationPolicy, Cycles, InitiatorId, MemPortReq, PhysAddr, PortTiming};
use sva_host::HostTrafficConfig;
use sva_kernels::GemmWorkload;
use sva_mem::fabric::{Fabric, FabricConfig};
use sva_soc::config::PlatformConfig;
use sva_soc::offload::OffloadRunner;
use sva_soc::platform::Platform;

const DRAM_BASE: u64 = 0x8000_0000;

fn burst(device: u32, priority: u8) -> MemPortReq {
    MemPortReq::read(InitiatorId::dma(device), PhysAddr::new(DRAM_BASE), 2048)
        .as_burst()
        .with_priority(priority)
}

fn timing(occupancy: u64) -> PortTiming {
    PortTiming {
        latency: Cycles::new(200),
        occupancy: Cycles::new(occupancy),
    }
}

/// Weighted arbitration must not starve the low-weight initiator: under
/// sustained two-initiator contention with a 16:1 weight skew, every access
/// of the light stream is still placed within the bus time the heavy stream
/// has reserved so far, and the skew shows up as a queueing imbalance —
/// not as denial of service.
#[test]
fn weighted_arbitration_is_starvation_free() {
    let mut fabric = Fabric::new(FabricConfig {
        policy: ArbitrationPolicy::Weighted(vec![16, 1]),
        ..FabricConfig::default()
    });
    const ROUNDS: u64 = 64;
    const OCC: u64 = 256;
    let mut heavy_reserved = 0u64;
    for i in 0..ROUNDS {
        let t = Cycles::new(i * 10);
        fabric.grant(&burst(1, 0).at(t), timing(OCC));
        heavy_reserved += OCC;
        let q = fabric.grant(&burst(3, 0).at(t), timing(OCC));
        // Bounded waiting: the light stream can only ever wait behind bus
        // time that has actually been reserved, never indefinitely.
        assert!(
            q.raw() <= heavy_reserved,
            "round {i}: light stream waited {q} behind {heavy_reserved} reserved cycles"
        );
    }
    let heavy = fabric.initiator_stats(InitiatorId::dma(1)).unwrap();
    let light = fabric.initiator_stats(InitiatorId::dma(3)).unwrap();
    // Both streams got all their grants — nobody was dropped or deferred
    // past the measurement window.
    assert_eq!(heavy.accesses(), ROUNDS);
    assert_eq!(light.accesses(), ROUNDS);
    assert_eq!(heavy.bytes, light.bytes);
    // The skew shifts the queueing burden onto the light stream...
    assert!(
        heavy.queue_cycles < light.queue_cycles,
        "weight 16 should out-queue weight 1: heavy={} light={}",
        heavy.queue_cycles,
        light.queue_cycles
    );
    // ...but the light stream still makes continuous progress: its average
    // wait per access stays below one full rotation of both streams.
    let avg_wait = light.queue_cycles / light.accesses();
    assert!(
        avg_wait <= 2 * OCC,
        "light stream's average wait {avg_wait} exceeds a bus rotation"
    );
}

/// Fixed-priority arbitration orders strictly: the high-priority initiator
/// never waits for low-priority occupancy, the low-priority initiator
/// absorbs all queueing, and equal priorities degenerate to the first-fit
/// round-robin behaviour.
#[test]
fn fixed_priority_orders_strictly_under_contention() {
    let mut fabric = Fabric::new(FabricConfig {
        policy: ArbitrationPolicy::FixedPriority,
        ..FabricConfig::default()
    });
    for i in 0..32u64 {
        let t = Cycles::new(i * 10);
        fabric.grant(&burst(1, 0).at(t), timing(256)); // low priority
        fabric.grant(&burst(3, 2).at(t), timing(256)); // high priority
    }
    let low = fabric.initiator_stats(InitiatorId::dma(1)).unwrap();
    let high = fabric.initiator_stats(InitiatorId::dma(3)).unwrap();
    assert_eq!(
        high.queue_cycles, 0,
        "high priority must never wait for low-priority occupancy"
    );
    assert_eq!(high.contended_grants, 0);
    assert!(
        low.queue_cycles > 0,
        "low priority absorbs the contention under strict ordering"
    );

    // Equal priorities: fixed-priority placement equals round-robin's.
    let drive = |policy: ArbitrationPolicy| -> Vec<u64> {
        let mut fabric = Fabric::new(FabricConfig {
            policy,
            ..FabricConfig::default()
        });
        let mut queues = Vec::new();
        for i in 0..32u64 {
            let t = Cycles::new(i * 10);
            queues.push(fabric.grant(&burst(1, 1).at(t), timing(256)).raw());
            queues.push(fabric.grant(&burst(3, 1).at(t), timing(256)).raw());
        }
        queues
    };
    // Note both streams present priority 1: under RoundRobin that is the
    // win-outright escape hatch, under FixedPriority it is an equal level,
    // so compare against priority-0 round-robin traffic instead.
    let fixed_equal = drive(ArbitrationPolicy::FixedPriority);
    let rr = {
        let mut fabric = Fabric::default();
        let mut queues = Vec::new();
        for i in 0..32u64 {
            let t = Cycles::new(i * 10);
            queues.push(fabric.grant(&burst(1, 0).at(t), timing(256)).raw());
            queues.push(fabric.grant(&burst(3, 0).at(t), timing(256)).raw());
        }
        queues
    };
    assert_eq!(
        fixed_equal, rr,
        "equal priorities must degenerate to round-robin placement"
    );
}

/// The per-device IOTLB statistics and the per-initiator fabric statistics
/// keep summing to their global counters whichever arbitration policy and
/// channel split the platform runs — the accounting invariants of PR 1 hold
/// under the QoS layer.
#[test]
fn stat_sums_hold_under_every_policy() {
    let policies = [
        ArbitrationPolicy::RoundRobin,
        ArbitrationPolicy::Weighted(vec![4, 2, 1, 1]),
        ArbitrationPolicy::FixedPriority,
    ];
    for policy in policies {
        let config = PlatformConfig::iommu_with_llc(200)
            .with_clusters(4)
            .with_fabric_contention()
            .with_memory_channels(2)
            .with_arbitration(policy.clone())
            .with_cluster_priorities(vec![0, 1, 2, 3]);
        let mut platform = Platform::new(config).unwrap();
        let report = OffloadRunner::new(0xFA1)
            .run_device_only(&mut platform, &GemmWorkload::with_dim(64))
            .unwrap();
        assert!(report.verified, "{policy:?} run must verify");

        // IOTLB: per-device stats sum to the global hit/miss counters.
        let global = platform.iommu.iotlb().stats();
        let per_device = platform.iommu.device_iotlb_stats();
        assert!(per_device.len() >= 4, "one IOTLB row per data device");
        assert_eq!(
            per_device.iter().map(|(_, s)| s.total()).sum::<u64>(),
            global.total(),
            "{policy:?}: per-device IOTLB rows must sum to the global stats"
        );

        // Fabric: per-initiator rows sum to the global memory statistics,
        // and per-channel rows sum to the fabric totals.
        let mem_stats = *platform.mem.stats();
        let snaps = platform.mem.fabric_stats();
        let dma_bursts: u64 = snaps
            .iter()
            .filter(|s| matches!(s.id, InitiatorId::Dma { .. }))
            .map(|s| s.stats.accesses())
            .sum();
        let dma_bytes: u64 = snaps
            .iter()
            .filter(|s| matches!(s.id, InitiatorId::Dma { .. }))
            .map(|s| s.stats.bytes)
            .sum();
        assert_eq!(mem_stats.dma_bursts, dma_bursts);
        assert_eq!(mem_stats.dma_bytes, dma_bytes);
        let total = platform.mem.fabric().total();
        let per_channel = platform.mem.channel_stats();
        assert_eq!(per_channel.len(), 2);
        assert_eq!(
            per_channel.iter().map(|c| c.bytes).sum::<u64>(),
            total.bytes
        );
        assert_eq!(
            per_channel.iter().map(|c| c.queue_cycles).sum::<u64>(),
            total.queue_cycles
        );
    }
}

/// The global-clock engine end to end: with a timed host-traffic stream
/// injected into the measurement window of a contended multi-cluster run,
/// (a) the host and PTW initiators observe nonzero queueing (they are on
/// the fabric timelines now), (b) the device slows down relative to the
/// host-idle run, and (c) the host-idle configuration's wall-clock is
/// untouched by the engine merely existing.
#[test]
fn timed_host_traffic_contends_with_dma_and_ptw() {
    let wl = GemmWorkload::with_dim(64);
    let run = |host: bool| {
        let mut config = PlatformConfig::iommu_with_llc(200)
            .with_clusters(4)
            .with_fabric_contention();
        if host {
            config = config.with_host_traffic(HostTrafficConfig::default());
        }
        let mut platform = Platform::new(config).unwrap();
        let report = OffloadRunner::new(0x6C0C)
            .run_device_only(&mut platform, &wl)
            .unwrap();
        assert!(report.verified, "host={host} run must verify");
        let queue_of = |id: InitiatorId| {
            platform
                .mem
                .fabric()
                .initiator_stats(id)
                .map(|s| s.queue_cycles)
                .unwrap_or(0)
        };
        (
            report.stats.total.raw(),
            queue_of(InitiatorId::HostStream),
            queue_of(InitiatorId::Ptw),
        )
    };
    let (idle_total, _, _) = run(false);
    let (noisy_total, host_queue, ptw_queue) = run(true);
    assert!(
        host_queue > 0,
        "the host stream must queue behind DMA occupancy"
    );
    assert!(
        ptw_queue > 0,
        "page-table walks must queue behind host/DMA occupancy"
    );
    assert!(
        noisy_total > idle_total,
        "host interference must slow the device: idle={idle_total} noisy={noisy_total}"
    );
}

/// The MSHR-style batched walker on a multi-cluster platform: per-device
/// IOTLB misses of the shared working set coalesce in the walk table, so
/// batching cuts the walker's memory reads without changing results, and
/// read+coalesced totals are conserved.
#[test]
fn ptw_batching_coalesces_cross_device_walks() {
    let wl = GemmWorkload::with_dim(64);
    let run = |batching: bool| {
        let mut config = PlatformConfig::iommu_with_llc(200)
            .with_clusters(4)
            .with_fabric_contention();
        if batching {
            config = config.with_ptw_batching();
        }
        let mut platform = Platform::new(config).unwrap();
        let report = OffloadRunner::new(0xBA7C)
            .run_device_only(&mut platform, &wl)
            .unwrap();
        assert!(report.verified, "batching={batching} run must verify");
        report.iommu
    };
    let serial = run(false);
    let batched = run(true);
    assert_eq!(serial.ptw_coalesced_reads, 0);
    assert!(batched.ptw_coalesced_reads > 0, "concurrent walks coalesce");
    assert!(
        batched.ptw_reads < serial.ptw_reads,
        "batching must cut walker memory reads: {} vs {}",
        batched.ptw_reads,
        serial.ptw_reads
    );
    // Same translation work happened either way: every level of every walk
    // resolved exactly once, by a read or by coalescing.
    assert_eq!(serial.ptw_walks, batched.ptw_walks);
    assert_eq!(
        batched.ptw_reads + batched.ptw_coalesced_reads,
        serial.ptw_reads,
        "levels are conserved between the serial and batched walkers"
    );
}
