//! Cycle-identity property suite for the indexed PTW walk table.
//!
//! The indexed walk table (per-PTE-address issue-time-keyed window maps +
//! a boundary-delta in-flight counter) must be **bit-identical** to the
//! retained [`sva_iommu::NaiveWalkTable`] reference (the original
//! scan-twice-per-fetch flat table) on every walk: identical
//! [`sva_iommu::PtwResult`]s — leaf, cycles, reads, coalesced levels —
//! identical faults, identical walker statistics. The suite drives twin
//! walkers against twin memory systems on `DeterministicRng` workloads
//! across
//!
//! * batched (MSHR sizes 1, 2, 8, 64) and serial walkers,
//! * unbounded and shallow request queues, with and without the
//!   global-clock engine (`timed_host_ptw`, the port-credit clamp),
//! * out-of-order shard times: per-shard monotone cursors interleaved
//!   exactly like the platform's sharded offload, plus exact-boundary
//!   arrivals landing on recorded completion instants,
//! * mapped and unmapped pages (the fault path), LLC on and off,
//!
//! and additionally proves the harness has teeth by catching an injected
//! completion-window off-by-one (the PR 6 `OffByOneQueue` / PR 8
//! `OffByOneFabric` discipline), and that watermark compaction is
//! outcome-neutral under its contract while bounding the live set.

use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, Iova, PAGE_SIZE};
use sva_iommu::PageTableWalker;
use sva_mem::{FabricConfig, MemSysConfig, MemorySystem};
use sva_vm::{AddressSpace, FrameAllocator};

const PAGES: u64 = 6;

/// One timed walk request: which page (one slot past the mapped range is
/// the deliberately unmapped faulting page), when, read or write.
#[derive(Clone, Copy, Debug)]
struct WalkOp {
    page: u64,
    t: u64,
    is_write: bool,
}

/// A twin-able environment: a memory system and an address space with
/// `PAGES` mapped pages. Construction is fully deterministic, so two calls
/// with the same knobs yield bit-identical twins.
fn environment(
    llc: bool,
    req_queue_depth: usize,
    timed: bool,
) -> (MemorySystem, AddressSpace, Iova) {
    let mut mem = MemorySystem::new(MemSysConfig {
        dram_latency: Cycles::new(400),
        llc_enabled: llc,
        fabric: FabricConfig {
            req_queue_depth,
            timed_host_ptw: timed,
            ..FabricConfig::default()
        },
        ..MemSysConfig::default()
    });
    let mut frames = FrameAllocator::linux_pool();
    let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
    let va = space
        .alloc_buffer(&mut mem, &mut frames, PAGES * PAGE_SIZE)
        .unwrap();
    (mem, space, Iova::from_virt(va))
}

/// A randomized walk storm shaped like the platform's traffic: several
/// conceptually concurrent shards whose local cursors advance
/// independently (and occasionally restart at zero mid-run, so arrival
/// order is *not* simulation order), dense enough to coalesce, with a
/// sprinkle of faulting walks of the unmapped page.
fn workload(rng: &mut DeterministicRng, walks: usize) -> Vec<WalkOp> {
    let shards = 1 + rng.next_below(4) as usize;
    let mut cursors = vec![0u64; shards];
    let mut out = Vec::with_capacity(walks);
    for i in 0..walks {
        let shard = i % shards;
        if rng.next_below(40) == 0 {
            // A shard restart: its clock rewinds to zero, like a fresh
            // device window simulated after its siblings.
            cursors[shard] = 0;
        }
        cursors[shard] += rng.next_below(60);
        let page = if rng.next_below(12) == 0 {
            PAGES // one past the mapped range: every walk of it faults
        } else {
            rng.next_below(PAGES)
        };
        out.push(WalkOp {
            page,
            t: cursors[shard],
            is_write: rng.next_below(4) == 0,
        });
    }
    out
}

/// Runs one op on one walker/environment, returning a comparable outcome
/// string (leaf + cycles + reads + coalesced, or the fault).
fn step(
    ptw: &mut PageTableWalker,
    mem: &mut MemorySystem,
    space: &AddressSpace,
    base: Iova,
    op: WalkOp,
) -> String {
    match ptw.walk_at(
        mem,
        space.root(),
        base + op.page * PAGE_SIZE,
        op.is_write,
        Cycles::new(op.t),
    ) {
        Ok(res) => format!("{res:?}"),
        Err(e) => format!("fault: {e:?}"),
    }
}

/// Asserts both walkers agree on every walk and every statistic.
fn assert_identical(
    mut indexed: PageTableWalker,
    mut naive: PageTableWalker,
    llc: bool,
    req_queue_depth: usize,
    timed: bool,
    ops: &[WalkOp],
    label: &str,
) {
    let (mut mem_a, space_a, base_a) = environment(llc, req_queue_depth, timed);
    let (mut mem_b, space_b, base_b) = environment(llc, req_queue_depth, timed);
    assert_eq!(base_a, base_b, "twin environments must be bit-identical");
    for (i, &op) in ops.iter().enumerate() {
        let x = step(&mut indexed, &mut mem_a, &space_a, base_a, op);
        let y = step(&mut naive, &mut mem_b, &space_b, base_b, op);
        assert_eq!(x, y, "{label}: walk {i} diverged ({op:?})");
    }
    assert_eq!(indexed.walks(), naive.walks(), "{label}: walk counts");
    assert_eq!(indexed.faults(), naive.faults(), "{label}: fault counts");
    assert_eq!(indexed.pte_reads(), naive.pte_reads(), "{label}: PTE reads");
    assert_eq!(
        indexed.coalesced_reads(),
        naive.coalesced_reads(),
        "{label}: coalesced levels"
    );
    assert_eq!(
        indexed.walk_time(),
        naive.walk_time(),
        "{label}: walk-time statistics"
    );
    indexed.debug_validate_walk_table();
}

/// The core identity property: randomized walk storms across
/// MSHR sizes × {unbounded, shallow} queues × {untimed, timed} × LLC.
#[test]
fn indexed_walk_table_is_cycle_identical_to_the_naive_reference() {
    let mut rng = DeterministicRng::new(0x977A_B1E5);
    for round in 0..6u64 {
        let ops = workload(&mut rng, 150);
        for &mshr in &[1usize, 2, 8, 64] {
            for &req_depth in &[usize::MAX, 2, 1] {
                for &timed in &[false, true] {
                    let llc = round % 2 == 0;
                    let label = format!(
                        "round {round}, mshr={mshr}, req_depth={req_depth}, \
                         timed={timed}, llc={llc}"
                    );
                    assert_identical(
                        PageTableWalker::with_batching(mshr),
                        PageTableWalker::with_naive_batching(mshr),
                        llc,
                        req_depth,
                        timed,
                        &ops,
                        &label,
                    );
                }
            }
        }
        // Serial twins degenerate to the same walker; pin that the harness
        // itself introduces no asymmetry.
        assert_identical(
            PageTableWalker::new(),
            PageTableWalker::new(),
            false,
            usize::MAX,
            false,
            &ops,
            &format!("round {round}, serial"),
        );
    }
}

/// Identity survives measurement-window boundaries: both walkers reset
/// their statistics (which purges the table), then a second storm whose
/// cursors restart at zero.
#[test]
fn identity_holds_across_measurement_windows() {
    let mut rng = DeterministicRng::new(0x977A_57AC);
    let mut indexed = PageTableWalker::with_batching(8);
    let mut naive = PageTableWalker::with_naive_batching(8);
    for window in 0..3u64 {
        let ops = workload(&mut rng, 120);
        let (mut mem_a, space_a, base_a) = environment(false, usize::MAX, true);
        let (mut mem_b, space_b, base_b) = environment(false, usize::MAX, true);
        for (i, &op) in ops.iter().enumerate() {
            let x = step(&mut indexed, &mut mem_a, &space_a, base_a, op);
            let y = step(&mut naive, &mut mem_b, &space_b, base_b, op);
            assert_eq!(x, y, "window {window}, walk {i} diverged");
        }
        indexed.debug_validate_walk_table();
        indexed.reset_stats();
        naive.reset_stats();
    }
}

/// Watermark compaction is outcome-neutral under its contract and bounds
/// the live set: with a monotone clock (the no-earlier-arrival guarantee
/// the offload driver provides at device-window boundaries), periodically
/// folding dead windows changes no walk and keeps the live record count
/// far below the uncompacted twin's.
#[test]
fn compaction_is_outcome_neutral_and_bounds_the_live_set() {
    let mut rng = DeterministicRng::new(0x977A_C04A);
    let mut compacted = PageTableWalker::with_batching(8);
    let mut reference = PageTableWalker::with_batching(8);
    let (mut mem_a, space_a, base_a) = environment(false, usize::MAX, true);
    let (mut mem_b, space_b, base_b) = environment(false, usize::MAX, true);
    let mut t = 0u64;
    let mut peak = 0usize;
    for i in 0..800u64 {
        // Mostly strides long enough for earlier windows to die (latency
        // 400, three dependent reads), with occasional dense bursts so
        // live windows and coalescing still occur across fold points.
        t += if rng.next_below(4) == 0 {
            rng.next_below(30)
        } else {
            900 + rng.next_below(600)
        };
        let op = WalkOp {
            page: rng.next_below(PAGES),
            t,
            is_write: false,
        };
        let x = step(&mut compacted, &mut mem_a, &space_a, base_a, op);
        let y = step(&mut reference, &mut mem_b, &space_b, base_b, op);
        assert_eq!(x, y, "walk {i} diverged under compaction");
        if i % 64 == 63 {
            compacted.compact_walk_table_before(Cycles::new(t));
            compacted.debug_validate_walk_table();
        }
        peak = peak.max(compacted.walk_table_events());
    }
    assert_eq!(compacted.coalesced_reads(), reference.coalesced_reads());
    assert!(compacted.walk_table_compacted_events() > 0);
    assert!(
        compacted.walk_table_events_peak() <= reference.walk_table_events_peak(),
        "folding can only lower the peak"
    );
    assert!(
        peak < reference.walk_table_events() / 2,
        "live set must stay far below the uncompacted table \
         (peak {peak} vs {})",
        reference.walk_table_events()
    );
}

/// The harness has teeth: an injected completion-window off-by-one
/// (probe-time completion edges widened by one cycle, turning
/// `[issued, complete)` windows end-inclusive) diverges from the reference
/// once a walk lands exactly on a recorded completion instant. The arrival
/// sweep guarantees one does: every instant up to the first walk's
/// completion is probed, and the root-level PTE read of every walk shares
/// one address, so its window's completion instant is hit exactly.
#[test]
fn identity_harness_catches_an_injected_completion_window_off_by_one() {
    let (mut mem_a, space_a, base_a) = environment(false, usize::MAX, false);
    let (mut mem_b, space_b, base_b) = environment(false, usize::MAX, false);
    let mut skewed = PageTableWalker::with_batching(8);
    skewed.debug_probe_skew(1);
    let mut naive = PageTableWalker::with_naive_batching(8);

    let first = skewed
        .walk_at(&mut mem_a, space_a.root(), base_a, false, Cycles::ZERO)
        .unwrap();
    let first_ref = naive
        .walk_at(&mut mem_b, space_b.root(), base_b, false, Cycles::ZERO)
        .unwrap();
    assert_eq!(format!("{first:?}"), format!("{first_ref:?}"));

    let mut caught = false;
    for t in 1..=first.cycles.raw() {
        let op = WalkOp {
            page: 0,
            t,
            is_write: false,
        };
        let x = step(&mut skewed, &mut mem_a, &space_a, base_a, op);
        let y = step(&mut naive, &mut mem_b, &space_b, base_b, op);
        if x != y {
            caught = true;
            break;
        }
    }
    assert!(
        caught,
        "the identity harness failed to catch a one-cycle completion-window skew"
    );
}
