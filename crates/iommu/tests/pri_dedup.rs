//! Lockstep property suite for the PRI `(device, page)` dedup index.
//!
//! `Iommu::enqueue_page_requests` replaced its per-page queue scan with a
//! dedup set maintained in lockstep with the bounded page-request queue.
//! The suite drives a twin pair — one IOMMU on the indexed path, one on
//! the retained scan reference (`enqueue_page_requests_scan`) — through a
//! `DeterministicRng` mix of page-request groups (overlapping ranges, two
//! devices, mapped-page skips, queue overflow), host pops and
//! measurement-window resets (`reset_stats`, which covers the queue's
//! `reset_dropped` path while pending entries survive), asserting after
//! every operation that
//!
//! * both paths agree on every `(enqueued, dropped)` outcome and every
//!   popped request — the dedup index is observationally invisible — and
//! * the index mirrors the queue exactly (`debug_validate_page_requests`).
//!
//! Two teeth tests prove the harness catches an injected stale entry (a
//! `(device, page)` left in the index with no backing queue entry): the
//! stale entry suppresses a legitimate re-request, diverging from the scan
//! reference, and the validator flags the desync directly.

use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, Iova, VirtAddr, PAGE_SIZE};
use sva_iommu::{Iommu, IommuConfig};
use sva_mem::MemorySystem;
use sva_vm::{AddressSpace, FrameAllocator, PageTable, PteFlags};

const PAGES: u64 = 8;
const DEVICES: [u32; 2] = [1, 3];
const OPS: usize = 600;

struct Harness {
    mem: MemorySystem,
    frames: FrameAllocator,
    space: AddressSpace,
    io_tables: Vec<PageTable>,
    va: VirtAddr,
    mapped: Vec<[bool; PAGES as usize]>,
}

/// One shared environment: a host space with `PAGES` backed pages and one
/// initially-empty IO page table per device. Both twins read the same
/// memory (the enqueue path only probes it), so their observable outcomes
/// must match operation for operation.
fn harness() -> (Harness, Iommu, Iommu) {
    let mut mem = MemorySystem::default();
    let mut frames = FrameAllocator::linux_pool();
    let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
    let va = space
        .alloc_buffer(&mut mem, &mut frames, PAGES * PAGE_SIZE)
        .unwrap();
    let config = IommuConfig {
        demand_paging: true,
        page_request_entries: 5,
        ..IommuConfig::default()
    };
    let mut indexed = Iommu::new(config);
    let mut scan = Iommu::new(config);
    let mut io_tables = Vec::new();
    for &dev in &DEVICES {
        let io_table = PageTable::create(&mut frames).unwrap();
        for iommu in [&mut indexed, &mut scan] {
            iommu
                .attach_device(&mut mem, &mut frames, dev, space.pscid(), io_table.root())
                .unwrap();
        }
        io_tables.push(io_table);
    }
    (
        Harness {
            mem,
            frames,
            space,
            io_tables,
            va,
            mapped: vec![[false; PAGES as usize]; DEVICES.len()],
        },
        indexed,
        scan,
    )
}

/// The core lockstep property: the dedup index never desyncs from the
/// queue, and the indexed path is observationally identical to the scan
/// reference, across enqueue / overflow-drop / pop / map-page /
/// window-reset interleavings.
#[test]
fn dedup_index_stays_in_lockstep_with_the_queue() {
    let mut rng = DeterministicRng::new(0x9B1_DED0);
    let (mut h, mut indexed, mut scan) = harness();
    let mut popped = 0u64;
    let mut overflowed = 0u64;
    let mut resets = 0u64;
    for i in 0..OPS {
        match rng.next_below(10) {
            // A page-request group: random device, start page, length —
            // overlapping earlier groups so the dedup probe actually fires.
            0..=5 => {
                let dev_idx = rng.next_below(DEVICES.len() as u64) as usize;
                let page = rng.next_below(PAGES);
                let len = (1 + rng.next_below(4)) * PAGE_SIZE;
                let start = Iova::from_virt(h.va) + page * PAGE_SIZE + rng.next_below(PAGE_SIZE);
                let is_write = rng.next_below(3) == 0;
                let t = Cycles::new(i as u64 * 7);
                let a = indexed.enqueue_page_requests(
                    &h.mem,
                    DEVICES[dev_idx],
                    start,
                    len,
                    is_write,
                    t,
                );
                let b = scan.enqueue_page_requests_scan(
                    &h.mem,
                    DEVICES[dev_idx],
                    start,
                    len,
                    is_write,
                    t,
                );
                assert_eq!(a, b, "op {i}: group outcome diverged");
                overflowed += a.1;
            }
            // A host pop: both twins must surface the same request.
            6..=7 => {
                let a = indexed.pop_page_request();
                let b = scan.pop_page_request();
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "op {i}: popped request diverged"
                );
                popped += u64::from(a.is_some());
            }
            // The host maps a page into one device's IO table: later
            // groups skip it (even if a request for it is still queued).
            8 => {
                let dev_idx = rng.next_below(DEVICES.len() as u64) as usize;
                let page = rng.next_below(PAGES) as usize;
                if !h.mapped[dev_idx][page] {
                    let host_va = h.va + page as u64 * PAGE_SIZE;
                    let pa = h.space.translate(&h.mem, host_va).unwrap();
                    h.io_tables[dev_idx]
                        .map_page(&mut h.mem, &mut h.frames, host_va, pa, PteFlags::user_rw())
                        .unwrap();
                    h.mapped[dev_idx][page] = true;
                }
            }
            // A measurement-window reset: statistics (and the queue's drop
            // counter) restart, pending requests — and their dedup
            // entries — survive.
            _ => {
                indexed.reset_stats();
                scan.reset_stats();
                resets += 1;
                assert_eq!(
                    indexed.stats().page_request_pending_peak,
                    indexed.pending_page_requests(),
                    "op {i}: peak restarts at the carried-over size"
                );
            }
        }
        indexed.debug_validate_page_requests();
        assert_eq!(
            indexed.pending_page_requests(),
            scan.pending_page_requests(),
            "op {i}: queue lengths diverged"
        );
    }
    assert!(popped > 0, "the mix must exercise the pop path");
    assert!(overflowed > 0, "the mix must exercise the overflow path");
    assert!(resets > 0, "the mix must exercise the window reset");
    // Drain both queues to the end: every remaining pop agrees and the
    // index empties with the queue.
    loop {
        let a = indexed.pop_page_request();
        let b = scan.pop_page_request();
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "drain diverged");
        indexed.debug_validate_page_requests();
        if a.is_none() {
            break;
        }
    }
    assert_eq!(indexed.pending_page_requests(), 0);
}

/// Teeth, part 1: a stale dedup entry silently suppresses a legitimate
/// re-request — the twin comparison catches it as an enqueue-count
/// divergence on the very next group.
#[test]
fn harness_catches_an_injected_stale_entry() {
    let (h, mut indexed, mut scan) = harness();
    let start = Iova::from_virt(h.va);
    // The stale entry: device 1 supposedly has page 0 pending — but the
    // queue holds nothing.
    indexed.debug_inject_stale_pending_page(DEVICES[0], start);
    let a =
        indexed.enqueue_page_requests(&h.mem, DEVICES[0], start, PAGE_SIZE, false, Cycles::ZERO);
    let b =
        scan.enqueue_page_requests_scan(&h.mem, DEVICES[0], start, PAGE_SIZE, false, Cycles::ZERO);
    assert_ne!(
        a, b,
        "the lockstep harness failed to catch a stale dedup entry"
    );
}

/// Teeth, part 2: the validator flags the desync directly.
#[test]
#[should_panic(expected = "dedup index size diverged")]
fn validator_flags_an_injected_stale_entry() {
    let (h, mut indexed, _) = harness();
    indexed.debug_inject_stale_pending_page(DEVICES[1], Iova::from_virt(h.va));
    indexed.debug_validate_page_requests();
}
