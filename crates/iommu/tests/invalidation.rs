//! Cross-layer invalidation property test.
//!
//! A page shootdown (`IOTINVAL.VMA`) must purge **every** structure a
//! translation can be cached in — the per-device L1 ATCs, the shared L2
//! IOTLB and the page-table walker's in-flight MSHR registers — atomically
//! with respect to the model: after the command returns, no stale
//! translation may be served to any device at any simulated time, even
//! while conceptually concurrent walks overlap the remap on the global
//! clock.
//!
//! The test drives a `DeterministicRng`-randomised interleaving of timed
//! translations (deliberately overlapping arrival times, so the batched
//! walker keeps registers in flight) and page remaps (unmap → new frame →
//! `invalidate_page` for every device), and checks after every single
//! operation that each device's next translation resolves to the page
//! table's *current* frame — a stale ATC entry, L2 entry or MSHR register
//! would surface as a translation to the old frame.

use sva_common::rng::DeterministicRng;
use sva_common::{Cycles, Iova, PAGE_SIZE};
use sva_iommu::{Command, Iommu, IommuConfig, TlbHierarchyConfig};
use sva_mem::{MemSysConfig, MemorySystem};
use sva_vm::{AddressSpace, FrameAllocator, PteFlags};

const PAGES: u64 = 8;
const DEVICES: [u32; 2] = [1, 3];
const OPS: usize = 400;

#[test]
fn no_stale_translation_survives_invalidate_page_under_concurrent_walks() {
    // High DRAM latency and no LLC keep PTE reads in flight for a long
    // window, maximising the chance a stale MSHR register could serve a
    // later walk if invalidation failed to purge it.
    let mut mem = MemorySystem::new(MemSysConfig {
        dram_latency: Cycles::new(800),
        llc_enabled: false,
        ..MemSysConfig::default()
    });
    let mut frames = FrameAllocator::linux_pool();
    let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
    let va = space
        .alloc_buffer(&mut mem, &mut frames, PAGES * PAGE_SIZE)
        .unwrap();

    let mut iommu = Iommu::new(IommuConfig {
        tlb_hierarchy: Some(TlbHierarchyConfig::default()),
        ptw_batching: true,
        ..IommuConfig::default()
    });
    for device in DEVICES {
        iommu
            .attach_device(&mut mem, &mut frames, device, space.pscid(), space.root())
            .unwrap();
    }

    let mut rng = DeterministicRng::new(0xD00D_F00D);
    // Advancing base time keeps walk arrivals overlapping (same few-hundred
    // cycle window) without ever rewinding the simulated clock order.
    let mut base = 0u64;

    for op in 0..OPS {
        base += rng.next_below(40);
        let page = rng.next_below(PAGES);
        let page_va = va + page * PAGE_SIZE;
        let iova = Iova::from_virt(page_va);

        if rng.chance(0.3) {
            // Shootdown: move the page to a fresh frame, then invalidate it
            // for every device, exactly like the driver's remap flow.
            space.page_table().unmap_page(&mut mem, page_va).unwrap();
            let new_pa = frames.alloc_frame().unwrap();
            space
                .page_table()
                .map_page(&mut mem, &mut frames, page_va, new_pa, PteFlags::user_rw())
                .unwrap();
            for device in DEVICES {
                iommu.process_command(Command::IotlbInvalidate {
                    device_id: Some(device),
                    iova: Some(iova),
                });
            }
            // Immediately after the shootdown nothing may still hold the
            // page, at either level.
            for device in DEVICES {
                assert!(
                    !iommu.iotlb().probe(device, iova),
                    "op {op}: stale L2 entry for device {device} page {page}"
                );
                if let Some(atc) = iommu.atc(device) {
                    assert!(
                        !atc.probe(device, iova),
                        "op {op}: stale L1 ATC entry for device {device} page {page}"
                    );
                }
            }
        }

        // A translation from a random device at a (possibly overlapping)
        // time must resolve to the page table's current frame — never a
        // pre-invalidation one cached in a TLB level or latched in an
        // in-flight MSHR register.
        let device = DEVICES[rng.next_below(DEVICES.len() as u64) as usize];
        let offset = rng.next_below(PAGE_SIZE);
        let now = Cycles::new(base + rng.next_below(200));
        let (pa, _) = iommu
            .translate_at(&mut mem, device, iova + offset, false, now)
            .unwrap();
        let expected = space.translate(&mem, page_va + offset).unwrap();
        assert_eq!(
            pa, expected,
            "op {op}: device {device} translated page {page} to a stale frame"
        );
    }

    // The run must actually have exercised the interesting machinery.
    let stats = iommu.stats();
    assert!(stats.atc.hits > 0, "ATCs served hits");
    assert!(stats.iotlb.total() > 0, "L2 was probed");
    assert!(stats.ptw_walks > 0, "walks happened");
    assert!(
        iommu.iotlb().invalidations() > 0,
        "invalidations were processed"
    );
}
