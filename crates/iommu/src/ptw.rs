//! The IOMMU page-table walker, with an optional MSHR-style walk table.
//!
//! On every IOTLB miss the walker performs up to [`sva_vm::PT_LEVELS`]
//! **dependent** reads through the IOMMU's dedicated AXI master port — each
//! read's address is computed from the previous read's data, so their
//! latencies add up. This serialisation is why the paper measures up to a
//! 300 % latency increase for a single DMA transfer on a miss, and why
//! letting these reads hit in the shared LLC (Section IV-C) recovers almost
//! all of the loss.
//!
//! Every PTE read is stamped with its issue time on the global simulation
//! clock ([`PageTableWalker::walk_at`]), so walks queue behind concurrent
//! DMA and host occupancy on the memory fabric like any other initiator.
//!
//! # The MSHR-style walk table
//!
//! With N clusters streaming through a shared buffer, the same page-table
//! entries are walked over and over: each device's IOTLB misses
//! independently (entries are tagged per device), so the serial walker pays
//! K full walks for K concurrent misses of the same page. Real walkers keep
//! *miss status holding registers*: a second walk that needs a PTE read
//! already in flight latches onto it instead of issuing its own.
//!
//! [`PageTableWalker::with_batching`] enables exactly that model. The walk
//! table records every in-flight PTE read as `(address, value, issue time,
//! completion time)`. A walk that reaches a PTE whose read is outstanding
//! at its current time — issued at or before `now`, completing after it —
//! **coalesces**: it waits until that read completes (paying
//! `completion − now`, not a fresh memory read) and consumes the recorded
//! value. Because the table is keyed by PTE address, the per-level reads of
//! walks from *different devices* batch naturally — same-page walks share
//! all levels, and walks of neighbouring regions share the upper levels.
//! A register never serves a walk outside its `[issued, completion)`
//! window: the table is a set of in-flight registers, **not** a translation
//! cache, so a later, non-overlapping walk always re-reads. The entry
//! count bounds how many reads may be *in flight at any instant* (a read
//! issued while all registers are busy is never held, the serial
//! fallback); records of completed reads are retained for the rest of the
//! measurement window because conceptually concurrent walks are simulated
//! sequentially and may revisit any instant of it. The table is purged by
//! every invalidation command and statistics reset.
//!
//! # The indexed walk table
//!
//! Retaining completed records all window makes the table grow with the
//! walk count, and the original store was a flat `Vec` scanned twice per
//! PTE fetch (the coalescing probe and the in-flight concurrency count) —
//! O(walks²) per measurement window on translation storms. [`WalkTable`]
//! rebuilds the store as an index:
//!
//! * **Coalescing probe** — a per-PTE-address `BTreeMap` of
//!   `[issued, complete)` windows keyed by issue time: "is a read of this
//!   PTE outstanding at `now`?" is one floor lookup (walked backward past
//!   dead windows, see below) plus an O(1) `max_complete` short-circuit
//!   for probes past every recorded completion.
//! * **Concurrency bound** — a boundary-delta in-flight counter (the
//!   [`sva_common::TimedQueue`] occupancy engine): every held read pushes
//!   its `[issued, complete)` residency, and the MSHR capacity check is
//!   `occupancy_at(now)`, O(log n) instead of a full-table filter.
//!
//! The index reproduces the flat table's *first-inserted-match* semantics
//! exactly. Two windows of the same address can only overlap when the
//! later-inserted one has the strictly smaller issue time (a walk only
//! issues its own read at an instant no held window covers), so among the
//! windows covering an instant the first-inserted is precisely the one
//! with the greatest issue time — the one the backward floor-walk meets
//! first. The pre-index algorithm is retained verbatim as
//! [`NaiveWalkTable`], the executable reference the cycle-identity
//! property suite (`crates/iommu/tests/ptw_identity.rs`) and the
//! `ptw_walk_storm` perf gate drive against.
//!
//! Like the fabric's reservation index, the live set is bounded by
//! **watermark compaction**: [`PageTableWalker::compact_walk_table_before`]
//! folds every window completing at or before a no-earlier-arrival
//! watermark (the caller guarantees no later walk is stamped before it) and
//! is applied automatically alongside `MemorySystem::compact_fabric_before`
//! at sharded device-window boundaries, with the established
//! `event_count`/`compacted_events`/`watermark`/`debug_validate`
//! observables.
//!
//! With batching disabled the walker is exactly the serial walker of the
//! paper's prototype, read for read and cycle for cycle.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sva_common::stats::RunningStats;
use sva_common::{Cycles, Error, InitiatorId, Iova, PhysAddr, Result, TimedQueue, VirtAddr};
use sva_mem::{MemReq, MemorySystem};
use sva_vm::page_table::{pte_address, PT_LEVELS};
use sva_vm::Pte;

/// Default number of in-flight PTE reads the walk table can hold.
pub const DEFAULT_MSHR_ENTRIES: usize = 8;

/// Outcome of one page-table walk.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtwResult {
    /// The leaf entry found by the walk.
    pub leaf: Pte,
    /// Total walk latency (sum of the dependent reads and coalesced waits).
    pub cycles: Cycles,
    /// Number of memory reads issued.
    pub reads: u32,
    /// Number of levels served by coalescing onto an in-flight read of
    /// another walk instead of issuing a memory read (always zero with
    /// batching disabled).
    pub coalesced: u32,
}

/// One in-flight PTE read held by the walk table.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct WalkEntry {
    /// Physical address of the PTE being fetched.
    pte_addr: u64,
    /// The value the read returns.
    value: u64,
    /// Global-clock cycle at which the read was issued: a walk can only
    /// latch onto a read that is already outstanding at its own time.
    issued: u64,
    /// Global-clock cycle at which the read completes; the entry is dead
    /// (and reclaimable) from this point on.
    complete: u64,
}

/// One recorded `[issued, complete)` window in the indexed store (the issue
/// time is the map key).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct WalkWindow {
    /// The value the read returns.
    value: u64,
    /// Global-clock cycle at which the read completes.
    complete: u64,
}

/// The window set of one PTE address.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct AddrWindows {
    /// Windows keyed by issue time. Keys are unique: a second read of the
    /// same address at the same instant would have coalesced onto the held
    /// window covering that instant instead of being held itself.
    by_issue: BTreeMap<u64, WalkWindow>,
    /// Greatest completion time over the windows — a probe at or past it
    /// cannot be served and short-circuits without touching the map.
    max_complete: u64,
}

/// The indexed MSHR walk-table store: per-address issue-time-keyed window
/// maps for the coalescing probe plus a boundary-delta occupancy timeline
/// for the in-flight concurrency bound. Cycle-identical to
/// [`NaiveWalkTable`] (the property suite in
/// `crates/iommu/tests/ptw_identity.rs` pins it).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WalkTable {
    addrs: BTreeMap<u64, AddrWindows>,
    /// `[issued, complete)` residency of every held read: the MSHR
    /// concurrency bound is one `occupancy_at` floor lookup.
    in_flight: TimedQueue,
    /// Live window records (the `event_count` observable).
    records: usize,
    /// Peak live record count over the window.
    events_peak: usize,
    /// Records folded away by watermark compaction.
    compacted: u64,
    /// The compaction watermark (0 until the first compaction).
    watermark: u64,
}

impl Default for WalkTable {
    fn default() -> Self {
        Self {
            addrs: BTreeMap::new(),
            in_flight: TimedQueue::unbounded_recording(),
            records: 0,
            events_peak: 0,
            compacted: 0,
            watermark: 0,
        }
    }
}

impl WalkTable {
    /// The register whose read is outstanding at `now` for `pte_addr`, if
    /// any: `(value, complete)`. `skew` widens every window's completion
    /// edge (test-only, see [`PageTableWalker::debug_probe_skew`]; zero in
    /// production).
    ///
    /// Backward floor-walk from the greatest issue time at or before `now`.
    /// The first *covering* window met is the naive table's first-inserted
    /// covering entry (overlapping same-address windows are inserted in
    /// strictly decreasing issue-time order — see the module docs). Dead
    /// windows with a later issue time than a covering one are possible
    /// (a short re-read nested inside a long out-of-order window) and are
    /// simply stepped over.
    fn probe(&self, pte_addr: u64, now: u64, skew: u64) -> Option<(u64, u64)> {
        let aw = self.addrs.get(&pte_addr)?;
        if now >= aw.max_complete + skew {
            return None;
        }
        aw.by_issue
            .range(..=now)
            .rev()
            .find(|(_, w)| w.complete + skew > now)
            .map(|(_, w)| (w.value, w.complete))
    }

    /// Number of held reads in flight at `now` (issued at or before it,
    /// completing after it).
    fn in_flight_at(&self, now: u64) -> usize {
        self.in_flight.occupancy_at(now)
    }

    /// Holds a read in a register. The caller guarantees `complete > issued`
    /// (a zero-latency read can never serve a coalescing walk nor count as
    /// in flight, so it is never held) and that no held window of
    /// `pte_addr` covers `issued` (the probe ran first), which makes the
    /// issue-time key unique.
    fn hold(&mut self, pte_addr: u64, value: u64, issued: u64, complete: u64) {
        debug_assert!(complete > issued);
        let aw = self.addrs.entry(pte_addr).or_default();
        aw.max_complete = aw.max_complete.max(complete);
        let prev = aw.by_issue.insert(issued, WalkWindow { value, complete });
        debug_assert!(prev.is_none(), "held window would have served the probe");
        self.in_flight.push(issued, complete);
        self.records += 1;
        self.events_peak = self.events_peak.max(self.records);
    }

    /// Folds every window completing at or before watermark `w` out of the
    /// index. The caller guarantees no later walk is stamped before `w`
    /// (the no-earlier-arrival contract the fabric's compaction uses), so a
    /// folded window could never again serve a probe or count as in flight.
    fn compact_before(&mut self, w: u64) {
        if w <= self.watermark {
            return;
        }
        self.watermark = w;
        let mut folded = 0usize;
        self.addrs.retain(|_, aw| {
            if aw.max_complete <= w {
                folded += aw.by_issue.len();
                return false;
            }
            let before = aw.by_issue.len();
            aw.by_issue.retain(|_, win| win.complete > w);
            folded += before - aw.by_issue.len();
            true
        });
        self.records -= folded;
        self.compacted += folded as u64;
        self.in_flight.compact_before(w);
    }

    /// Live window records held by the index.
    fn event_count(&self) -> usize {
        self.records
    }

    /// Peak live record count over the window.
    const fn events_peak(&self) -> usize {
        self.events_peak
    }

    /// Records folded away by [`WalkTable::compact_before`].
    const fn compacted_events(&self) -> u64 {
        self.compacted
    }

    /// The compaction watermark (0 until the first compaction).
    const fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Drops every register (invalidation); statistics survive.
    fn clear(&mut self) {
        self.addrs.clear();
        self.records = 0;
        self.watermark = 0;
        self.in_flight.clear_entries();
    }

    /// Clears registers *and* the lifecycle statistics.
    fn reset(&mut self) {
        self.clear();
        self.events_peak = 0;
        self.compacted = 0;
        self.in_flight.reset();
    }

    /// Checks the index invariants: the record count matches the maps, every
    /// window is non-empty and at or under its address's `max_complete`,
    /// and the in-flight timeline's prefix is consistent.
    ///
    /// # Panics
    ///
    /// Panics when the index is inconsistent.
    fn debug_validate(&self) {
        let mut records = 0usize;
        for (addr, aw) in &self.addrs {
            assert!(!aw.by_issue.is_empty(), "empty window set for {addr:#x}");
            let mut max_complete = 0u64;
            for (&issued, w) in &aw.by_issue {
                assert!(w.complete > issued, "empty window at {addr:#x}@{issued}");
                max_complete = max_complete.max(w.complete);
            }
            assert_eq!(
                aw.max_complete, max_complete,
                "stale max_complete for {addr:#x}"
            );
            records += aw.by_issue.len();
        }
        assert_eq!(self.records, records, "record count diverged from the maps");
        self.in_flight.debug_validate();
    }
}

/// The pre-index walk table, retained **verbatim** as the executable
/// specification of the MSHR semantics: a flat insertion-ordered `Vec`
/// whose coalescing probe is a first-match scan and whose concurrency
/// bound is a full-table filter. [`WalkTable`] must stay cycle-identical
/// to it; the property suite and the `ptw_walk_storm` perf gate twin-run
/// both engines on the same workloads.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NaiveWalkTable {
    table: Vec<WalkEntry>,
    events_peak: usize,
}

impl NaiveWalkTable {
    fn probe(&self, pte_addr: u64, now: u64, skew: u64) -> Option<(u64, u64)> {
        self.table
            .iter()
            .find(|e| e.pte_addr == pte_addr && e.issued <= now && e.complete + skew > now)
            .map(|e| (e.value, e.complete))
    }

    fn in_flight_at(&self, now: u64) -> usize {
        self.table
            .iter()
            .filter(|e| e.issued <= now && e.complete > now)
            .count()
    }

    fn hold(&mut self, pte_addr: u64, value: u64, issued: u64, complete: u64) {
        self.table.push(WalkEntry {
            pte_addr,
            value,
            issued,
            complete,
        });
        self.events_peak = self.events_peak.max(self.table.len());
    }

    fn event_count(&self) -> usize {
        self.table.len()
    }

    const fn events_peak(&self) -> usize {
        self.events_peak
    }

    fn clear(&mut self) {
        self.table.clear();
    }

    fn reset(&mut self) {
        self.table.clear();
        self.events_peak = 0;
    }
}

/// The walk-table engine behind a batched walker: the indexed store or the
/// retained linear-scan reference.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum WalkTableImpl {
    Indexed(WalkTable),
    Naive(NaiveWalkTable),
}

impl Default for WalkTableImpl {
    fn default() -> Self {
        Self::Indexed(WalkTable::default())
    }
}

impl WalkTableImpl {
    fn probe(&self, pte_addr: u64, now: u64, skew: u64) -> Option<(u64, u64)> {
        match self {
            Self::Indexed(t) => t.probe(pte_addr, now, skew),
            Self::Naive(t) => t.probe(pte_addr, now, skew),
        }
    }

    fn in_flight_at(&self, now: u64) -> usize {
        match self {
            Self::Indexed(t) => t.in_flight_at(now),
            Self::Naive(t) => t.in_flight_at(now),
        }
    }

    fn hold(&mut self, pte_addr: u64, value: u64, issued: u64, complete: u64) {
        match self {
            Self::Indexed(t) => t.hold(pte_addr, value, issued, complete),
            Self::Naive(t) => t.hold(pte_addr, value, issued, complete),
        }
    }

    fn compact_before(&mut self, w: u64) {
        match self {
            Self::Indexed(t) => t.compact_before(w),
            // The reference keeps the full window history by design — its
            // probe semantics *are* the spec the compaction contract must
            // not disturb.
            Self::Naive(_) => {}
        }
    }

    fn event_count(&self) -> usize {
        match self {
            Self::Indexed(t) => t.event_count(),
            Self::Naive(t) => t.event_count(),
        }
    }

    fn events_peak(&self) -> usize {
        match self {
            Self::Indexed(t) => t.events_peak(),
            Self::Naive(t) => t.events_peak(),
        }
    }

    fn compacted_events(&self) -> u64 {
        match self {
            Self::Indexed(t) => t.compacted_events(),
            Self::Naive(_) => 0,
        }
    }

    fn watermark(&self) -> u64 {
        match self {
            Self::Indexed(t) => t.watermark(),
            Self::Naive(_) => 0,
        }
    }

    fn clear(&mut self) {
        match self {
            Self::Indexed(t) => t.clear(),
            Self::Naive(t) => t.clear(),
        }
    }

    fn reset(&mut self) {
        match self {
            Self::Indexed(t) => t.reset(),
            Self::Naive(t) => t.reset(),
        }
    }

    fn debug_validate(&self) {
        if let Self::Indexed(t) = self {
            t.debug_validate();
        }
    }
}

/// The hardware page-table walker.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PageTableWalker {
    walk_time: RunningStats,
    walks: u64,
    faults: u64,
    /// Total PTE reads issued to memory.
    pte_reads: u64,
    /// Total levels served by MSHR coalescing instead of a memory read.
    coalesced_reads: u64,
    /// Whether the MSHR-style walk table is active.
    batching: bool,
    /// Capacity of the walk table (ignored with batching off).
    mshr_entries: usize,
    /// Test-only probe skew (see [`PageTableWalker::debug_probe_skew`]);
    /// always zero in production walkers.
    probe_skew: u64,
    /// The in-flight PTE reads.
    table: WalkTableImpl,
}

impl PageTableWalker {
    /// Creates a serial walker (no batching) with empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a walker with the MSHR-style walk table enabled, holding up
    /// to `mshr_entries` in-flight PTE reads (clamped to at least one).
    pub fn with_batching(mshr_entries: usize) -> Self {
        Self {
            batching: true,
            mshr_entries: mshr_entries.max(1),
            ..Self::default()
        }
    }

    /// Creates a batched walker on the retained [`NaiveWalkTable`]
    /// reference engine — the executable spec the cycle-identity suite and
    /// the `ptw_walk_storm` perf gate twin-run against. Not for production
    /// use: the flat store scans its whole window history on every fetch.
    pub fn with_naive_batching(mshr_entries: usize) -> Self {
        Self {
            batching: true,
            mshr_entries: mshr_entries.max(1),
            table: WalkTableImpl::Naive(NaiveWalkTable::default()),
            ..Self::default()
        }
    }

    /// Whether the MSHR-style walk table is active.
    pub const fn batching(&self) -> bool {
        self.batching
    }

    /// One timestamped PTE fetch: either coalesce onto an in-flight read of
    /// the same PTE or issue a timed read on the PTW port at `now`.
    /// `in_flight_limit` is the walk's resolved MSHR concurrency bound
    /// (capacity clamped by port credits, computed once per walk).
    /// Returns the raw PTE value, the completion time, and whether the
    /// level coalesced.
    fn fetch_pte(
        &mut self,
        mem: &mut MemorySystem,
        pte_addr: PhysAddr,
        now: Cycles,
        in_flight_limit: usize,
    ) -> Result<(u64, Cycles, bool)> {
        if self.batching {
            // A register serves this walk only while its read is genuinely
            // outstanding at the walk's current time: issued at or before
            // `now` and completing after it. Entries outside that window are
            // dead *for this walk* but may still serve a conceptually
            // concurrent walk whose time falls inside it (shards are
            // simulated sequentially, so arrival times interleave
            // arbitrarily) — they are only reclaimed by watermark
            // compaction or an invalidation.
            if let Some((value, complete)) =
                self.table.probe(pte_addr.raw(), now.raw(), self.probe_skew)
            {
                self.coalesced_reads += 1;
                return Ok((value, Cycles::new(complete), true));
            }
        }
        let mut buf = [0u8; 8];
        let rsp = mem.access(MemReq::read(InitiatorId::Ptw, pte_addr, &mut buf).at(now))?;
        let value = u64::from_le_bytes(buf);
        let complete = now + rsp.latency();
        self.pte_reads += 1;
        if self.batching {
            // The MSHR capacity is a *concurrency* bound: a new read is only
            // held in a register if fewer than `in_flight_limit` reads are
            // in flight at its issue instant — an unheld read simply cannot
            // be coalesced on (the serial fallback). Records of completed
            // reads are retained for the rest of the measurement window,
            // because shards are simulated sequentially: a later-simulated,
            // conceptually concurrent walk may revisit any instant of the
            // window and must find the registers that were live then. The
            // table is purged per window (statistics reset) and on every
            // invalidation. A zero-latency read is never held: its empty
            // window can neither serve a coalescing walk nor count as in
            // flight.
            let in_flight_now = self.table.in_flight_at(now.raw());
            if in_flight_now < in_flight_limit && complete > now {
                self.table
                    .hold(pte_addr.raw(), value, now.raw(), complete.raw());
            }
        }
        Ok((value, complete, false))
    }

    /// The walk's in-flight concurrency bound: the MSHR capacity,
    /// additionally clamped by the walker's *port credits*. Under a
    /// split-transaction fabric with a finite request queue
    /// (`FabricConfig::req_queue_depth`), the walker cannot keep more reads
    /// in flight than its port has request-queue slots, however large its
    /// walk table is. The clamp mirrors the fabric's own participation
    /// rule — PTW grants only take request-queue credits under the
    /// global-clock engine (`timed_host_ptw`), so without it the walker
    /// does not throttle itself for slots its traffic never occupies.
    /// Resolved once per walk, not once per PTE read.
    fn in_flight_limit(&self, mem: &MemorySystem) -> usize {
        let fabric = &mem.config().fabric;
        let port_credits = if fabric.timed_host_ptw {
            fabric.req_queue_depth.max(1)
        } else {
            usize::MAX
        };
        self.mshr_entries.min(port_credits)
    }

    /// Walks the Sv39 table rooted at `root` for `iova`, issuing PTE reads
    /// on the PTW port of `mem` stamped with the memory system's global
    /// clock.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IoPageFault`] if the walk reaches an invalid entry or
    /// the leaf does not permit the requested access.
    pub fn walk(
        &mut self,
        mem: &mut MemorySystem,
        root: PhysAddr,
        iova: Iova,
        is_write: bool,
    ) -> Result<PtwResult> {
        let now = mem.clock().now();
        self.walk_at(mem, root, iova, is_write, now)
    }

    /// Walks the Sv39 table rooted at `root` for `iova`, with the walk
    /// issued at global-clock cycle `now`: each dependent PTE read is
    /// stamped with the completion time of the previous one, so the walk
    /// contends with concurrent fabric traffic level by level.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IoPageFault`] if the walk reaches an invalid entry or
    /// the leaf does not permit the requested access.
    pub fn walk_at(
        &mut self,
        mem: &mut MemorySystem,
        root: PhysAddr,
        iova: Iova,
        is_write: bool,
        now: Cycles,
    ) -> Result<PtwResult> {
        self.walks += 1;
        let va = VirtAddr::from_iova(iova);
        let mut table = root;
        let mut t = now;
        let mut reads = 0u32;
        let mut coalesced = 0u32;
        let in_flight_limit = if self.batching {
            self.in_flight_limit(mem)
        } else {
            0
        };

        for level in 0..PT_LEVELS {
            let pte_addr = pte_address(table, va, level);
            let (raw, complete, hit_mshr) = self.fetch_pte(mem, pte_addr, t, in_flight_limit)?;
            t = complete;
            if hit_mshr {
                coalesced += 1;
            } else {
                reads += 1;
            }
            let pte = Pte::from_raw(raw);

            if !pte.is_valid() {
                self.faults += 1;
                self.walk_time.record_cycles(t - now);
                return Err(Error::IoPageFault { iova, is_write });
            }
            if pte.is_leaf() {
                if !pte.permits(is_write) {
                    self.faults += 1;
                    self.walk_time.record_cycles(t - now);
                    return Err(Error::IoPageFault { iova, is_write });
                }
                self.walk_time.record_cycles(t - now);
                return Ok(PtwResult {
                    leaf: pte,
                    cycles: t - now,
                    reads,
                    coalesced,
                });
            }
            table = pte.phys_addr();
        }

        // Sv39 never has pointer entries at the last level; reaching here
        // means the table is malformed.
        self.faults += 1;
        self.walk_time.record_cycles(t - now);
        Err(Error::IoPageFault { iova, is_write })
    }

    /// Per-walk latency statistics (the quantity plotted in Figure 5).
    pub const fn walk_time(&self) -> RunningStats {
        self.walk_time
    }

    /// Number of walks performed.
    pub const fn walks(&self) -> u64 {
        self.walks
    }

    /// Number of walks that ended in an IO page fault.
    pub const fn faults(&self) -> u64 {
        self.faults
    }

    /// Total PTE reads issued to memory.
    pub const fn pte_reads(&self) -> u64 {
        self.pte_reads
    }

    /// Total levels served by coalescing onto in-flight reads.
    pub const fn coalesced_reads(&self) -> u64 {
        self.coalesced_reads
    }

    /// Live window records held by the walk table.
    pub fn walk_table_events(&self) -> usize {
        self.table.event_count()
    }

    /// Peak live record count over the measurement window.
    pub fn walk_table_events_peak(&self) -> usize {
        self.table.events_peak()
    }

    /// Window records folded away by watermark compaction.
    pub fn walk_table_compacted_events(&self) -> u64 {
        self.table.compacted_events()
    }

    /// The walk table's compaction watermark (0 until the first
    /// compaction).
    pub fn walk_table_watermark(&self) -> u64 {
        self.table.watermark()
    }

    /// Folds every walk-table window completing at or before watermark `w`.
    /// Contract: no later walk will be stamped before `w` (the same
    /// no-earlier-arrival watermark `Fabric::compact_before` uses); applied
    /// at sharded device-window boundaries. A no-op on the naive reference
    /// engine, whose full retained history *is* the spec.
    pub fn compact_walk_table_before(&mut self, w: Cycles) {
        self.table.compact_before(w.raw());
    }

    /// Test hook: widens every held window's completion edge by `skew`
    /// cycles at probe time, turning the walk table's half-open
    /// `[issued, complete)` windows end-inclusive (a window with
    /// `complete == now` wrongly serves the walk) — the injected
    /// completion-window off-by-one the cycle-identity suite must prove it
    /// catches.
    #[doc(hidden)]
    pub fn debug_probe_skew(&mut self, skew: u64) {
        self.probe_skew = skew;
    }

    /// Checks the indexed walk table's internal invariants (no-op on the
    /// naive reference).
    ///
    /// # Panics
    ///
    /// Panics when the index is inconsistent.
    #[doc(hidden)]
    pub fn debug_validate_walk_table(&self) {
        self.table.debug_validate();
    }

    /// Purges the walk table (an IOTLB/DDT invalidation command reached the
    /// IOMMU, or the page tables changed under the walker).
    pub fn invalidate_walk_table(&mut self) {
        self.table.clear();
    }

    /// Clears all statistics and the walk table.
    pub fn reset_stats(&mut self) {
        self.walk_time.reset();
        self.walks = 0;
        self.faults = 0;
        self.pte_reads = 0;
        self.coalesced_reads = 0;
        self.table.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::PAGE_SIZE;
    use sva_mem::{MemSysConfig, MemorySystem};
    use sva_vm::{AddressSpace, FrameAllocator};

    fn mapped_space(llc: bool, latency: u64) -> (MemorySystem, AddressSpace, Iova) {
        mapped_space_pages(llc, latency, 2)
    }

    fn mapped_space_pages(
        llc: bool,
        latency: u64,
        pages: u64,
    ) -> (MemorySystem, AddressSpace, Iova) {
        let mut mem = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            llc_enabled: llc,
            ..MemSysConfig::default()
        });
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let va = space
            .alloc_buffer(&mut mem, &mut frames, pages * PAGE_SIZE)
            .unwrap();
        (mem, space, Iova::from_virt(va))
    }

    #[test]
    fn walk_finds_mapped_page() {
        let (mut mem, space, iova) = mapped_space(true, 200);
        let mut ptw = PageTableWalker::new();
        let res = ptw.walk(&mut mem, space.root(), iova, true).unwrap();
        assert_eq!(res.reads, 3);
        assert_eq!(res.coalesced, 0);
        assert_eq!(
            res.leaf.phys_addr(),
            space
                .translate(&mem, VirtAddr::from_iova(iova))
                .unwrap()
                .page_base()
        );
        assert_eq!(ptw.walks(), 1);
        assert_eq!(ptw.faults(), 0);
        assert_eq!(ptw.pte_reads(), 3);
        assert_eq!(ptw.walk_time().count(), 1);
    }

    #[test]
    fn walk_of_unmapped_page_faults() {
        let (mut mem, space, _) = mapped_space(true, 200);
        let mut ptw = PageTableWalker::new();
        let err = ptw.walk(&mut mem, space.root(), Iova::new(0x7777_0000), false);
        assert!(matches!(err, Err(Error::IoPageFault { .. })));
        assert_eq!(ptw.faults(), 1);
    }

    #[test]
    fn walk_cost_scales_with_dram_latency_without_llc() {
        let (mut mem_fast, space_fast, iova_fast) = mapped_space(false, 200);
        let (mut mem_slow, space_slow, iova_slow) = mapped_space(false, 1000);
        let mut ptw = PageTableWalker::new();
        let fast = ptw
            .walk(&mut mem_fast, space_fast.root(), iova_fast, false)
            .unwrap();
        let slow = ptw
            .walk(&mut mem_slow, space_slow.root(), iova_slow, false)
            .unwrap();
        // Three dependent reads, each paying the extra 800 cycles.
        let delta = slow.cycles - fast.cycles;
        assert!(delta.raw() >= 3 * 800, "delta = {delta}");
    }

    #[test]
    fn walk_is_cheap_when_ptes_hit_in_llc() {
        let (mut mem, space, iova) = mapped_space(true, 1000);
        let mut ptw = PageTableWalker::new();
        // First walk brings the PTE lines into the LLC...
        let cold = ptw.walk(&mut mem, space.root(), iova, false).unwrap();
        // ...so a walk of the neighbouring page (same PTE cache lines) hits.
        let warm = ptw
            .walk(&mut mem, space.root(), iova + PAGE_SIZE, false)
            .unwrap();
        assert!(
            warm.cycles.raw() * 10 < cold.cycles.raw(),
            "warm walk ({}) should be an order of magnitude cheaper than cold ({})",
            warm.cycles,
            cold.cycles
        );
    }

    #[test]
    fn write_to_read_only_page_faults() {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        // Map one page read-only by hand.
        let va = VirtAddr::new(0x4000_0000);
        let pa = frames.alloc_frame().unwrap();
        space
            .page_table()
            .map_page(&mut mem, &mut frames, va, pa, sva_vm::PteFlags::user_ro())
            .unwrap();
        let mut ptw = PageTableWalker::new();
        assert!(ptw
            .walk(&mut mem, space.root(), Iova::from_virt(va), false)
            .is_ok());
        assert!(matches!(
            ptw.walk(&mut mem, space.root(), Iova::from_virt(va), true),
            Err(Error::IoPageFault { is_write: true, .. })
        ));
    }

    /// MSHR coalescing: K concurrent walks of the same page cost one walk's
    /// worth of memory reads; the followers latch onto the in-flight reads.
    #[test]
    fn concurrent_same_page_walks_coalesce_to_one_walks_reads() {
        const K: u64 = 5;
        let (mut mem, space, iova) = mapped_space(false, 600);
        let mut ptw = PageTableWalker::with_batching(DEFAULT_MSHR_ENTRIES);
        let first = ptw
            .walk_at(&mut mem, space.root(), iova, false, Cycles::ZERO)
            .unwrap();
        assert_eq!(first.reads, 3);
        assert_eq!(first.coalesced, 0);
        for i in 1..K {
            // Overlapping arrivals: each follower starts while the leader's
            // reads are still in flight.
            let res = ptw
                .walk_at(&mut mem, space.root(), iova, false, Cycles::new(i * 10))
                .unwrap();
            assert_eq!(res.reads, 0, "follower {i} must not issue reads");
            assert_eq!(res.coalesced, 3, "follower {i} coalesces every level");
            assert_eq!(res.leaf, first.leaf, "coalesced walks see the same PTE");
            // The follower finishes when the leader's leaf read does.
            assert_eq!(Cycles::new(i * 10) + res.cycles, first.cycles);
        }
        assert_eq!(ptw.pte_reads(), 3, "K walks, one walk's worth of reads");
        assert_eq!(ptw.coalesced_reads(), (K - 1) * 3);
        ptw.debug_validate_walk_table();
    }

    /// Walks of different pages in the same region share the upper levels of
    /// the table: only the leaf read is issued per extra page.
    #[test]
    fn concurrent_neighbour_walks_share_upper_levels() {
        let (mut mem, space, iova) = mapped_space_pages(false, 600, 4);
        let mut ptw = PageTableWalker::with_batching(DEFAULT_MSHR_ENTRIES);
        let first = ptw
            .walk_at(&mut mem, space.root(), iova, false, Cycles::ZERO)
            .unwrap();
        assert_eq!(first.reads, 3);
        let second = ptw
            .walk_at(
                &mut mem,
                space.root(),
                iova + PAGE_SIZE,
                false,
                Cycles::new(7),
            )
            .unwrap();
        assert_eq!(second.coalesced, 2, "level-0/1 reads are shared");
        assert_eq!(second.reads, 1, "only the leaf read is issued");
        assert_ne!(second.leaf, first.leaf);
    }

    /// A walk arriving after the in-flight reads completed must re-read: the
    /// walk table is a set of MSHRs, not a translation cache.
    #[test]
    fn expired_entries_do_not_serve_later_walks() {
        let (mut mem, space, iova) = mapped_space(false, 600);
        let mut ptw = PageTableWalker::with_batching(DEFAULT_MSHR_ENTRIES);
        let first = ptw
            .walk_at(&mut mem, space.root(), iova, false, Cycles::ZERO)
            .unwrap();
        let later = first.cycles + Cycles::new(1);
        let second = ptw
            .walk_at(&mut mem, space.root(), iova, false, later)
            .unwrap();
        assert_eq!(second.reads, 3, "non-overlapping walk issues all reads");
        assert_eq!(second.coalesced, 0);
    }

    /// Batching off is the serial walker, read for read and cycle for cycle,
    /// even under arrival patterns that would coalesce.
    #[test]
    fn batching_off_is_equivalent_to_the_serial_walker() {
        let run = |batching: bool| -> Vec<(u64, u32, u32)> {
            let (mut mem, space, iova) = mapped_space_pages(false, 600, 4);
            let mut ptw = if batching {
                PageTableWalker::with_batching(DEFAULT_MSHR_ENTRIES)
            } else {
                PageTableWalker::new()
            };
            let mut out = Vec::new();
            for i in 0..6u64 {
                let page = i % 4;
                let res = ptw
                    .walk_at(
                        &mut mem,
                        space.root(),
                        iova + page * PAGE_SIZE,
                        false,
                        Cycles::new(i * 5),
                    )
                    .unwrap();
                out.push((res.cycles.raw(), res.reads, res.coalesced));
            }
            out
        };
        let serial = run(false);
        assert!(
            serial.iter().all(|&(_, reads, co)| reads == 3 && co == 0),
            "serial walker never coalesces: {serial:?}"
        );
        // A second serial run is deterministic; with batching the same
        // arrivals coalesce and walks get cheaper, never more expensive.
        assert_eq!(serial, run(false));
        let batched = run(true);
        assert!(batched.iter().any(|&(_, _, co)| co > 0));
        for (s, b) in serial.iter().zip(&batched) {
            assert!(b.0 <= s.0, "batching must not slow a walk: {b:?} vs {s:?}");
        }
    }

    /// Stat conservation across MSHR sizes: every walk resolves every level
    /// either by a memory read or by coalescing, whatever the table size,
    /// and all sizes agree on the leaves.
    #[test]
    fn stats_conserve_across_batch_sizes() {
        for entries in [1usize, 2, 4, 8, 64] {
            let (mut mem, space, iova) = mapped_space_pages(false, 600, 8);
            let mut ptw = PageTableWalker::with_batching(entries);
            let mut walks = 0u64;
            for i in 0..16u64 {
                let page = i % 8;
                let res = ptw
                    .walk_at(
                        &mut mem,
                        space.root(),
                        iova + page * PAGE_SIZE,
                        false,
                        Cycles::new(i * 3),
                    )
                    .unwrap();
                walks += 1;
                assert_eq!(
                    res.reads + res.coalesced,
                    3,
                    "every level resolves exactly once ({entries} entries)"
                );
            }
            assert_eq!(ptw.walks(), walks);
            assert_eq!(
                ptw.pte_reads() + ptw.coalesced_reads(),
                walks * 3,
                "reads + coalesced levels conserve across {entries} MSHR entries"
            );
            assert_eq!(ptw.faults(), 0);
            ptw.debug_validate_walk_table();
        }
    }

    /// The walker's in-flight reads are bounded by its port's credits: with
    /// a one-slot request queue at the fabric (under the global-clock
    /// engine, where PTW traffic actually takes credits), only one PTE read
    /// can be held as an in-flight register at a time, however large the
    /// walk table — so a follower that would have coalesced on a second
    /// register re-reads instead. Conservation still holds, and the
    /// credit-bound walker never issues fewer reads than the unbounded one.
    /// Without `timed_host_ptw` the clamp must not apply (the fabric never
    /// takes PTW credits then).
    #[test]
    fn port_credits_bound_the_walk_table() {
        let run = |req_depth: usize, timed: bool| -> (u64, u64) {
            let mut mem = MemorySystem::new(MemSysConfig {
                dram_latency: Cycles::new(600),
                llc_enabled: false,
                fabric: sva_mem::FabricConfig {
                    req_queue_depth: req_depth,
                    timed_host_ptw: timed,
                    ..sva_mem::FabricConfig::default()
                },
                ..MemSysConfig::default()
            });
            let mut frames = FrameAllocator::linux_pool();
            let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
            let va = space
                .alloc_buffer(&mut mem, &mut frames, 4 * PAGE_SIZE)
                .unwrap();
            let iova = Iova::from_virt(va);
            let mut ptw = PageTableWalker::with_batching(DEFAULT_MSHR_ENTRIES);
            let mut walks = 0u64;
            // Overlapping walks of two neighbouring pages: with full
            // credits the second page's leaf read is held and later walks
            // coalesce on it; with one credit it cannot be held while the
            // first page's read is outstanding.
            for i in 0..6u64 {
                let page = i % 2;
                let res = ptw
                    .walk_at(
                        &mut mem,
                        space.root(),
                        iova + page * PAGE_SIZE,
                        false,
                        Cycles::new(i * 5),
                    )
                    .unwrap();
                walks += 1;
                assert_eq!(res.reads + res.coalesced, 3, "levels resolve once");
            }
            assert_eq!(ptw.pte_reads() + ptw.coalesced_reads(), walks * 3);
            (ptw.pte_reads(), ptw.coalesced_reads())
        };
        let (full_reads, full_coalesced) = run(usize::MAX, true);
        let (credit_reads, credit_coalesced) = run(1, true);
        assert!(full_coalesced > 0);
        assert!(
            credit_reads > full_reads,
            "one port credit must force re-reads: {credit_reads} vs {full_reads}"
        );
        assert!(credit_coalesced < full_coalesced);
        // Outside the timed engine, PTW traffic never takes request-queue
        // credits, so the walk table must not throttle itself.
        assert_eq!(
            run(1, false),
            (full_reads, full_coalesced),
            "the clamp must mirror the fabric's participation rule"
        );
    }

    /// Invalidation purges the in-flight registers: a concurrent walk after
    /// an invalidation re-reads instead of consuming a dead entry.
    #[test]
    fn invalidation_purges_the_walk_table() {
        let (mut mem, space, iova) = mapped_space(false, 600);
        let mut ptw = PageTableWalker::with_batching(DEFAULT_MSHR_ENTRIES);
        ptw.walk_at(&mut mem, space.root(), iova, false, Cycles::ZERO)
            .unwrap();
        ptw.invalidate_walk_table();
        let res = ptw
            .walk_at(&mut mem, space.root(), iova, false, Cycles::new(10))
            .unwrap();
        assert_eq!(res.reads, 3, "post-invalidation walk re-reads every level");
        assert_eq!(res.coalesced, 0);
    }

    /// The lifecycle observables behave like the fabric's: holds raise the
    /// live count and the peak, compaction folds dead windows (monotonically
    /// advancing the watermark) without disturbing live ones, invalidation
    /// clears the live set but keeps the window statistics, and a stats
    /// reset clears both.
    #[test]
    fn walk_table_lifecycle_observables() {
        let (mut mem, space, iova) = mapped_space_pages(false, 600, 4);
        let mut ptw = PageTableWalker::with_batching(DEFAULT_MSHR_ENTRIES);
        for i in 0..4u64 {
            ptw.walk_at(
                &mut mem,
                space.root(),
                iova + (i % 4) * PAGE_SIZE,
                false,
                Cycles::new(i * 2000),
            )
            .unwrap();
        }
        let live = ptw.walk_table_events();
        assert!(live > 0);
        assert_eq!(ptw.walk_table_events_peak(), live, "append-only until now");
        assert_eq!(ptw.walk_table_compacted_events(), 0);
        ptw.debug_validate_walk_table();
        // Everything from the first three walks is long dead at 6000.
        ptw.compact_walk_table_before(Cycles::new(6000));
        assert_eq!(ptw.walk_table_watermark(), 6000);
        assert!(ptw.walk_table_compacted_events() > 0);
        assert!(ptw.walk_table_events() < live);
        assert_eq!(ptw.walk_table_events_peak(), live, "peak survives folding");
        ptw.debug_validate_walk_table();
        // A stale watermark never rewinds.
        ptw.compact_walk_table_before(Cycles::new(10));
        assert_eq!(ptw.walk_table_watermark(), 6000);
        ptw.invalidate_walk_table();
        assert_eq!(ptw.walk_table_events(), 0);
        assert!(ptw.walk_table_compacted_events() > 0, "fold total survives");
        ptw.reset_stats();
        assert_eq!(ptw.walk_table_events_peak(), 0);
        assert_eq!(ptw.walk_table_compacted_events(), 0);
        assert_eq!(ptw.walk_table_watermark(), 0);
    }
}
