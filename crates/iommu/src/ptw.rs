//! The IOMMU page-table walker.
//!
//! On every IOTLB miss the walker performs up to [`sva_vm::PT_LEVELS`]
//! **dependent** reads through the IOMMU's dedicated AXI master port — each
//! read's address is computed from the previous read's data, so their
//! latencies add up. This serialisation is why the paper measures up to a
//! 300 % latency increase for a single DMA transfer on a miss, and why
//! letting these reads hit in the shared LLC (Section IV-C) recovers almost
//! all of the loss.

use serde::{Deserialize, Serialize};
use sva_common::stats::RunningStats;
use sva_common::{Cycles, Error, Iova, PhysAddr, Result, VirtAddr};
use sva_mem::MemorySystem;
use sva_vm::page_table::{pte_address, PT_LEVELS};
use sva_vm::Pte;

/// Outcome of one page-table walk.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PtwResult {
    /// The leaf entry found by the walk.
    pub leaf: Pte,
    /// Total walk latency (sum of the dependent reads).
    pub cycles: Cycles,
    /// Number of memory reads issued.
    pub reads: u32,
}

/// The hardware page-table walker.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PageTableWalker {
    walk_time: RunningStats,
    walks: u64,
    faults: u64,
}

impl PageTableWalker {
    /// Creates a walker with empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Walks the Sv39 table rooted at `root` for `iova`, issuing timed reads
    /// on the PTW port of `mem`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IoPageFault`] if the walk reaches an invalid entry or
    /// the leaf does not permit the requested access.
    // `reads` counts PTE fetches, which is not a plain loop counter: the walk
    // breaks at the leaf level.
    #[allow(clippy::explicit_counter_loop)]
    pub fn walk(
        &mut self,
        mem: &mut MemorySystem,
        root: PhysAddr,
        iova: Iova,
        is_write: bool,
    ) -> Result<PtwResult> {
        self.walks += 1;
        let va = VirtAddr::from_iova(iova);
        let mut table = root;
        let mut cycles = Cycles::ZERO;
        let mut reads = 0u32;

        for level in 0..PT_LEVELS {
            let pte_addr = pte_address(table, va, level);
            let (raw, lat) = mem.ptw_read(pte_addr)?;
            cycles += lat;
            reads += 1;
            let pte = Pte::from_raw(raw);

            if !pte.is_valid() {
                self.faults += 1;
                self.walk_time.record_cycles(cycles);
                return Err(Error::IoPageFault { iova, is_write });
            }
            if pte.is_leaf() {
                if !pte.permits(is_write) {
                    self.faults += 1;
                    self.walk_time.record_cycles(cycles);
                    return Err(Error::IoPageFault { iova, is_write });
                }
                self.walk_time.record_cycles(cycles);
                return Ok(PtwResult {
                    leaf: pte,
                    cycles,
                    reads,
                });
            }
            table = pte.phys_addr();
        }

        // Sv39 never has pointer entries at the last level; reaching here
        // means the table is malformed.
        self.faults += 1;
        self.walk_time.record_cycles(cycles);
        Err(Error::IoPageFault { iova, is_write })
    }

    /// Per-walk latency statistics (the quantity plotted in Figure 5).
    pub const fn walk_time(&self) -> RunningStats {
        self.walk_time
    }

    /// Number of walks performed.
    pub const fn walks(&self) -> u64 {
        self.walks
    }

    /// Number of walks that ended in an IO page fault.
    pub const fn faults(&self) -> u64 {
        self.faults
    }

    /// Clears all statistics.
    pub fn reset_stats(&mut self) {
        self.walk_time.reset();
        self.walks = 0;
        self.faults = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::PAGE_SIZE;
    use sva_mem::{MemSysConfig, MemorySystem};
    use sva_vm::{AddressSpace, FrameAllocator};

    fn mapped_space(llc: bool, latency: u64) -> (MemorySystem, AddressSpace, Iova) {
        let mut mem = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            llc_enabled: llc,
            ..MemSysConfig::default()
        });
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 2 * PAGE_SIZE)
            .unwrap();
        (mem, space, Iova::from_virt(va))
    }

    #[test]
    fn walk_finds_mapped_page() {
        let (mut mem, space, iova) = mapped_space(true, 200);
        let mut ptw = PageTableWalker::new();
        let res = ptw.walk(&mut mem, space.root(), iova, true).unwrap();
        assert_eq!(res.reads, 3);
        assert_eq!(
            res.leaf.phys_addr(),
            space
                .translate(&mem, VirtAddr::from_iova(iova))
                .unwrap()
                .page_base()
        );
        assert_eq!(ptw.walks(), 1);
        assert_eq!(ptw.faults(), 0);
        assert_eq!(ptw.walk_time().count(), 1);
    }

    #[test]
    fn walk_of_unmapped_page_faults() {
        let (mut mem, space, _) = mapped_space(true, 200);
        let mut ptw = PageTableWalker::new();
        let err = ptw.walk(&mut mem, space.root(), Iova::new(0x7777_0000), false);
        assert!(matches!(err, Err(Error::IoPageFault { .. })));
        assert_eq!(ptw.faults(), 1);
    }

    #[test]
    fn walk_cost_scales_with_dram_latency_without_llc() {
        let (mut mem_fast, space_fast, iova_fast) = mapped_space(false, 200);
        let (mut mem_slow, space_slow, iova_slow) = mapped_space(false, 1000);
        let mut ptw = PageTableWalker::new();
        let fast = ptw
            .walk(&mut mem_fast, space_fast.root(), iova_fast, false)
            .unwrap();
        let slow = ptw
            .walk(&mut mem_slow, space_slow.root(), iova_slow, false)
            .unwrap();
        // Three dependent reads, each paying the extra 800 cycles.
        let delta = slow.cycles - fast.cycles;
        assert!(delta.raw() >= 3 * 800, "delta = {delta}");
    }

    #[test]
    fn walk_is_cheap_when_ptes_hit_in_llc() {
        let (mut mem, space, iova) = mapped_space(true, 1000);
        let mut ptw = PageTableWalker::new();
        // First walk brings the PTE lines into the LLC...
        let cold = ptw.walk(&mut mem, space.root(), iova, false).unwrap();
        // ...so a walk of the neighbouring page (same PTE cache lines) hits.
        let warm = ptw
            .walk(&mut mem, space.root(), iova + PAGE_SIZE, false)
            .unwrap();
        assert!(
            warm.cycles.raw() * 10 < cold.cycles.raw(),
            "warm walk ({}) should be an order of magnitude cheaper than cold ({})",
            warm.cycles,
            cold.cycles
        );
    }

    #[test]
    fn write_to_read_only_page_faults() {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        // Map one page read-only by hand.
        let va = VirtAddr::new(0x4000_0000);
        let pa = frames.alloc_frame().unwrap();
        space
            .page_table()
            .map_page(&mut mem, &mut frames, va, pa, sva_vm::PteFlags::user_ro())
            .unwrap();
        let mut ptw = PageTableWalker::new();
        assert!(ptw
            .walk(&mut mem, space.root(), Iova::from_virt(va), false)
            .is_ok());
        assert!(matches!(
            ptw.walk(&mut mem, space.root(), Iova::from_virt(va), true),
            Err(Error::IoPageFault { is_write: true, .. })
        ));
    }
}
