//! The top-level IOMMU model.
//!
//! [`Iommu::translate`] is the single entry point the cluster DMA engine
//! uses: it runs the device-context lookup, the TLB lookups and, on a miss,
//! the page-table walk, and returns the physical address together with the
//! number of cycles the translation added to the transaction.
//!
//! # The translation hierarchy
//!
//! By default the IOMMU keeps the paper prototype's single 4-entry,
//! fully-associative, true-LRU IOTLB. [`IommuConfig::tlb_hierarchy`]
//! upgrades it to a configurable **two-level hierarchy**: one private L1
//! address-translation cache (ATC) per device in front of one shared L2
//! IOTLB, each with its own organisation ([`sva_common::TlbOrg`]),
//! replacement policy ([`sva_common::ReplacementPolicy`]) and lookup
//! latency. A translation probes L1, then L2 (filling L1 on an L2 hit),
//! then walks the page table (filling both levels), charging the
//! per-level latencies into the cycles it returns — so TLB pressure shows
//! up in DMA issue times, not only in hit rates. Invalidation commands
//! purge **both** levels plus the walker's in-flight MSHR registers.
//!
//! # Untimed probes
//!
//! Every `probe`/`peek` entry point in this crate —
//! [`Iommu::probe_translation`], [`IoTlb::probe`],
//! [`DeviceDirectory::peek`] — is **untimed and uncounted by contract**:
//! no cycles are charged, no global-clock traffic is issued, no
//! replacement state moves, and no hit/miss statistic or fault record is
//! touched. They exist for functional inspection (address-generation
//! pre-passes, tests, experiment harnesses) and are invisible to the
//! timing model; use [`Iommu::translate_at`] for anything a device would
//! actually issue.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use sva_common::stats::{Histogram, HitMiss, RunningStats};
use sva_common::{Cycles, Error, Iova, PhysAddr, ReplacementPolicy, Result, TimedQueue, TlbOrg};
use sva_mem::MemorySystem;
use sva_vm::FrameAllocator;

use crate::ddt::{DeviceContext, DeviceDirectory};
use crate::iotlb::IoTlb;
use crate::pri::PageRequestStats;
use crate::ptw::PageTableWalker;
use crate::queues::{BoundedQueue, Command, FaultReason, FaultRecord, PageRequest};
use crate::regs::{RegisterFile, DDTP_MODE_1LVL};

/// Width of one bucket of the page-request service-latency histogram.
const PRI_HIST_BUCKET: u64 = 512;
/// Number of buckets of the page-request service-latency histogram.
const PRI_HIST_BUCKETS: usize = 256;

/// Operating mode of the IOMMU instance.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IommuMode {
    /// The IOMMU is not instantiated: device addresses are used as physical
    /// bus addresses unchanged and translation costs nothing. This is the
    /// paper's *Baseline* configuration.
    Disabled,
    /// The IOMMU is present but the device context requests pass-through
    /// (used for instruction fetches from the physically addressed L2).
    Bypass,
    /// Full first-stage (Sv39) translation — the paper's *IOMMU* and
    /// *IOMMU + LLC* configurations.
    Translating,
}

/// Geometry, policy and lookup cost of one level of the translation
/// hierarchy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbLevelConfig {
    /// Organisation of the level (`sets × ways`).
    pub org: TlbOrg,
    /// Replacement policy of the level.
    pub policy: ReplacementPolicy,
    /// Cycles charged for probing this level (hit or miss detection).
    pub lookup_latency: Cycles,
}

impl TlbLevelConfig {
    /// Creates a level configuration.
    pub const fn new(org: TlbOrg, policy: ReplacementPolicy, lookup_latency: Cycles) -> Self {
        Self {
            org,
            policy,
            lookup_latency,
        }
    }
}

/// The two-level translation hierarchy: a private L1 ATC per device in
/// front of a shared L2 IOTLB.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbHierarchyConfig {
    /// The per-device L1 address-translation cache.
    pub l1: TlbLevelConfig,
    /// The shared L2 IOTLB behind every ATC.
    pub l2: TlbLevelConfig,
}

impl Default for TlbHierarchyConfig {
    /// A small private ATC (4 fully-associative entries, 1-cycle lookup)
    /// in front of a 32-entry 8×4 set-associative shared IOTLB (4-cycle
    /// lookup), both true-LRU.
    fn default() -> Self {
        Self {
            l1: TlbLevelConfig::new(
                TlbOrg::fully_associative(4),
                ReplacementPolicy::TrueLru,
                Cycles::new(1),
            ),
            l2: TlbLevelConfig::new(
                TlbOrg::new(8, 4),
                ReplacementPolicy::TrueLru,
                Cycles::new(4),
            ),
        }
    }
}

/// Configuration of the IOMMU model.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IommuConfig {
    /// Operating mode.
    pub mode: IommuMode,
    /// Number of IOTLB entries (the prototype uses 4). Ignored when
    /// [`IommuConfig::tlb_hierarchy`] is set — the hierarchy's level
    /// configurations size the TLBs then.
    pub iotlb_entries: usize,
    /// Latency of an IOTLB lookup (hit or miss detection) in the
    /// single-level configuration. The hierarchy charges its per-level
    /// `lookup_latency` knobs instead.
    pub iotlb_hit_latency: Cycles,
    /// Fixed pipeline latency added to every translated transaction.
    pub pipeline_latency: Cycles,
    /// Capacity of the fault queue.
    pub fault_queue_entries: usize,
    /// Enables the MSHR-style batched page-table walker: concurrent walks
    /// that need a PTE read already in flight coalesce onto it instead of
    /// issuing their own (see [`crate::ptw`]). Off by default — the serial
    /// walker is the paper's prototype.
    pub ptw_batching: bool,
    /// Capacity of the batched walker's walk table (in-flight PTE reads);
    /// ignored with batching off.
    pub ptw_mshr_entries: usize,
    /// The two-level translation hierarchy (per-device L1 ATC + shared L2
    /// IOTLB). `None` — the default — is the paper prototype's single
    /// IOTLB, cycle-identical to the pre-hierarchy model.
    pub tlb_hierarchy: Option<TlbHierarchyConfig>,
    /// ATS/PRI-style demand paging: a translation fault enqueues a page
    /// request for the host instead of producing a terminal error, and the
    /// faulting device stalls-and-retries (see [`crate::pri`]). Off by
    /// default — faults are errors, as in the paper prototype.
    pub demand_paging: bool,
    /// Capacity of the page-request queue; a full queue drops requests and
    /// the device answers with retry backoff.
    pub page_request_entries: usize,
    /// Upper bound on a device's stall-and-retry attempts per access
    /// before the fault becomes terminal.
    pub max_fault_retries: u32,
    /// Extra stall a device serves after its page-request group overflowed
    /// the queue (the dropped tail must re-fault and re-request).
    pub page_request_backoff: Cycles,
}

impl Default for IommuConfig {
    fn default() -> Self {
        Self {
            mode: IommuMode::Translating,
            iotlb_entries: 4,
            iotlb_hit_latency: Cycles::new(2),
            pipeline_latency: Cycles::new(2),
            fault_queue_entries: 64,
            ptw_batching: false,
            ptw_mshr_entries: crate::ptw::DEFAULT_MSHR_ENTRIES,
            tlb_hierarchy: None,
            demand_paging: false,
            page_request_entries: 16,
            max_fault_retries: 8,
            page_request_backoff: Cycles::new(1_000),
        }
    }
}

impl IommuConfig {
    /// Configuration of the paper's baseline platform (no IOMMU).
    pub fn disabled() -> Self {
        Self {
            mode: IommuMode::Disabled,
            ..Self::default()
        }
    }
}

/// Snapshot of the IOMMU's statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IommuStats {
    /// Translation requests served (including bypassed ones).
    pub translations: u64,
    /// Requests that bypassed translation.
    pub bypassed: u64,
    /// Hit/miss counts of the shared IOTLB (the single TLB in the default
    /// configuration; the L2 level of the hierarchy).
    pub iotlb: HitMiss,
    /// Aggregate hit/miss counts of the per-device L1 ATCs (all zero in the
    /// single-level configuration).
    pub atc: HitMiss,
    /// Device-context cache hit/miss counts.
    pub dc_cache: HitMiss,
    /// Number of page-table walks performed.
    pub ptw_walks: u64,
    /// Number of walks that faulted.
    pub ptw_faults: u64,
    /// PTE reads the walker issued to memory.
    pub ptw_reads: u64,
    /// Walk levels served by MSHR coalescing instead of a memory read
    /// (always zero with batching off).
    pub ptw_coalesced_reads: u64,
    /// Per-walk latency statistics (Figure 5 reports the mean).
    pub ptw_time: RunningStats,
    /// Total cycles spent translating (IOTLB + DDT + PTW + pipeline).
    pub translation_cycles: u64,
    /// Fault records dropped at the full fault queue (previously lost
    /// silently; see [`crate::queues::BoundedQueue::dropped`]).
    pub fault_records_dropped: u64,
    /// Page-request path accounting (all zero with demand paging off).
    pub page_requests: PageRequestStats,
    /// Approximate median page-request service latency (from the latency
    /// histogram; 0 without samples).
    pub page_request_p50: u64,
    /// Approximate 90th-percentile page-request service latency.
    pub page_request_p90: u64,
    /// Approximate 99th-percentile page-request service latency.
    pub page_request_p99: u64,
    /// Peak number of simultaneously in-flight serviced page requests
    /// (from the PRI occupancy timeline; 0 with demand paging off).
    pub page_request_peak_in_flight: usize,
    /// Peak size of the PRI `(device, page)` dedup index — the most page
    /// requests pending at once (0 with demand paging off).
    pub page_request_pending_peak: usize,
    /// Peak live window-record count of the walker's MSHR walk table
    /// (always zero with batching off).
    pub ptw_walk_table_events_peak: usize,
    /// Walk-table window records folded away by watermark compaction at
    /// device-window boundaries.
    pub ptw_walk_table_compacted: u64,
}

/// The RISC-V IOMMU.
#[derive(Clone, Debug)]
pub struct Iommu {
    config: IommuConfig,
    regs: RegisterFile,
    ddt: Option<DeviceDirectory>,
    /// The shared IOTLB: the only TLB in the single-level configuration,
    /// the L2 of the hierarchy.
    iotlb: IoTlb,
    /// Per-device L1 address-translation caches, ordered by device ID;
    /// instantiated lazily on first translation and only when
    /// `config.tlb_hierarchy` is set.
    atcs: Vec<(u32, IoTlb)>,
    ptw: PageTableWalker,
    commands: BoundedQueue<Command>,
    faults: BoundedQueue<FaultRecord>,
    /// The ATS/PRI page-request queue (unused with demand paging off).
    page_requests: BoundedQueue<PageRequest>,
    /// Dedup index over the queue: the `(device_id, page base)` of every
    /// pending request, maintained in lockstep with the queue on the
    /// push/pop paths (an overflow-dropped request is *not* pending). The
    /// per-page "already pending?" probe of a page-request group is one
    /// set lookup instead of a queue scan.
    pending_pages: BTreeSet<(u32, u64)>,
    /// Peak size of the dedup index over the measurement window.
    pending_pages_peak: usize,
    pri: PageRequestStats,
    pri_hist: Histogram,
    /// Timed occupancy record of the PRI path: each serviced request
    /// occupies `[issued, completed)` on the global clock, so in-flight
    /// page-request pressure is observable the same way the fabric's
    /// channel backlogs are (an event-indexed recording FIFO).
    pri_timeline: TimedQueue,
    translations: u64,
    bypassed: u64,
    translation_cycles: u64,
}

impl Iommu {
    /// Creates an IOMMU in the given configuration.
    pub fn new(config: IommuConfig) -> Self {
        Self {
            regs: RegisterFile::new(),
            ddt: None,
            iotlb: match config.tlb_hierarchy {
                Some(h) => IoTlb::with_org(h.l2.org, h.l2.policy),
                None => IoTlb::new(config.iotlb_entries),
            },
            atcs: Vec::new(),
            ptw: if config.ptw_batching {
                PageTableWalker::with_batching(config.ptw_mshr_entries)
            } else {
                PageTableWalker::new()
            },
            commands: BoundedQueue::new(64),
            faults: BoundedQueue::new(config.fault_queue_entries),
            page_requests: BoundedQueue::new(config.page_request_entries.max(1)),
            pending_pages: BTreeSet::new(),
            pending_pages_peak: 0,
            pri: PageRequestStats::default(),
            pri_hist: Histogram::new(PRI_HIST_BUCKET, PRI_HIST_BUCKETS),
            pri_timeline: TimedQueue::unbounded_recording(),
            translations: 0,
            bypassed: 0,
            translation_cycles: 0,
            config,
        }
    }

    /// The configuration of this instance.
    pub const fn config(&self) -> &IommuConfig {
        &self.config
    }

    /// The operating mode.
    pub const fn mode(&self) -> IommuMode {
        self.config.mode
    }

    /// Returns `true` when the IOMMU performs first-stage translation.
    pub const fn is_translating(&self) -> bool {
        matches!(self.config.mode, IommuMode::Translating)
    }

    /// The memory-mapped register file (as programmed by the driver).
    pub const fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// Mutable access to the register file for the driver model.
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// The device directory, if one has been programmed.
    pub fn ddt(&self) -> Option<&DeviceDirectory> {
        self.ddt.as_ref()
    }

    /// Convenience setup used by the driver model and examples: allocates a
    /// device directory (if none exists), installs a translating device
    /// context for `device_id` pointing at `root_pt`, and programs `ddtp`.
    ///
    /// # Errors
    ///
    /// Returns allocation or directory errors.
    pub fn attach_device(
        &mut self,
        mem: &mut MemorySystem,
        frames: &mut FrameAllocator,
        device_id: u32,
        pscid: u32,
        root_pt: PhysAddr,
    ) -> Result<()> {
        if self.ddt.is_none() {
            self.ddt = Some(DeviceDirectory::create(frames)?);
        }
        let ddt = self.ddt.as_mut().expect("directory just created");
        ddt.install(mem, device_id, DeviceContext::translating(pscid, root_pt))?;
        self.regs.set_ddtp(ddt.base(), DDTP_MODE_1LVL);
        Ok(())
    }

    /// Installs a bypass device context for `device_id` (used for the
    /// instruction-fetch device ID in the paper's platform).
    ///
    /// # Errors
    ///
    /// Returns allocation or directory errors.
    pub fn attach_bypass_device(
        &mut self,
        mem: &mut MemorySystem,
        frames: &mut FrameAllocator,
        device_id: u32,
    ) -> Result<()> {
        if self.ddt.is_none() {
            self.ddt = Some(DeviceDirectory::create(frames)?);
        }
        let ddt = self.ddt.as_mut().expect("directory just created");
        ddt.install(mem, device_id, DeviceContext::bypassing())?;
        self.regs.set_ddtp(ddt.base(), DDTP_MODE_1LVL);
        Ok(())
    }

    /// Processes one driver command (invalidations and fences).
    ///
    /// An `IOTINVAL.VMA` purges **every** cached-translation structure the
    /// scoped pages could live in: the per-device L1 ATCs, the shared L2
    /// IOTLB *and* the page-table walker's in-flight MSHR registers — no
    /// stale translation survives at any layer (a property test in
    /// `tests/invalidation.rs` pins this under concurrent walks).
    pub fn process_command(&mut self, command: Command) {
        self.commands.push(command);
        match command {
            Command::IotlbInvalidate { device_id, iova } => {
                match (device_id, iova) {
                    (Some(d), Some(a)) => {
                        self.iotlb.invalidate_page(d, a);
                        if let Some(atc) = self.atc_mut_existing(d) {
                            atc.invalidate_page(d, a);
                        }
                    }
                    (Some(d), None) => {
                        self.iotlb.invalidate_device(d);
                        if let Some(atc) = self.atc_mut_existing(d) {
                            atc.invalidate_all();
                        }
                    }
                    _ => {
                        self.iotlb.invalidate_all();
                        for (_, atc) in &mut self.atcs {
                            atc.invalidate_all();
                        }
                    }
                }
                // The page tables may have changed: in-flight walk-table
                // registers must not serve pre-invalidation PTE values.
                self.ptw.invalidate_walk_table();
            }
            Command::DdtInvalidate => {
                if let Some(ddt) = &mut self.ddt {
                    ddt.invalidate_cache();
                }
                self.ptw.invalidate_walk_table();
            }
            Command::Fence => {}
        }
    }

    /// Position of `device_id` in the sorted ATC list.
    fn atc_index(&self, device_id: u32) -> std::result::Result<usize, usize> {
        self.atcs.binary_search_by_key(&device_id, |(d, _)| *d)
    }

    /// The L1 ATC of `device_id`, if one has been instantiated.
    fn atc_mut_existing(&mut self, device_id: u32) -> Option<&mut IoTlb> {
        self.atc_index(device_id)
            .ok()
            .map(|pos| &mut self.atcs[pos].1)
    }

    /// The L1 ATC of `device_id`, created on first use from the hierarchy's
    /// L1 level configuration. Only called on the hierarchy path.
    fn atc_mut(&mut self, device_id: u32, level: TlbLevelConfig) -> &mut IoTlb {
        let pos = match self.atc_index(device_id) {
            Ok(pos) => pos,
            Err(pos) => {
                // Give random-policy ATCs decorrelated victim streams.
                let policy = match level.policy {
                    ReplacementPolicy::Random(seed) => {
                        ReplacementPolicy::Random(seed ^ u64::from(device_id).rotate_left(32))
                    }
                    other => other,
                };
                self.atcs
                    .insert(pos, (device_id, IoTlb::with_org(level.org, policy)));
                pos
            }
        };
        &mut self.atcs[pos].1
    }

    /// Translates an IO virtual address for `device_id`, with the request
    /// arriving at the memory system's current global-clock reading.
    ///
    /// Returns the physical address and the cycles the translation added to
    /// the transaction (zero when the IOMMU is disabled). Initiators that
    /// track their own pipeline time should use [`Iommu::translate_at`] so
    /// page-table walks land at the right point on the fabric timelines.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IoPageFault`] or [`Error::UnknownDevice`] on
    /// translation failure; a corresponding record is pushed to the fault
    /// queue.
    pub fn translate(
        &mut self,
        mem: &mut MemorySystem,
        device_id: u32,
        iova: Iova,
        is_write: bool,
    ) -> Result<(PhysAddr, Cycles)> {
        let now = mem.clock().now();
        self.translate_at(mem, device_id, iova, is_write, now)
    }

    /// Translates an IO virtual address for `device_id`, with the request
    /// arriving at global-clock cycle `now` (the issue time of the DMA burst
    /// presenting it). On an IOTLB miss the page-table walk is issued at
    /// `now` plus the lookup latencies, so its per-level reads are
    /// timestamped and contend on the memory fabric.
    ///
    /// Under demand paging a request that is going to fault is **squashed
    /// before it perturbs anything**: an untimed probe detects the missing
    /// (or permission-lacking) mapping and the fault returns without timed
    /// walk reads, TLB state movement or statistics. A faulting attempt's
    /// partial walk would otherwise warm the LLC with page-table lines and
    /// reserve fabric slots, making the post-fault retry *cheaper* than the
    /// identical translation in a pre-mapped run — the fault-stagger
    /// anomaly where cold-start paging could report a lower contended wall
    /// clock than its pre-mapped twin. The fault's real cost is carried by
    /// the PRI stall-and-retry loop, which dwarfs the squashed walk.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IoPageFault`] or [`Error::UnknownDevice`] on
    /// translation failure; a corresponding record is pushed to the fault
    /// queue (except for demand-paging page faults, which are reported
    /// through the page-request path instead).
    pub fn translate_at(
        &mut self,
        mem: &mut MemorySystem,
        device_id: u32,
        iova: Iova,
        is_write: bool,
        now: Cycles,
    ) -> Result<(PhysAddr, Cycles)> {
        if matches!(self.config.mode, IommuMode::Translating)
            && self.config.demand_paging
            && self
                .ddt
                .as_ref()
                .is_some_and(|ddt| ddt.peek(mem, device_id).is_ok())
            && !self.probe_access(mem, device_id, iova, is_write)
        {
            return Err(Error::IoPageFault { iova, is_write });
        }
        self.translations += 1;
        match self.config.mode {
            IommuMode::Disabled => {
                self.bypassed += 1;
                Ok((PhysAddr::new(iova.raw()), Cycles::ZERO))
            }
            IommuMode::Bypass => {
                self.bypassed += 1;
                Ok((PhysAddr::new(iova.raw()), self.config.pipeline_latency))
            }
            IommuMode::Translating => {
                let result = self.translate_first_stage(mem, device_id, iova, is_write, now);
                if let Ok((_, cycles)) = &result {
                    self.translation_cycles += cycles.raw();
                }
                result
            }
        }
    }

    /// Untimed, side-effect-free translation for functional inspection of
    /// device-visible memory: resolves the device context straight from the
    /// in-memory directory ([`DeviceDirectory::peek`]) and walks the page
    /// table with functional reads. This is what a DMA core's
    /// address-generation pre-pass (e.g. the sort kernel's merge-path
    /// binary search) uses to peek at DRAM-resident data without
    /// disturbing the timing model, and what the page-request path uses to
    /// find the unmapped pages of a transfer.
    ///
    /// **Contract (shared by every `probe`/`peek` entry point of this
    /// crate):** no cycles are charged, no timed memory traffic is issued,
    /// no TLB/DC-cache replacement state moves, and no hit/miss statistic
    /// or fault record is produced — by design, probes are invisible to
    /// both the timing model and the accounting. See the crate-level
    /// "Untimed probes" section.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IoPageFault`] for unmapped addresses and
    /// [`Error::UnknownDevice`] for devices without a valid context.
    pub fn probe_translation(
        &self,
        mem: &MemorySystem,
        device_id: u32,
        iova: Iova,
    ) -> Result<PhysAddr> {
        match self.config.mode {
            IommuMode::Disabled | IommuMode::Bypass => Ok(PhysAddr::new(iova.raw())),
            IommuMode::Translating => {
                let Some(ddt) = self.ddt.as_ref() else {
                    return Err(Error::UnknownDevice { device_id });
                };
                let ctx = ddt.peek(mem, device_id)?;
                if ctx.bypass {
                    return Ok(PhysAddr::new(iova.raw()));
                }
                let va = sva_common::VirtAddr::from_iova(iova);
                let table = sva_vm::PageTable::from_root(ctx.root_pt);
                match table.translate(mem, va) {
                    Ok(pa) => Ok(pa),
                    Err(Error::HostPageFault { .. }) => Err(Error::IoPageFault {
                        iova,
                        is_write: false,
                    }),
                    Err(e) => Err(e),
                }
            }
        }
    }

    fn translate_first_stage(
        &mut self,
        mem: &mut MemorySystem,
        device_id: u32,
        iova: Iova,
        is_write: bool,
        now: Cycles,
    ) -> Result<(PhysAddr, Cycles)> {
        let mut cycles = self.config.pipeline_latency;

        // 1. Device context.
        let Some(ddt) = self.ddt.as_mut() else {
            self.faults.push(FaultRecord {
                device_id,
                iova,
                is_write,
                reason: FaultReason::DeviceNotConfigured,
            });
            return Err(Error::UnknownDevice { device_id });
        };
        let (ctx, dc_cycles) = match ddt.lookup(mem, device_id, now) {
            Ok(r) => r,
            Err(e) => {
                self.faults.push(FaultRecord {
                    device_id,
                    iova,
                    is_write,
                    reason: FaultReason::DeviceNotConfigured,
                });
                return Err(e);
            }
        };
        cycles += dc_cycles;
        if ctx.bypass {
            self.bypassed += 1;
            return Ok((PhysAddr::new(iova.raw()), cycles));
        }

        // 2. TLB lookups: either the prototype's single IOTLB or the
        // two-level hierarchy (private L1 ATC, then shared L2), each level
        // charging its configured lookup latency into the transaction.
        let permits = |entry: &crate::iotlb::IoTlbEntry| {
            entry.flags.contains(sva_vm::PteFlags::W) || !is_write
        };
        match self.config.tlb_hierarchy {
            None => {
                cycles += self.config.iotlb_hit_latency;
                if let Some(entry) = self.iotlb.lookup(device_id, iova) {
                    if permits(&entry) {
                        return Ok((entry.translate(iova), cycles));
                    }
                    // Cached entry does not permit the access: fall through
                    // to a fresh walk so the fault is reported with
                    // up-to-date state.
                }
            }
            Some(h) => {
                cycles += h.l1.lookup_latency;
                if let Some(entry) = self.atc_mut(device_id, h.l1).lookup(device_id, iova) {
                    if permits(&entry) {
                        return Ok((entry.translate(iova), cycles));
                    }
                }
                cycles += h.l2.lookup_latency;
                if let Some(entry) = self.iotlb.lookup(device_id, iova) {
                    if permits(&entry) {
                        // L2 hit refills the private ATC.
                        self.atc_mut(device_id, h.l1)
                            .fill(device_id, iova, entry.ppn, entry.flags);
                        return Ok((entry.translate(iova), cycles));
                    }
                }
            }
        }

        // 3. Page-table walk, issued at the request's arrival plus the
        // pipeline/DDT/TLB latencies already accumulated. A successful walk
        // fills every level above it.
        match self
            .ptw
            .walk_at(mem, ctx.root_pt, iova, is_write, now + cycles)
        {
            Ok(res) => {
                cycles += res.cycles;
                self.iotlb
                    .fill(device_id, iova, res.leaf.ppn(), res.leaf.flags());
                if let Some(h) = self.config.tlb_hierarchy {
                    self.atc_mut(device_id, h.l1).fill(
                        device_id,
                        iova,
                        res.leaf.ppn(),
                        res.leaf.flags(),
                    );
                }
                Ok((res.leaf.phys_addr() + iova.page_offset(), cycles))
            }
            Err(e) => {
                let reason = match &e {
                    Error::IoPageFault { .. } => FaultReason::PageNotMapped,
                    _ => FaultReason::DeviceNotConfigured,
                };
                // With demand paging, a not-mapped fault is recoverable: it
                // is reported through the page-request queue by the device
                // (ATS/PRI), not the terminal fault queue.
                if !(self.config.demand_paging && reason == FaultReason::PageNotMapped) {
                    self.faults.push(FaultRecord {
                        device_id,
                        iova,
                        is_write,
                        reason,
                    });
                }
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // The ATS/PRI page-request path (demand paging)
    // ------------------------------------------------------------------

    /// Whether the page-request path is active (demand paging configured
    /// and the IOMMU translating).
    pub const fn demand_paging(&self) -> bool {
        self.config.demand_paging && self.is_translating()
    }

    /// Untimed probe of whether `device_id` can already perform the given
    /// access to `iova` without host intervention: the page must be mapped
    /// in the device's IO page table **and** its leaf must permit the
    /// access type (a resident read-only page still needs a page request
    /// for a write — the host services it by upgrading the mapping).
    fn probe_access(&self, mem: &MemorySystem, device_id: u32, iova: Iova, is_write: bool) -> bool {
        match self.config.mode {
            IommuMode::Disabled | IommuMode::Bypass => true,
            IommuMode::Translating => {
                let Some(ddt) = self.ddt.as_ref() else {
                    return false;
                };
                let Ok(ctx) = ddt.peek(mem, device_id) else {
                    return false;
                };
                if ctx.bypass {
                    return true;
                }
                let table = sva_vm::PageTable::from_root(ctx.root_pt);
                let va = sva_common::VirtAddr::from_iova(iova);
                match table.walk(mem, va) {
                    Ok(path) => path
                        .leaf()
                        .is_some_and(|pte| pte.is_valid() && pte.permits(is_write)),
                    Err(_) => false,
                }
            }
        }
    }

    /// Issues a **page-request group** on behalf of `device_id`: one
    /// request per page of `[start, start + len)` the device cannot
    /// already access (unmapped, or mapped without write permission for a
    /// write group), stamped `now`, pushed into the bounded page-request
    /// queue. Pages already accessible — or already pending in the queue —
    /// are skipped.
    ///
    /// Returns `(enqueued, dropped)`; a nonzero `dropped` means the queue
    /// overflowed mid-group and the device must back off (the tail pages
    /// will fault again and re-request).
    pub fn enqueue_page_requests(
        &mut self,
        mem: &MemorySystem,
        device_id: u32,
        start: Iova,
        len: u64,
        is_write: bool,
        now: Cycles,
    ) -> (u64, u64) {
        self.enqueue_group(mem, device_id, start, len, is_write, now, false)
    }

    /// The pre-index page-request group path, retained verbatim as the
    /// executable reference: the per-page "already pending?" probe scans
    /// the whole queue instead of consulting the dedup index. The dedup
    /// index is still maintained (it is queue state, not a statistic), so
    /// a walker driven through this path stays observationally identical —
    /// the `pri_group_storm` perf gate and the desync property suite
    /// twin-run both paths.
    #[doc(hidden)]
    pub fn enqueue_page_requests_scan(
        &mut self,
        mem: &MemorySystem,
        device_id: u32,
        start: Iova,
        len: u64,
        is_write: bool,
        now: Cycles,
    ) -> (u64, u64) {
        self.enqueue_group(mem, device_id, start, len, is_write, now, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn enqueue_group(
        &mut self,
        mem: &MemorySystem,
        device_id: u32,
        start: Iova,
        len: u64,
        is_write: bool,
        now: Cycles,
        scan: bool,
    ) -> (u64, u64) {
        let mut enqueued = 0u64;
        let mut dropped = 0u64;
        let first = start.page_base();
        let end = start + len.max(1);
        let mut page = first;
        while page < end {
            let unmapped = !self.probe_access(mem, device_id, page, is_write);
            // Every pushed request's IOVA is a page base, and every push is
            // guarded by this probe — so pending `(device, page)` pairs are
            // unique in the queue and the dedup index mirrors it exactly.
            let pending = if scan {
                self.page_requests
                    .iter()
                    .any(|r| r.device_id == device_id && r.iova.page_base() == page.page_base())
            } else {
                self.pending_pages.contains(&(device_id, page.raw()))
            };
            if unmapped && !pending {
                if self.page_requests.push(PageRequest {
                    device_id,
                    iova: page,
                    is_write,
                    issued_at: now,
                }) {
                    self.pending_pages.insert((device_id, page.raw()));
                    self.pending_pages_peak = self.pending_pages_peak.max(self.pending_pages.len());
                    enqueued += 1;
                    self.pri.requests += 1;
                } else {
                    // The queue is full; keep scanning so every request of
                    // the group that fails to enqueue is counted — the
                    // drop statistics promise a per-request count. An
                    // overflow-dropped request never enters the dedup
                    // index: it is not pending and must be re-requestable.
                    dropped += 1;
                    self.pri.dropped += 1;
                }
            }
            page += sva_common::PAGE_SIZE;
        }
        (enqueued, dropped)
    }

    /// Removes and returns the oldest pending page request (host side).
    pub fn pop_page_request(&mut self) -> Option<PageRequest> {
        let req = self.page_requests.pop();
        if let Some(r) = &req {
            self.pending_pages
                .remove(&(r.device_id, r.iova.page_base().raw()));
        }
        req
    }

    /// Number of pending page requests.
    pub fn pending_page_requests(&self) -> usize {
        self.page_requests.len()
    }

    /// Records one request resolved by the host: issued at `issued`,
    /// completed (group response observed by the device) at `completed`.
    /// The service latency feeds the latency statistics and the request's
    /// `[issued, completed)` residency is recorded on the PRI occupancy
    /// timeline.
    pub fn note_page_request_serviced(&mut self, issued: Cycles, completed: Cycles) {
        let latency = completed.saturating_sub(issued);
        self.pri.serviced += 1;
        self.pri.service_time.record_cycles(latency);
        self.pri_hist.record(latency.raw());
        self.pri_timeline.push(issued.raw(), completed.raw());
    }

    /// Number of serviced page requests that were in flight (issued but not
    /// yet completed) at `t`.
    pub fn page_requests_in_flight_at(&self, t: Cycles) -> usize {
        self.pri_timeline.occupancy_at(t.raw())
    }

    /// Records one request the host could not resolve (no backing host
    /// mapping); the device's bounded retry loop turns it into a terminal
    /// fault.
    pub fn note_page_request_failed(&mut self) {
        self.pri.failed += 1;
    }

    /// Records the completion of one group response.
    pub fn note_group_response(&mut self) {
        self.pri.group_responses += 1;
    }

    /// Purges the walker's in-flight MSHR registers (the host changed the
    /// page tables while servicing page requests; the fence after the
    /// update must not let stale in-flight PTE values serve later walks).
    pub fn purge_walk_table(&mut self) {
        self.ptw.invalidate_walk_table();
    }

    /// Folds translation-path history that can no longer influence the
    /// simulation: every walk-table window completing at or before
    /// watermark `w`. Contract: no later walk is stamped before `w` (the
    /// same no-earlier-arrival watermark
    /// `MemorySystem::compact_fabric_before` uses); the offload driver
    /// applies both together at sharded device-window boundaries.
    pub fn compact_translation_before(&mut self, w: Cycles) {
        self.ptw.compact_walk_table_before(w);
    }

    /// Checks that the PRI dedup index mirrors the page-request queue
    /// exactly: same size, and every pending request's `(device, page)` is
    /// present.
    ///
    /// # Panics
    ///
    /// Panics when the index and the queue have desynchronised.
    #[doc(hidden)]
    pub fn debug_validate_page_requests(&self) {
        assert_eq!(
            self.pending_pages.len(),
            self.page_requests.len(),
            "PRI dedup index size diverged from the queue"
        );
        for r in self.page_requests.iter() {
            assert!(
                self.pending_pages
                    .contains(&(r.device_id, r.iova.page_base().raw())),
                "pending request {:?} missing from the dedup index",
                r
            );
        }
        assert!(self.pending_pages_peak >= self.pending_pages.len());
    }

    /// Test hook: plants a stale `(device, page)` entry in the PRI dedup
    /// index with no backing queue entry — the desync the property suite
    /// must catch (a stale entry silently suppresses a legitimate
    /// re-request after the page was popped and unmapped again).
    #[doc(hidden)]
    pub fn debug_inject_stale_pending_page(&mut self, device_id: u32, page: Iova) {
        self.pending_pages
            .insert((device_id, page.page_base().raw()));
    }

    /// Records a **terminal** IO page fault in the fault queue.
    ///
    /// The demand-paging path reports *recoverable* not-mapped faults
    /// through the page-request queue instead of the fault queue; when a
    /// device's bounded stall-and-retry loop gives up — the retry budget
    /// is exhausted or no handler is attached — the fault is terminal
    /// after all and must still reach the driver, so the device records it
    /// here before aborting (otherwise the abort would be invisible to a
    /// host polling the fault queue).
    pub fn record_terminal_fault(&mut self, device_id: u32, iova: Iova, is_write: bool) {
        self.faults.push(FaultRecord {
            device_id,
            iova,
            is_write,
            reason: FaultReason::PageNotMapped,
        });
    }

    /// Oldest unread fault, if any.
    pub fn pop_fault(&mut self) -> Option<FaultRecord> {
        self.faults.pop()
    }

    /// Number of pending fault records.
    pub fn pending_faults(&self) -> usize {
        self.faults.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IommuStats {
        let mut atc = HitMiss::new();
        for (_, tlb) in &self.atcs {
            let s = tlb.stats();
            atc.hits += s.hits;
            atc.misses += s.misses;
        }
        IommuStats {
            translations: self.translations,
            bypassed: self.bypassed,
            iotlb: self.iotlb.stats(),
            atc,
            dc_cache: self
                .ddt
                .as_ref()
                .map(|d| d.cache_stats())
                .unwrap_or_default(),
            ptw_walks: self.ptw.walks(),
            ptw_faults: self.ptw.faults(),
            ptw_reads: self.ptw.pte_reads(),
            ptw_coalesced_reads: self.ptw.coalesced_reads(),
            ptw_time: self.ptw.walk_time(),
            translation_cycles: self.translation_cycles,
            fault_records_dropped: self.faults.dropped(),
            page_requests: self.pri,
            page_request_p50: self.pri_hist.percentile(0.50),
            page_request_p90: self.pri_hist.percentile(0.90),
            page_request_p99: self.pri_hist.percentile(0.99),
            page_request_peak_in_flight: self.pri_timeline.peak(),
            page_request_pending_peak: self.pending_pages_peak,
            ptw_walk_table_events_peak: self.ptw.walk_table_events_peak(),
            ptw_walk_table_compacted: self.ptw.walk_table_compacted_events(),
        }
    }

    /// Direct access to the shared IOTLB — the single TLB in the default
    /// configuration, the L2 of the hierarchy (for ablation experiments and
    /// tests).
    pub const fn iotlb(&self) -> &IoTlb {
        &self.iotlb
    }

    /// Direct access to the L1 ATC of `device_id`, if the hierarchy is
    /// configured and the device has translated at least once.
    pub fn atc(&self, device_id: u32) -> Option<&IoTlb> {
        self.atc_index(device_id).ok().map(|pos| &self.atcs[pos].1)
    }

    /// Per-device IOTLB hit/miss statistics, ordered by device ID. Devices
    /// that never presented a translation are absent.
    pub fn device_iotlb_stats(&self) -> &[(u32, sva_common::stats::HitMiss)] {
        self.iotlb.per_device_stats()
    }

    /// Device IDs with an installed device context, in ascending order
    /// (empty when no directory has been programmed).
    pub fn attached_devices(&self) -> &[u32] {
        self.ddt.as_ref().map(|d| d.device_ids()).unwrap_or(&[])
    }

    /// Clears all statistics; cached state (IOTLB, ATCs, DC cache) is
    /// preserved.
    pub fn reset_stats(&mut self) {
        self.iotlb.reset_stats();
        for (_, atc) in &mut self.atcs {
            atc.reset_stats();
        }
        self.ptw.reset_stats();
        self.faults.reset_dropped();
        self.page_requests.reset_dropped();
        // The dedup index is queue state, not a statistic: requests still
        // pending across the window boundary stay pending (and deduped).
        // Only the peak restarts, at the carried-over size.
        self.pending_pages_peak = self.pending_pages.len();
        self.pri = PageRequestStats::default();
        self.pri_hist = Histogram::new(PRI_HIST_BUCKET, PRI_HIST_BUCKETS);
        self.pri_timeline.reset();
        self.translations = 0;
        self.bypassed = 0;
        self.translation_cycles = 0;
    }
}

impl Default for Iommu {
    fn default() -> Self {
        Self::new(IommuConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::{VirtAddr, PAGE_SIZE};
    use sva_vm::AddressSpace;

    fn setup() -> (MemorySystem, FrameAllocator, AddressSpace, VirtAddr) {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 8 * PAGE_SIZE)
            .unwrap();
        (mem, frames, space, va)
    }

    #[test]
    fn disabled_mode_is_identity_and_free() {
        let mut mem = MemorySystem::default();
        let mut iommu = Iommu::new(IommuConfig::disabled());
        let (pa, cycles) = iommu
            .translate(&mut mem, 1, Iova::new(0x8000_1234), true)
            .unwrap();
        assert_eq!(pa, PhysAddr::new(0x8000_1234));
        assert_eq!(cycles, Cycles::ZERO);
        assert_eq!(iommu.stats().bypassed, 1);
    }

    #[test]
    fn translating_mode_matches_software_walk() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        for page in 0..8u64 {
            let iova = Iova::from_virt(va + page * PAGE_SIZE + 16);
            let (pa, _) = iommu.translate(&mut mem, 1, iova, false).unwrap();
            assert_eq!(
                pa,
                space.translate(&mem, va + page * PAGE_SIZE + 16).unwrap()
            );
        }
    }

    #[test]
    fn iotlb_miss_costs_more_than_hit() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let iova = Iova::from_virt(va);
        let (_, miss_cycles) = iommu.translate(&mut mem, 1, iova, false).unwrap();
        let (_, hit_cycles) = iommu.translate(&mut mem, 1, iova + 64, false).unwrap();
        assert!(
            miss_cycles.raw() > 10 * hit_cycles.raw(),
            "miss {miss_cycles} should dwarf hit {hit_cycles}"
        );
        let stats = iommu.stats();
        assert_eq!(stats.iotlb.misses, 1);
        assert_eq!(stats.iotlb.hits, 1);
        assert_eq!(stats.ptw_walks, 1);
    }

    #[test]
    fn unmapped_iova_faults_and_is_recorded() {
        let (mut mem, mut frames, space, _) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let bad = Iova::new(0x7FFF_0000);
        assert!(matches!(
            iommu.translate(&mut mem, 1, bad, true),
            Err(Error::IoPageFault { .. })
        ));
        assert_eq!(iommu.pending_faults(), 1);
        let fault = iommu.pop_fault().unwrap();
        assert_eq!(fault.iova, bad);
        assert_eq!(fault.reason, FaultReason::PageNotMapped);
        assert!(fault.is_write);
    }

    #[test]
    fn unknown_device_faults() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        assert!(matches!(
            iommu.translate(&mut mem, 9, Iova::from_virt(va), false),
            Err(Error::UnknownDevice { device_id: 9 })
        ));
        assert_eq!(iommu.pending_faults(), 1);
    }

    #[test]
    fn bypass_device_context_skips_translation() {
        let (mut mem, mut frames, _space, _) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_bypass_device(&mut mem, &mut frames, 2)
            .unwrap();
        let addr = Iova::new(0x7800_0000);
        let (pa, _) = iommu.translate(&mut mem, 2, addr, false).unwrap();
        assert_eq!(pa, PhysAddr::new(addr.raw()));
        assert_eq!(iommu.stats().bypassed, 1);
    }

    #[test]
    fn invalidation_forces_new_walks() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let iova = Iova::from_virt(va);
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        assert_eq!(iommu.stats().ptw_walks, 1);
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        assert_eq!(iommu.stats().ptw_walks, 1);

        iommu.process_command(Command::IotlbInvalidate {
            device_id: None,
            iova: None,
        });
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        assert_eq!(iommu.stats().ptw_walks, 2);
    }

    #[test]
    fn small_iotlb_thrashes_on_wide_strides() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        // Touch 8 distinct pages twice; with only 4 IOTLB entries the second
        // sweep misses again.
        for _ in 0..2 {
            for page in 0..8u64 {
                let iova = Iova::from_virt(va + page * PAGE_SIZE);
                iommu.translate(&mut mem, 1, iova, false).unwrap();
            }
        }
        let stats = iommu.stats();
        assert_eq!(stats.iotlb.misses, 16);
        assert_eq!(stats.iotlb.hits, 0);
    }

    fn hierarchy_config() -> IommuConfig {
        IommuConfig {
            tlb_hierarchy: Some(TlbHierarchyConfig::default()),
            ..IommuConfig::default()
        }
    }

    #[test]
    fn hierarchy_l1_miss_fills_from_l2_and_walks_once() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::new(hierarchy_config());
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let iova = Iova::from_virt(va);

        // Cold: L1 miss, L2 miss, one walk; both levels fill.
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        let s = iommu.stats();
        assert_eq!(s.atc.misses, 1);
        assert_eq!(s.iotlb.misses, 1);
        assert_eq!(s.ptw_walks, 1);
        assert!(iommu.atc(1).unwrap().probe(1, iova));
        assert!(iommu.iotlb().probe(1, iova));

        // Warm: L1 hit, L2 untouched, no walk.
        iommu.translate(&mut mem, 1, iova + 64, false).unwrap();
        let s = iommu.stats();
        assert_eq!(s.atc.hits, 1);
        assert_eq!(s.iotlb.total(), 1, "an L1 hit never reaches L2");
        assert_eq!(s.ptw_walks, 1);

        // Thrash the tiny L1 (4 entries) with 5 more pages, then return to
        // the first page: L1 misses, the 32-entry L2 still hits, no walk.
        for page in 1..6u64 {
            iommu
                .translate(&mut mem, 1, Iova::from_virt(va + page * PAGE_SIZE), false)
                .unwrap();
        }
        let walks_before = iommu.stats().ptw_walks;
        let l2_hits_before = iommu.stats().iotlb.hits;
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        let s = iommu.stats();
        assert_eq!(s.ptw_walks, walks_before, "L2 hit avoids the walk");
        assert_eq!(s.iotlb.hits, l2_hits_before + 1);
    }

    #[test]
    fn hierarchy_charges_per_level_latencies() {
        // Zero out everything but the TLB lookup latencies so the cycle
        // delta between an L1 hit and an L2 hit is exactly the L2 knob.
        let config = IommuConfig {
            pipeline_latency: Cycles::ZERO,
            tlb_hierarchy: Some(TlbHierarchyConfig {
                l1: TlbLevelConfig::new(
                    TlbOrg::fully_associative(1),
                    ReplacementPolicy::TrueLru,
                    Cycles::new(3),
                ),
                l2: TlbLevelConfig::new(
                    TlbOrg::fully_associative(8),
                    ReplacementPolicy::TrueLru,
                    Cycles::new(11),
                ),
            }),
            ..IommuConfig::default()
        };
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::new(config);
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let a = Iova::from_virt(va);
        let b = Iova::from_virt(va + PAGE_SIZE);
        // Warm both pages (b last, so the 1-entry L1 holds b).
        iommu.translate(&mut mem, 1, a, false).unwrap();
        iommu.translate(&mut mem, 1, b, false).unwrap();
        // DC cache is warm now: a translation of b hits L1.
        let (_, l1_hit) = iommu.translate(&mut mem, 1, b, false).unwrap();
        // A translation of a misses L1 (holds b) but hits L2.
        let (_, l2_hit) = iommu.translate(&mut mem, 1, a, false).unwrap();
        assert_eq!(
            l2_hit - l1_hit,
            Cycles::new(11),
            "the L2 hit pays exactly the L2 lookup latency on top"
        );
    }

    #[test]
    fn hierarchy_invalidation_purges_both_levels() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::new(hierarchy_config());
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let iova = Iova::from_virt(va);
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        assert!(iommu.atc(1).unwrap().probe(1, iova));
        assert!(iommu.iotlb().probe(1, iova));

        iommu.process_command(Command::IotlbInvalidate {
            device_id: Some(1),
            iova: Some(iova),
        });
        assert!(!iommu.atc(1).unwrap().probe(1, iova), "L1 purged");
        assert!(!iommu.iotlb().probe(1, iova), "L2 purged");
        let walks = iommu.stats().ptw_walks;
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        assert_eq!(iommu.stats().ptw_walks, walks + 1, "re-walk after purge");
    }

    #[test]
    fn single_level_config_keeps_atc_stats_at_zero() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        iommu
            .translate(&mut mem, 1, Iova::from_virt(va), false)
            .unwrap();
        let s = iommu.stats();
        assert_eq!(s.atc.total(), 0);
        assert!(iommu.atc(1).is_none());
    }

    /// Satellite regression: fault records dropped at the full fault queue
    /// used to vanish silently — the drop counter now surfaces through
    /// `IommuStats::fault_records_dropped`.
    #[test]
    fn fault_queue_overflow_is_surfaced_not_silent() {
        let (mut mem, mut frames, space, _) = setup();
        let mut iommu = Iommu::new(IommuConfig {
            fault_queue_entries: 2,
            ..IommuConfig::default()
        });
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        for i in 0..5u64 {
            let bad = Iova::new(0x7F00_0000 + i * PAGE_SIZE);
            assert!(iommu.translate(&mut mem, 1, bad, false).is_err());
        }
        assert_eq!(iommu.pending_faults(), 2, "queue holds its capacity");
        assert_eq!(
            iommu.stats().fault_records_dropped,
            3,
            "the three overflowed records are counted, not lost"
        );
        iommu.reset_stats();
        assert_eq!(iommu.stats().fault_records_dropped, 0);
    }

    #[test]
    fn page_request_groups_dedup_skip_mapped_and_overflow() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::new(IommuConfig {
            demand_paging: true,
            page_request_entries: 4,
            ..IommuConfig::default()
        });
        // Attach against a *fresh* IO table so nothing is device-mapped.
        let io_table = sva_vm::PageTable::create(&mut frames).unwrap();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), io_table.root())
            .unwrap();
        assert!(iommu.demand_paging());

        // Map page 2 of 6 into the device table: the group must skip it.
        let pa = space.translate(&mem, va + 2 * PAGE_SIZE).unwrap();
        io_table
            .map_page(
                &mut mem,
                &mut frames,
                va + 2 * PAGE_SIZE,
                pa,
                sva_vm::PteFlags::user_rw(),
            )
            .unwrap();

        let iova = Iova::from_virt(va);
        let (queued, dropped) =
            iommu.enqueue_page_requests(&mem, 1, iova, 6 * PAGE_SIZE, false, Cycles::new(5));
        // 6 pages, one mapped → 5 candidates; the queue holds 4.
        assert_eq!(queued, 4);
        assert_eq!(dropped, 1);
        assert_eq!(iommu.pending_page_requests(), 4);
        let s = iommu.stats();
        assert_eq!(s.page_requests.requests, 4);
        assert_eq!(s.page_requests.dropped, 1);

        // Re-requesting the same range enqueues nothing new (dedup against
        // pending entries), but the tail page still drops.
        let (queued2, dropped2) =
            iommu.enqueue_page_requests(&mem, 1, iova, 6 * PAGE_SIZE, false, Cycles::new(9));
        assert_eq!(queued2, 0);
        assert_eq!(dropped2, 1);

        // The requests pop in page order and skip the mapped page.
        let pages: Vec<u64> = std::iter::from_fn(|| iommu.pop_page_request())
            .map(|r| (r.iova.raw() - iova.raw()) / PAGE_SIZE)
            .collect();
        assert_eq!(pages, vec![0, 1, 3, 4]);
    }

    #[test]
    fn write_groups_request_upgrades_for_read_only_pages() {
        let (mut mem, mut frames, space, _) = setup();
        let mut iommu = Iommu::new(IommuConfig {
            demand_paging: true,
            ..IommuConfig::default()
        });
        let io_table = sva_vm::PageTable::create(&mut frames).unwrap();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), io_table.root())
            .unwrap();
        // Map one page read-only into the device table.
        let va = sva_common::VirtAddr::new(0x4000_0000);
        let pa = frames.alloc_frame().unwrap();
        io_table
            .map_page(&mut mem, &mut frames, va, pa, sva_vm::PteFlags::user_ro())
            .unwrap();
        let iova = Iova::from_virt(va);
        // A read group has nothing to request: the page is accessible.
        let (queued, _) = iommu.enqueue_page_requests(&mem, 1, iova, 1, false, Cycles::ZERO);
        assert_eq!(queued, 0, "resident readable page needs no read request");
        // A write group must request the page so the host can upgrade the
        // mapping — a permission fault is serviceable, not just a missing
        // page.
        let (queued, _) = iommu.enqueue_page_requests(&mem, 1, iova, 1, true, Cycles::ZERO);
        assert_eq!(queued, 1, "read-only page needs a write page-request");
        let req = iommu.pop_page_request().unwrap();
        assert!(req.is_write);
    }

    #[test]
    fn serviced_page_requests_populate_the_pri_occupancy_timeline() {
        let mut iommu = Iommu::new(IommuConfig {
            demand_paging: true,
            ..IommuConfig::default()
        });
        // Two overlapping service windows and one later, disjoint one.
        iommu.note_page_request_serviced(Cycles::new(100), Cycles::new(500));
        iommu.note_page_request_serviced(Cycles::new(200), Cycles::new(400));
        iommu.note_page_request_serviced(Cycles::new(900), Cycles::new(1_000));
        assert_eq!(iommu.page_requests_in_flight_at(Cycles::new(300)), 2);
        assert_eq!(iommu.page_requests_in_flight_at(Cycles::new(450)), 1);
        assert_eq!(iommu.page_requests_in_flight_at(Cycles::new(600)), 0);
        assert_eq!(iommu.page_requests_in_flight_at(Cycles::new(950)), 1);
        let s = iommu.stats();
        assert_eq!(s.page_requests.serviced, 3);
        assert_eq!(s.page_request_peak_in_flight, 2);
        let mean = s.page_requests.service_time.mean();
        assert!((mean - (400.0 + 200.0 + 100.0) / 3.0).abs() < 1e-9);
        iommu.reset_stats();
        assert_eq!(iommu.page_requests_in_flight_at(Cycles::new(300)), 0);
        assert_eq!(iommu.stats().page_request_peak_in_flight, 0);
    }

    #[test]
    fn demand_paging_faults_bypass_the_fault_queue() {
        let (mut mem, mut frames, space, _) = setup();
        let mut iommu = Iommu::new(IommuConfig {
            demand_paging: true,
            ..IommuConfig::default()
        });
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        assert!(iommu
            .translate(&mut mem, 1, Iova::new(0x7F00_0000), false)
            .is_err());
        assert_eq!(
            iommu.pending_faults(),
            0,
            "recoverable faults are reported through the page-request path"
        );
    }

    #[test]
    fn ddtp_register_reflects_attachment() {
        let (mut mem, mut frames, space, _) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let (base, mode) = iommu.regs().ddtp();
        assert_eq!(base, iommu.ddt().unwrap().base());
        assert_eq!(mode, DDTP_MODE_1LVL);
    }
}
