//! The top-level IOMMU model.
//!
//! [`Iommu::translate`] is the single entry point the cluster DMA engine
//! uses: it runs the device-context lookup, the IOTLB lookup and, on a miss,
//! the page-table walk, and returns the physical address together with the
//! number of cycles the translation added to the transaction.

use serde::{Deserialize, Serialize};
use sva_common::stats::{HitMiss, RunningStats};
use sva_common::{Cycles, Error, Iova, PhysAddr, Result};
use sva_mem::MemorySystem;
use sva_vm::FrameAllocator;

use crate::ddt::{DeviceContext, DeviceDirectory};
use crate::iotlb::IoTlb;
use crate::ptw::PageTableWalker;
use crate::queues::{BoundedQueue, Command, FaultReason, FaultRecord};
use crate::regs::{RegisterFile, DDTP_MODE_1LVL};

/// Operating mode of the IOMMU instance.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IommuMode {
    /// The IOMMU is not instantiated: device addresses are used as physical
    /// bus addresses unchanged and translation costs nothing. This is the
    /// paper's *Baseline* configuration.
    Disabled,
    /// The IOMMU is present but the device context requests pass-through
    /// (used for instruction fetches from the physically addressed L2).
    Bypass,
    /// Full first-stage (Sv39) translation — the paper's *IOMMU* and
    /// *IOMMU + LLC* configurations.
    Translating,
}

/// Configuration of the IOMMU model.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IommuConfig {
    /// Operating mode.
    pub mode: IommuMode,
    /// Number of IOTLB entries (the prototype uses 4).
    pub iotlb_entries: usize,
    /// Latency of an IOTLB lookup (hit or miss detection).
    pub iotlb_hit_latency: Cycles,
    /// Fixed pipeline latency added to every translated transaction.
    pub pipeline_latency: Cycles,
    /// Capacity of the fault queue.
    pub fault_queue_entries: usize,
    /// Enables the MSHR-style batched page-table walker: concurrent walks
    /// that need a PTE read already in flight coalesce onto it instead of
    /// issuing their own (see [`crate::ptw`]). Off by default — the serial
    /// walker is the paper's prototype.
    pub ptw_batching: bool,
    /// Capacity of the batched walker's walk table (in-flight PTE reads);
    /// ignored with batching off.
    pub ptw_mshr_entries: usize,
}

impl Default for IommuConfig {
    fn default() -> Self {
        Self {
            mode: IommuMode::Translating,
            iotlb_entries: 4,
            iotlb_hit_latency: Cycles::new(2),
            pipeline_latency: Cycles::new(2),
            fault_queue_entries: 64,
            ptw_batching: false,
            ptw_mshr_entries: crate::ptw::DEFAULT_MSHR_ENTRIES,
        }
    }
}

impl IommuConfig {
    /// Configuration of the paper's baseline platform (no IOMMU).
    pub fn disabled() -> Self {
        Self {
            mode: IommuMode::Disabled,
            ..Self::default()
        }
    }
}

/// Snapshot of the IOMMU's statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IommuStats {
    /// Translation requests served (including bypassed ones).
    pub translations: u64,
    /// Requests that bypassed translation.
    pub bypassed: u64,
    /// IOTLB hit/miss counts.
    pub iotlb: HitMiss,
    /// Device-context cache hit/miss counts.
    pub dc_cache: HitMiss,
    /// Number of page-table walks performed.
    pub ptw_walks: u64,
    /// Number of walks that faulted.
    pub ptw_faults: u64,
    /// PTE reads the walker issued to memory.
    pub ptw_reads: u64,
    /// Walk levels served by MSHR coalescing instead of a memory read
    /// (always zero with batching off).
    pub ptw_coalesced_reads: u64,
    /// Per-walk latency statistics (Figure 5 reports the mean).
    pub ptw_time: RunningStats,
    /// Total cycles spent translating (IOTLB + DDT + PTW + pipeline).
    pub translation_cycles: u64,
}

/// The RISC-V IOMMU.
#[derive(Clone, Debug)]
pub struct Iommu {
    config: IommuConfig,
    regs: RegisterFile,
    ddt: Option<DeviceDirectory>,
    iotlb: IoTlb,
    ptw: PageTableWalker,
    commands: BoundedQueue<Command>,
    faults: BoundedQueue<FaultRecord>,
    translations: u64,
    bypassed: u64,
    translation_cycles: u64,
}

impl Iommu {
    /// Creates an IOMMU in the given configuration.
    pub fn new(config: IommuConfig) -> Self {
        Self {
            regs: RegisterFile::new(),
            ddt: None,
            iotlb: IoTlb::new(config.iotlb_entries),
            ptw: if config.ptw_batching {
                PageTableWalker::with_batching(config.ptw_mshr_entries)
            } else {
                PageTableWalker::new()
            },
            commands: BoundedQueue::new(64),
            faults: BoundedQueue::new(config.fault_queue_entries),
            translations: 0,
            bypassed: 0,
            translation_cycles: 0,
            config,
        }
    }

    /// The configuration of this instance.
    pub const fn config(&self) -> &IommuConfig {
        &self.config
    }

    /// The operating mode.
    pub const fn mode(&self) -> IommuMode {
        self.config.mode
    }

    /// Returns `true` when the IOMMU performs first-stage translation.
    pub const fn is_translating(&self) -> bool {
        matches!(self.config.mode, IommuMode::Translating)
    }

    /// The memory-mapped register file (as programmed by the driver).
    pub const fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// Mutable access to the register file for the driver model.
    pub fn regs_mut(&mut self) -> &mut RegisterFile {
        &mut self.regs
    }

    /// The device directory, if one has been programmed.
    pub fn ddt(&self) -> Option<&DeviceDirectory> {
        self.ddt.as_ref()
    }

    /// Convenience setup used by the driver model and examples: allocates a
    /// device directory (if none exists), installs a translating device
    /// context for `device_id` pointing at `root_pt`, and programs `ddtp`.
    ///
    /// # Errors
    ///
    /// Returns allocation or directory errors.
    pub fn attach_device(
        &mut self,
        mem: &mut MemorySystem,
        frames: &mut FrameAllocator,
        device_id: u32,
        pscid: u32,
        root_pt: PhysAddr,
    ) -> Result<()> {
        if self.ddt.is_none() {
            self.ddt = Some(DeviceDirectory::create(frames)?);
        }
        let ddt = self.ddt.as_mut().expect("directory just created");
        ddt.install(mem, device_id, DeviceContext::translating(pscid, root_pt))?;
        self.regs.set_ddtp(ddt.base(), DDTP_MODE_1LVL);
        Ok(())
    }

    /// Installs a bypass device context for `device_id` (used for the
    /// instruction-fetch device ID in the paper's platform).
    ///
    /// # Errors
    ///
    /// Returns allocation or directory errors.
    pub fn attach_bypass_device(
        &mut self,
        mem: &mut MemorySystem,
        frames: &mut FrameAllocator,
        device_id: u32,
    ) -> Result<()> {
        if self.ddt.is_none() {
            self.ddt = Some(DeviceDirectory::create(frames)?);
        }
        let ddt = self.ddt.as_mut().expect("directory just created");
        ddt.install(mem, device_id, DeviceContext::bypassing())?;
        self.regs.set_ddtp(ddt.base(), DDTP_MODE_1LVL);
        Ok(())
    }

    /// Processes one driver command (invalidations and fences).
    pub fn process_command(&mut self, command: Command) {
        self.commands.push(command);
        match command {
            Command::IotlbInvalidate { device_id, iova } => {
                match (device_id, iova) {
                    (Some(d), Some(a)) => self.iotlb.invalidate_page(d, a),
                    (Some(d), None) => self.iotlb.invalidate_device(d),
                    _ => self.iotlb.invalidate_all(),
                }
                // The page tables may have changed: in-flight walk-table
                // registers must not serve pre-invalidation PTE values.
                self.ptw.invalidate_walk_table();
            }
            Command::DdtInvalidate => {
                if let Some(ddt) = &mut self.ddt {
                    ddt.invalidate_cache();
                }
                self.ptw.invalidate_walk_table();
            }
            Command::Fence => {}
        }
    }

    /// Translates an IO virtual address for `device_id`, with the request
    /// arriving at the memory system's current global-clock reading.
    ///
    /// Returns the physical address and the cycles the translation added to
    /// the transaction (zero when the IOMMU is disabled). Initiators that
    /// track their own pipeline time should use [`Iommu::translate_at`] so
    /// page-table walks land at the right point on the fabric timelines.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IoPageFault`] or [`Error::UnknownDevice`] on
    /// translation failure; a corresponding record is pushed to the fault
    /// queue.
    pub fn translate(
        &mut self,
        mem: &mut MemorySystem,
        device_id: u32,
        iova: Iova,
        is_write: bool,
    ) -> Result<(PhysAddr, Cycles)> {
        let now = mem.clock().now();
        self.translate_at(mem, device_id, iova, is_write, now)
    }

    /// Translates an IO virtual address for `device_id`, with the request
    /// arriving at global-clock cycle `now` (the issue time of the DMA burst
    /// presenting it). On an IOTLB miss the page-table walk is issued at
    /// `now` plus the lookup latencies, so its per-level reads are
    /// timestamped and contend on the memory fabric.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IoPageFault`] or [`Error::UnknownDevice`] on
    /// translation failure; a corresponding record is pushed to the fault
    /// queue.
    pub fn translate_at(
        &mut self,
        mem: &mut MemorySystem,
        device_id: u32,
        iova: Iova,
        is_write: bool,
        now: Cycles,
    ) -> Result<(PhysAddr, Cycles)> {
        self.translations += 1;
        match self.config.mode {
            IommuMode::Disabled => {
                self.bypassed += 1;
                Ok((PhysAddr::new(iova.raw()), Cycles::ZERO))
            }
            IommuMode::Bypass => {
                self.bypassed += 1;
                Ok((PhysAddr::new(iova.raw()), self.config.pipeline_latency))
            }
            IommuMode::Translating => {
                let result = self.translate_first_stage(mem, device_id, iova, is_write, now);
                if let Ok((_, cycles)) = &result {
                    self.translation_cycles += cycles.raw();
                }
                result
            }
        }
    }

    /// Untimed, side-effect-free translation for functional inspection of
    /// device-visible memory (no IOTLB fill, no statistics, no fault
    /// records): resolves the device context straight from the in-memory
    /// directory and walks the page table with functional reads. This is
    /// what a DMA core's address-generation pre-pass (e.g. the sort
    /// kernel's merge-path binary search) uses to peek at DRAM-resident
    /// data without disturbing the timing model.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IoPageFault`] for unmapped addresses and
    /// [`Error::UnknownDevice`] for devices without a valid context.
    pub fn probe_translation(
        &self,
        mem: &MemorySystem,
        device_id: u32,
        iova: Iova,
    ) -> Result<PhysAddr> {
        match self.config.mode {
            IommuMode::Disabled | IommuMode::Bypass => Ok(PhysAddr::new(iova.raw())),
            IommuMode::Translating => {
                let Some(ddt) = self.ddt.as_ref() else {
                    return Err(Error::UnknownDevice { device_id });
                };
                let ctx = ddt.peek(mem, device_id)?;
                if ctx.bypass {
                    return Ok(PhysAddr::new(iova.raw()));
                }
                let va = sva_common::VirtAddr::from_iova(iova);
                let table = sva_vm::PageTable::from_root(ctx.root_pt);
                match table.translate(mem, va) {
                    Ok(pa) => Ok(pa),
                    Err(Error::HostPageFault { .. }) => Err(Error::IoPageFault {
                        iova,
                        is_write: false,
                    }),
                    Err(e) => Err(e),
                }
            }
        }
    }

    fn translate_first_stage(
        &mut self,
        mem: &mut MemorySystem,
        device_id: u32,
        iova: Iova,
        is_write: bool,
        now: Cycles,
    ) -> Result<(PhysAddr, Cycles)> {
        let mut cycles = self.config.pipeline_latency;

        // 1. Device context.
        let Some(ddt) = self.ddt.as_mut() else {
            self.faults.push(FaultRecord {
                device_id,
                iova,
                is_write,
                reason: FaultReason::DeviceNotConfigured,
            });
            return Err(Error::UnknownDevice { device_id });
        };
        let (ctx, dc_cycles) = match ddt.lookup(mem, device_id, now) {
            Ok(r) => r,
            Err(e) => {
                self.faults.push(FaultRecord {
                    device_id,
                    iova,
                    is_write,
                    reason: FaultReason::DeviceNotConfigured,
                });
                return Err(e);
            }
        };
        cycles += dc_cycles;
        if ctx.bypass {
            self.bypassed += 1;
            return Ok((PhysAddr::new(iova.raw()), cycles));
        }

        // 2. IOTLB.
        cycles += self.config.iotlb_hit_latency;
        if let Some(entry) = self.iotlb.lookup(device_id, iova) {
            if entry.flags.contains(sva_vm::PteFlags::W) || !is_write {
                return Ok((entry.translate(iova), cycles));
            }
            // Cached entry does not permit the access: fall through to a
            // fresh walk so the fault is reported with up-to-date state.
        }

        // 3. Page-table walk, issued at the request's arrival plus the
        // pipeline/DDT/IOTLB latencies already accumulated.
        match self
            .ptw
            .walk_at(mem, ctx.root_pt, iova, is_write, now + cycles)
        {
            Ok(res) => {
                cycles += res.cycles;
                self.iotlb
                    .fill(device_id, iova, res.leaf.ppn(), res.leaf.flags());
                Ok((res.leaf.phys_addr() + iova.page_offset(), cycles))
            }
            Err(e) => {
                let reason = match &e {
                    Error::IoPageFault { .. } => FaultReason::PageNotMapped,
                    _ => FaultReason::DeviceNotConfigured,
                };
                self.faults.push(FaultRecord {
                    device_id,
                    iova,
                    is_write,
                    reason,
                });
                Err(e)
            }
        }
    }

    /// Oldest unread fault, if any.
    pub fn pop_fault(&mut self) -> Option<FaultRecord> {
        self.faults.pop()
    }

    /// Number of pending fault records.
    pub fn pending_faults(&self) -> usize {
        self.faults.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> IommuStats {
        IommuStats {
            translations: self.translations,
            bypassed: self.bypassed,
            iotlb: self.iotlb.stats(),
            dc_cache: self
                .ddt
                .as_ref()
                .map(|d| d.cache_stats())
                .unwrap_or_default(),
            ptw_walks: self.ptw.walks(),
            ptw_faults: self.ptw.faults(),
            ptw_reads: self.ptw.pte_reads(),
            ptw_coalesced_reads: self.ptw.coalesced_reads(),
            ptw_time: self.ptw.walk_time(),
            translation_cycles: self.translation_cycles,
        }
    }

    /// Direct access to the IOTLB (for ablation experiments and tests).
    pub const fn iotlb(&self) -> &IoTlb {
        &self.iotlb
    }

    /// Per-device IOTLB hit/miss statistics, ordered by device ID. Devices
    /// that never presented a translation are absent.
    pub fn device_iotlb_stats(&self) -> &[(u32, sva_common::stats::HitMiss)] {
        self.iotlb.per_device_stats()
    }

    /// Device IDs with an installed device context, in ascending order
    /// (empty when no directory has been programmed).
    pub fn attached_devices(&self) -> &[u32] {
        self.ddt.as_ref().map(|d| d.device_ids()).unwrap_or(&[])
    }

    /// Clears all statistics; cached state (IOTLB, DC cache) is preserved.
    pub fn reset_stats(&mut self) {
        self.iotlb.reset_stats();
        self.ptw.reset_stats();
        self.translations = 0;
        self.bypassed = 0;
        self.translation_cycles = 0;
    }
}

impl Default for Iommu {
    fn default() -> Self {
        Self::new(IommuConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::{VirtAddr, PAGE_SIZE};
    use sva_vm::AddressSpace;

    fn setup() -> (MemorySystem, FrameAllocator, AddressSpace, VirtAddr) {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
        let va = space
            .alloc_buffer(&mut mem, &mut frames, 8 * PAGE_SIZE)
            .unwrap();
        (mem, frames, space, va)
    }

    #[test]
    fn disabled_mode_is_identity_and_free() {
        let mut mem = MemorySystem::default();
        let mut iommu = Iommu::new(IommuConfig::disabled());
        let (pa, cycles) = iommu
            .translate(&mut mem, 1, Iova::new(0x8000_1234), true)
            .unwrap();
        assert_eq!(pa, PhysAddr::new(0x8000_1234));
        assert_eq!(cycles, Cycles::ZERO);
        assert_eq!(iommu.stats().bypassed, 1);
    }

    #[test]
    fn translating_mode_matches_software_walk() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        for page in 0..8u64 {
            let iova = Iova::from_virt(va + page * PAGE_SIZE + 16);
            let (pa, _) = iommu.translate(&mut mem, 1, iova, false).unwrap();
            assert_eq!(
                pa,
                space.translate(&mem, va + page * PAGE_SIZE + 16).unwrap()
            );
        }
    }

    #[test]
    fn iotlb_miss_costs_more_than_hit() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let iova = Iova::from_virt(va);
        let (_, miss_cycles) = iommu.translate(&mut mem, 1, iova, false).unwrap();
        let (_, hit_cycles) = iommu.translate(&mut mem, 1, iova + 64, false).unwrap();
        assert!(
            miss_cycles.raw() > 10 * hit_cycles.raw(),
            "miss {miss_cycles} should dwarf hit {hit_cycles}"
        );
        let stats = iommu.stats();
        assert_eq!(stats.iotlb.misses, 1);
        assert_eq!(stats.iotlb.hits, 1);
        assert_eq!(stats.ptw_walks, 1);
    }

    #[test]
    fn unmapped_iova_faults_and_is_recorded() {
        let (mut mem, mut frames, space, _) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let bad = Iova::new(0x7FFF_0000);
        assert!(matches!(
            iommu.translate(&mut mem, 1, bad, true),
            Err(Error::IoPageFault { .. })
        ));
        assert_eq!(iommu.pending_faults(), 1);
        let fault = iommu.pop_fault().unwrap();
        assert_eq!(fault.iova, bad);
        assert_eq!(fault.reason, FaultReason::PageNotMapped);
        assert!(fault.is_write);
    }

    #[test]
    fn unknown_device_faults() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        assert!(matches!(
            iommu.translate(&mut mem, 9, Iova::from_virt(va), false),
            Err(Error::UnknownDevice { device_id: 9 })
        ));
        assert_eq!(iommu.pending_faults(), 1);
    }

    #[test]
    fn bypass_device_context_skips_translation() {
        let (mut mem, mut frames, _space, _) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_bypass_device(&mut mem, &mut frames, 2)
            .unwrap();
        let addr = Iova::new(0x7800_0000);
        let (pa, _) = iommu.translate(&mut mem, 2, addr, false).unwrap();
        assert_eq!(pa, PhysAddr::new(addr.raw()));
        assert_eq!(iommu.stats().bypassed, 1);
    }

    #[test]
    fn invalidation_forces_new_walks() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let iova = Iova::from_virt(va);
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        assert_eq!(iommu.stats().ptw_walks, 1);
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        assert_eq!(iommu.stats().ptw_walks, 1);

        iommu.process_command(Command::IotlbInvalidate {
            device_id: None,
            iova: None,
        });
        iommu.translate(&mut mem, 1, iova, false).unwrap();
        assert_eq!(iommu.stats().ptw_walks, 2);
    }

    #[test]
    fn small_iotlb_thrashes_on_wide_strides() {
        let (mut mem, mut frames, space, va) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        // Touch 8 distinct pages twice; with only 4 IOTLB entries the second
        // sweep misses again.
        for _ in 0..2 {
            for page in 0..8u64 {
                let iova = Iova::from_virt(va + page * PAGE_SIZE);
                iommu.translate(&mut mem, 1, iova, false).unwrap();
            }
        }
        let stats = iommu.stats();
        assert_eq!(stats.iotlb.misses, 16);
        assert_eq!(stats.iotlb.hits, 0);
    }

    #[test]
    fn ddtp_register_reflects_attachment() {
        let (mut mem, mut frames, space, _) = setup();
        let mut iommu = Iommu::default();
        iommu
            .attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root())
            .unwrap();
        let (base, mode) = iommu.regs().ddtp();
        assert_eq!(base, iommu.ddt().unwrap().base());
        assert_eq!(mode, DDTP_MODE_1LVL);
    }
}
