//! The memory-mapped register file of the IOMMU.
//!
//! The driver programs the IOMMU through a small set of memory-mapped
//! registers defined by the RISC-V IOMMU specification. The model implements
//! the registers the Linux driver actually touches when bringing the IOMMU
//! up in first-stage (Sv39) mode: `capabilities`, `fctl`, `ddtp` and the
//! queue base/head/tail registers. Reads and writes are functional; the
//! per-access bus timing is accounted by the driver model, which accesses the
//! register window through the host path.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sva_common::{Error, PhysAddr, Result};

/// Byte offsets of the architectural registers (RISC-V IOMMU spec v1.0,
/// chapter 5).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u64)]
#[allow(missing_docs)]
pub enum RegOffset {
    Capabilities = 0x00,
    Fctl = 0x08,
    Ddtp = 0x10,
    Cqb = 0x18,
    Cqh = 0x20,
    Cqt = 0x24,
    Fqb = 0x28,
    Fqh = 0x30,
    Fqt = 0x34,
    Cqcsr = 0x48,
    Fqcsr = 0x4C,
    Ipsr = 0x54,
}

impl RegOffset {
    /// All modelled registers.
    pub const ALL: [RegOffset; 12] = [
        RegOffset::Capabilities,
        RegOffset::Fctl,
        RegOffset::Ddtp,
        RegOffset::Cqb,
        RegOffset::Cqh,
        RegOffset::Cqt,
        RegOffset::Fqb,
        RegOffset::Fqh,
        RegOffset::Fqt,
        RegOffset::Cqcsr,
        RegOffset::Fqcsr,
        RegOffset::Ipsr,
    ];

    /// Looks up a register by its byte offset in the register window.
    pub fn from_offset(offset: u64) -> Option<RegOffset> {
        RegOffset::ALL.into_iter().find(|r| *r as u64 == offset)
    }
}

/// Capability bits advertised by the model (matching the open-source IP
/// configuration used in the paper: Sv39 first-stage, no MSI translation).
pub const CAPABILITIES: u64 = (1 << 9)   // Sv39 support
    | (1 << 38)                          // end-to-end ATS not supported -> 0, keep AMO bit space
    | 0x10; // version 1.0 in the low byte

/// DDTP mode field: one-level device directory table.
pub const DDTP_MODE_1LVL: u64 = 2;

/// The register file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegisterFile {
    regs: BTreeMap<u64, u64>,
}

impl RegisterFile {
    /// Creates a register file in its reset state.
    pub fn new() -> Self {
        let mut regs = BTreeMap::new();
        regs.insert(RegOffset::Capabilities as u64, CAPABILITIES);
        for r in RegOffset::ALL {
            regs.entry(r as u64).or_insert(0);
        }
        Self { regs }
    }

    /// Reads a 64-bit register by offset.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BusDecodeError`] for an offset that is not a modelled
    /// register.
    pub fn read(&self, offset: u64) -> Result<u64> {
        self.regs
            .get(&offset)
            .copied()
            .ok_or(Error::BusDecodeError {
                addr: PhysAddr::new(offset),
            })
    }

    /// Writes a 64-bit register by offset. Writes to `capabilities` are
    /// ignored (read-only), as in hardware.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BusDecodeError`] for an offset that is not a modelled
    /// register.
    pub fn write(&mut self, offset: u64, value: u64) -> Result<()> {
        if !self.regs.contains_key(&offset) {
            return Err(Error::BusDecodeError {
                addr: PhysAddr::new(offset),
            });
        }
        if offset == RegOffset::Capabilities as u64 {
            return Ok(());
        }
        self.regs.insert(offset, value);
        Ok(())
    }

    /// Convenience accessor for the `ddtp` register: programmed directory
    /// base and mode.
    pub fn ddtp(&self) -> (PhysAddr, u64) {
        let v = self.regs[&(RegOffset::Ddtp as u64)];
        (PhysAddr::new((v >> 10) << 12), v & 0xF)
    }

    /// Programs `ddtp` from a directory base address and mode.
    pub fn set_ddtp(&mut self, base: PhysAddr, mode: u64) {
        let v = ((base.raw() >> 12) << 10) | (mode & 0xF);
        self.regs.insert(RegOffset::Ddtp as u64, v);
    }
}

impl Default for RegisterFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_advertises_capabilities() {
        let rf = RegisterFile::new();
        assert_eq!(
            rf.read(RegOffset::Capabilities as u64).unwrap(),
            CAPABILITIES
        );
        assert_eq!(rf.read(RegOffset::Ddtp as u64).unwrap(), 0);
    }

    #[test]
    fn capabilities_are_read_only() {
        let mut rf = RegisterFile::new();
        rf.write(RegOffset::Capabilities as u64, 0).unwrap();
        assert_eq!(
            rf.read(RegOffset::Capabilities as u64).unwrap(),
            CAPABILITIES
        );
    }

    #[test]
    fn ddtp_roundtrip() {
        let mut rf = RegisterFile::new();
        let base = PhysAddr::new(0x8012_3000);
        rf.set_ddtp(base, DDTP_MODE_1LVL);
        let (b, mode) = rf.ddtp();
        assert_eq!(b, base);
        assert_eq!(mode, DDTP_MODE_1LVL);
    }

    #[test]
    fn unknown_offset_is_a_decode_error() {
        let mut rf = RegisterFile::new();
        assert!(rf.read(0x1000).is_err());
        assert!(rf.write(0x1000, 1).is_err());
        assert!(RegOffset::from_offset(0x10).is_some());
        assert!(RegOffset::from_offset(0xFFF).is_none());
    }
}
