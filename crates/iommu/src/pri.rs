//! The ATS/PRI-style page-request interface.
//!
//! With demand paging enabled (`IommuConfig::demand_paging`), an IO page
//! fault is no longer a terminal error: the faulting device issues a
//! **page-request group** — the faulting page plus the remaining pages of
//! the transfer it is about to touch — into the IOMMU's bounded
//! page-request queue, stalls, and retries once the host driver has made
//! the pages resident. The pieces of that loop are split across the
//! workspace the same way the real stack is:
//!
//! * the **queue** and its overflow accounting live on the [`crate::Iommu`]
//!   (a [`crate::queues::BoundedQueue`] of [`crate::queues::PageRequest`]s;
//!   a full queue drops the request, which the device answers with retry
//!   backoff);
//! * the **host side** is abstracted as the [`PageRequestHandler`] trait
//!   defined here. `sva_host::driver::FaultServicer` implements it: it
//!   drains the queue, maps each page into the device's IO page table —
//!   touching the page-table memory through the **timed** memory system as
//!   host-initiated fabric traffic — and answers with one **group
//!   response** whose completion time the device resumes at;
//! * the **device side** is the DMA engine's stall-and-retry loop
//!   (`sva_cluster::dma`), which charges the whole fault round trip into
//!   its issue pipeline.
//!
//! Per-request service latency (request issue → group response) is
//! accumulated on the IOMMU ([`PageRequestStats`]) and surfaced through
//! `IommuStats`, including approximate percentiles from a latency
//! histogram.

use serde::{Deserialize, Serialize};
use sva_common::stats::RunningStats;
use sva_common::{Cycles, Result};
use sva_mem::MemorySystem;

use crate::iommu::Iommu;

/// Host-side servicing of the IOMMU's page-request queue.
///
/// Implementors model the host driver's IO-page-fault handler. A call must
/// drain the queue completely and answer with a single group response; the
/// returned cycle is the global-clock time at which that response reaches
/// the device, i.e. the earliest time a faulting DMA engine may retry.
pub trait PageRequestHandler {
    /// Services every pending page request, starting at global-clock cycle
    /// `now` (the faulting device's current time).
    ///
    /// # Errors
    ///
    /// Propagates memory-system failures; an *unresolvable* request (the
    /// host itself has no mapping for the page) is not an error — it is
    /// marked failed on the IOMMU and the device's bounded retry loop turns
    /// it into the terminal [`sva_common::Error::IoPageFault`].
    fn service(&mut self, mem: &mut MemorySystem, iommu: &mut Iommu, now: Cycles)
        -> Result<Cycles>;
}

/// Accounting of the page-request path, kept by the [`Iommu`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PageRequestStats {
    /// Page requests accepted into the queue.
    pub requests: u64,
    /// Page requests dropped at the full queue (the device backs off and
    /// re-faults).
    pub dropped: u64,
    /// Group responses the host produced.
    pub group_responses: u64,
    /// Requests resolved by mapping the page.
    pub serviced: u64,
    /// Requests the host could not resolve (no backing host mapping).
    pub failed: u64,
    /// Per-request service latency: request issue → group-response
    /// completion.
    pub service_time: RunningStats,
}
