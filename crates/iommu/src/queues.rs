//! IOMMU command, fault and page-request queues.
//!
//! The RISC-V IOMMU is programmed through in-memory circular queues: the
//! **command queue**, through which the driver issues invalidation and fence
//! commands, the **fault queue**, through which the IOMMU reports IO page
//! faults back to the driver, and — when demand paging is enabled — the
//! **page-request queue** (the ATS/PRI model), through which a device asks
//! the host to make pages resident instead of aborting on a translation
//! fault. The model keeps all of them as bounded FIFOs with the same
//! command vocabulary as the specification; a full queue **drops** the
//! entry and counts the drop ([`BoundedQueue::dropped`]), which is exactly
//! the overflow behaviour the specification defines (and, for the
//! page-request queue, what forces the requesting device into retry
//! backoff).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sva_common::{Cycles, Iova};

/// Commands accepted by the IOMMU command queue (the subset used by the
/// Linux driver for first-stage translation).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// `IOTINVAL.VMA` — invalidate IOTLB entries. `None` fields mean
    /// "all" (global invalidation).
    IotlbInvalidate {
        /// Restrict the invalidation to one device's address space.
        device_id: Option<u32>,
        /// Restrict the invalidation to one page.
        iova: Option<Iova>,
    },
    /// `IODIR.INVAL_DDT` — invalidate the device-context cache.
    DdtInvalidate,
    /// `IOFENCE.C` — completion fence; the driver waits for it before
    /// considering previous commands globally visible.
    Fence,
}

/// Why a fault was recorded.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultReason {
    /// No valid leaf PTE for the IOVA.
    PageNotMapped,
    /// Leaf PTE present but the access type is not permitted.
    PermissionDenied,
    /// The device has no valid device context.
    DeviceNotConfigured,
}

/// One record in the fault queue.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Device that caused the fault.
    pub device_id: u32,
    /// Faulting IO virtual address.
    pub iova: Iova,
    /// Whether the faulting access was a write.
    pub is_write: bool,
    /// Classification of the fault.
    pub reason: FaultReason,
}

/// One entry in the page-request queue: a device asking the host to make a
/// page resident (the ATS/PRI "Page Request" message). The faulting DMA
/// engine enqueues a **group** of these — the faulting page plus the rest
/// of the transfer it is about to touch — then stalls until the host's
/// group response (see `crate::pri`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageRequest {
    /// Device that needs the page.
    pub device_id: u32,
    /// Faulting IO virtual address (the page base is what gets mapped).
    pub iova: Iova,
    /// Whether the blocked access is a write.
    pub is_write: bool,
    /// Global-clock cycle the device issued the request; the difference to
    /// the group response's completion is the request's service latency.
    pub issued_at: Cycles,
}

/// A bounded FIFO used for all three queues.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BoundedQueue<T> {
    entries: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an entry; if the queue is full the entry is **dropped** and
    /// the drop counter incremented (matching the IOMMU's queue-overflow
    /// behaviour). Callers must not ignore the `false` return when the
    /// entry carries state the producer needs delivered — the `Iommu`
    /// surfaces the counters through its statistics so lost records are
    /// always observable.
    pub fn push(&mut self, entry: T) -> bool {
        if self.entries.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.entries.push_back(entry);
        true
    }

    /// Removes and returns the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.entries.pop_front()
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of entries the queue can hold.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns `true` if the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries dropped because the queue was full.
    pub const fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Alias for [`BoundedQueue::dropped`], matching the specification's
    /// "queue overflow" wording.
    pub const fn overflows(&self) -> u64 {
        self.dropped
    }

    /// Resets the drop counter (a statistics reset; entries are preserved).
    pub fn reset_dropped(&mut self) {
        self.dropped = 0;
    }

    /// Iterates over queued entries from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert!(q.is_empty());
        for i in 0..3 {
            assert!(q.push(i));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.overflows(), 1);
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        q.reset_dropped();
        assert_eq!(q.dropped(), 0);
        assert_eq!(q.len(), 2, "resetting the counter keeps the entries");
    }

    #[test]
    fn command_and_fault_types_are_constructible() {
        let cmd = Command::IotlbInvalidate {
            device_id: Some(1),
            iova: None,
        };
        assert_ne!(cmd, Command::Fence);
        let fault = FaultRecord {
            device_id: 1,
            iova: Iova::new(0x1000),
            is_write: true,
            reason: FaultReason::PageNotMapped,
        };
        assert_eq!(fault.reason, FaultReason::PageNotMapped);
    }
}
