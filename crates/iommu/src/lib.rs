//! Model of the RISC-V IOMMU (specification v1.0) as integrated in the
//! prototype platform.
//!
//! The IOMMU sits between the Snitch cluster and the system crossbar
//! (Figure 1 of the paper) and translates every DMA access from IO virtual
//! addresses to physical addresses. The model follows the structure of the
//! open-source IP the paper integrates:
//!
//! * a **device directory table** (DDT) in memory mapping device IDs to
//!   device contexts, with a single-entry device-context cache
//!   ([`ddt`]);
//! * a **4-entry, fully-associative IOTLB** with LRU replacement
//!   ([`iotlb`]);
//! * a **page-table walker** issuing up to three dependent reads through its
//!   dedicated AXI master port for each IOTLB miss ([`ptw`]);
//! * **command and fault queues** for invalidations and IO page faults
//!   ([`queues`]);
//! * a memory-mapped **register file** the driver programs ([`regs`]).
//!
//! The top-level [`Iommu`] type wires these together behind the
//! [`Iommu::translate`] entry point used by the cluster DMA engine.
//!
//! # Example
//!
//! ```
//! use sva_common::{Iova, PhysAddr, VirtAddr, PAGE_SIZE};
//! use sva_iommu::{Iommu, IommuConfig};
//! use sva_mem::MemorySystem;
//! use sva_vm::{AddressSpace, FrameAllocator};
//!
//! let mut mem = MemorySystem::default();
//! let mut frames = FrameAllocator::linux_pool();
//! let mut space = AddressSpace::new(&mut mem, &mut frames).unwrap();
//! let va = space.alloc_buffer(&mut mem, &mut frames, PAGE_SIZE).unwrap();
//!
//! let mut iommu = Iommu::new(IommuConfig::default());
//! iommu.attach_device(&mut mem, &mut frames, 1, space.pscid(), space.root()).unwrap();
//!
//! let iova = Iova::from_virt(va);
//! let (pa, _cycles) = iommu.translate(&mut mem, 1, iova, false).unwrap();
//! assert_eq!(pa, space.translate(&mem, va).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ddt;
pub mod iommu;
pub mod iotlb;
pub mod pri;
pub mod ptw;
pub mod queues;
pub mod regs;

pub use ddt::{DeviceContext, DeviceDirectory};
pub use iommu::{Iommu, IommuConfig, IommuMode, IommuStats, TlbHierarchyConfig, TlbLevelConfig};
pub use iotlb::{IoTlb, IoTlbEntry};
pub use pri::{PageRequestHandler, PageRequestStats};
pub use ptw::{NaiveWalkTable, PageTableWalker, PtwResult, WalkTable};
pub use queues::{BoundedQueue, Command, FaultReason, FaultRecord, PageRequest};
pub use regs::RegisterFile;
