//! The device directory table (DDT) and device contexts.
//!
//! The RISC-V IOMMU locates per-device translation state through an in-memory
//! device directory indexed by the device ID presented on the bus. Each
//! device context holds the first-stage context (the root of the Sv39 page
//! table shared with the host process), the process ID (PSCID) and control
//! bits. The prototype uses a single-level DDT and caches **one** device
//! context inside the IOMMU — enough for the one (device, process) pair of
//! the evaluation — so only the first translation after an invalidation pays
//! the directory walk.

use serde::{Deserialize, Serialize};
use sva_common::stats::HitMiss;
use sva_common::{Cycles, Error, InitiatorId, PhysAddr, Result, PAGE_SHIFT};
use sva_mem::{MemReq, MemorySystem};
use sva_vm::FrameAllocator;

/// Size of one device-context slot in the directory, in bytes.
pub const DEVICE_CONTEXT_BYTES: u64 = 64;

/// A decoded device context.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceContext {
    /// Valid bit of the context.
    pub valid: bool,
    /// If set, translation is bypassed for this device (used for the
    /// instruction-fetch device ID in the paper's platform).
    pub bypass: bool,
    /// Process soft-context ID (PSCID) of the owning process.
    pub pscid: u32,
    /// Physical address of the root page table (first-stage context).
    pub root_pt: PhysAddr,
}

impl DeviceContext {
    /// An invalid (empty) context.
    pub const fn invalid() -> Self {
        Self {
            valid: false,
            bypass: false,
            pscid: 0,
            root_pt: PhysAddr::zero(),
        }
    }

    /// Creates a translating context for a process page table.
    pub const fn translating(pscid: u32, root_pt: PhysAddr) -> Self {
        Self {
            valid: true,
            bypass: false,
            pscid,
            root_pt,
        }
    }

    /// Creates a bypass context (no translation, e.g. for instruction
    /// fetches from the physically addressed L2).
    pub const fn bypassing() -> Self {
        Self {
            valid: true,
            bypass: true,
            pscid: 0,
            root_pt: PhysAddr::zero(),
        }
    }

    /// Encodes the context into the three 64-bit words stored in memory
    /// (translation control, first-stage context, translation attributes).
    pub fn encode(&self) -> [u64; 3] {
        let tc = (self.valid as u64) | ((self.bypass as u64) << 1);
        let fsc = (self.root_pt.raw() >> PAGE_SHIFT) | (8 << 60); // mode 8 = Sv39
        let ta = (self.pscid as u64) << 12;
        [tc, fsc, ta]
    }

    /// Decodes a context from its in-memory representation.
    pub fn decode(words: [u64; 3]) -> Self {
        Self {
            valid: words[0] & 1 == 1,
            bypass: words[0] & 2 == 2,
            pscid: ((words[2] >> 12) & 0xF_FFFF) as u32,
            root_pt: PhysAddr::new((words[1] & ((1 << 44) - 1)) << PAGE_SHIFT),
        }
    }
}

/// The in-memory device directory plus the IOMMU's single-entry device
/// context cache.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceDirectory {
    base: PhysAddr,
    capacity: u32,
    cache: Option<(u32, DeviceContext)>,
    cache_stats: HitMiss,
    installed: Vec<u32>,
}

impl DeviceDirectory {
    /// Allocates a one-page, single-level directory in simulated memory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfMemory`] if the backing frame cannot be
    /// allocated.
    pub fn create(frames: &mut FrameAllocator) -> Result<Self> {
        let base = frames.alloc_frame()?;
        Ok(Self::from_base(base))
    }

    /// Wraps an existing directory page.
    pub const fn from_base(base: PhysAddr) -> Self {
        Self {
            base,
            capacity: (4096 / DEVICE_CONTEXT_BYTES) as u32,
            cache: None,
            cache_stats: HitMiss::new(),
            installed: Vec::new(),
        }
    }

    /// Device IDs with an installed context, in ascending order.
    pub fn device_ids(&self) -> &[u32] {
        &self.installed
    }

    /// Physical base address of the directory (what `ddtp` points at).
    pub const fn base(&self) -> PhysAddr {
        self.base
    }

    /// Number of device contexts the single-level directory can hold.
    pub const fn capacity(&self) -> u32 {
        self.capacity
    }

    fn slot_addr(&self, device_id: u32) -> Result<PhysAddr> {
        if device_id >= self.capacity {
            return Err(Error::UnknownDevice { device_id });
        }
        Ok(self.base + device_id as u64 * DEVICE_CONTEXT_BYTES)
    }

    /// Writes a device context into the directory (performed by the host
    /// driver; functional only, the driver model accounts for the stores).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownDevice`] if `device_id` exceeds the directory
    /// capacity.
    pub fn install(
        &mut self,
        mem: &mut MemorySystem,
        device_id: u32,
        ctx: DeviceContext,
    ) -> Result<()> {
        let slot = self.slot_addr(device_id)?;
        for (i, w) in ctx.encode().into_iter().enumerate() {
            mem.write_u64_phys(slot + i as u64 * 8, w)?;
        }
        // The driver must invalidate the DDT cache (IODIR.INVAL_DDT); model
        // the hardware-visible effect here, the command itself is issued by
        // the driver through the command queue.
        self.cache = None;
        if let Err(pos) = self.installed.binary_search(&device_id) {
            self.installed.insert(pos, device_id);
        }
        Ok(())
    }

    /// Looks up the device context for `device_id`, using the single-entry
    /// cache and falling back to timed directory reads on the PTW port,
    /// issued back to back starting at global-clock cycle `now` (the
    /// arrival of the translation performing the lookup).
    ///
    /// Returns the context and the cycles spent.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownDevice`] for out-of-range or invalid contexts.
    pub fn lookup(
        &mut self,
        mem: &mut MemorySystem,
        device_id: u32,
        now: Cycles,
    ) -> Result<(DeviceContext, Cycles)> {
        if let Some((cached_id, ctx)) = self.cache {
            if cached_id == device_id {
                self.cache_stats.hit();
                return Ok((ctx, Cycles::new(1)));
            }
        }
        self.cache_stats.miss();
        let slot = self.slot_addr(device_id)?;
        let mut words = [0u64; 3];
        let mut cycles = Cycles::ZERO;
        for (i, w) in words.iter_mut().enumerate() {
            let mut buf = [0u8; 8];
            let rsp = mem.access(
                MemReq::read(InitiatorId::Ptw, slot + i as u64 * 8, &mut buf).at(now + cycles),
            )?;
            *w = u64::from_le_bytes(buf);
            cycles += rsp.latency();
        }
        let ctx = DeviceContext::decode(words);
        if !ctx.valid {
            return Err(Error::UnknownDevice { device_id });
        }
        self.cache = Some((device_id, ctx));
        Ok((ctx, cycles))
    }

    /// Untimed, side-effect-free context lookup: decodes the directory slot
    /// straight from functional memory without touching the device-context
    /// cache or its statistics. Used by functional inspection paths
    /// (`Iommu::probe_translation`); like every `probe`/`peek` entry point
    /// of this crate it is invisible to the timing model and the
    /// accounting by contract (see the crate-level "Untimed probes"
    /// section in `crate::iommu`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownDevice`] for out-of-range or invalid contexts.
    pub fn peek(&self, mem: &MemorySystem, device_id: u32) -> Result<DeviceContext> {
        let slot = self.slot_addr(device_id)?;
        let mut words = [0u64; 3];
        for (i, w) in words.iter_mut().enumerate() {
            *w = mem.read_u64_phys(slot + i as u64 * 8)?;
        }
        let ctx = DeviceContext::decode(words);
        if !ctx.valid {
            return Err(Error::UnknownDevice { device_id });
        }
        Ok(ctx)
    }

    /// Drops the device-context cache (the `IODIR.INVAL_DDT` command).
    pub fn invalidate_cache(&mut self) {
        self.cache = None;
    }

    /// Hit/miss statistics of the device-context cache.
    pub const fn cache_stats(&self) -> HitMiss {
        self.cache_stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let ctx = DeviceContext::translating(7, PhysAddr::new(0x8123_4000));
        let back = DeviceContext::decode(ctx.encode());
        assert_eq!(back, ctx);

        let bypass = DeviceContext::bypassing();
        assert_eq!(DeviceContext::decode(bypass.encode()), bypass);

        let invalid = DeviceContext::invalid();
        assert!(!DeviceContext::decode(invalid.encode()).valid);
    }

    #[test]
    fn install_then_lookup_uses_cache() {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut ddt = DeviceDirectory::create(&mut frames).unwrap();
        let ctx = DeviceContext::translating(3, PhysAddr::new(0x8800_0000));
        ddt.install(&mut mem, 1, ctx).unwrap();

        let (c1, t1) = ddt.lookup(&mut mem, 1, Cycles::ZERO).unwrap();
        assert_eq!(c1, ctx);
        assert!(t1.raw() > 100, "first lookup walks memory: {t1}");

        let (c2, t2) = ddt.lookup(&mut mem, 1, Cycles::ZERO).unwrap();
        assert_eq!(c2, ctx);
        assert_eq!(t2, Cycles::new(1), "second lookup hits the DC cache");
        assert_eq!(ddt.cache_stats().hits, 1);
        assert_eq!(ddt.cache_stats().misses, 1);
    }

    #[test]
    fn unknown_and_invalid_devices_fault() {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut ddt = DeviceDirectory::create(&mut frames).unwrap();
        // Never installed: context decodes as invalid.
        assert!(matches!(
            ddt.lookup(&mut mem, 2, Cycles::ZERO),
            Err(Error::UnknownDevice { device_id: 2 })
        ));
        // Out of range.
        assert!(ddt.lookup(&mut mem, 10_000, Cycles::ZERO).is_err());
    }

    #[test]
    fn install_invalidates_cache() {
        let mut mem = MemorySystem::default();
        let mut frames = FrameAllocator::linux_pool();
        let mut ddt = DeviceDirectory::create(&mut frames).unwrap();
        ddt.install(
            &mut mem,
            1,
            DeviceContext::translating(1, PhysAddr::new(0x8000_1000)),
        )
        .unwrap();
        ddt.lookup(&mut mem, 1, Cycles::ZERO).unwrap();
        // Re-installing with a new root must not serve the stale cached copy.
        let new_ctx = DeviceContext::translating(1, PhysAddr::new(0x8000_2000));
        ddt.install(&mut mem, 1, new_ctx).unwrap();
        let (c, _) = ddt.lookup(&mut mem, 1, Cycles::ZERO).unwrap();
        assert_eq!(c.root_pt, PhysAddr::new(0x8000_2000));
    }
}
