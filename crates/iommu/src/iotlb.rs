//! The IO translation lookaside buffer: a generic set-associative TLB core.
//!
//! The prototype configures the IOMMU with **four** fully-associative,
//! true-LRU IOTLB entries — small on purpose, because the paper's point is
//! that even a minimal IOTLB suffices once the shared LLC serves page-table
//! walks. [`IoTlb::new`] builds exactly that configuration.
//!
//! The scaled platform generalises the same core into a configurable
//! organisation ([`TlbOrg`], `sets × ways`) with a pluggable
//! [`ReplacementPolicy`] (true LRU, bit-PLRU, FIFO, deterministic random),
//! and instantiates it **twice**: one private L1 address-translation cache
//! (ATC) per device and one shared L2 IOTLB behind them (see
//! `crate::iommu`). Entries are tagged by `(device_id, virtual page
//! number)`, so a shared instance naturally partitions between the
//! translating devices; hit/miss statistics are kept both globally and per
//! device.

use serde::{Deserialize, Serialize};
use sva_common::rng::DeterministicRng;
use sva_common::stats::HitMiss;
use sva_common::{Iova, PhysAddr, ReplacementPolicy, TlbOrg, PAGE_SHIFT};
use sva_vm::PteFlags;

/// One cached translation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoTlbEntry {
    /// Device that owns the translation.
    pub device_id: u32,
    /// IO virtual page number.
    pub vpn: u64,
    /// Physical page number the page maps to.
    pub ppn: u64,
    /// Leaf permissions.
    pub flags: PteFlags,
}

impl IoTlbEntry {
    /// Physical address corresponding to `iova` under this entry.
    pub fn translate(&self, iova: Iova) -> PhysAddr {
        PhysAddr::new((self.ppn << PAGE_SHIFT) | iova.page_offset())
    }
}

/// One way of a set: the cached translation plus the replacement metadata
/// the configured policy interprets (an LRU timestamp, a FIFO sequence
/// number or a PLRU mark bit).
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
struct Slot {
    entry: IoTlbEntry,
    stamp: u64,
}

/// A set-associative TLB with a pluggable replacement policy.
///
/// [`IoTlb::new`] is the paper prototype's configuration (fully associative,
/// true LRU); [`IoTlb::with_org`] opens the full `sets × ways × policy`
/// space. Lookups and fills are **functional and untimed** — the lookup
/// latency of a level is charged by the [`crate::Iommu`] that owns it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IoTlb {
    org: TlbOrg,
    policy: ReplacementPolicy,
    sets: Vec<Vec<Slot>>,
    /// Monotonic operation counter providing unique LRU/FIFO stamps.
    clock: u64,
    /// Victim stream for [`ReplacementPolicy::Random`] (`None` otherwise).
    rng: Option<DeterministicRng>,
    stats: HitMiss,
    per_device: Vec<(u32, HitMiss)>,
    /// Valid-entry count per device, ordered by device ID. Functional
    /// cache state (not a statistic — survives `reset_stats` with the
    /// entries it counts): lets a device-scoped invalidation skip the
    /// whole-array sweep when the device holds no entries, which is the
    /// common case once many devices share one TLB.
    per_device_entries: Vec<(u32, usize)>,
    invalidations: u64,
}

impl IoTlb {
    /// Creates the prototype IOTLB: `capacity` fully-associative entries
    /// with true-LRU replacement.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IOTLB needs at least one entry");
        Self::with_org(
            TlbOrg::fully_associative(capacity),
            ReplacementPolicy::TrueLru,
        )
    }

    /// Creates a TLB with the given organisation and replacement policy.
    pub fn with_org(org: TlbOrg, policy: ReplacementPolicy) -> Self {
        Self {
            org,
            policy,
            sets: vec![Vec::with_capacity(org.ways); org.sets],
            clock: 0,
            rng: match policy {
                ReplacementPolicy::Random(seed) => Some(DeterministicRng::new(seed)),
                _ => None,
            },
            stats: HitMiss::new(),
            per_device: Vec::new(),
            per_device_entries: Vec::new(),
            invalidations: 0,
        }
    }

    /// The organisation of this instance.
    pub const fn org(&self) -> TlbOrg {
        self.org
    }

    /// The replacement policy of this instance.
    pub const fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Set index of a `(device, page)` tag. With one set this is always
    /// zero (fully associative); otherwise the device ID is folded into the
    /// page number so co-running devices do not collide on set 0 for their
    /// low pages.
    fn set_index(&self, device_id: u32, vpn: u64) -> usize {
        ((vpn ^ (device_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.org.sets as u64)
            as usize
    }

    fn device_slot(&mut self, device_id: u32) -> &mut HitMiss {
        let pos = match self
            .per_device
            .binary_search_by_key(&device_id, |(d, _)| *d)
        {
            Ok(pos) => pos,
            Err(pos) => {
                self.per_device.insert(pos, (device_id, HitMiss::new()));
                pos
            }
        };
        &mut self.per_device[pos].1
    }

    /// Adjusts the valid-entry count of `device_id` by one.
    fn add_device_entry(&mut self, device_id: u32) {
        match self
            .per_device_entries
            .binary_search_by_key(&device_id, |(d, _)| *d)
        {
            Ok(pos) => self.per_device_entries[pos].1 += 1,
            Err(pos) => self.per_device_entries.insert(pos, (device_id, 1)),
        }
    }

    fn remove_device_entry(&mut self, device_id: u32) {
        let pos = self
            .per_device_entries
            .binary_search_by_key(&device_id, |(d, _)| *d)
            .expect("removing an entry of a device that holds none");
        let count = &mut self.per_device_entries[pos].1;
        debug_assert!(*count > 0);
        *count -= 1;
    }

    /// Number of entries the TLB can hold (`sets × ways`).
    pub const fn capacity(&self) -> usize {
        self.org.entries()
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no entry is valid.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Marks `slot` of `set` as touched under the configured policy (hit or
    /// refill).
    fn touch(policy: ReplacementPolicy, set: &mut [Slot], slot: usize, clock: u64) {
        match policy {
            ReplacementPolicy::TrueLru => set[slot].stamp = clock,
            ReplacementPolicy::PseudoLru => {
                set[slot].stamp = 1;
                if set.iter().all(|s| s.stamp == 1) {
                    for (i, s) in set.iter_mut().enumerate() {
                        if i != slot {
                            s.stamp = 0;
                        }
                    }
                }
            }
            // FIFO age is fixed at fill time; random needs no metadata.
            ReplacementPolicy::Fifo | ReplacementPolicy::Random(_) => {}
        }
    }

    /// Picks the victim way of a full `set`.
    fn victim(&mut self, set_idx: usize) -> usize {
        let set = &self.sets[set_idx];
        match self.policy {
            ReplacementPolicy::TrueLru | ReplacementPolicy::Fifo => set
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(i, _)| i)
                .expect("victim is only chosen in a full set"),
            ReplacementPolicy::PseudoLru => set
                .iter()
                .position(|s| s.stamp == 0)
                // Every way marked (possible right after an all-ways refill
                // burst): fall back to way 0, matching bit-PLRU hardware
                // that resets the marks lazily.
                .unwrap_or(0),
            ReplacementPolicy::Random(_) => {
                let ways = set.len() as u64;
                self.rng
                    .as_mut()
                    .expect("random policy carries its stream")
                    .next_below(ways) as usize
            }
        }
    }

    /// Looks up the translation of `iova` for `device_id`, updating the
    /// replacement state and hit/miss statistics.
    pub fn lookup(&mut self, device_id: u32, iova: Iova) -> Option<IoTlbEntry> {
        self.clock += 1;
        let vpn = iova.page_number();
        let set_idx = self.set_index(device_id, vpn);
        let clock = self.clock;
        let policy = self.policy;
        let set = &mut self.sets[set_idx];
        let entry = set
            .iter()
            .position(|s| s.entry.device_id == device_id && s.entry.vpn == vpn)
            .map(|slot| {
                Self::touch(policy, set, slot, clock);
                set[slot].entry
            });
        if entry.is_some() {
            self.stats.hit();
            self.device_slot(device_id).hit();
        } else {
            self.stats.miss();
            self.device_slot(device_id).miss();
        }
        entry
    }

    /// Peeks whether a translation is cached **without touching the
    /// replacement state or the statistics** — the untimed/uncounted probe
    /// contract (see `Iommu::probe_translation`).
    pub fn probe(&self, device_id: u32, iova: Iova) -> bool {
        let vpn = iova.page_number();
        self.sets[self.set_index(device_id, vpn)]
            .iter()
            .any(|s| s.entry.device_id == device_id && s.entry.vpn == vpn)
    }

    /// Inserts a translation, evicting the policy's victim if the target
    /// set is full.
    pub fn fill(&mut self, device_id: u32, iova: Iova, ppn: u64, flags: PteFlags) {
        self.clock += 1;
        let vpn = iova.page_number();
        let set_idx = self.set_index(device_id, vpn);
        let clock = self.clock;
        let policy = self.policy;
        if let Some(slot) = self.sets[set_idx]
            .iter()
            .position(|s| s.entry.device_id == device_id && s.entry.vpn == vpn)
        {
            let set = &mut self.sets[set_idx];
            set[slot].entry.ppn = ppn;
            set[slot].entry.flags = flags;
            Self::touch(policy, set, slot, clock);
            return;
        }
        let entry = IoTlbEntry {
            device_id,
            vpn,
            ppn,
            flags,
        };
        // FIFO/LRU read the fill stamp as the entry's age; PLRU's touch()
        // below overwrites it with the mark bit.
        let slot = Slot {
            entry,
            stamp: clock,
        };
        let ways = self.org.ways;
        if self.sets[set_idx].len() < ways {
            self.sets[set_idx].push(slot);
            let filled = self.sets[set_idx].len() - 1;
            Self::touch(policy, &mut self.sets[set_idx], filled, clock);
        } else {
            let victim = self.victim(set_idx);
            self.remove_device_entry(self.sets[set_idx][victim].entry.device_id);
            self.sets[set_idx][victim] = slot;
            Self::touch(policy, &mut self.sets[set_idx], victim, clock);
        }
        self.add_device_entry(device_id);
    }

    /// Invalidates every entry (the `IOTINVAL.VMA` broadcast the driver
    /// issues after changing mappings).
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.per_device_entries.clear();
        self.invalidations += 1;
    }

    /// Invalidates all entries belonging to one device. Devices that hold
    /// no entries (the common case with many devices behind one shared
    /// TLB) short-circuit on the per-device entry count without sweeping
    /// the sets; the invalidation is still counted — the command was
    /// processed either way.
    pub fn invalidate_device(&mut self, device_id: u32) {
        self.invalidations += 1;
        let held = self
            .per_device_entries
            .binary_search_by_key(&device_id, |(d, _)| *d)
            .map(|pos| self.per_device_entries[pos].1)
            .unwrap_or(0);
        if held == 0 {
            return;
        }
        let mut removed = 0usize;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|s| s.entry.device_id != device_id);
            removed += before - set.len();
            if removed == held {
                break;
            }
        }
        debug_assert_eq!(removed, held, "per-device entry count diverged");
        for _ in 0..removed {
            self.remove_device_entry(device_id);
        }
    }

    /// Invalidates the entry for one page of one device, if present.
    pub fn invalidate_page(&mut self, device_id: u32, iova: Iova) {
        let vpn = iova.page_number();
        let set_idx = self.set_index(device_id, vpn);
        let before = self.sets[set_idx].len();
        self.sets[set_idx].retain(|s| !(s.entry.device_id == device_id && s.entry.vpn == vpn));
        if self.sets[set_idx].len() < before {
            self.remove_device_entry(device_id);
        }
        self.invalidations += 1;
    }

    /// Hit/miss statistics.
    pub const fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Hit/miss statistics for one device (zero if it never looked up).
    pub fn device_stats(&self, device_id: u32) -> HitMiss {
        self.per_device
            .binary_search_by_key(&device_id, |(d, _)| *d)
            .map(|pos| self.per_device[pos].1)
            .unwrap_or_default()
    }

    /// Per-device hit/miss statistics, ordered by device ID.
    pub fn per_device_stats(&self) -> &[(u32, HitMiss)] {
        &self.per_device
    }

    /// Number of valid entries currently held by `device_id` (the index
    /// behind the device-invalidation short-circuit).
    pub fn device_entries(&self, device_id: u32) -> usize {
        self.per_device_entries
            .binary_search_by_key(&device_id, |(d, _)| *d)
            .map(|pos| self.per_device_entries[pos].1)
            .unwrap_or(0)
    }

    /// Checks that the per-device entry counts match the sets exactly.
    ///
    /// # Panics
    ///
    /// Panics when a count has diverged from the entries it summarises.
    #[doc(hidden)]
    pub fn debug_validate_device_entries(&self) {
        let mut counted: Vec<(u32, usize)> = Vec::new();
        for set in &self.sets {
            for s in set {
                match counted.binary_search_by_key(&s.entry.device_id, |(d, _)| *d) {
                    Ok(pos) => counted[pos].1 += 1,
                    Err(pos) => counted.insert(pos, (s.entry.device_id, 1)),
                }
            }
        }
        let nonzero: Vec<(u32, usize)> = self
            .per_device_entries
            .iter()
            .copied()
            .filter(|&(_, n)| n > 0)
            .collect();
        assert_eq!(nonzero, counted, "per-device entry counts diverged");
    }

    /// Number of invalidation operations processed.
    pub const fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Clears statistics (entries are preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.per_device.clear();
        self.invalidations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_flags() -> PteFlags {
        PteFlags::user_rw()
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = IoTlb::new(4);
        let iova = Iova::new(0x1234_5000);
        assert!(tlb.lookup(1, iova).is_none());
        tlb.fill(1, iova, 0x8_0000, entry_flags());
        let e = tlb.lookup(1, iova + 0x123).expect("hit after fill");
        assert_eq!(
            e.translate(iova + 0x123),
            PhysAddr::new(0x8_0000 << 12 | 0x123)
        );
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn entries_are_tagged_by_device() {
        let mut tlb = IoTlb::new(4);
        let iova = Iova::new(0x1000);
        tlb.fill(1, iova, 0x100, entry_flags());
        assert!(tlb.lookup(2, iova).is_none());
        assert!(tlb.lookup(1, iova).is_some());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut tlb = IoTlb::new(4);
        for i in 0..4u64 {
            tlb.fill(1, Iova::new(i << 12), i, entry_flags());
        }
        // Touch page 0 so page 1 becomes LRU.
        assert!(tlb.lookup(1, Iova::new(0)).is_some());
        tlb.fill(1, Iova::new(4 << 12), 4, entry_flags());
        assert_eq!(tlb.len(), 4);
        assert!(tlb.probe(1, Iova::new(0)));
        assert!(
            !tlb.probe(1, Iova::new(1 << 12)),
            "LRU page 1 should be evicted"
        );
        assert!(tlb.probe(1, Iova::new(4 << 12)));
    }

    #[test]
    fn refill_of_existing_page_updates_in_place() {
        let mut tlb = IoTlb::new(2);
        let iova = Iova::new(0x5000);
        tlb.fill(1, iova, 0x10, entry_flags());
        tlb.fill(1, iova, 0x20, entry_flags());
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(1, iova).unwrap().ppn, 0x20);
    }

    #[test]
    fn invalidations() {
        let mut tlb = IoTlb::new(4);
        tlb.fill(1, Iova::new(0x1000), 1, entry_flags());
        tlb.fill(1, Iova::new(0x2000), 2, entry_flags());
        tlb.fill(2, Iova::new(0x3000), 3, entry_flags());

        tlb.invalidate_page(1, Iova::new(0x1000));
        assert!(!tlb.probe(1, Iova::new(0x1000)));
        assert!(tlb.probe(1, Iova::new(0x2000)));

        tlb.invalidate_device(1);
        assert!(!tlb.probe(1, Iova::new(0x2000)));
        assert!(tlb.probe(2, Iova::new(0x3000)));

        tlb.invalidate_all();
        assert!(tlb.is_empty());
        assert_eq!(tlb.invalidations(), 3);
    }

    /// The per-device entry counts (the index behind the
    /// `invalidate_device` short-circuit) track fills, in-place updates,
    /// evictions and every invalidation flavour, and survive a stats
    /// reset with the entries they count.
    #[test]
    fn per_device_entry_counts_track_every_membership_change() {
        let mut tlb = IoTlb::new(4);
        tlb.fill(1, Iova::new(0x1000), 1, entry_flags());
        tlb.fill(1, Iova::new(0x2000), 2, entry_flags());
        tlb.fill(2, Iova::new(0x3000), 3, entry_flags());
        tlb.fill(1, Iova::new(0x1000), 9, entry_flags()); // in-place update
        assert_eq!(tlb.device_entries(1), 2);
        assert_eq!(tlb.device_entries(2), 1);
        assert_eq!(tlb.device_entries(7), 0, "unseen device holds nothing");
        tlb.debug_validate_device_entries();

        // Fill to capacity, then one more: the LRU victim (device 1,
        // page 0x2000 — 0x1000 was refreshed by the update) hands its
        // count to the filling device.
        tlb.fill(2, Iova::new(0x4000), 4, entry_flags());
        tlb.fill(3, Iova::new(0x5000), 5, entry_flags());
        assert_eq!(tlb.len(), 4);
        assert_eq!(tlb.device_entries(1), 1);
        assert_eq!(tlb.device_entries(3), 1);
        tlb.debug_validate_device_entries();

        // A device-scoped invalidation of an absent device is counted but
        // touches nothing.
        tlb.invalidate_device(7);
        assert_eq!(tlb.len(), 4);
        tlb.invalidate_page(2, Iova::new(0x3000));
        assert_eq!(tlb.device_entries(2), 1);
        tlb.invalidate_device(2);
        assert_eq!(tlb.device_entries(2), 0);
        assert!(!tlb.probe(2, Iova::new(0x4000)));
        tlb.debug_validate_device_entries();

        // Counts are functional state: a stats reset keeps them with the
        // entries; a full invalidation clears both.
        tlb.reset_stats();
        assert_eq!(tlb.device_entries(1), 1);
        tlb.debug_validate_device_entries();
        tlb.invalidate_all();
        assert_eq!(tlb.device_entries(1), 0);
        tlb.debug_validate_device_entries();
        assert_eq!(tlb.invalidations(), 1, "reset_stats restarted the count");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = IoTlb::new(0);
    }

    #[test]
    fn per_device_stats_split_the_global_counts() {
        let mut tlb = IoTlb::new(4);
        let iova = Iova::new(0x1000);
        tlb.fill(1, iova, 0x100, entry_flags());
        tlb.lookup(1, iova); // hit for device 1
        tlb.lookup(2, iova); // miss for device 2
        tlb.lookup(2, iova); // miss again
        assert_eq!(tlb.device_stats(1).hits, 1);
        assert_eq!(tlb.device_stats(1).misses, 0);
        assert_eq!(tlb.device_stats(2).misses, 2);
        assert_eq!(tlb.device_stats(7).total(), 0, "unseen device is zero");
        let global = tlb.stats();
        let summed: u64 = tlb.per_device_stats().iter().map(|(_, s)| s.total()).sum();
        assert_eq!(global.total(), summed);
        tlb.reset_stats();
        assert!(tlb.per_device_stats().is_empty());
    }

    // ------------------------------------------------------------------
    // Set-associative organisations and alternative policies
    // ------------------------------------------------------------------

    /// Walks `pages` pages twice and returns the hit count of the second
    /// sweep.
    fn second_sweep_hits(mut tlb: IoTlb, pages: u64) -> u64 {
        for _ in 0..2 {
            for p in 0..pages {
                if tlb.lookup(1, Iova::new(p << 12)).is_none() {
                    tlb.fill(1, Iova::new(p << 12), p, entry_flags());
                }
            }
        }
        tlb.stats().hits
    }

    #[test]
    fn set_associative_tlb_partitions_by_set() {
        // 4 sets x 2 ways: pages that map to different sets never evict each
        // other, so an 8-page working set fits exactly.
        let tlb = IoTlb::with_org(TlbOrg::new(4, 2), ReplacementPolicy::TrueLru);
        assert_eq!(tlb.capacity(), 8);
        assert_eq!(second_sweep_hits(tlb, 8), 8);
    }

    #[test]
    fn direct_mapped_conflicts_miss() {
        // Direct-mapped with 4 sets: pages 0 and 4 (stride = set count)
        // conflict and evict each other.
        let mut tlb = IoTlb::with_org(TlbOrg::direct_mapped(4), ReplacementPolicy::TrueLru);
        tlb.fill(1, Iova::new(0), 0, entry_flags());
        tlb.fill(1, Iova::new(4 << 12), 4, entry_flags());
        assert!(
            !tlb.probe(1, Iova::new(0)),
            "conflicting fill must evict the resident page"
        );
        assert!(tlb.probe(1, Iova::new(4 << 12)));
    }

    #[test]
    fn fifo_ignores_hits_when_choosing_victims() {
        // Fill pages 0..4, touch page 0 (would save it under LRU), then
        // fill page 4: FIFO still evicts page 0 (oldest fill).
        let mut tlb = IoTlb::with_org(TlbOrg::fully_associative(4), ReplacementPolicy::Fifo);
        for i in 0..4u64 {
            tlb.fill(1, Iova::new(i << 12), i, entry_flags());
        }
        assert!(tlb.lookup(1, Iova::new(0)).is_some());
        tlb.fill(1, Iova::new(4 << 12), 4, entry_flags());
        assert!(!tlb.probe(1, Iova::new(0)), "FIFO evicts the oldest fill");
        assert!(tlb.probe(1, Iova::new(1 << 12)));
    }

    #[test]
    fn pseudo_lru_protects_the_most_recent_touch() {
        let mut tlb = IoTlb::with_org(TlbOrg::fully_associative(4), ReplacementPolicy::PseudoLru);
        for i in 0..4u64 {
            tlb.fill(1, Iova::new(i << 12), i, entry_flags());
        }
        // Touch page 3; the next victim must not be page 3.
        assert!(tlb.lookup(1, Iova::new(3 << 12)).is_some());
        tlb.fill(1, Iova::new(4 << 12), 4, entry_flags());
        assert!(tlb.probe(1, Iova::new(3 << 12)), "PLRU keeps the MRU entry");
        assert_eq!(tlb.len(), 4);
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let mut tlb = IoTlb::with_org(
                TlbOrg::fully_associative(4),
                ReplacementPolicy::Random(seed),
            );
            for i in 0..16u64 {
                tlb.fill(1, Iova::new(i << 12), i, entry_flags());
            }
            (0..16u64)
                .map(|i| tlb.probe(1, Iova::new(i << 12)))
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same victims");
        assert_eq!(run(7).iter().filter(|&&p| p).count(), 4);
    }

    #[test]
    fn policies_agree_on_contents_below_capacity() {
        for policy in [
            ReplacementPolicy::TrueLru,
            ReplacementPolicy::PseudoLru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random(3),
        ] {
            let mut tlb = IoTlb::with_org(TlbOrg::new(2, 4), policy);
            for i in 0..8u64 {
                tlb.fill(1, Iova::new(i << 12), i, entry_flags());
            }
            for i in 0..8u64 {
                let e = tlb
                    .lookup(1, Iova::new(i << 12))
                    .unwrap_or_else(|| panic!("{policy:?}: page {i} resident below capacity"));
                assert_eq!(e.ppn, i);
            }
        }
    }
}
