//! The IO translation lookaside buffer.
//!
//! The prototype configures the IOMMU with **four** IOTLB entries — small on
//! purpose, because the paper's point is that even a minimal IOTLB suffices
//! once the shared LLC serves page-table walks. Entries are fully associative
//! with true-LRU replacement and are tagged by `(device_id, virtual page
//! number)`.

use serde::{Deserialize, Serialize};
use sva_common::stats::HitMiss;
use sva_common::{Iova, PhysAddr, PAGE_SHIFT};
use sva_vm::PteFlags;

/// One cached translation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoTlbEntry {
    /// Device that owns the translation.
    pub device_id: u32,
    /// IO virtual page number.
    pub vpn: u64,
    /// Physical page number the page maps to.
    pub ppn: u64,
    /// Leaf permissions.
    pub flags: PteFlags,
    /// LRU timestamp (larger = more recent).
    lru: u64,
}

impl IoTlbEntry {
    /// Physical address corresponding to `iova` under this entry.
    pub fn translate(&self, iova: Iova) -> PhysAddr {
        PhysAddr::new((self.ppn << PAGE_SHIFT) | iova.page_offset())
    }
}

/// A fully-associative IOTLB with LRU replacement.
///
/// Entries are tagged by `(device_id, vpn)`, so several translating devices
/// (one per accelerator cluster in the scaled platform) share the capacity;
/// hit/miss statistics are kept both globally and per device.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IoTlb {
    capacity: usize,
    entries: Vec<IoTlbEntry>,
    clock: u64,
    stats: HitMiss,
    per_device: Vec<(u32, HitMiss)>,
    invalidations: u64,
}

impl IoTlb {
    /// Creates an IOTLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IOTLB needs at least one entry");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
            clock: 0,
            stats: HitMiss::new(),
            per_device: Vec::new(),
            invalidations: 0,
        }
    }

    fn device_slot(&mut self, device_id: u32) -> &mut HitMiss {
        let pos = match self
            .per_device
            .binary_search_by_key(&device_id, |(d, _)| *d)
        {
            Ok(pos) => pos,
            Err(pos) => {
                self.per_device.insert(pos, (device_id, HitMiss::new()));
                pos
            }
        };
        &mut self.per_device[pos].1
    }

    /// Number of entries the IOTLB can hold.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entry is valid.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the translation of `iova` for `device_id`, updating LRU and
    /// hit/miss statistics.
    pub fn lookup(&mut self, device_id: u32, iova: Iova) -> Option<IoTlbEntry> {
        self.clock += 1;
        let vpn = iova.page_number();
        let clock = self.clock;
        let entry = self
            .entries
            .iter_mut()
            .find(|e| e.device_id == device_id && e.vpn == vpn)
            .map(|e| {
                e.lru = clock;
                *e
            });
        if entry.is_some() {
            self.stats.hit();
            self.device_slot(device_id).hit();
        } else {
            self.stats.miss();
            self.device_slot(device_id).miss();
        }
        entry
    }

    /// Peeks whether a translation is cached without touching LRU or
    /// statistics.
    pub fn probe(&self, device_id: u32, iova: Iova) -> bool {
        let vpn = iova.page_number();
        self.entries
            .iter()
            .any(|e| e.device_id == device_id && e.vpn == vpn)
    }

    /// Inserts a translation, evicting the LRU entry if the IOTLB is full.
    pub fn fill(&mut self, device_id: u32, iova: Iova, ppn: u64, flags: PteFlags) {
        self.clock += 1;
        let vpn = iova.page_number();
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.device_id == device_id && e.vpn == vpn)
        {
            e.ppn = ppn;
            e.flags = flags;
            e.lru = self.clock;
            return;
        }
        let entry = IoTlbEntry {
            device_id,
            vpn,
            ppn,
            flags,
            lru: self.clock,
        };
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            let victim = self
                .entries
                .iter_mut()
                .min_by_key(|e| e.lru)
                .expect("IOTLB is non-empty when full");
            *victim = entry;
        }
    }

    /// Invalidates every entry (the `IOTINVAL.VMA` broadcast the driver issues
    /// after changing mappings).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
        self.invalidations += 1;
    }

    /// Invalidates all entries belonging to one device.
    pub fn invalidate_device(&mut self, device_id: u32) {
        self.entries.retain(|e| e.device_id != device_id);
        self.invalidations += 1;
    }

    /// Invalidates the entry for one page of one device, if present.
    pub fn invalidate_page(&mut self, device_id: u32, iova: Iova) {
        let vpn = iova.page_number();
        self.entries
            .retain(|e| !(e.device_id == device_id && e.vpn == vpn));
        self.invalidations += 1;
    }

    /// Hit/miss statistics.
    pub const fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Hit/miss statistics for one device (zero if it never looked up).
    pub fn device_stats(&self, device_id: u32) -> HitMiss {
        self.per_device
            .binary_search_by_key(&device_id, |(d, _)| *d)
            .map(|pos| self.per_device[pos].1)
            .unwrap_or_default()
    }

    /// Per-device hit/miss statistics, ordered by device ID.
    pub fn per_device_stats(&self) -> &[(u32, HitMiss)] {
        &self.per_device
    }

    /// Number of invalidation operations processed.
    pub const fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Clears statistics (entries are preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.per_device.clear();
        self.invalidations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry_flags() -> PteFlags {
        PteFlags::user_rw()
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = IoTlb::new(4);
        let iova = Iova::new(0x1234_5000);
        assert!(tlb.lookup(1, iova).is_none());
        tlb.fill(1, iova, 0x8_0000, entry_flags());
        let e = tlb.lookup(1, iova + 0x123).expect("hit after fill");
        assert_eq!(
            e.translate(iova + 0x123),
            PhysAddr::new(0x8_0000 << 12 | 0x123)
        );
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn entries_are_tagged_by_device() {
        let mut tlb = IoTlb::new(4);
        let iova = Iova::new(0x1000);
        tlb.fill(1, iova, 0x100, entry_flags());
        assert!(tlb.lookup(2, iova).is_none());
        assert!(tlb.lookup(1, iova).is_some());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut tlb = IoTlb::new(4);
        for i in 0..4u64 {
            tlb.fill(1, Iova::new(i << 12), i, entry_flags());
        }
        // Touch page 0 so page 1 becomes LRU.
        assert!(tlb.lookup(1, Iova::new(0)).is_some());
        tlb.fill(1, Iova::new(4 << 12), 4, entry_flags());
        assert_eq!(tlb.len(), 4);
        assert!(tlb.probe(1, Iova::new(0)));
        assert!(
            !tlb.probe(1, Iova::new(1 << 12)),
            "LRU page 1 should be evicted"
        );
        assert!(tlb.probe(1, Iova::new(4 << 12)));
    }

    #[test]
    fn refill_of_existing_page_updates_in_place() {
        let mut tlb = IoTlb::new(2);
        let iova = Iova::new(0x5000);
        tlb.fill(1, iova, 0x10, entry_flags());
        tlb.fill(1, iova, 0x20, entry_flags());
        assert_eq!(tlb.len(), 1);
        assert_eq!(tlb.lookup(1, iova).unwrap().ppn, 0x20);
    }

    #[test]
    fn invalidations() {
        let mut tlb = IoTlb::new(4);
        tlb.fill(1, Iova::new(0x1000), 1, entry_flags());
        tlb.fill(1, Iova::new(0x2000), 2, entry_flags());
        tlb.fill(2, Iova::new(0x3000), 3, entry_flags());

        tlb.invalidate_page(1, Iova::new(0x1000));
        assert!(!tlb.probe(1, Iova::new(0x1000)));
        assert!(tlb.probe(1, Iova::new(0x2000)));

        tlb.invalidate_device(1);
        assert!(!tlb.probe(1, Iova::new(0x2000)));
        assert!(tlb.probe(2, Iova::new(0x3000)));

        tlb.invalidate_all();
        assert!(tlb.is_empty());
        assert_eq!(tlb.invalidations(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = IoTlb::new(0);
    }

    #[test]
    fn per_device_stats_split_the_global_counts() {
        let mut tlb = IoTlb::new(4);
        let iova = Iova::new(0x1000);
        tlb.fill(1, iova, 0x100, entry_flags());
        tlb.lookup(1, iova); // hit for device 1
        tlb.lookup(2, iova); // miss for device 2
        tlb.lookup(2, iova); // miss again
        assert_eq!(tlb.device_stats(1).hits, 1);
        assert_eq!(tlb.device_stats(1).misses, 0);
        assert_eq!(tlb.device_stats(2).misses, 2);
        assert_eq!(tlb.device_stats(7).total(), 0, "unseen device is zero");
        let global = tlb.stats();
        let summed: u64 = tlb.per_device_stats().iter().map(|(_, s)| s.total()).sum();
        assert_eq!(global.total(), summed);
        tlb.reset_stats();
        assert!(tlb.per_device_stats().is_empty());
    }
}
