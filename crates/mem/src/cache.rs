//! Generic set-associative cache timing model.
//!
//! The model tracks tags, LRU state and dirty bits only — the functional data
//! always lives in the backing store. This is sufficient because the
//! simulation only needs to know *whether* an access hits and *which* line a
//! miss evicts, not the cached bytes themselves.
//!
//! Two instances are used in the platform:
//!
//! * the CVA6 32 KiB write-through L1 data cache (dirty bits never set),
//! * the Cheshire 128 KiB write-back last-level cache ([`crate::llc`]).

use serde::{Deserialize, Serialize};
use sva_common::stats::HitMiss;
use sva_common::{PhysAddr, CACHE_LINE_SIZE};

/// Geometry of a cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// `true` for write-back caches (dirty lines written back on eviction),
    /// `false` for write-through caches.
    pub write_back: bool,
}

impl CacheConfig {
    /// The CVA6 32 KiB, 8-way, write-through L1 data cache.
    pub const fn cva6_l1d() -> Self {
        Self {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: CACHE_LINE_SIZE,
            write_back: false,
        }
    }

    /// Number of sets implied by the geometry.
    pub const fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.ways as u64)) as usize
    }

    /// Validates that the geometry is consistent (powers of two, at least one
    /// set).
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "line size {} is not a power of two",
                self.line_bytes
            ));
        }
        if self.ways == 0 {
            return Err("cache must have at least one way".to_string());
        }
        if self.size_bytes % (self.line_bytes * self.ways as u64) != 0 {
            return Err(format!(
                "capacity {} is not divisible by ways*line ({}*{})",
                self.size_bytes, self.ways, self.line_bytes
            ));
        }
        if self.sets() == 0 {
            return Err("cache has zero sets".to_string());
        }
        Ok(())
    }
}

/// Result of a cache lookup.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled.
    Miss {
        /// Address of a dirty line that had to be written back to make room,
        /// if any. Only ever `Some` for write-back caches.
        writeback: Option<PhysAddr>,
    },
}

impl CacheOutcome {
    /// Returns `true` for [`CacheOutcome::Hit`].
    pub const fn is_hit(&self) -> bool {
        matches!(self, CacheOutcome::Hit)
    }

    /// Returns the write-back address if the outcome was a miss that evicted
    /// a dirty line.
    pub const fn writeback(&self) -> Option<PhysAddr> {
        match self {
            CacheOutcome::Miss { writeback } => *writeback,
            CacheOutcome::Hit => None,
        }
    }
}

#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    /// Larger value = more recently used.
    lru: u64,
}

/// A set-associative cache with true-LRU replacement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    lru_clock: u64,
    stats: HitMiss,
    writebacks: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid cache geometry: {e}"));
        Self {
            config,
            sets: vec![vec![Line::default(); config.ways]; config.sets()],
            lru_clock: 0,
            stats: HitMiss::new(),
            writebacks: 0,
        }
    }

    /// The geometry of this cache.
    pub const fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn index_and_tag(&self, addr: PhysAddr) -> (usize, u64) {
        let line_addr = addr.raw() / self.config.line_bytes;
        let set = (line_addr % self.sets.len() as u64) as usize;
        let tag = line_addr / self.sets.len() as u64;
        (set, tag)
    }

    /// Looks up the line containing `addr`, filling it on a miss.
    ///
    /// `is_write` marks the line dirty for write-back caches. The returned
    /// outcome reports whether the access hit and whether a dirty victim had
    /// to be written back.
    pub fn access(&mut self, addr: PhysAddr, is_write: bool) -> CacheOutcome {
        self.lru_clock += 1;
        let (set_idx, tag) = self.index_and_tag(addr);
        let num_sets = self.sets.len() as u64;
        let line_bytes = self.config.line_bytes;
        let ways = &mut self.sets[set_idx];

        // Hit path.
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.lru_clock;
            if is_write && self.config.write_back {
                line.dirty = true;
            }
            self.stats.hit();
            return CacheOutcome::Hit;
        }

        // Miss: pick the LRU way (preferring invalid ways).
        self.stats.miss();
        let victim_idx = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("cache set has at least one way");

        let victim = ways[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            Some(PhysAddr::new(
                (victim.tag * num_sets + set_idx as u64) * line_bytes,
            ))
        } else {
            None
        };

        ways[victim_idx] = Line {
            valid: true,
            dirty: is_write && self.config.write_back,
            tag,
            lru: self.lru_clock,
        };
        if writeback.is_some() {
            self.writebacks += 1;
        }
        CacheOutcome::Miss { writeback }
    }

    /// Returns `true` if the line containing `addr` is currently present,
    /// without updating any state.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let (set_idx, tag) = self.index_and_tag(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr` if present, returning its base
    /// address if it was dirty (caller is responsible for writing it back).
    pub fn invalidate(&mut self, addr: PhysAddr) -> Option<PhysAddr> {
        let (set_idx, tag) = self.index_and_tag(addr);
        let sets_len = self.sets.len() as u64;
        let line_bytes = self.config.line_bytes;
        for line in &mut self.sets[set_idx] {
            if line.valid && line.tag == tag {
                line.valid = false;
                let was_dirty = line.dirty;
                line.dirty = false;
                return was_dirty
                    .then(|| PhysAddr::new((tag * sets_len + set_idx as u64) * line_bytes));
            }
        }
        None
    }

    /// Invalidates the whole cache, returning the number of dirty lines that
    /// would be written back by the flush.
    pub fn flush_all(&mut self) -> u64 {
        let mut dirty = 0;
        for set in &mut self.sets {
            for line in set {
                if line.valid && line.dirty {
                    dirty += 1;
                }
                line.valid = false;
                line.dirty = false;
            }
        }
        dirty
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> u64 {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|l| l.valid)
            .count() as u64
    }

    /// Hit/miss statistics.
    pub const fn stats(&self) -> HitMiss {
        self.stats
    }

    /// Number of dirty-line writebacks caused by evictions so far.
    pub const fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Clears the statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(write_back: bool) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            write_back,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::cva6_l1d();
        assert_eq!(c.sets(), 64);
        assert!(c.validate().is_ok());
        assert!(CacheConfig {
            size_bytes: 1000,
            ways: 3,
            line_bytes: 64,
            write_back: true
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 63,
            write_back: true
        }
        .validate()
        .is_err());
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache(true);
        let a = PhysAddr::new(0x8000_0000);
        assert!(!c.access(a, false).is_hit());
        assert!(c.access(a, false).is_hit());
        assert!(c.access(a + 63, false).is_hit());
        assert!(!c.access(a + 64, false).is_hit());
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small_cache(false);
        // 8 sets of 2 ways; these three addresses map to the same set.
        let set_stride = 8 * 64;
        let a = PhysAddr::new(0x10000);
        let b = a + set_stride;
        let d = a + 2 * set_stride;
        c.access(a, false);
        c.access(b, false);
        // Touch `a` so `b` becomes LRU.
        c.access(a, false);
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn write_back_cache_reports_writebacks() {
        let mut c = small_cache(true);
        let set_stride = 8 * 64;
        let a = PhysAddr::new(0x20000);
        let b = a + set_stride;
        let d = a + 2 * set_stride;
        c.access(a, true); // dirty
        c.access(b, false);
        let out = c.access(d, false); // evicts dirty a
        assert_eq!(out.writeback(), Some(a.cache_line_base()));
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn write_through_cache_never_writes_back() {
        let mut c = small_cache(false);
        let set_stride = 8 * 64;
        let a = PhysAddr::new(0x20000);
        c.access(a, true);
        c.access(a + set_stride, true);
        let out = c.access(a + 2 * set_stride, true);
        assert_eq!(out.writeback(), None);
        assert_eq!(c.writebacks(), 0);
        assert_eq!(c.flush_all(), 0);
    }

    #[test]
    fn invalidate_single_line() {
        let mut c = small_cache(true);
        let a = PhysAddr::new(0x30040);
        c.access(a, true);
        assert!(c.probe(a));
        let wb = c.invalidate(a);
        assert_eq!(wb, Some(a.cache_line_base()));
        assert!(!c.probe(a));
        assert_eq!(c.invalidate(a), None);
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = small_cache(true);
        c.access(PhysAddr::new(0x0), true);
        c.access(PhysAddr::new(0x40), false);
        c.access(PhysAddr::new(0x80), true);
        assert_eq!(c.flush_all(), 2);
        assert_eq!(c.resident_lines(), 0);
    }
}
