//! The composed memory system: crossbar + LLC + L2 SPM + DRAM behind the
//! unified initiator-facing fabric port of the platform.
//!
//! Every initiator reaches memory through the single [`MemorySystem::access`]
//! entry point, presenting a [`MemReq`] that names the initiator
//! ([`InitiatorId`]) and carries the payload buffer. The fabric routes the
//! access by the initiator's *class*:
//!
//! * **host** (CVA6 through its L1): cached DRAM goes through the LLC,
//!   the reserved contiguous DMA area and the L2 SPM are uncached;
//! * **PTW** (the IOMMU page-table walker): reads that go through the LLC
//!   when it is present (this is the architectural property the paper
//!   leverages to make SVA cheap);
//! * **DMA** (one initiator per accelerator cluster): bursts that normally
//!   use the LLC-bypass window straight to DRAM; routing them through the
//!   LLC is possible for ablation (`llc_serves_dma`).
//!
//! Arbitration and per-initiator accounting live in [`crate::fabric`];
//! the legacy per-initiator entry points ([`MemorySystem::host_read`],
//! [`MemorySystem::ptw_read`], [`MemorySystem::dma_read_burst`], …) are thin
//! wrappers over [`MemorySystem::access`] kept so call sites can migrate
//! incrementally.
//!
//! Every access arrives at a definite point on the platform's global
//! simulation clock ([`sva_common::GlobalClock`], shared in via
//! [`MemorySystem::attach_clock`]): callers that track their own pipeline
//! stamp an explicit issue time, everything else is stamped with the
//! clock's current reading, and the clock advances to each access's
//! completion — there is no untimed traffic.
//!
//! All timed accesses also move functional data, so kernels computing on the
//! simulated memory can be verified bit-exactly against host references.

use serde::{Deserialize, Serialize};
use sva_axi::addrmap::{AddressMap, RegionKind, DRAM_SIZE};
use sva_axi::{AccessKind, BusConfig, Crossbar, MasterPort, MemTxn};
use sva_common::stats::Counter;
use sva_common::{
    Cycles, Error, GlobalClock, InitiatorClass, InitiatorId, MemPortReq, PhysAddr, PortTiming,
    Result, CACHE_LINE_SIZE,
};

use crate::backing::SparseMemory;
use crate::channels::ChannelStats;
use crate::dram::{Dram, DramConfig, DramTiming};
use crate::fabric::{Fabric, FabricConfig, InitiatorSnapshot};
use crate::interference::{Interference, InterferenceConfig};
use crate::llc::{Llc, LlcConfig, LlcRequester};
use crate::spm::{Scratchpad, ScratchpadConfig};

/// Timing of a DMA burst: latency to first data plus bus occupancy, so the
/// DMA engine can model outstanding-transaction pipelining.
pub type BurstTiming = DramTiming;

/// Configuration of the whole memory system.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemSysConfig {
    /// Extra DRAM latency inserted by the AXI delayer (the paper's knob).
    pub dram_latency: Cycles,
    /// Fixed DDR controller latency.
    pub controller_latency: Cycles,
    /// Whether the LLC is instantiated at all.
    pub llc_enabled: bool,
    /// LLC geometry.
    pub llc: LlcConfig,
    /// Whether IOMMU page-table-walk traffic is cached by the LLC
    /// (the paper's proposal; disabling it is an ablation).
    pub llc_serves_ptw: bool,
    /// Whether device DMA traffic is cached by the LLC (the paper argues it
    /// must *not* be; enabling it is an ablation).
    pub llc_serves_dma: bool,
    /// L2 scratchpad configuration.
    pub spm: ScratchpadConfig,
    /// Bus geometry between initiators and memory.
    pub bus: BusConfig,
    /// Extra fixed cost of an uncached posted write as seen by the host
    /// (store-buffer drain amortisation).
    pub posted_write_cost: Cycles,
    /// Fabric arbitration layer (per-initiator accounting, optional
    /// contention charging).
    pub fabric: FabricConfig,
}

impl Default for MemSysConfig {
    fn default() -> Self {
        Self {
            dram_latency: Cycles::new(200),
            controller_latency: DramConfig::FPGA_CONTROLLER_LATENCY,
            llc_enabled: true,
            llc: LlcConfig::default(),
            llc_serves_ptw: true,
            llc_serves_dma: false,
            spm: ScratchpadConfig::default(),
            bus: BusConfig::AXI64,
            posted_write_cost: Cycles::new(16),
            fabric: FabricConfig::default(),
        }
    }
}

/// Payload of a fabric access: the buffer data moves through.
///
/// The buffer length is authoritative for the access length.
#[derive(Debug)]
pub enum MemData<'a> {
    /// Read `buf.len()` bytes from memory into the buffer.
    ReadInto(&'a mut [u8]),
    /// Write the buffer's bytes to memory.
    WriteFrom(&'a [u8]),
}

/// One access presented at the unified fabric port of [`MemorySystem`].
#[derive(Debug)]
pub struct MemReq<'a> {
    /// The access descriptor (initiator, direction, address, burstiness,
    /// priority). Its `len` is overwritten from the payload buffer and its
    /// `arrival` from [`MemReq::start`] (or the global clock).
    pub port: MemPortReq,
    /// Initiator-local issue time, when the caller tracks one (DMA bursts,
    /// page-table walks, the host-traffic stream). `None` does **not** mean
    /// "untimed" — the memory system stamps the access with the current
    /// global-clock reading, so every grant arrives at a definite point on
    /// the shared virtual timeline.
    pub start: Option<Cycles>,
    /// The payload buffer.
    pub data: MemData<'a>,
}

impl<'a> MemReq<'a> {
    /// A read of `buf.len()` bytes at `addr` on behalf of `initiator`.
    pub fn read(initiator: InitiatorId, addr: PhysAddr, buf: &'a mut [u8]) -> Self {
        Self {
            port: MemPortReq::read(initiator, addr, buf.len() as u64),
            start: None,
            data: MemData::ReadInto(buf),
        }
    }

    /// A write of `buf` at `addr` on behalf of `initiator`.
    pub fn write(initiator: InitiatorId, addr: PhysAddr, buf: &'a [u8]) -> Self {
        Self {
            port: MemPortReq::write(initiator, addr, buf.len() as u64),
            start: None,
            data: MemData::WriteFrom(buf),
        }
    }

    /// Marks the access as a streaming burst (separate latency/occupancy).
    #[must_use]
    pub fn burst(mut self) -> Self {
        self.port = self.port.as_burst();
        self
    }

    /// Attaches the initiator-local issue time of the access.
    #[must_use]
    pub fn at(mut self, start: Cycles) -> Self {
        self.start = Some(start);
        self
    }

    /// Sets the arbitration priority.
    #[must_use]
    pub fn priority(mut self, priority: u8) -> Self {
        self.port = self.port.with_priority(priority);
        self
    }
}

/// Response of a fabric access.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRsp {
    /// Latency to first data and data-bus occupancy of the access. When
    /// [`FabricConfig::contention_enabled`] is set, the latency includes the
    /// queueing delay and any issue stall.
    pub timing: PortTiming,
    /// Cross-initiator queueing delay the access observed on the shared-bus
    /// timeline at its admission time (bus contention plus waiting for a
    /// response-queue slot).
    pub queue_delay: Cycles,
    /// Stall between the access's arrival and its request-queue admission —
    /// the channel's request FIFO was full, so the *issue* of the access
    /// was held at the fabric port. Initiators that pipeline their own
    /// issue (the DMA engines) must propagate this upstream: the next
    /// request cannot issue while this one waits for a credit. Always zero
    /// with the default unbounded queue depths.
    pub issue_stall: Cycles,
}

impl MemRsp {
    /// Latency to first data.
    pub const fn latency(&self) -> Cycles {
        self.timing.latency
    }

    /// Total blocking time (latency + occupancy).
    pub fn total(&self) -> Cycles {
        self.timing.total()
    }
}

/// Aggregate statistics of the memory system.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemSysStats {
    /// Timed host accesses served.
    pub host_accesses: u64,
    /// Timed PTW accesses served.
    pub ptw_accesses: u64,
    /// Timed DMA bursts served.
    pub dma_bursts: u64,
    /// Bytes moved by DMA bursts.
    pub dma_bytes: u64,
    /// Whole-LLC flushes performed.
    pub llc_flushes: u64,
}

/// The composed memory system of the prototype platform.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    config: MemSysConfig,
    map: AddressMap,
    xbar: Crossbar,
    dram: Dram,
    dram_store: SparseMemory,
    spm: Scratchpad,
    llc: Option<Llc>,
    interference: Option<Interference>,
    fabric: Fabric,
    stats: MemSysStats,
    host_stall_cycles: Counter,
    /// The global simulation clock: stamps accesses whose caller does not
    /// track an issue time, and is advanced to the completion of every
    /// grant. The platform shares one clock across all its components via
    /// [`MemorySystem::attach_clock`].
    clock: GlobalClock,
}

impl MemorySystem {
    /// Builds a memory system from a configuration, using the prototype
    /// address map.
    pub fn new(config: MemSysConfig) -> Self {
        let dram_cfg = DramConfig {
            controller_latency: config.controller_latency,
            delayer_latency: config.dram_latency,
            bus: config.bus,
        };
        Self {
            map: AddressMap::prototype(),
            xbar: Crossbar::new(),
            dram: Dram::new(dram_cfg),
            dram_store: SparseMemory::new(DRAM_SIZE),
            spm: Scratchpad::new(config.spm),
            llc: config.llc_enabled.then(|| Llc::new(config.llc)),
            interference: None,
            fabric: Fabric::new(config.fabric.clone()),
            stats: MemSysStats::default(),
            host_stall_cycles: Counter::new(),
            clock: GlobalClock::new(),
            config,
        }
    }

    /// Shares the platform's global clock with this memory system (replacing
    /// the private clock created by [`MemorySystem::new`]).
    pub fn attach_clock(&mut self, clock: &GlobalClock) {
        self.clock = clock.clone();
    }

    /// The global clock this memory system stamps accesses with.
    pub const fn clock(&self) -> &GlobalClock {
        &self.clock
    }

    /// Opens a new measurement window: drops every fabric channel's
    /// reservations (statistics survive) and restarts the global clock, so
    /// initiator-local cursors restarting at zero do not collide with
    /// reservations stamped in the previous window.
    pub fn open_measurement_window(&mut self) {
        self.fabric.clear_timelines();
        self.dram.clear_response_window();
        self.clock.restart();
    }

    /// Folds fabric reservations (and channel-queue entries) that finish at
    /// or before `watermark` out of the placement index, keeping long
    /// steady-state windows O(live reservations).
    ///
    /// # Contract
    ///
    /// The caller guarantees no future access arrives before the watermark
    /// (see [`Fabric::compact_before`]). On the platform that holds when a
    /// device measurement window closes — every later access is stamped
    /// from the monotone global clock — and between open-loop serving
    /// batches driven off one monotone arrival process. It does **not**
    /// hold mid-window while cluster shards with restarting local cursors
    /// are still being simulated.
    pub fn compact_fabric_before(&mut self, watermark: Cycles) {
        self.fabric.compact_before(watermark);
    }

    /// The configuration this system was built with.
    pub const fn config(&self) -> &MemSysConfig {
        &self.config
    }

    /// The SoC address map.
    pub const fn map(&self) -> &AddressMap {
        &self.map
    }

    /// The LLC, if instantiated.
    pub fn llc(&self) -> Option<&Llc> {
        self.llc.as_ref()
    }

    /// Mutable access to the LLC, if instantiated.
    pub fn llc_mut(&mut self) -> Option<&mut Llc> {
        self.llc.as_mut()
    }

    /// The DRAM timing model.
    pub const fn dram(&self) -> &Dram {
        &self.dram
    }

    /// The crossbar (per-master traffic statistics).
    pub const fn crossbar(&self) -> &Crossbar {
        &self.xbar
    }

    /// Aggregate access statistics.
    pub const fn stats(&self) -> &MemSysStats {
        &self.stats
    }

    /// The fabric arbitration layer (per-initiator statistics).
    pub const fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Per-initiator fabric statistics, in registration order.
    pub fn fabric_stats(&self) -> Vec<InitiatorSnapshot> {
        self.fabric.snapshot()
    }

    /// Per-channel DRAM statistics, indexed by channel.
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.fabric.channel_stats()
    }

    /// Installs (or removes) the synthetic host-interference stream.
    pub fn set_interference(&mut self, config: Option<InterferenceConfig>) {
        self.interference = config.map(Interference::new);
    }

    /// The interference model, if installed.
    pub fn interference(&self) -> Option<&Interference> {
        self.interference.as_ref()
    }

    /// Resets all statistics (contents and cache state are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = MemSysStats::default();
        self.xbar.reset_stats();
        self.dram.reset_stats();
        self.fabric.reset();
        self.host_stall_cycles.reset();
        if let Some(llc) = &mut self.llc {
            llc.reset_stats();
        }
    }

    // ------------------------------------------------------------------
    // Functional (untimed) access
    // ------------------------------------------------------------------

    fn backing_for(&self, addr: PhysAddr, len: u64) -> Result<(RegionKind, u64)> {
        let d = self.map.decode(addr)?;
        match d.kind {
            RegionKind::DramCached | RegionKind::DramBypass | RegionKind::L2Spm => {
                // Whole access must fit in the region; decode the end too.
                if len > 1 {
                    self.map.decode(addr + (len - 1))?;
                }
                Ok((d.kind, d.offset))
            }
            RegionKind::Cluster | RegionKind::IommuRegs => Err(Error::BusDecodeError { addr }),
        }
    }

    /// Functional read from an already-decoded backing region.
    fn read_backing(&self, kind: RegionKind, offset: u64, buf: &mut [u8]) -> Result<()> {
        match kind {
            RegionKind::L2Spm => self.spm.storage().read(offset, buf),
            _ => self.dram_store.read(offset, buf),
        }
    }

    /// Functional write to an already-decoded backing region.
    fn write_backing(&mut self, kind: RegionKind, offset: u64, buf: &[u8]) -> Result<()> {
        match kind {
            RegionKind::L2Spm => self.spm.storage_mut().write(offset, buf),
            _ => self.dram_store.write(offset, buf),
        }
    }

    /// Functional read of `buf.len()` bytes at physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BusDecodeError`] if the address does not decode to a
    /// memory-backed region.
    pub fn read_phys(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<()> {
        let (kind, offset) = self.backing_for(addr, buf.len() as u64)?;
        self.read_backing(kind, offset, buf)
    }

    /// Functional write of `buf` at physical address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BusDecodeError`] if the address does not decode to a
    /// memory-backed region.
    pub fn write_phys(&mut self, addr: PhysAddr, buf: &[u8]) -> Result<()> {
        let (kind, offset) = self.backing_for(addr, buf.len() as u64)?;
        self.write_backing(kind, offset, buf)
    }

    /// Functional read of a little-endian `u64` (page-table entries), on the
    /// backing store's typed single-frame fast path.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from [`MemorySystem::read_phys`].
    pub fn read_u64_phys(&self, addr: PhysAddr) -> Result<u64> {
        let (kind, offset) = self.backing_for(addr, 8)?;
        match kind {
            RegionKind::L2Spm => self.spm.storage().read_u64(offset),
            _ => self.dram_store.read_u64(offset),
        }
    }

    /// Functional write of a little-endian `u64` (the driver's page-table
    /// stores), on the backing store's typed single-frame fast path.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from [`MemorySystem::write_phys`].
    pub fn write_u64_phys(&mut self, addr: PhysAddr, value: u64) -> Result<()> {
        let (kind, offset) = self.backing_for(addr, 8)?;
        match kind {
            RegionKind::L2Spm => self.spm.storage_mut().write_u64(offset, value),
            _ => self.dram_store.write_u64(offset, value),
        }
        .map(|_| ())
    }

    /// Functional read of a little-endian `f32` (kernel pre-pass element
    /// reads), on the backing store's typed single-frame fast path.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from [`MemorySystem::read_phys`].
    pub fn read_f32_phys(&self, addr: PhysAddr) -> Result<f32> {
        let (kind, offset) = self.backing_for(addr, 4)?;
        match kind {
            RegionKind::L2Spm => self.spm.storage().read_f32(offset),
            _ => self.dram_store.read_f32(offset),
        }
    }

    /// Functional write of a little-endian `f32`, on the backing store's
    /// typed single-frame fast path.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from [`MemorySystem::write_phys`].
    pub fn write_f32_phys(&mut self, addr: PhysAddr, value: f32) -> Result<()> {
        let (kind, offset) = self.backing_for(addr, 4)?;
        match kind {
            RegionKind::L2Spm => self.spm.storage_mut().write_f32(offset, value),
            _ => self.dram_store.write_f32(offset, value),
        }
    }

    // ------------------------------------------------------------------
    // Timed access paths
    // ------------------------------------------------------------------

    fn llc_path_enabled_for(&self, requester: LlcRequester, addr: PhysAddr) -> bool {
        if self.llc.is_none() {
            return false;
        }
        let policy = match requester {
            LlcRequester::Host => true,
            LlcRequester::Ptw => self.config.llc_serves_ptw,
            LlcRequester::Dma => self.config.llc_serves_dma,
        };
        policy && self.map.is_llc_cacheable(addr)
    }

    /// Applies interference pressure around one device-side (PTW or DMA)
    /// access and returns the queueing delay to add.
    fn interference_penalty(&mut self, service: Cycles) -> Cycles {
        let Some(intf) = &mut self.interference else {
            return Cycles::ZERO;
        };
        let delay = intf.queue_delay(service);
        // Host traffic evicts lines from the shared LLC.
        let hot_base = PhysAddr::new(sva_axi::addrmap::DRAM_BASE);
        let hot_len = 32 * 1024 * 1024;
        let addrs = intf.pollution_addresses(hot_base, hot_len);
        if let Some(llc) = &mut self.llc {
            for a in addrs {
                llc.access(LlcRequester::Host, a, true);
            }
        }
        delay
    }

    /// Timed access through a cache-line-granular LLC path. Returns the total
    /// latency of touching every line covered by `[addr, addr+len)`.
    fn llc_access(
        &mut self,
        requester: LlcRequester,
        kind: AccessKind,
        addr: PhysAddr,
        len: u64,
    ) -> Cycles {
        let llc_hit_latency = self
            .llc
            .as_ref()
            .map(Llc::hit_latency)
            .unwrap_or(Cycles::ZERO);
        let line = CACHE_LINE_SIZE;
        let mut total = Cycles::ZERO;
        let mut cur = addr.align_down(line);
        let end = addr + len.max(1);
        while cur < end {
            let outcome = self
                .llc
                .as_mut()
                .expect("llc_access called without an LLC")
                .access(requester, cur, kind.is_write());
            total += llc_hit_latency;
            if let Some(wb) = outcome.writeback() {
                // Posted write-back: occupies the DRAM bus but does not stall
                // the requester beyond the bus occupancy.
                let t = self.dram.access(AccessKind::Write, line);
                let _ = wb;
                total += t.occupancy;
            }
            if !outcome.is_hit() {
                let t = self.dram.access(AccessKind::Read, line);
                total += t.total();
            }
            cur += line;
        }
        total
    }

    /// The single timed entry point of the memory fabric.
    ///
    /// Moves the payload functionally, computes the timing of the access
    /// according to the initiator's class and the region's policy, passes the
    /// grant through the fabric arbiter (per-initiator accounting, optional
    /// contention charging) and updates the aggregate statistics. Every
    /// access arrives at a definite point on the global clock: either the
    /// caller's issue time ([`MemReq::start`]) or the clock's current
    /// reading; the clock is advanced to the access's completion.
    ///
    /// # Errors
    ///
    /// Returns a decode error if the access does not decode to a
    /// memory-backed region.
    pub fn access(&mut self, req: MemReq<'_>) -> Result<MemRsp> {
        let MemReq {
            mut port,
            start,
            data,
        } = req;
        let (kind, len) = match &data {
            MemData::ReadInto(buf) => (AccessKind::Read, buf.len() as u64),
            MemData::WriteFrom(buf) => (AccessKind::Write, buf.len() as u64),
        };
        port.len = len;
        port.arrival = start.unwrap_or_else(|| self.clock.now());
        // One address decode serves the whole access: the functional move,
        // the routing and the class-timing policy all consume the same
        // `(region, offset)` — the former per-stage re-decodes were
        // invariant per access and provably timing-neutral to hoist (the
        // decode is pure; the pinned goldens hold bit-identical).
        let (region, offset) = self.backing_for(port.addr, len)?;
        match data {
            MemData::ReadInto(buf) => self.read_backing(region, offset, buf)?,
            MemData::WriteFrom(buf) => self.write_backing(region, offset, buf)?,
        }

        let class = port.initiator.class();
        let master = match class {
            InitiatorClass::Host => MasterPort::Host,
            InitiatorClass::Device => MasterPort::Device,
            InitiatorClass::Ptw => MasterPort::Ptw,
        };
        let txn = match kind {
            AccessKind::Read => MemTxn::read(port.addr, len),
            AccessKind::Write => MemTxn::write(port.addr, len),
        };
        let hop = self.xbar.route(master, &txn);
        let mut timing = self.class_timing(class, kind, region, port.addr, len, hop);

        let outcome = self.fabric.admit(&port, timing);
        let queue = outcome.queue;
        let stall = outcome.issue_stall;
        // Service span of the access *excluding* fabric delays, captured
        // before charging folds them into the latency.
        let service_span = timing.total();
        // Charging rule: DMA queueing is charged whenever contention
        // charging is on (the PR 1/2 model); host and PTW queueing is only
        // charged when the global-clock engine additionally times those
        // classes, so the default configuration stays cycle-identical to
        // the pre-clock model. Issue stalls (request-queue backpressure)
        // follow the same rule: charged into the returned latency so a
        // caller that blocks on latency observes them, while the DMA
        // engines additionally push their issue cursor back.
        let charged = self.config.fabric.contention_enabled
            && (class == InitiatorClass::Device || self.config.fabric.timed_host_ptw);
        if charged {
            timing.latency += queue + stall;
        }
        self.fabric.note_latency(port.initiator, timing.latency);
        // The delayer's response FIFO sees the completion window on the
        // global clock: in flight from the start of service (arrival plus
        // any stall and queueing) for the *uncharged* service span — the
        // charged copy of the delays already moved the start, so using the
        // charged latency here would double-count them. Recorded only when
        // the split-transaction queues are live; the unbounded default has
        // no consumer for the occupancy record and windows are not
        // guaranteed to be opened (and cleared) by every flow.
        if self.config.fabric.queues_bounded() {
            self.dram
                .note_response_window(port.arrival + stall + queue, service_span);
        }
        // Completion on the global clock; when the delays were charged they
        // are already part of the latency.
        let completion =
            port.arrival + timing.total() + if charged { Cycles::ZERO } else { queue + stall };
        self.clock.advance_to(completion);

        match class {
            InitiatorClass::Host => {
                self.stats.host_accesses += 1;
                self.host_stall_cycles.add(timing.latency.raw());
            }
            InitiatorClass::Ptw => self.stats.ptw_accesses += 1,
            InitiatorClass::Device => {
                self.stats.dma_bursts += 1;
                self.stats.dma_bytes += len;
            }
        }
        Ok(MemRsp {
            timing,
            queue_delay: queue,
            issue_stall: stall,
        })
    }

    /// The request-queue credit port serving `addr` — the handle an
    /// initiator holds to observe (or reason about) the backlog of the
    /// channel it issues into. Clones share the fabric's queue state.
    pub fn req_port_for(&self, addr: PhysAddr) -> sva_common::CreditPort {
        self.fabric.req_port_for(addr)
    }

    /// Timing of one access by initiator class, mirroring the three paths of
    /// the prototype (Figure 1): cached host traffic, LLC-served page-table
    /// walks and bypassing DMA bursts.
    ///
    /// Under the global-clock engine ([`FabricConfig::timed_host_ptw`]) host
    /// and PTW accesses additionally reserve their payload beats on the
    /// shared data path, so they block (and are blocked by) concurrent
    /// traffic; the reservation is a deliberate simplification that applies
    /// even to LLC-served accesses (standing in for the shared downstream
    /// bus). Their reported *latency* is unaffected by the extra occupancy —
    /// host/PTW callers block on latency alone.
    fn class_timing(
        &mut self,
        class: InitiatorClass,
        kind: AccessKind,
        region: RegionKind,
        addr: PhysAddr,
        len: u64,
        hop: Cycles,
    ) -> PortTiming {
        let host_ptw_occupancy = if self.config.fabric.timed_host_ptw {
            Cycles::new(self.config.bus.beats_for(len).max(1))
        } else {
            Cycles::ZERO
        };
        match class {
            InitiatorClass::Host => {
                let path = match region {
                    RegionKind::L2Spm => self.spm.access_latency(),
                    _ if self.llc_path_enabled_for(LlcRequester::Host, addr) => {
                        self.llc_access(LlcRequester::Host, kind, addr, len)
                    }
                    _ if kind.is_write() => {
                        // Posted uncached write: the host only pays the bus
                        // occupancy plus a small store-buffer cost.
                        let t = self.dram.access(AccessKind::Write, len);
                        t.occupancy + self.config.posted_write_cost
                    }
                    _ => self.dram.access(kind, len).total(),
                };
                PortTiming {
                    latency: hop + path,
                    occupancy: host_ptw_occupancy,
                }
            }
            InitiatorClass::Ptw => {
                let base = if self.llc_path_enabled_for(LlcRequester::Ptw, addr) {
                    self.llc_access(LlcRequester::Ptw, kind, addr, len)
                } else {
                    self.dram.access(kind, len).total()
                };
                let penalty = self.interference_penalty(base);
                PortTiming {
                    latency: hop + base + penalty,
                    occupancy: host_ptw_occupancy,
                }
            }
            InitiatorClass::Device => {
                let t = self.dma_burst_timing(kind, region, addr, len, hop);
                PortTiming {
                    latency: t.latency,
                    occupancy: t.occupancy,
                }
            }
        }
    }

    /// Timed + functional host read. Returns the latency seen by the host
    /// (excluding its own L1, which is modelled by the host crate).
    ///
    /// Compatibility wrapper over [`MemorySystem::access`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if `addr` is not memory-backed.
    pub fn host_read(&mut self, addr: PhysAddr, buf: &mut [u8]) -> Result<Cycles> {
        let rsp = self.access(MemReq::read(InitiatorId::Host, addr, buf))?;
        Ok(rsp.latency())
    }

    /// Timed + functional host write.
    ///
    /// Writes to uncached regions are posted: the host only pays the bus
    /// occupancy plus a small store-buffer cost, not the full DRAM latency.
    ///
    /// Compatibility wrapper over [`MemorySystem::access`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if `addr` is not memory-backed.
    pub fn host_write(&mut self, addr: PhysAddr, buf: &[u8]) -> Result<Cycles> {
        let rsp = self.access(MemReq::write(InitiatorId::Host, addr, buf))?;
        Ok(rsp.latency())
    }

    /// Timed + functional 8-byte read on the IOMMU page-table-walk port.
    ///
    /// Returns the page-table entry value and the latency of the access.
    ///
    /// Compatibility wrapper over [`MemorySystem::access`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if `addr` is not memory-backed.
    pub fn ptw_read(&mut self, addr: PhysAddr) -> Result<(u64, Cycles)> {
        let mut buf = [0u8; 8];
        let rsp = self.access(MemReq::read(InitiatorId::Ptw, addr, &mut buf))?;
        Ok((u64::from_le_bytes(buf), rsp.latency()))
    }

    /// Timed + functional DMA burst read (device port).
    ///
    /// `addr` is the physical address after IOMMU translation (or the bypass
    /// bus address when translation is disabled).
    ///
    /// Compatibility wrapper over [`MemorySystem::access`] presenting DMA
    /// device 0; the cluster DMA engines call [`MemorySystem::access`]
    /// directly with their own device identity and issue time.
    ///
    /// # Errors
    ///
    /// Returns a decode error if the burst does not decode to memory.
    pub fn dma_read_burst(&mut self, addr: PhysAddr, buf: &mut [u8]) -> Result<BurstTiming> {
        let rsp = self.access(MemReq::read(InitiatorId::dma(0), addr, buf).burst())?;
        Ok(BurstTiming {
            latency: rsp.timing.latency,
            occupancy: rsp.timing.occupancy,
        })
    }

    /// Timed + functional DMA burst write (device port).
    ///
    /// Compatibility wrapper over [`MemorySystem::access`]; see
    /// [`MemorySystem::dma_read_burst`].
    ///
    /// # Errors
    ///
    /// Returns a decode error if the burst does not decode to memory.
    pub fn dma_write_burst(&mut self, addr: PhysAddr, buf: &[u8]) -> Result<BurstTiming> {
        let rsp = self.access(MemReq::write(InitiatorId::dma(0), addr, buf).burst())?;
        Ok(BurstTiming {
            latency: rsp.timing.latency,
            occupancy: rsp.timing.occupancy,
        })
    }

    fn dma_burst_timing(
        &mut self,
        kind: AccessKind,
        region: RegionKind,
        addr: PhysAddr,
        len: u64,
        hop: Cycles,
    ) -> BurstTiming {
        let mut timing = match region {
            RegionKind::L2Spm => BurstTiming {
                latency: self.spm.access_latency(),
                occupancy: Cycles::new(self.config.bus.beats_for(len)),
            },
            _ if self.llc_path_enabled_for(LlcRequester::Dma, addr) => {
                // Ablation path: DMA through the LLC. The burst is broken into
                // line refills, so the whole cost counts as latency (no long
                // streaming window) — exactly the bandwidth loss the paper's
                // bypass avoids.
                let total = self.llc_access(LlcRequester::Dma, kind, addr, len);
                BurstTiming {
                    latency: total,
                    occupancy: Cycles::new(self.config.bus.beats_for(len)),
                }
            }
            _ => self.dram.access(kind, len),
        };
        timing.latency += hop;
        timing.latency += self.interference_penalty(timing.latency);
        timing
    }

    /// Flushes the whole LLC (Listing 1 of the paper) and returns the time it
    /// takes: an index walk plus the posted write-back of every dirty line.
    pub fn flush_llc(&mut self) -> Cycles {
        let Some(llc) = &mut self.llc else {
            return Cycles::ZERO;
        };
        let line = llc.line_bytes();
        let sets_walk = Cycles::new(llc.config().size_bytes / line / 4);
        let dirty = llc.flush_all();
        self.stats.llc_flushes += 1;
        let mut cost = sets_walk;
        for _ in 0..dirty {
            let t = self.dram.access(AccessKind::Write, line);
            cost += t.occupancy;
        }
        cost
    }

    /// Total stall cycles the host has accumulated in this memory system.
    pub fn host_stall_cycles(&self) -> Cycles {
        Cycles::new(self.host_stall_cycles.get())
    }
}

impl Default for MemorySystem {
    fn default() -> Self {
        Self::new(MemSysConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_axi::addrmap::{DRAM_BASE, L2_SPM_BASE, LLC_BYPASS_OFFSET};

    fn sys(latency: u64, llc: bool) -> MemorySystem {
        MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(latency),
            llc_enabled: llc,
            ..MemSysConfig::default()
        })
    }

    #[test]
    fn functional_roundtrip_both_dram_windows() {
        let mut m = sys(200, true);
        let cached = PhysAddr::new(DRAM_BASE + 0x1000);
        let bypass = PhysAddr::new(DRAM_BASE + LLC_BYPASS_OFFSET + 0x1000);
        m.write_phys(cached, &[7u8; 16]).unwrap();
        let mut buf = [0u8; 16];
        // The bypass window aliases the same DRAM cells.
        m.read_phys(bypass, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 16]);
    }

    #[test]
    fn functional_spm_is_separate_from_dram() {
        let mut m = sys(200, true);
        m.write_phys(PhysAddr::new(L2_SPM_BASE), &[1u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        m.read_phys(PhysAddr::new(DRAM_BASE), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn decode_error_for_device_regions() {
        let mut m = sys(200, true);
        assert!(m.write_phys(PhysAddr::new(0x10), &[0u8; 4]).is_err());
        let mut buf = [0u8; 4];
        assert!(m
            .read_phys(PhysAddr::new(sva_axi::addrmap::IOMMU_REGS_BASE), &mut buf)
            .is_err());
    }

    #[test]
    fn host_read_hits_llc_after_first_access() {
        let mut m = sys(600, true);
        let addr = PhysAddr::new(DRAM_BASE + 0x4000);
        let mut buf = [0u8; 8];
        let cold = m.host_read(addr, &mut buf).unwrap();
        let warm = m.host_read(addr, &mut buf).unwrap();
        assert!(cold.raw() > 600, "cold access should pay DRAM latency");
        assert!(warm.raw() < 40, "warm access should hit in the LLC");
    }

    #[test]
    fn host_read_without_llc_always_pays_dram_latency() {
        let mut m = sys(600, false);
        let addr = PhysAddr::new(DRAM_BASE + 0x4000);
        let mut buf = [0u8; 8];
        let first = m.host_read(addr, &mut buf).unwrap();
        let second = m.host_read(addr, &mut buf).unwrap();
        assert!(first.raw() > 600);
        assert!(second.raw() > 600);
    }

    #[test]
    fn reserved_dram_is_uncached_for_host() {
        let mut m = sys(600, true);
        let addr = m.map().reserved_dram_base();
        let mut buf = [0u8; 8];
        let a = m.host_read(addr, &mut buf).unwrap();
        let b = m.host_read(addr, &mut buf).unwrap();
        assert!(a.raw() > 600 && b.raw() > 600);
    }

    #[test]
    fn posted_uncached_writes_are_cheap() {
        let mut m = sys(1000, true);
        let addr = m.map().reserved_dram_base();
        let lat = m.host_write(addr, &[0u8; 64]).unwrap();
        assert!(
            lat.raw() < 100,
            "posted write should not pay full latency, got {lat}"
        );
    }

    #[test]
    fn ptw_reads_benefit_from_llc() {
        let mut with_llc = sys(1000, true);
        let mut without = sys(1000, false);
        let pte_addr = PhysAddr::new(DRAM_BASE + 0x2000);
        with_llc.write_u64_phys(pte_addr, 0x55).unwrap();
        without.write_u64_phys(pte_addr, 0x55).unwrap();

        // Warm the LLC the way the driver does (host writes the PTE).
        let mut buf = [0u8; 8];
        with_llc.host_read(pte_addr, &mut buf).unwrap();

        let (v1, t1) = with_llc.ptw_read(pte_addr).unwrap();
        let (v2, t2) = without.ptw_read(pte_addr).unwrap();
        assert_eq!(v1, 0x55);
        assert_eq!(v2, 0x55);
        assert!(
            t1.raw() < 40,
            "PTW through warm LLC should be fast, got {t1}"
        );
        assert!(
            t2.raw() > 1000,
            "PTW without LLC pays DRAM latency, got {t2}"
        );
    }

    #[test]
    fn ptw_can_be_excluded_from_llc() {
        let mut m = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(1000),
            llc_enabled: true,
            llc_serves_ptw: false,
            ..MemSysConfig::default()
        });
        let pte_addr = PhysAddr::new(DRAM_BASE + 0x2000);
        let mut buf = [0u8; 8];
        m.host_read(pte_addr, &mut buf).unwrap();
        let (_, t) = m.ptw_read(pte_addr).unwrap();
        assert!(t.raw() > 1000);
    }

    #[test]
    fn dma_burst_moves_data_and_reports_timing() {
        let mut m = sys(200, true);
        let bypass = PhysAddr::new(DRAM_BASE + LLC_BYPASS_OFFSET + 0x10_0000);
        let data: Vec<u8> = (0..2048u32).map(|i| (i % 251) as u8).collect();
        let tw = m.dma_write_burst(bypass, &data).unwrap();
        let mut back = vec![0u8; 2048];
        let tr = m.dma_read_burst(bypass, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(tr.occupancy, Cycles::new(256));
        assert!(tr.latency.raw() > 200);
        assert!(tw.latency.raw() > 0);
        assert_eq!(m.stats().dma_bursts, 2);
        assert_eq!(m.stats().dma_bytes, 4096);
    }

    #[test]
    fn dma_bypass_does_not_touch_llc() {
        let mut m = sys(200, true);
        let bypass = PhysAddr::new(DRAM_BASE + LLC_BYPASS_OFFSET);
        let mut buf = [0u8; 64];
        m.dma_read_burst(bypass, &mut buf).unwrap();
        assert_eq!(m.llc().unwrap().stats(LlcRequester::Dma).total(), 0);
    }

    #[test]
    fn dma_through_llc_ablation_breaks_bursts() {
        let mut ablate = MemorySystem::new(MemSysConfig {
            dram_latency: Cycles::new(600),
            llc_serves_dma: true,
            ..MemSysConfig::default()
        });
        let mut normal = sys(600, true);
        // Cached window address so the ablation path actually caches it.
        let addr = PhysAddr::new(DRAM_BASE + 0x20_0000);
        let mut buf = vec![0u8; 2048];
        let t_ablate = ablate.dma_read_burst(addr, &mut buf).unwrap();
        let bypass = PhysAddr::new(DRAM_BASE + LLC_BYPASS_OFFSET + 0x20_0000);
        let t_normal = normal.dma_read_burst(bypass, &mut buf).unwrap();
        // Refilling 32 lines sequentially is far slower than one long burst.
        assert!(t_ablate.latency.raw() > 4 * t_normal.latency.raw());
        assert!(ablate.llc().unwrap().stats(LlcRequester::Dma).total() > 0);
    }

    #[test]
    fn llc_flush_cost_scales_with_dirty_lines() {
        let mut m = sys(200, true);
        let empty_flush = m.flush_llc();
        for i in 0..64u64 {
            m.host_write(PhysAddr::new(DRAM_BASE + i * 64), &[1u8; 8])
                .unwrap();
        }
        let dirty_flush = m.flush_llc();
        assert!(dirty_flush > empty_flush);
        assert_eq!(m.stats().llc_flushes, 2);
    }

    #[test]
    fn flush_llc_without_llc_is_free() {
        let mut m = sys(200, false);
        assert_eq!(m.flush_llc(), Cycles::ZERO);
    }

    #[test]
    fn interference_slows_down_ptw() {
        let pte_addr = PhysAddr::new(DRAM_BASE + 0x3000);
        let run = |interf: bool| -> u64 {
            let mut m = sys(600, false);
            if interf {
                m.set_interference(Some(InterferenceConfig::default()));
            }
            let mut total = 0;
            for i in 0..200u64 {
                let (_, t) = m.ptw_read(pte_addr + i * 8).unwrap();
                total += t.raw();
            }
            total
        };
        let quiet = run(false);
        let noisy = run(true);
        assert!(
            noisy as f64 > quiet as f64 * 1.1,
            "interference should add queueing delay: quiet={quiet} noisy={noisy}"
        );
    }

    /// Window boundary: `open_measurement_window` must reset the fabric's
    /// compaction watermark and live index alongside reservations and
    /// credits — the new window's cycle 0 is reservable again — while the
    /// folded-reservation run total survives like every other statistic.
    #[test]
    fn open_measurement_window_resets_fabric_compaction_state() {
        let mut m = sys(200, true);
        let bypass = PhysAddr::new(DRAM_BASE + LLC_BYPASS_OFFSET + 0x10_0000);
        let mut buf = [0u8; 2048];
        for _ in 0..4 {
            m.dma_read_burst(bypass, &mut buf).unwrap();
            m.clock().advance(Cycles::new(2000));
        }
        m.compact_fabric_before(m.clock().now());
        assert!(m.fabric().compacted_events() > 0, "history was folded");
        assert!(m.fabric().watermark() > Cycles::ZERO);
        let folded = m.fabric().compacted_events();
        m.open_measurement_window();
        assert_eq!(m.fabric().watermark(), Cycles::ZERO, "watermark resets");
        assert_eq!(m.fabric().event_count(), 0, "live index drops");
        assert_eq!(m.fabric().compacted_events(), folded, "run total survives");
        // Cycle 0 of the new window — far below the old watermark — takes a
        // fresh reservation without queueing.
        m.dma_read_burst(bypass, &mut buf).unwrap();
        assert_eq!(m.fabric().event_count(), 1);
        assert_eq!(m.fabric().total().queue_cycles, 0);
    }

    #[test]
    fn stats_reset() {
        let mut m = sys(200, true);
        let mut buf = [0u8; 8];
        m.host_read(PhysAddr::new(DRAM_BASE), &mut buf).unwrap();
        assert_eq!(m.stats().host_accesses, 1);
        m.reset_stats();
        assert_eq!(m.stats().host_accesses, 0);
        assert_eq!(m.crossbar().total_transactions(), 0);
    }
}
