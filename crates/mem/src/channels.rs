//! Address-interleaved DRAM channel selection.
//!
//! The fabric's single DRAM path can be split into independent channels, each
//! with its own data-bus timeline (see [`crate::fabric`]). This module holds
//! the geometry knob — [`DramChannelConfig`] — and the pure address→channel
//! mapping the fabric uses to route every grant.
//!
//! The mapping interleaves the physical address space across channels at
//! [`DramChannelConfig::interleave_granule`]-byte granularity: consecutive
//! granules land on consecutive channels, so a streaming burst train spreads
//! evenly. [`DramChannelConfig::rank_bits`] optionally XOR-folds higher
//! address bits into the selection (the address-hashing trick DRAM
//! controllers use) so power-of-two strides do not all camp on one channel.
//! Every address maps to exactly one channel, making the channels a
//! *partition* of the address space — a property the test layer pins down.

use serde::{Deserialize, Serialize};
use sva_common::PhysAddr;

/// Geometry of the multi-channel DRAM backend.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramChannelConfig {
    /// Number of independent DRAM channels (clamped to at least 1). One
    /// channel reproduces the single shared data-bus timeline of the paper's
    /// prototype cycle-for-cycle.
    pub num_channels: usize,
    /// Number of higher address bits XOR-folded into the channel index
    /// (0 disables folding). Folding decorrelates strided access patterns
    /// from the plain modulo interleave.
    pub rank_bits: u32,
    /// Bytes of consecutive address space served by one channel before the
    /// interleave moves to the next (typically the page or row size).
    pub interleave_granule: u64,
}

impl DramChannelConfig {
    /// Single-channel configuration (the paper's prototype).
    pub const SINGLE: DramChannelConfig = DramChannelConfig {
        num_channels: 1,
        rank_bits: 0,
        interleave_granule: 4096,
    };

    /// A plain page-interleaved configuration with `n` channels.
    pub fn interleaved(n: usize) -> Self {
        Self {
            num_channels: n.max(1),
            ..Self::SINGLE
        }
    }

    /// The effective channel count (never zero).
    pub fn channels(&self) -> usize {
        self.num_channels.max(1)
    }

    /// The channel serving `addr`.
    ///
    /// Pure function of the configuration and the address: the granule index
    /// `addr / interleave_granule`, XOR-folded by `rank_bits` when non-zero,
    /// modulo the channel count.
    ///
    /// The fabric routes a whole access by its *start* address: a burst that
    /// straddles a granule boundary occupies (and is accounted to) the
    /// starting granule's channel only. DMA bursts are split at page
    /// boundaries upstream, so with the default 4 KiB granule this never
    /// happens; shrinking the granule below the burst size trades that
    /// precision for finer interleaving.
    pub fn channel_for(&self, addr: PhysAddr) -> usize {
        let n = self.channels();
        if n == 1 {
            return 0;
        }
        let granule = self.interleave_granule.max(1);
        let block = addr.raw() / granule;
        let folded = if self.rank_bits > 0 {
            block ^ (block >> self.rank_bits)
        } else {
            block
        };
        (folded % n as u64) as usize
    }
}

impl Default for DramChannelConfig {
    fn default() -> Self {
        Self::SINGLE
    }
}

/// Aggregate fabric-port statistics of one DRAM channel.
///
/// Accounted **by address at the fabric port**: every grant is charged to
/// its address's channel, including accesses the LLC or SPM ends up serving
/// without touching DRAM (this is what keeps the per-channel rows summing
/// exactly to the per-initiator fabric totals). Read the rows as "traffic
/// addressed to this channel's slice of memory", not as DRAM-controller
/// throughput. Only timed grants (DMA bursts) additionally reserve the
/// channel's data-bus timeline and can accumulate `queue_cycles`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Grants routed to the channel (timed and untimed).
    pub grants: u64,
    /// Bytes of traffic addressed to the channel.
    pub bytes: u64,
    /// Data-bus occupancy accumulated on the channel.
    pub occupancy_cycles: u64,
    /// Cross-initiator queueing observed on the channel's timeline.
    pub queue_cycles: u64,
    /// Issue stalls accumulated at the channel's request queue (admissions
    /// delayed because the queue was full; zero with unbounded depths).
    pub issue_stall_cycles: u64,
    /// Highest request-queue occupancy observed at any admission (zero with
    /// unbounded depths, whose occupancy is never tracked).
    pub req_queue_peak: u64,
    /// Highest response-queue occupancy observed at any grant (zero with
    /// unbounded depths).
    pub rsp_queue_peak: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_channel_maps_everything_to_zero() {
        let cfg = DramChannelConfig::SINGLE;
        for addr in [0u64, 0x8000_0000, 0xFFFF_FFFF_F000] {
            assert_eq!(cfg.channel_for(PhysAddr::new(addr)), 0);
        }
    }

    #[test]
    fn consecutive_granules_rotate_channels() {
        let cfg = DramChannelConfig::interleaved(4);
        for g in 0..16u64 {
            let addr = PhysAddr::new(0x8000_0000 + g * 4096);
            assert_eq!(
                cfg.channel_for(addr),
                ((0x8000_0000 / 4096 + g) % 4) as usize
            );
            // Every byte of the granule stays on the granule's channel.
            let last = PhysAddr::new(addr.raw() + 4095);
            assert_eq!(cfg.channel_for(addr), cfg.channel_for(last));
        }
    }

    #[test]
    fn rank_folding_spreads_power_of_two_strides() {
        // A stride of (num_channels * granule) camps on one channel without
        // folding; rank_bits must break the pattern.
        let plain = DramChannelConfig::interleaved(4);
        let folded = DramChannelConfig {
            rank_bits: 2,
            ..DramChannelConfig::interleaved(4)
        };
        let hits = |cfg: &DramChannelConfig| -> Vec<usize> {
            (0..64u64)
                .map(|i| cfg.channel_for(PhysAddr::new(i * 4 * 4096)))
                .collect()
        };
        let p = hits(&plain);
        assert!(p.iter().all(|&c| c == p[0]), "plain modulo camps");
        let f = hits(&folded);
        let distinct = {
            let mut v = f.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(distinct > 1, "folding spreads the stride: {f:?}");
    }

    #[test]
    fn zero_channels_and_zero_granule_are_clamped() {
        let cfg = DramChannelConfig {
            num_channels: 0,
            rank_bits: 0,
            interleave_granule: 0,
        };
        assert_eq!(cfg.channels(), 1);
        assert_eq!(cfg.channel_for(PhysAddr::new(0x1234)), 0);
    }
}
