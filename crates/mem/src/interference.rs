//! Synthetic host interference on the shared memory system.
//!
//! Section IV-C of the paper measures how concurrent host traffic affects the
//! IOMMU's page-table-walk latency: the host issues a synthetic random memory
//! stream while the accelerator runs, which (a) occupies the system bus and
//! DRAM controller, queueing device-side requests behind host requests, and
//! (b) evicts page-table-entry lines from the shared LLC. The paper measures
//! an average PTW slowdown of about 20 %.
//!
//! The [`Interference`] model reproduces both effects statistically: each
//! device-side access suffers a queueing delay proportional to the configured
//! bus utilisation of the host stream, and a matching number of random host
//! lines are touched in the LLC to model capacity pressure.

use serde::{Deserialize, Serialize};
use sva_common::rng::DeterministicRng;
use sva_common::stats::Counter;
use sva_common::{Cycles, PhysAddr};

/// Configuration of the synthetic host-interference stream.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InterferenceConfig {
    /// Fraction of DRAM/bus service capacity consumed by the host stream,
    /// in `[0, 0.95]`. The default of 0.5 corresponds to the host issuing
    /// back-to-back random accesses as in the paper's experiment.
    pub intensity: f64,
    /// Expected number of LLC lines touched by host traffic per device-side
    /// memory access (capacity/conflict pressure on cached PTEs).
    pub llc_lines_per_access: f64,
    /// Seed for the deterministic random stream.
    pub seed: u64,
}

impl Default for InterferenceConfig {
    fn default() -> Self {
        Self {
            intensity: 0.5,
            llc_lines_per_access: 0.25,
            seed: 0xC0FFEE,
        }
    }
}

/// Statistics collected by the interference model.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterferenceStats {
    /// Total queueing cycles injected into device-side accesses.
    pub queue_cycles: u64,
    /// Number of LLC lines polluted by the synthetic host stream.
    pub polluted_lines: u64,
}

/// The synthetic host-traffic interference model.
#[derive(Clone, Debug)]
pub struct Interference {
    config: InterferenceConfig,
    rng: DeterministicRng,
    queue_cycles: Counter,
    polluted_lines: Counter,
    /// Fractional accumulator for LLC pollution so rates below one line per
    /// access still generate pressure over time.
    pollution_accumulator: f64,
}

impl Interference {
    /// Creates an interference model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is not within `[0, 0.95]`.
    pub fn new(config: InterferenceConfig) -> Self {
        assert!(
            (0.0..=0.95).contains(&config.intensity),
            "interference intensity must be in [0, 0.95]"
        );
        Self {
            rng: DeterministicRng::new(config.seed),
            config,
            queue_cycles: Counter::new(),
            polluted_lines: Counter::new(),
            pollution_accumulator: 0.0,
        }
    }

    /// The configuration of this model.
    pub const fn config(&self) -> &InterferenceConfig {
        &self.config
    }

    /// Queueing delay suffered by one device-side access whose uncontended
    /// service time is `service`.
    ///
    /// Uses the M/D/1 waiting-time shape `rho / (2 (1 - rho))` scaled by the
    /// service time, with a uniform random factor so individual accesses see
    /// variation around the mean, as on the real shared bus.
    pub fn queue_delay(&mut self, service: Cycles) -> Cycles {
        let rho = self.config.intensity;
        if rho <= 0.0 || service == Cycles::ZERO {
            return Cycles::ZERO;
        }
        let mean_wait = rho / (2.0 * (1.0 - rho)) * service.as_f64();
        // Uniform in [0, 2*mean) keeps the expectation at mean_wait.
        let wait = (2.0 * mean_wait * self.rng.next_f64()).round() as u64;
        self.queue_cycles.add(wait);
        Cycles::new(wait)
    }

    /// Returns the physical addresses of host lines to touch in the LLC to
    /// model capacity pressure for one device-side access. Addresses are
    /// uniformly distributed over `[hot_base, hot_base + hot_len)`, the
    /// working set of the synthetic host program.
    pub fn pollution_addresses(&mut self, hot_base: PhysAddr, hot_len: u64) -> Vec<PhysAddr> {
        if hot_len == 0 {
            return Vec::new();
        }
        self.pollution_accumulator += self.config.llc_lines_per_access;
        let n = self.pollution_accumulator.floor() as u64;
        self.pollution_accumulator -= n as f64;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let off = self.rng.next_below(hot_len) & !63;
            out.push(hot_base + off);
            self.polluted_lines.incr();
        }
        out
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> InterferenceStats {
        InterferenceStats {
            queue_cycles: self.queue_cycles.get(),
            polluted_lines: self.polluted_lines.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_adds_no_delay() {
        let mut i = Interference::new(InterferenceConfig {
            intensity: 0.0,
            ..InterferenceConfig::default()
        });
        assert_eq!(i.queue_delay(Cycles::new(1000)), Cycles::ZERO);
    }

    #[test]
    fn mean_delay_tracks_intensity() {
        let mut low = Interference::new(InterferenceConfig {
            intensity: 0.2,
            ..InterferenceConfig::default()
        });
        let mut high = Interference::new(InterferenceConfig {
            intensity: 0.8,
            ..InterferenceConfig::default()
        });
        let service = Cycles::new(600);
        let n = 2000;
        let avg = |m: &mut Interference| -> f64 {
            (0..n).map(|_| m.queue_delay(service).raw()).sum::<u64>() as f64 / n as f64
        };
        let a_low = avg(&mut low);
        let a_high = avg(&mut high);
        assert!(a_high > 3.0 * a_low, "high={a_high} low={a_low}");
        // Analytic means: 0.125*600=75 and 2.0*600=1200.
        assert!((a_low - 75.0).abs() < 20.0);
        assert!((a_high - 1200.0).abs() < 150.0);
    }

    #[test]
    fn pollution_respects_rate() {
        let mut i = Interference::new(InterferenceConfig {
            llc_lines_per_access: 0.5,
            ..InterferenceConfig::default()
        });
        let base = PhysAddr::new(0x8000_0000);
        let total: usize = (0..100)
            .map(|_| i.pollution_addresses(base, 1 << 20).len())
            .sum();
        assert_eq!(total, 50);
        assert_eq!(i.stats().polluted_lines, 50);
    }

    #[test]
    fn pollution_addresses_are_line_aligned_and_in_range() {
        let mut i = Interference::new(InterferenceConfig {
            llc_lines_per_access: 3.0,
            ..InterferenceConfig::default()
        });
        let base = PhysAddr::new(0x8000_0000);
        for addr in i.pollution_addresses(base, 1 << 16) {
            assert_eq!(addr.raw() % 64, 0);
            assert!(addr >= base && addr < base + (1 << 16));
        }
    }

    #[test]
    #[should_panic(expected = "intensity")]
    fn rejects_saturating_intensity() {
        let _ = Interference::new(InterferenceConfig {
            intensity: 0.99,
            ..InterferenceConfig::default()
        });
    }
}
