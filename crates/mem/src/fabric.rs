//! Arbitration and per-initiator accounting of the unified memory fabric.
//!
//! Every timed access entering [`crate::MemorySystem::access`] passes through
//! the [`Fabric`]: it registers the initiator on first contact, keeps
//! per-initiator [`InitiatorStats`], and models the DRAM data path as one or
//! more **channel timelines** so overlapping traffic from *different*
//! initiators is observed as queueing (contention).
//!
//! # Timing model
//!
//! The simulator is call-driven: each initiator simulates its own activity
//! and presents accesses in program order, stamped with an arrival time on
//! the **global simulation clock** ([`MemPortReq::arrival`]). Initiators
//! that track their own pipeline (DMA engines, the page-table walker, the
//! host-traffic stream) stamp the arrival themselves; for everything else
//! the memory system fills in the platform's `GlobalClock` reading, so
//! *every* grant is timed — the untimed fast path of earlier revisions is
//! gone. Every access is routed to a DRAM channel by its address (see
//! [`crate::channels`]); the fabric reserves that channel's data bus as
//! **intervals** `[start, start + occupancy)` on the channel's virtual
//! timeline. A new grant is placed at the earliest point at or after
//! its arrival that does not overlap a conflicting interval on *its* channel;
//! the shift is the access's queueing delay. Intervals owned by the same
//! initiator are ignored — serialising an engine's own payloads is that
//! engine's pipelining model, and charging it again here would double-count.
//! Traffic on different channels never conflicts, which is what turns the
//! channel count into a bandwidth knob.
//!
//! Because placement works on arrival timestamps rather than call order,
//! streams that are simulated sequentially but *conceptually concurrent*
//! (the per-cluster DMA shards of a multi-cluster offload, whose local
//! clocks all start at zero) interleave correctly: a later-simulated shard
//! slots its bursts into the bus idle gaps the earlier shard left between
//! its compute phases, and only genuinely overlapping occupancy queues.
//!
//! # Arbitration policies
//!
//! Which already-reserved intervals a grant must queue behind is decided by
//! the configured [`ArbitrationPolicy`]:
//!
//! * **RoundRobin** (default) — first-fit in simulation order, exactly the
//!   pre-channel contention model: a grant queues behind every conflicting
//!   interval owned by a different initiator. A [`MemPortReq::priority`]
//!   above zero wins arbitration outright (placed at arrival; its occupancy
//!   still blocks priority-0 traffic). First-fit placement makes measured
//!   queueing a staircase across shards (the first-simulated DMA stream
//!   reports zero queue cycles), so read per-initiator queueing as a
//!   placement-order-dependent bound, not a fairness split.
//! * **FixedPriority** — strict ordering by [`MemPortReq::priority`]: a
//!   grant queues exactly behind conflicting intervals of **equal or
//!   higher** request priority and ignores lower-priority ones (it is
//!   granted at arrival over them, like the PR 1 priority escape hatch, and
//!   its occupancy still blocks them). With all priorities equal this
//!   degenerates to RoundRobin.
//! * **Weighted(w)** — deficit-weighted QoS: the fabric tracks each timed
//!   initiator's accumulated bus occupancy (its *service*). A grant skips a
//!   conflicting interval when its own weighted service — including the
//!   access at hand — still lags the interval owner's
//!   (`(served(me) + occ) · w(owner) < served(owner) · w(me)`), i.e. an
//!   under-served initiator is granted at its arrival instead of queueing.
//!   Serving it grows its service counter, so the bypass is self-limiting:
//!   no initiator with a non-zero weight can be starved, and equal weights
//!   alternate the queueing burden instead of the round-robin staircase.
//!   Weights index timed initiators in first-reservation order (cluster
//!   shard order on the platform). [`MemPortReq::priority`] is ignored under
//!   this policy — request priorities cannot defeat the configured service
//!   split.
//!
//! # Split-transaction channel queues
//!
//! Each DRAM channel additionally carries a finite **request queue** and
//! **response queue** ([`FabricConfig::req_queue_depth`] /
//! [`FabricConfig::rsp_queue_depth`], both [`sva_common::TimedQueue`]s
//! behind [`CreditPort`] handles). An access must acquire a request-queue
//! credit at its arrival: if the queue is full, admission — and therefore
//! *issue* — is delayed, and the delay is reported as the initiator's
//! [`InitiatorStats::issue_stall_cycles`]. The DMA engines propagate that
//! stall upstream into their issue pipeline (the next burst cannot issue
//! while the current one waits at the port), the batched page-table walker
//! bounds its in-flight reads by the same credits, and the host-traffic
//! stream records the stalls it observes. A grant drains the request queue
//! when its bus service starts and then occupies a **response-queue** slot
//! until the initiator retires the completion; a request is not served
//! while there is no room for its response (the wait is charged like bus
//! queueing). With both depths at `usize::MAX` — the default — nothing
//! ever stalls, no queue state is even recorded, and the fabric is
//! bit-identical to the pure interval-reservation model (the golden tests
//! pin this identity).
//!
//! # Host and PTW traffic on the timeline
//!
//! Host loads/stores and page-table-walk reads are placed on the channel
//! timelines like everything else, so the queueing they *observe* behind
//! DMA occupancy is always measured (their `queue_cycles` accounting is
//! live even in the default configuration). What they *contribute* is
//! governed by [`FabricConfig::timed_host_ptw`]:
//!
//! * **off** (default) — host/PTW grants carry zero occupancy, reserve
//!   nothing, and their measured queueing is never charged into returned
//!   latencies. DMA placement is bit-identical to the pre-global-clock
//!   model, so pinned golden cycle counts hold.
//! * **on** (the global-clock engine) — host/PTW grants reserve their
//!   payload beats on their address's channel timeline (a deliberate
//!   simplification: even LLC-served accesses reserve their beats, standing
//!   in for the shared downstream bus) and, when
//!   [`FabricConfig::contention_enabled`] is also set, the queueing they
//!   observe is charged into their returned latencies. Host streams then
//!   slow the walker and the DMA engines down — the host-interference
//!   experiments of the paper become first-class sweeps.
//!
//! By default the measured queueing delay is **accounting only** — returned
//! latencies are unchanged, so a single-cluster platform reproduces the
//! paper's prototype cycle-for-cycle. Setting
//! [`FabricConfig::contention_enabled`] adds the delay to the returned
//! latency, which turns fabric contention into a sweepable dimension. With a
//! single initiator nothing ever queues, so charging is also
//! timing-neutral at `N = 1`.
//!
//! # Indexed placement engine
//!
//! Placement is served by [`sva_common::ReservationIndex`]: each channel's
//! reservation timeline is keyed by interval **end**, so one logarithmic
//! range probe returns the latest conflicting reservation end — finished
//! history is invisible to the probe instead of being re-scanned on every
//! retry — and the arbiter's slot/weight/membership lookups on the grant
//! path are O(1) caches. The engine is cycle-identical to the retained
//! reference implementation ([`crate::NaiveFabric`], the original
//! scan-with-retry algorithm); the `fabric_identity` property suite pins
//! that identity on randomized workloads across every arbitration policy.
//!
//! Long open-loop windows additionally stay O(live reservations) rather
//! than O(grants): a caller that guarantees no future grant arrives before
//! a watermark may fold finished history with [`Fabric::compact_before`]
//! (the platform drives this when a device measurement window closes —
//! every later access is stamped from the monotone global clock). The
//! fold is observable through [`Fabric::event_count`] /
//! [`Fabric::compacted_events`] / [`Fabric::watermark`], mirroring
//! [`sva_common::TimedQueue`].

use serde::{Deserialize, Serialize};
use sva_common::{
    ArbitrationPolicy, CreditPort, Cycles, InitiatorClass, InitiatorId, InitiatorStats, MemPortReq,
    PortTiming, ReservationIndex,
};

use crate::channels::{ChannelStats, DramChannelConfig};

/// Configuration of the fabric arbitration layer.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// When `true`, cross-initiator queueing delay (waiting for the shared
    /// data bus) is added to returned latencies. Off by default so
    /// single-initiator timing exactly reproduces the paper's prototype.
    pub contention_enabled: bool,
    /// Multi-channel DRAM geometry. The default single channel reproduces
    /// the paper's one shared data-bus timeline cycle-for-cycle.
    pub channels: DramChannelConfig,
    /// Which conflicting reservations a grant queues behind.
    pub policy: ArbitrationPolicy,
    /// The global-clock engine switch: when set, host and PTW grants
    /// reserve their payload beats on the channel timelines (so they block
    /// DMA and each other) and their measured queueing is charged into
    /// returned latencies whenever [`FabricConfig::contention_enabled`] is
    /// also set. Off by default so existing golden cycle counts hold.
    pub timed_host_ptw: bool,
    /// Depth of each channel's **request queue**: how many grants may sit
    /// between admission at the fabric port and the start of their bus
    /// service. A full request queue stalls the *issue* of the next access
    /// — the stall is reported as [`InitiatorStats::issue_stall_cycles`]
    /// and, for DMA engines, pushes their issue cursor back (credit-based
    /// backpressure). `usize::MAX` (the default) is unbounded: the pure
    /// reservation model, cycle-identical to the pre-split-transaction
    /// fabric.
    pub req_queue_depth: usize,
    /// Depth of each channel's **response queue**: how many completions may
    /// be outstanding between their bus grant and the initiator retiring
    /// them. A full response queue delays the grant itself (split
    /// transaction: a request is not served while there is no room for its
    /// response); the delay is charged like bus queueing. `usize::MAX` (the
    /// default) is unbounded.
    pub rsp_queue_depth: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self {
            contention_enabled: false,
            channels: DramChannelConfig::default(),
            policy: ArbitrationPolicy::default(),
            timed_host_ptw: false,
            req_queue_depth: usize::MAX,
            rsp_queue_depth: usize::MAX,
        }
    }
}

impl FabricConfig {
    /// Whether either channel queue has a finite depth (the split-transaction
    /// flow-control machinery only runs in that case; unbounded queues cost
    /// nothing and change nothing).
    pub const fn queues_bounded(&self) -> bool {
        self.req_queue_depth != usize::MAX || self.rsp_queue_depth != usize::MAX
    }
}

/// Outcome of one fabric admission: the split of the delay an access
/// observed between waiting for a request-queue credit (issue-side
/// backpressure) and waiting on the bus/response path (downstream
/// queueing).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GrantOutcome {
    /// Cross-initiator queueing between admission and bus service (includes
    /// waiting for a response-queue slot).
    pub queue: Cycles,
    /// Stall between arrival and request-queue admission (the channel's
    /// request FIFO was full). Zero with unbounded depths.
    pub issue_stall: Cycles,
}

impl GrantOutcome {
    /// Total delay between the access's arrival and the start of its bus
    /// service.
    pub fn total_delay(&self) -> Cycles {
        self.queue + self.issue_stall
    }
}

/// Snapshot of one initiator's accounting, labelled by identity.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitiatorSnapshot {
    /// Who the numbers belong to.
    pub id: InitiatorId,
    /// The accumulated statistics.
    pub stats: InitiatorStats,
}

/// The data-bus timeline, channel queues and accounting of one DRAM channel.
#[derive(Debug)]
struct ChannelTimeline {
    /// Bus reservations of timed grants: an end-indexed
    /// [`ReservationIndex`], probed logarithmically for the latest
    /// conflicting end. Grows with the number of *live* reservations only —
    /// history is folded by [`Fabric::compact_before`] and dropped at
    /// window boundaries ([`Fabric::clear_timelines`]).
    reservations: ReservationIndex,
    /// The channel's request queue: a grant occupies a slot from admission
    /// until the bus starts serving it. Initiators acquire a credit here
    /// before their request enters the channel.
    req: CreditPort,
    /// The channel's response queue: a completion occupies a slot from its
    /// bus grant until the initiator retires it.
    rsp: CreditPort,
    /// Aggregate per-channel statistics.
    stats: ChannelStats,
}

impl ChannelTimeline {
    fn new(req_depth: usize, rsp_depth: usize) -> Self {
        Self {
            reservations: ReservationIndex::new(),
            req: CreditPort::new(req_depth),
            rsp: CreditPort::new(rsp_depth),
            stats: ChannelStats::default(),
        }
    }
}

impl Clone for ChannelTimeline {
    /// A cloned timeline belongs to an **independent** simulation (platform
    /// clones are independent runs): the credit queues are deep-copied so
    /// the clone cannot consume — or leak — the original's credits.
    fn clone(&self) -> Self {
        Self {
            reservations: self.reservations.clone(),
            req: self.req.deep_clone(),
            rsp: self.rsp.deep_clone(),
            stats: self.stats,
        }
    }
}

/// Direct-map initiator registry: O(1) slot resolution on the grant path,
/// replacing the linear registry scan. Scalar classes get one cell each;
/// DMA slots are indexed by IOMMU device ID (platform device IDs are small
/// and dense — one per accelerator cluster).
#[derive(Clone, Debug, Default)]
struct SlotMap {
    host: Option<usize>,
    host_stream: Option<usize>,
    ptw: Option<usize>,
    dma: Vec<Option<usize>>,
}

impl SlotMap {
    fn get(&self, id: InitiatorId) -> Option<usize> {
        match id {
            InitiatorId::Host => self.host,
            InitiatorId::HostStream => self.host_stream,
            InitiatorId::Ptw => self.ptw,
            InitiatorId::Dma { device } => self.dma.get(device as usize).copied().flatten(),
        }
    }

    fn set(&mut self, id: InitiatorId, slot: usize) {
        match id {
            InitiatorId::Host => self.host = Some(slot),
            InitiatorId::HostStream => self.host_stream = Some(slot),
            InitiatorId::Ptw => self.ptw = Some(slot),
            InitiatorId::Dma { device } => {
                let device = device as usize;
                if self.dma.len() <= device {
                    self.dma.resize(device + 1, None);
                }
                self.dma[device] = Some(slot);
            }
        }
    }
}

/// The arbitration/accounting layer in front of the shared memory path.
#[derive(Clone, Debug)]
pub struct Fabric {
    config: FabricConfig,
    /// Registration order; the order in which streams were first simulated,
    /// which is also the order first-fit placement implicitly favours.
    initiators: Vec<(InitiatorId, InitiatorStats)>,
    /// O(1) identity → slot map for the grant path.
    slots: SlotMap,
    /// One data-bus timeline per DRAM channel.
    channels: Vec<ChannelTimeline>,
    /// Accumulated timed bus occupancy per slot (the service counter of the
    /// weighted policy).
    served: Vec<u64>,
    /// Slots in the order they first placed a timed reservation; the index
    /// into this list is the weight index of the `Weighted` policy.
    timed_order: Vec<usize>,
    /// Cached per-slot policy weight, valid only while the matching
    /// [`Fabric::in_timed_order`] flag is set (written when the slot joins
    /// `timed_order`, whose membership never changes within a window).
    timed_weight: Vec<u32>,
    /// Per-slot `timed_order` membership flag — the O(1) replacement for
    /// `timed_order.contains` on every occupying grant.
    in_timed_order: Vec<bool>,
    /// The weight every non-member slot currently resolves to:
    /// `policy.weight(timed_order.len())`, refreshed whenever `timed_order`
    /// grows (a moving fallback — late joiners weigh as the *next* index).
    fallback_weight: u32,
    /// Initiator holding the most recent grant.
    last_owner: Option<InitiatorId>,
    grants: u64,
    grant_switches: u64,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new(FabricConfig::default())
    }
}

impl Fabric {
    /// Creates a fabric with the given configuration.
    pub fn new(config: FabricConfig) -> Self {
        let n = config.channels.channels();
        let channels = (0..n)
            .map(|_| ChannelTimeline::new(config.req_queue_depth, config.rsp_queue_depth))
            .collect();
        let fallback_weight = config.policy.weight(0);
        Self {
            config,
            initiators: Vec::new(),
            slots: SlotMap::default(),
            channels,
            served: Vec::new(),
            timed_order: Vec::new(),
            timed_weight: Vec::new(),
            in_timed_order: Vec::new(),
            fallback_weight,
            last_owner: None,
            grants: 0,
            grant_switches: 0,
        }
    }

    /// The configuration this fabric was built with.
    pub const fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Registers `id` if needed and returns its slot index (O(1) via the
    /// direct map).
    fn slot(&mut self, id: InitiatorId) -> usize {
        if let Some(slot) = self.slots.get(id) {
            return slot;
        }
        let slot = self.initiators.len();
        self.initiators.push((id, InitiatorStats::default()));
        self.served.push(0);
        self.timed_weight.push(0);
        self.in_timed_order.push(false);
        self.slots.set(id, slot);
        slot
    }

    /// The weight of `slot` under the weighted policy: its position in the
    /// timed-reservation order, served from the per-slot cache (members are
    /// stamped when they join `timed_order`; everyone else resolves to the
    /// moving fallback at the list's current length).
    fn weight_of(&self, slot: usize) -> u32 {
        if self.in_timed_order[slot] {
            self.timed_weight[slot]
        } else {
            self.fallback_weight
        }
    }

    /// Whether a grant by `slot` with occupancy `occ` must queue behind a
    /// conflicting reservation `(owner, owner_prio)` under the configured
    /// policy.
    fn queues_behind(&self, slot: usize, prio: u8, occ: u64, owner: usize, owner_prio: u8) -> bool {
        if owner == slot {
            return false;
        }
        match &self.config.policy {
            ArbitrationPolicy::RoundRobin => true,
            ArbitrationPolicy::FixedPriority => owner_prio >= prio,
            ArbitrationPolicy::Weighted(_) => {
                // Queue unless this initiator's weighted service — counting
                // the access at hand — still lags the owner's.
                let me = (self.served[slot] + occ) as u128 * self.weight_of(owner) as u128;
                let them = self.served[owner] as u128 * self.weight_of(slot) as u128;
                me >= them
            }
        }
    }

    /// Grants one access and returns the cross-initiator queueing delay the
    /// access observed on its channel's data-bus timeline.
    ///
    /// Compatibility wrapper over [`Fabric::admit`] that discards the
    /// issue-stall component (always zero with the default unbounded queue
    /// depths).
    pub fn grant(&mut self, req: &MemPortReq, timing: PortTiming) -> Cycles {
        self.admit(req, timing).queue
    }

    /// Admits one access through the split-transaction flow of its channel
    /// and returns the delay split the access observed.
    ///
    /// The access first acquires a **request-queue credit** at its arrival —
    /// a full request queue delays admission, and the delay is the
    /// initiator's *issue stall* (upstream backpressure: a DMA engine's next
    /// burst cannot issue while this one waits at the port). From the
    /// admission point the grant is placed on the channel's data-bus
    /// timeline under the configured arbitration policy, additionally
    /// waiting for a **response-queue slot** (split transaction: a request
    /// is not served while there is no room for its response). The bus shift
    /// plus the response wait is the access's *queueing delay*. The grant
    /// drains the request queue when bus service starts; the completion
    /// occupies the response queue until the initiator retires it
    /// (`placed + occupancy + latency`).
    ///
    /// With both depths unbounded (the default) nothing ever stalls and the
    /// placement is bit-identical to the pure reservation model. Host and
    /// PTW grants only participate in the channel queues under the
    /// global-clock engine ([`FabricConfig::timed_host_ptw`]), mirroring
    /// their bus-occupancy rule.
    ///
    /// Placement starts at [`MemPortReq::arrival`] — every grant carries an
    /// arrival time on the global clock; there is no untimed path. The
    /// caller is responsible for deciding whether the returned delays are
    /// charged into the access's latency (see
    /// [`FabricConfig::contention_enabled`] and
    /// [`FabricConfig::timed_host_ptw`]) and for reporting the final latency
    /// via [`Fabric::note_latency`].
    pub fn admit(&mut self, req: &MemPortReq, timing: PortTiming) -> GrantOutcome {
        let slot = self.slot(req.initiator);
        {
            let stats = &mut self.initiators[slot].1;
            if req.dir.is_write() {
                stats.writes += 1;
            } else {
                stats.reads += 1;
            }
            if req.burst {
                stats.bursts += 1;
            }
            stats.bytes += req.len;
            stats.occupancy_cycles += timing.occupancy.raw();
        }
        let channel = self.config.channels.channel_for(req.addr);
        {
            let ch = &mut self.channels[channel].stats;
            ch.grants += 1;
            ch.bytes += req.len;
            ch.occupancy_cycles += timing.occupancy.raw();
        }

        // Split-transaction admission. Queue participation mirrors the
        // bus-occupancy rule: DMA always participates, host/PTW only under
        // the global-clock engine, and nothing participates while both
        // depths are unbounded (the flow-control machinery is skipped so
        // the default configuration is bit-identical to the pure
        // reservation model).
        let arrival = req.arrival.raw();
        let occupancy = timing.occupancy.raw();
        let participates = self.config.queues_bounded()
            && (req.initiator.class() == InitiatorClass::Device || self.config.timed_host_ptw);

        // Request-queue credit: a full request FIFO delays admission; the
        // delay is the initiator's issue stall (upstream backpressure).
        let admitted = if participates {
            self.channels[channel].req.admission_at(req.arrival).raw()
        } else {
            arrival
        };
        let issue_stall = admitted - arrival;

        // Channel timeline: every grant is placed at its admission (there is
        // no untimed traffic left); grants with zero occupancy observe
        // queueing but reserve nothing. The priority escape hatch — a
        // priority > 0 placed at its admission unconditionally — exists only
        // under RoundRobin (the PR 1 behaviour). FixedPriority folds the
        // priority into the conflict predicate (equal priorities still queue
        // behind each other), and Weighted ignores it entirely so request
        // priorities cannot defeat the configured service split. Even a
        // priority winner needs a free response-queue slot.
        let mut placed = admitted;
        let wins_outright =
            req.priority > 0 && matches!(self.config.policy, ArbitrationPolicy::RoundRobin);
        loop {
            if !wins_outright {
                // One logarithmic probe returns the latest conflicting
                // reservation end. Every conflicting interval blocks all
                // placements up to its own end, so jumping straight there
                // is the joint fixpoint step of the retry loop — the
                // placement is bit-identical to retrying one conflict at a
                // time (the policy predicate does not depend on `placed`).
                let conflict = self.channels[channel].reservations.max_conflicting_end(
                    placed,
                    occupancy.max(1),
                    |owner, owner_prio| {
                        self.queues_behind(slot, req.priority, occupancy, owner, owner_prio)
                    },
                );
                if let Some(end) = conflict {
                    placed = end;
                    continue;
                }
            }
            if participates {
                // Split transaction: the grant is only served once a
                // response-queue slot is free for its completion.
                let rsp_free = self.channels[channel]
                    .rsp
                    .admission_at(Cycles::new(placed))
                    .raw();
                if rsp_free > placed {
                    placed = rsp_free;
                    continue;
                }
            }
            break;
        }
        let mut queue = Cycles::ZERO;
        if placed > admitted {
            queue = Cycles::new(placed - admitted);
            let stats = &mut self.initiators[slot].1;
            stats.queue_cycles += queue.raw();
            stats.contended_grants += 1;
            self.channels[channel].stats.queue_cycles += queue.raw();
        }
        if participates {
            // Consume the credits: the request occupies its queue slot from
            // admission until bus service starts, the completion occupies a
            // response slot until the initiator retires it.
            let (_, req_occ) = self.channels[channel]
                .req
                .acquire(Cycles::new(admitted), Cycles::new(placed));
            let retire = placed + occupancy + timing.latency.raw();
            let (_, rsp_occ) = self.channels[channel]
                .rsp
                .acquire(Cycles::new(placed), Cycles::new(retire));
            let stats = &mut self.initiators[slot].1;
            stats.issue_stall_cycles += issue_stall;
            stats.req_queue_peak = stats.req_queue_peak.max(req_occ as u64);
            stats.rsp_queue_peak = stats.rsp_queue_peak.max(rsp_occ as u64);
            let ch = &mut self.channels[channel].stats;
            ch.issue_stall_cycles += issue_stall;
            ch.req_queue_peak = ch.req_queue_peak.max(req_occ as u64);
            ch.rsp_queue_peak = ch.rsp_queue_peak.max(rsp_occ as u64);
        }
        if occupancy > 0 {
            // Weight slots of the Weighted policy map to *DMA* initiators in
            // first-reservation order (cluster shard order on the platform);
            // host/PTW occupancy under the global-clock engine must not
            // consume a cluster's configured weight — those classes always
            // weigh the default 1 (absent slots fall back to it).
            if matches!(req.initiator, InitiatorId::Dma { .. }) && !self.in_timed_order[slot] {
                // Stamp the joiner's weight at its first-reservation index,
                // then move the non-member fallback to the next index.
                self.timed_weight[slot] = self.config.policy.weight(self.timed_order.len());
                self.in_timed_order[slot] = true;
                self.timed_order.push(slot);
                self.fallback_weight = self.config.policy.weight(self.timed_order.len());
            }
            self.served[slot] += occupancy;
            self.channels[channel].reservations.insert(
                placed,
                placed + occupancy,
                slot,
                req.priority,
            );
        }

        if self.last_owner != Some(req.initiator) {
            if self.last_owner.is_some() {
                self.grant_switches += 1;
            }
            self.last_owner = Some(req.initiator);
        }
        self.grants += 1;
        GrantOutcome {
            queue,
            issue_stall: Cycles::new(issue_stall),
        }
    }

    /// The request-queue credit port of `channel` (clones share the queue,
    /// so an initiator holding the port sees the same backlog the fabric
    /// does).
    pub fn req_port(&self, channel: usize) -> CreditPort {
        self.channels[channel].req.clone()
    }

    /// The response-queue credit port of `channel`.
    pub fn rsp_port(&self, channel: usize) -> CreditPort {
        self.channels[channel].rsp.clone()
    }

    /// The request-queue credit port serving `addr` (routed like a grant).
    pub fn req_port_for(&self, addr: sva_common::PhysAddr) -> CreditPort {
        self.req_port(self.config.channels.channel_for(addr))
    }

    /// Records the final latency (including any charged queueing) the
    /// initiator observed for its most recent grant.
    pub fn note_latency(&mut self, id: InitiatorId, latency: Cycles) {
        let slot = self.slot(id);
        self.initiators[slot].1.latency_cycles += latency.raw();
    }

    /// Statistics of one initiator, if it has accessed the fabric.
    pub fn initiator_stats(&self, id: InitiatorId) -> Option<InitiatorStats> {
        self.initiators
            .iter()
            .find(|(x, _)| *x == id)
            .map(|(_, s)| *s)
    }

    /// Snapshot of every initiator's statistics, in registration order.
    pub fn snapshot(&self) -> Vec<InitiatorSnapshot> {
        self.initiators
            .iter()
            .map(|&(id, stats)| InitiatorSnapshot { id, stats })
            .collect()
    }

    /// Sum of all per-initiator statistics.
    pub fn total(&self) -> InitiatorStats {
        let mut total = InitiatorStats::default();
        for (_, s) in &self.initiators {
            total.merge(s);
        }
        total
    }

    /// Number of distinct initiators that have accessed the fabric.
    pub fn initiator_count(&self) -> usize {
        self.initiators.len()
    }

    /// Number of DRAM channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Per-channel statistics, indexed by channel.
    pub fn channel_stats(&self) -> Vec<ChannelStats> {
        self.channels.iter().map(|c| c.stats).collect()
    }

    /// Total grants issued since the last reset.
    pub const fn grants(&self) -> u64 {
        self.grants
    }

    /// Grants whose initiator differed from the previous grant's (a measure
    /// of how interleaved the traffic is).
    pub const fn grant_switches(&self) -> u64 {
        self.grant_switches
    }

    /// Clears all statistics and every channel timeline; registered
    /// initiators are forgotten so a fresh measurement window starts clean.
    pub fn reset(&mut self) {
        let config = self.config.clone();
        *self = Self::new(config);
    }

    /// Folds every reservation ending at or before `watermark` out of the
    /// placement index on every channel, together with the channel queues'
    /// finished entries ([`CreditPort::compact_before`]).
    ///
    /// # Contract
    ///
    /// The caller guarantees that **no future grant arrives before the
    /// watermark** — the same promise
    /// [`sva_common::TimedQueue::compact_before`] demands. Under it the
    /// fold is exact: every later probe answers as if nothing had been
    /// folded, because a reservation ending at or before the watermark can
    /// never conflict with a placement at or past it. The platform holds
    /// the promise when a device measurement window closes (all later
    /// traffic is stamped from the monotone global clock); mid-window
    /// compaction is **not** generally safe — late-registering cluster
    /// shards restart their local cursors at zero.
    ///
    /// Watermarks are monotone; an older watermark is a no-op. The fold is
    /// observable through [`Fabric::event_count`] /
    /// [`Fabric::compacted_events`] / [`Fabric::watermark`].
    pub fn compact_before(&mut self, watermark: Cycles) {
        for ch in &mut self.channels {
            ch.reservations.compact_before(watermark.raw());
            ch.req.compact_before(watermark);
            ch.rsp.compact_before(watermark);
        }
    }

    /// Live (uncompacted) bus reservations across every channel index — the
    /// working-set size the placement probe walks in the worst case.
    pub fn event_count(&self) -> usize {
        self.channels
            .iter()
            .map(|ch| ch.reservations.event_count())
            .sum()
    }

    /// Reservations folded by [`Fabric::compact_before`] across every
    /// channel since the last [`Fabric::reset`]; together with
    /// [`Fabric::event_count`] this accounts for every timed reservation of
    /// the run.
    pub fn compacted_events(&self) -> u64 {
        self.channels
            .iter()
            .map(|ch| ch.reservations.compacted_events())
            .sum()
    }

    /// The lowest channel compaction watermark: probes at or past it are
    /// exact on every channel. Zero until the first compaction (and again
    /// after each window boundary).
    pub fn watermark(&self) -> Cycles {
        Cycles::new(
            self.channels
                .iter()
                .map(|ch| ch.reservations.watermark())
                .min()
                .unwrap_or(0),
        )
    }

    /// Drops every channel's reservations while keeping all accumulated
    /// statistics: a new measurement window opens (every initiator's local
    /// cursor returns to zero on the global clock), so reservations stamped
    /// in the previous window must not collide with the new one. The
    /// compaction watermark resets with the timeline — cycle 0 of the new
    /// window is insertable and probes below the old watermark are exact
    /// again — while the `compacted_events` total survives as a run-level
    /// statistic (mirroring [`sva_common::TimedQueue::clear_entries`]).
    pub fn clear_timelines(&mut self) {
        for ch in &mut self.channels {
            ch.reservations.clear();
            // Credits held in the previous window must not leak into the
            // new one: local cursors restart at zero, and stale queue
            // entries stamped late in the old window would otherwise stall
            // (or block) fresh arrivals forever.
            ch.req.clear_entries();
            ch.rsp.clear_entries();
        }
        for served in &mut self.served {
            *served = 0;
        }
        self.timed_order.clear();
        for member in &mut self.in_timed_order {
            *member = false;
        }
        self.fallback_weight = self.config.policy.weight(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::PhysAddr;

    fn burst_req(device: u32, len: u64) -> MemPortReq {
        MemPortReq::read(InitiatorId::dma(device), PhysAddr::new(0x8000_0000), len).as_burst()
    }

    fn burst_req_at(device: u32, addr: u64, len: u64) -> MemPortReq {
        MemPortReq::read(InitiatorId::dma(device), PhysAddr::new(addr), len).as_burst()
    }

    fn timing(latency: u64, occupancy: u64) -> PortTiming {
        PortTiming {
            latency: Cycles::new(latency),
            occupancy: Cycles::new(occupancy),
        }
    }

    /// Host accesses are timed now: a host load arriving while a DMA burst
    /// occupies the bus records the wait it would observe. Replaces the
    /// pre-global-clock `untimed_accesses_never_queue` (the untimed fast
    /// path it pinned no longer exists).
    #[test]
    fn timed_host_accesses_queue_behind_dma_occupancy() {
        let mut fabric = Fabric::default();
        // A DMA burst reserves the bus for [0, 256).
        fabric.grant(&burst_req(1, 2048).at(Cycles::ZERO), timing(200, 256));
        // A host load arriving mid-burst observes the remaining occupancy.
        let q = fabric.grant(
            &MemPortReq::read(InitiatorId::Host, PhysAddr::new(0x8000_0000), 8)
                .at(Cycles::new(100)),
            timing(30, 0),
        );
        assert_eq!(q, Cycles::new(156), "wait until the burst drains");
        let host = fabric.initiator_stats(InitiatorId::Host).unwrap();
        assert_eq!(host.queue_cycles, 156);
        assert_eq!(host.contended_grants, 1);
        // A host load arriving after the burst has drained does not queue,
        // and zero-occupancy host grants never reserve the timeline.
        let q2 = fabric.grant(
            &MemPortReq::read(InitiatorId::Host, PhysAddr::new(0x8000_0000), 8)
                .at(Cycles::new(300)),
            timing(30, 0),
        );
        assert_eq!(q2, Cycles::ZERO);
        let q3 = fabric.grant(&burst_req(3, 2048).at(Cycles::new(300)), timing(200, 256));
        assert_eq!(q3, Cycles::ZERO, "occupancy-free host grants block nobody");
    }

    /// Property (DeterministicRng-driven): for random interleavings of DMA
    /// bursts and zero-occupancy host probes, every host probe's measured
    /// queueing equals the remaining occupancy of the busy interval covering
    /// its arrival on the reference timeline, and zero-occupancy probes never
    /// change DMA placement.
    #[test]
    fn host_queueing_matches_reference_timeline_property() {
        use sva_common::rng::DeterministicRng;
        let mut rng = DeterministicRng::new(0xBADC_0FFE);
        for round in 0..50u64 {
            let mut fabric = Fabric::default();
            let mut probe_only = Fabric::default();
            // Busy intervals of one DMA stream: paced so they never overlap
            // each other (a single engine pipelines its own bursts).
            let mut intervals: Vec<(u64, u64)> = Vec::new();
            let mut t = 0u64;
            for _ in 0..8 {
                t += 10 + rng.next_below(500);
                let occ = 16 + rng.next_below(300);
                let q = fabric.grant(&burst_req(1, 2048).at(Cycles::new(t)), timing(100, occ));
                probe_only.grant(&burst_req(1, 2048).at(Cycles::new(t)), timing(100, occ));
                assert_eq!(q, Cycles::ZERO, "round {round}: single stream never queues");
                intervals.push((t, t + occ));
                t += occ;
            }
            // Host probes at random arrivals; expected wait from the
            // reference interval list.
            for _ in 0..16 {
                let arrival = rng.next_below(t + 200);
                let req = MemPortReq::read(InitiatorId::Host, PhysAddr::new(0x8000_0000), 8)
                    .at(Cycles::new(arrival));
                let q = fabric.grant(&req, timing(30, 0)).raw();
                let expected = intervals
                    .iter()
                    .find(|&&(s, e)| s <= arrival && arrival < e)
                    .map(|&(_, e)| e - arrival)
                    .unwrap_or(0);
                assert_eq!(q, expected, "round {round}: probe at {arrival}");
            }
            // The probes reserved nothing: a second DMA stream sees the same
            // placement in both fabrics.
            let late = t + 1000;
            for i in 0..4u64 {
                let arrival = Cycles::new(late + i * 50);
                let a = fabric.grant(&burst_req(3, 2048).at(arrival), timing(100, 256));
                let b = probe_only.grant(&burst_req(3, 2048).at(arrival), timing(100, 256));
                assert_eq!(a, b, "round {round}: probes must not perturb DMA placement");
            }
        }
    }

    #[test]
    fn overlapping_timed_streams_record_contention() {
        let mut fabric = Fabric::default();
        // Cluster 0 occupies the bus for [0, 256).
        let q0 = fabric.grant(&burst_req(1, 2048).at(Cycles::ZERO), timing(200, 256));
        assert_eq!(q0, Cycles::ZERO);
        // Cluster 1 arrives at cycle 10 while the bus is busy.
        let q1 = fabric.grant(&burst_req(3, 2048).at(Cycles::new(10)), timing(200, 256));
        assert_eq!(q1, Cycles::new(246));
        let s1 = fabric.initiator_stats(InitiatorId::dma(3)).unwrap();
        assert_eq!(s1.queue_cycles, 246);
        assert_eq!(s1.contended_grants, 1);
        assert_eq!(fabric.grant_switches(), 1);
    }

    #[test]
    fn same_initiator_pipelining_is_not_contention() {
        let mut fabric = Fabric::default();
        fabric.grant(&burst_req(1, 2048).at(Cycles::ZERO), timing(200, 256));
        // The same engine's next burst at cycle 1 overlaps its own traffic:
        // that pipelining is modelled by the DMA engine, not the fabric.
        let q = fabric.grant(&burst_req(1, 2048).at(Cycles::new(1)), timing(200, 256));
        assert_eq!(q, Cycles::ZERO);
        assert_eq!(
            fabric
                .initiator_stats(InitiatorId::dma(1))
                .unwrap()
                .queue_cycles,
            0
        );
    }

    #[test]
    fn totals_merge_all_initiators() {
        let mut fabric = Fabric::default();
        fabric.grant(&burst_req(1, 100).at(Cycles::ZERO), timing(10, 5));
        fabric.grant(
            &MemPortReq::write(InitiatorId::Host, PhysAddr::new(0x2000), 50).at(Cycles::new(100)),
            timing(10, 2),
        );
        fabric.note_latency(InitiatorId::dma(1), Cycles::new(10));
        fabric.note_latency(InitiatorId::Host, Cycles::new(12));
        let total = fabric.total();
        assert_eq!(total.accesses(), 2);
        assert_eq!(total.bytes, 150);
        assert_eq!(total.latency_cycles, 22);
        assert_eq!(fabric.initiator_count(), 2);
        assert_eq!(fabric.grants(), 2);
    }

    #[test]
    fn reset_clears_registry_and_timeline() {
        let mut fabric = Fabric::new(FabricConfig {
            contention_enabled: true,
            ..FabricConfig::default()
        });
        fabric.grant(&burst_req(1, 2048).at(Cycles::ZERO), timing(200, 256));
        fabric.reset();
        assert_eq!(fabric.initiator_count(), 0);
        assert_eq!(fabric.grants(), 0);
        assert!(fabric.config().contention_enabled, "config survives reset");
        // A burst arriving at cycle 0 after reset sees a free bus.
        let q = fabric.grant(&burst_req(3, 2048).at(Cycles::ZERO), timing(200, 256));
        assert_eq!(q, Cycles::ZERO);
    }

    #[test]
    fn clear_timelines_keeps_stats_but_frees_the_bus() {
        let mut fabric = Fabric::default();
        fabric.grant(&burst_req(1, 2048).at(Cycles::ZERO), timing(200, 256));
        let q = fabric.grant(&burst_req(3, 2048).at(Cycles::new(10)), timing(200, 256));
        assert_eq!(q, Cycles::new(246));
        fabric.clear_timelines();
        // Accounting survives the window boundary...
        assert_eq!(fabric.grants(), 2);
        assert_eq!(
            fabric
                .initiator_stats(InitiatorId::dma(3))
                .unwrap()
                .queue_cycles,
            246
        );
        // ...but the new window's cycle 0 sees a free bus.
        let q2 = fabric.grant(&burst_req(5, 2048).at(Cycles::ZERO), timing(200, 256));
        assert_eq!(q2, Cycles::ZERO);
    }

    #[test]
    fn priority_wins_arbitration_without_queueing() {
        let mut fabric = Fabric::default();
        // A priority-0 stream holds the bus for [0, 256).
        fabric.grant(&burst_req(1, 2048).at(Cycles::ZERO), timing(200, 256));
        // A priority-1 access arriving mid-interval does not queue...
        let req = burst_req(3, 2048).with_priority(1).at(Cycles::new(10));
        let q = fabric.grant(&req, timing(200, 256));
        assert_eq!(q, Cycles::ZERO);
        assert_eq!(
            fabric
                .initiator_stats(InitiatorId::dma(3))
                .unwrap()
                .queue_cycles,
            0
        );
        // ...but its occupancy [10, 266) still blocks later priority-0
        // traffic from a third initiator.
        let q0 = fabric.grant(&burst_req(5, 2048).at(Cycles::new(20)), timing(200, 256));
        assert_eq!(q0, Cycles::new(246), "queues behind the priority grant");
    }

    #[test]
    fn reservation_window_prunes_correctly_across_magnitudes() {
        // Long-lived timeline: early large interval, then far-future small
        // ones; the max-length window must still find the early conflict.
        let mut fabric = Fabric::default();
        fabric.grant(&burst_req(1, 2048).at(Cycles::ZERO), timing(0, 10_000));
        let q = fabric.grant(&burst_req(3, 64).at(Cycles::new(9_999)), timing(0, 8));
        assert_eq!(q, Cycles::new(1), "tail of the long interval conflicts");
        let q2 = fabric.grant(&burst_req(3, 64).at(Cycles::new(50_000)), timing(0, 8));
        assert_eq!(q2, Cycles::ZERO, "far beyond every reservation");
    }

    /// Compaction folds only finished reservations and is exact for every
    /// grant at or past the watermark: a compacted fabric and an
    /// uncompacted twin place identically while the live set stays bounded.
    #[test]
    fn compaction_is_exact_for_grants_past_the_watermark() {
        let mut compacted = Fabric::default();
        let mut reference = Fabric::default();
        let mut t = 0u64;
        for i in 0..64u64 {
            t += 5 + (i * 7) % 40;
            let occ = 8 + (i * 13) % 120;
            let req = burst_req(1 + (i % 3) as u32 * 2, 2048).at(Cycles::new(t));
            let a = compacted.admit(&req, timing(100, occ));
            let b = reference.admit(&req, timing(100, occ));
            assert_eq!(a, b, "grant {i} diverged under compaction");
            if i % 8 == 7 {
                // Arrivals are monotone in this stream, so "now" is a valid
                // no-earlier-arrival watermark.
                compacted.compact_before(Cycles::new(t));
            }
        }
        assert!(compacted.watermark() > Cycles::ZERO);
        assert!(compacted.compacted_events() > 0);
        assert!(
            compacted.event_count() < reference.event_count(),
            "the live set must shrink: {} vs {}",
            compacted.event_count(),
            reference.event_count()
        );
        assert_eq!(
            compacted.compacted_events() + compacted.event_count() as u64,
            reference.event_count() as u64,
            "folded + live accounts for every reservation"
        );
        assert_eq!(compacted.total(), reference.total());
        assert_eq!(compacted.channel_stats(), reference.channel_stats());
    }

    /// Window boundary: `clear_timelines` resets the compaction watermark
    /// and the live index alongside reservations and credits — cycle 0 of
    /// the new window is insertable again — while the `compacted_events`
    /// run total survives like every other accumulated statistic.
    #[test]
    fn clear_timelines_resets_compaction_state() {
        let mut fabric = Fabric::default();
        for i in 0..16u64 {
            fabric.grant(
                &burst_req(1, 2048).at(Cycles::new(i * 300)),
                timing(100, 256),
            );
        }
        fabric.compact_before(Cycles::new(4000));
        assert_eq!(fabric.watermark(), Cycles::new(4000));
        let folded = fabric.compacted_events();
        assert!(folded > 0);
        fabric.clear_timelines();
        assert_eq!(fabric.watermark(), Cycles::ZERO, "watermark resets");
        assert_eq!(fabric.event_count(), 0, "live index drops");
        assert_eq!(fabric.compacted_events(), folded, "run total survives");
        // The new window's cycle 0 — far below the old watermark — is a
        // legal reservation point again.
        let q = fabric.grant(&burst_req(3, 2048).at(Cycles::ZERO), timing(100, 256));
        assert_eq!(q, Cycles::ZERO);
        assert_eq!(fabric.event_count(), 1);
    }

    /// Compaction never changes `served`-occupancy arbitration outcomes for
    /// the Weighted policy: the deficit counters live outside the index, so
    /// a compacted fabric keeps the exact same service split as its
    /// uncompacted twin.
    #[test]
    fn weighted_arbitration_outcomes_survive_compaction() {
        let run = |compact: bool| -> Vec<GrantOutcome> {
            let mut fabric = Fabric::new(FabricConfig {
                policy: ArbitrationPolicy::Weighted(vec![8, 1]),
                ..FabricConfig::default()
            });
            let mut outcomes = Vec::new();
            for i in 0..48u64 {
                let t = Cycles::new(i * 40);
                outcomes.push(fabric.admit(&burst_req(1, 2048).at(t), timing(200, 256)));
                outcomes.push(fabric.admit(&burst_req(3, 2048).at(t), timing(200, 256)));
                if compact && i % 6 == 5 {
                    fabric.compact_before(t);
                }
            }
            outcomes
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn different_channels_never_conflict() {
        let mut fabric = Fabric::new(FabricConfig {
            channels: DramChannelConfig::interleaved(2),
            ..FabricConfig::default()
        });
        // 0x8000_0000 and 0x8000_1000 are consecutive 4 KiB granules: they
        // land on different channels, so fully overlapping bursts from two
        // initiators both place at their arrival.
        fabric.grant(
            &burst_req_at(1, 0x8000_0000, 2048).at(Cycles::ZERO),
            timing(200, 256),
        );
        let q = fabric.grant(
            &burst_req_at(3, 0x8000_1000, 2048).at(Cycles::new(10)),
            timing(200, 256),
        );
        assert_eq!(q, Cycles::ZERO, "different channel, no conflict");
        // Same channel as the first burst still conflicts.
        let q2 = fabric.grant(
            &burst_req_at(3, 0x8000_0800, 2048).at(Cycles::new(10)),
            timing(200, 256),
        );
        assert_eq!(q2, Cycles::new(246));
        let per_channel = fabric.channel_stats();
        assert_eq!(per_channel.len(), 2);
        assert_eq!(per_channel[0].grants, 2);
        assert_eq!(per_channel[1].grants, 1);
        assert_eq!(per_channel[0].queue_cycles, 246);
        assert_eq!(per_channel[1].queue_cycles, 0);
    }

    #[test]
    fn channel_stats_conserve_totals() {
        let mut fabric = Fabric::new(FabricConfig {
            channels: DramChannelConfig::interleaved(4),
            ..FabricConfig::default()
        });
        for i in 0..16u64 {
            fabric.grant(
                &burst_req_at(1 + 2 * (i % 3) as u32, 0x8000_0000 + i * 4096, 1024)
                    .at(Cycles::new(i * 10)),
                timing(100, 128),
            );
        }
        let total = fabric.total();
        let per_channel = fabric.channel_stats();
        assert_eq!(
            per_channel.iter().map(|c| c.bytes).sum::<u64>(),
            total.bytes
        );
        assert_eq!(
            per_channel.iter().map(|c| c.occupancy_cycles).sum::<u64>(),
            total.occupancy_cycles
        );
        assert_eq!(
            per_channel.iter().map(|c| c.queue_cycles).sum::<u64>(),
            total.queue_cycles
        );
        assert_eq!(per_channel.iter().map(|c| c.grants).sum::<u64>(), 16);
    }

    #[test]
    fn fixed_priority_orders_strictly() {
        let mut fabric = Fabric::new(FabricConfig {
            policy: ArbitrationPolicy::FixedPriority,
            ..FabricConfig::default()
        });
        // Low-priority stream reserves [0, 256).
        fabric.grant(&burst_req(1, 2048).at(Cycles::ZERO), timing(200, 256));
        // A high-priority grant ignores it and places at arrival.
        let hi = burst_req(3, 2048).with_priority(2).at(Cycles::new(10));
        assert_eq!(fabric.grant(&hi, timing(200, 256)), Cycles::ZERO);
        // An equal-priority grant queues behind the high one (strict
        // ordering within a level), not behind the low one it outranks.
        let eq = burst_req(5, 2048).with_priority(2).at(Cycles::new(20));
        let q = fabric.grant(&eq, timing(200, 256));
        assert_eq!(
            q,
            Cycles::new(246),
            "queues to the end of the prio-2 interval"
        );
    }

    #[test]
    fn weighted_equal_weights_alternate_the_queueing_burden() {
        // Under RoundRobin the first-simulated stream never queues; under
        // Weighted([1, 1]) the deficit counter alternates who waits.
        let mut fabric = Fabric::new(FabricConfig {
            policy: ArbitrationPolicy::Weighted(vec![1, 1]),
            ..FabricConfig::default()
        });
        let mut queues = [0u64; 2];
        for i in 0..8u64 {
            let t = Cycles::new(i * 10);
            queues[0] += fabric
                .grant(&burst_req(1, 2048).at(t), timing(200, 256))
                .raw();
            queues[1] += fabric
                .grant(&burst_req(3, 2048).at(t), timing(200, 256))
                .raw();
        }
        assert!(queues[0] > 0, "first stream also queues: {queues:?}");
        assert!(queues[1] > 0, "second stream also queues: {queues:?}");
    }

    #[test]
    fn weighted_ignores_request_priorities() {
        // A priority > 0 must not bypass the weighted service split: an
        // over-served initiator queues even when its requests carry the
        // round-robin escape-hatch priority.
        let mut fabric = Fabric::new(FabricConfig {
            policy: ArbitrationPolicy::Weighted(vec![1, 1]),
            ..FabricConfig::default()
        });
        fabric.grant(&burst_req(1, 2048).at(Cycles::ZERO), timing(200, 256));
        let q1 = fabric.grant(
            &burst_req(3, 2048).with_priority(1).at(Cycles::ZERO),
            timing(200, 256),
        );
        assert_eq!(
            q1,
            Cycles::new(256),
            "equal service: the later grant queues"
        );
        // The same sequence under RoundRobin takes the escape hatch.
        let mut rr = Fabric::default();
        rr.grant(&burst_req(1, 2048).at(Cycles::ZERO), timing(200, 256));
        let q2 = rr.grant(
            &burst_req(3, 2048).with_priority(1).at(Cycles::ZERO),
            timing(200, 256),
        );
        assert_eq!(q2, Cycles::ZERO);
    }

    #[test]
    fn weighted_slots_are_not_consumed_by_host_occupancy() {
        // Under the global-clock engine host accesses reserve occupancy; a
        // host grant arriving before any DMA must not claim the first
        // weight slot — the configured 8:1 split still lands on the two DMA
        // streams, exactly as in the host-free run.
        let run = |with_host: bool| -> [u64; 2] {
            let mut fabric = Fabric::new(FabricConfig {
                policy: ArbitrationPolicy::Weighted(vec![8, 1]),
                timed_host_ptw: true,
                ..FabricConfig::default()
            });
            if with_host {
                fabric.grant(
                    &MemPortReq::read(InitiatorId::Host, PhysAddr::new(0x8000_0000), 64)
                        .at(Cycles::ZERO),
                    timing(30, 8),
                );
            }
            for i in 0..16u64 {
                let t = Cycles::new(1000 + i * 20);
                fabric.grant(&burst_req(1, 2048).at(t), timing(200, 256));
                fabric.grant(&burst_req(3, 2048).at(t), timing(200, 256));
            }
            [
                fabric
                    .initiator_stats(InitiatorId::dma(1))
                    .unwrap()
                    .queue_cycles,
                fabric
                    .initiator_stats(InitiatorId::dma(3))
                    .unwrap()
                    .queue_cycles,
            ]
        };
        let clean = run(false);
        let with_host = run(true);
        assert_eq!(
            clean, with_host,
            "a preceding host reservation must not shift the DMA weight slots"
        );
        assert!(
            with_host[0] < with_host[1],
            "weight 8 stays on the first DMA stream: {with_host:?}"
        );
    }

    fn bounded(req: usize, rsp: usize) -> Fabric {
        Fabric::new(FabricConfig {
            req_queue_depth: req,
            rsp_queue_depth: rsp,
            ..FabricConfig::default()
        })
    }

    /// A full request queue delays admission and the delay is reported as
    /// the issue-stall component, split from the bus queueing.
    #[test]
    fn full_request_queue_stalls_issue_and_splits_the_delay() {
        let mut fabric = bounded(1, usize::MAX);
        // Initiator 1 reserves the bus for [0, 1000): a long head-of-line
        // burst.
        fabric.admit(&burst_req(1, 2048).at(Cycles::ZERO), timing(100, 1000));
        // Initiator 3 arrives at 10: its request is admitted (slot free —
        // owner 1's request drained at its own placement) but queues on the
        // bus until 1000. Its request entry holds the single slot for
        // [10, 1000).
        let o3 = fabric.admit(&burst_req(3, 2048).at(Cycles::new(10)), timing(100, 256));
        assert_eq!(o3.issue_stall, Cycles::ZERO);
        assert_eq!(o3.queue, Cycles::new(990));
        // Initiator 5 arrives at 20: the request queue is full (3's entry
        // covers 20), so issue stalls until 3's request drains at 1000,
        // then queues behind 3's bus occupancy [1000, 1256).
        let o5 = fabric.admit(&burst_req(5, 2048).at(Cycles::new(20)), timing(100, 256));
        assert_eq!(o5.issue_stall, Cycles::new(980), "wait for the req slot");
        assert_eq!(o5.queue, Cycles::new(256), "then queue behind the bus");
        let s5 = fabric.initiator_stats(InitiatorId::dma(5)).unwrap();
        assert_eq!(s5.issue_stall_cycles, 980);
        assert_eq!(s5.queue_cycles, 256);
        assert_eq!(s5.req_queue_peak, 1);
        let total = fabric.total();
        assert_eq!(total.issue_stall_cycles, 980);
        let ch = fabric.channel_stats();
        assert_eq!(ch[0].issue_stall_cycles, 980);
        assert!(ch[0].req_queue_peak >= 1);
    }

    /// Split transaction: a grant is not served while there is no room for
    /// its response, even when the bus itself is free.
    #[test]
    fn full_response_queue_delays_grants() {
        let mut fabric = bounded(usize::MAX, 1);
        // Zero-occupancy device grants: nothing is reserved on the bus, so
        // any delay can only come from the response queue. The first
        // response occupies its slot for [0, 0 + 0 + 500) = [0, 500).
        let o1 = fabric.admit(&burst_req(1, 64).at(Cycles::ZERO), timing(500, 0));
        assert_eq!(o1.queue, Cycles::ZERO);
        let o3 = fabric.admit(&burst_req(3, 64).at(Cycles::new(10)), timing(500, 0));
        assert_eq!(
            o3.queue,
            Cycles::new(490),
            "the grant waits for the response slot"
        );
        assert_eq!(o3.issue_stall, Cycles::ZERO);
        let s3 = fabric.initiator_stats(InitiatorId::dma(3)).unwrap();
        assert_eq!(s3.rsp_queue_peak, 1);
    }

    /// A cloned fabric is an independent simulation: credits acquired in
    /// one must not be consumed from — or leak into — the other.
    #[test]
    fn cloned_fabric_has_independent_credit_queues() {
        let mut a = bounded(1, 1);
        a.admit(&burst_req(1, 2048).at(Cycles::ZERO), timing(100, 1000));
        let mut b = a.clone();
        assert!(
            !a.req_port(0).shares_queue_with(&b.req_port(0)),
            "clones must deep-copy the credit queues"
        );
        // Fill A's request queue further; B's admission point is untouched.
        a.admit(&burst_req(3, 2048).at(Cycles::new(10)), timing(100, 256));
        let before = b.req_port(0).admission_at(Cycles::new(20));
        let ob = b.admit(&burst_req(5, 2048).at(Cycles::new(20)), timing(100, 256));
        assert_eq!(before, Cycles::new(20), "B's slot was still free");
        assert_eq!(ob.issue_stall, Cycles::ZERO, "A's grant must not stall B");
    }

    /// A new measurement window releases every credit: stale queue entries
    /// from the previous window must not stall (or block) arrivals whose
    /// local cursors restarted at zero.
    #[test]
    fn clear_timelines_releases_credits() {
        let mut fabric = bounded(1, 1);
        fabric.admit(&burst_req(1, 2048).at(Cycles::ZERO), timing(100, 1000));
        let stalled = fabric.admit(&burst_req(3, 2048).at(Cycles::new(10)), timing(100, 256));
        assert!(stalled.queue + stalled.issue_stall > Cycles::ZERO);
        fabric.clear_timelines();
        // The new window's cycle 0 sees free queues and a free bus...
        let fresh = fabric.admit(&burst_req(5, 2048).at(Cycles::ZERO), timing(100, 256));
        assert_eq!(fresh.queue, Cycles::ZERO);
        assert_eq!(fresh.issue_stall, Cycles::ZERO);
        // ...while the accumulated statistics survive the boundary.
        assert!(fabric.total().queue_cycles + fabric.total().issue_stall_cycles > 0);
    }

    /// Host and PTW grants only participate in the channel queues under the
    /// global-clock engine, mirroring their bus-occupancy rule — a bounded
    /// fabric without `timed_host_ptw` never stalls them.
    #[test]
    fn host_ptw_only_take_credits_under_the_timed_engine() {
        let run = |timed: bool| -> (Cycles, Cycles) {
            let mut fabric = Fabric::new(FabricConfig {
                req_queue_depth: 1,
                rsp_queue_depth: 1,
                timed_host_ptw: timed,
                ..FabricConfig::default()
            });
            fabric.admit(&burst_req(1, 2048).at(Cycles::ZERO), timing(100, 1000));
            fabric.admit(&burst_req(3, 2048).at(Cycles::new(5)), timing(100, 256));
            let host = fabric.admit(
                &MemPortReq::read(InitiatorId::Host, PhysAddr::new(0x8000_0000), 8)
                    .at(Cycles::new(10)),
                timing(30, if timed { 1 } else { 0 }),
            );
            (host.issue_stall, host.queue)
        };
        let (untimed_stall, _) = run(false);
        assert_eq!(
            untimed_stall,
            Cycles::ZERO,
            "untimed host traffic never takes request-queue credits"
        );
        let (timed_stall, timed_queue) = run(true);
        assert!(
            timed_stall + timed_queue > Cycles::ZERO,
            "the timed engine makes host grants compete for credits"
        );
    }

    #[test]
    fn weighted_favours_the_heavy_initiator() {
        let run = |weights: Vec<u32>| -> [u64; 2] {
            let mut fabric = Fabric::new(FabricConfig {
                policy: ArbitrationPolicy::Weighted(weights),
                ..FabricConfig::default()
            });
            for i in 0..16u64 {
                let t = Cycles::new(i * 20);
                fabric.grant(&burst_req(1, 2048).at(t), timing(200, 256));
                fabric.grant(&burst_req(3, 2048).at(t), timing(200, 256));
            }
            [
                fabric
                    .initiator_stats(InitiatorId::dma(1))
                    .unwrap()
                    .queue_cycles,
                fabric
                    .initiator_stats(InitiatorId::dma(3))
                    .unwrap()
                    .queue_cycles,
            ]
        };
        let fair = run(vec![1, 1]);
        let skewed = run(vec![8, 1]);
        assert!(
            skewed[0] < fair[0],
            "weight 8 must cut the heavy stream's queueing: {skewed:?} vs {fair:?}"
        );
        assert!(
            skewed[1] >= fair[1],
            "the light stream absorbs the burden: {skewed:?} vs {fair:?}"
        );
    }
}
