//! Arbitration and per-initiator accounting of the unified memory fabric.
//!
//! Every timed access entering [`crate::MemorySystem::access`] passes through
//! the [`Fabric`]: it registers the initiator on first contact, keeps
//! per-initiator [`InitiatorStats`], and models the shared DRAM data bus as a
//! virtual timeline so overlapping traffic from *different* initiators is
//! observed as queueing (contention).
//!
//! # Timing model
//!
//! The simulator is call-driven: each initiator simulates its own activity
//! and presents accesses in program order, stamped with its *local* issue
//! time when it tracks one (DMA bursts do — the engine tracks its pipeline
//! clock). The fabric reserves the shared data bus as **intervals**
//! `[start, start + occupancy)` on a common virtual timeline. A new timed
//! grant is placed at the earliest point at or after its arrival that does
//! not overlap an interval reserved by a *different* initiator; the shift is
//! the access's queueing delay. Intervals owned by the same initiator are
//! ignored — serialising an engine's own payloads is that engine's
//! pipelining model, and charging it again here would double-count.
//!
//! Because placement works on arrival timestamps rather than call order,
//! streams that are simulated sequentially but *conceptually concurrent*
//! (the per-cluster DMA shards of a multi-cluster offload, whose local
//! clocks all start at zero) interleave correctly: a later-simulated shard
//! slots its bursts into the bus idle gaps the earlier shard left between
//! its compute phases, and only genuinely overlapping occupancy queues.
//!
//! # Policy and known bias
//!
//! Placement is **first-fit in simulation order**: a shard simulated earlier
//! reserves the bus first and never dodges later shards, so measured
//! queueing forms a staircase across shards (the first-simulated DMA stream
//! reports zero queue cycles, the last reports the most). Aggregate queueing
//! and the wall-clock of the *slowest* shard are therefore conservative
//! (pessimistic for the last shard), not a fair-arbitration prediction. A
//! [`MemPortReq::priority`] above zero wins arbitration outright: the access
//! is placed at its arrival without queueing (its occupancy still blocks
//! priority-0 traffic). True rotating arbitration among equal priorities
//! needs a global simulation clock — see the ROADMAP; [`Fabric::rr_cursor`]
//! is the diagnostic hook kept for that work.
//!
//! Accesses without a timestamp (host loads/stores, page-table walks) only
//! contribute byte/latency accounting, never queueing.
//!
//! By default the measured queueing delay is **accounting only** — returned
//! latencies are unchanged, so a single-cluster platform reproduces the
//! paper's prototype cycle-for-cycle. Setting
//! [`FabricConfig::contention_enabled`] adds the delay to the returned
//! latency, which turns fabric contention into a sweepable dimension. With a
//! single initiator nothing ever queues, so charging is also
//! timing-neutral at `N = 1`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sva_common::{Cycles, InitiatorId, InitiatorStats, MemPortReq, PortTiming};

/// Configuration of the fabric arbitration layer.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// When `true`, cross-initiator queueing delay (waiting for the shared
    /// data bus) is added to returned latencies. Off by default so
    /// single-initiator timing exactly reproduces the paper's prototype.
    pub contention_enabled: bool,
}

/// Snapshot of one initiator's accounting, labelled by identity.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitiatorSnapshot {
    /// Who the numbers belong to.
    pub id: InitiatorId,
    /// The accumulated statistics.
    pub stats: InitiatorStats,
}

/// The arbitration/accounting layer in front of the shared memory path.
#[derive(Clone, Debug, Default)]
pub struct Fabric {
    config: FabricConfig,
    /// Registration order; the order in which streams were first simulated,
    /// which is also the order first-fit placement implicitly favours.
    initiators: Vec<(InitiatorId, InitiatorStats)>,
    /// Diagnostic cursor recording which slot a rotating arbiter would
    /// favour next; not consulted by the first-fit timing model (a true
    /// arbitration policy needs the global-clock engine — see ROADMAP).
    rr_cursor: usize,
    /// Bus reservations of timed grants, keyed by `(start, insertion seq)`
    /// with `(end, owner slot)` values. Grows with the number of timed
    /// accesses in a measurement window; cleared by [`Fabric::reset`]
    /// (experiments reset between measurement phases).
    reservations: BTreeMap<(u64, u64), (u64, usize)>,
    /// Longest single reservation seen, bounding how far below a placement
    /// point a conflicting interval can start.
    max_reservation_len: u64,
    /// Monotonic insertion counter disambiguating equal-start reservations.
    reservation_seq: u64,
    /// Initiator holding the most recent grant.
    last_owner: Option<InitiatorId>,
    grants: u64,
    grant_switches: u64,
}

impl Fabric {
    /// Creates a fabric with the given configuration.
    pub fn new(config: FabricConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// The configuration this fabric was built with.
    pub const fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Registers `id` if needed and returns its slot index.
    fn slot(&mut self, id: InitiatorId) -> usize {
        if let Some(i) = self.initiators.iter().position(|(x, _)| *x == id) {
            i
        } else {
            self.initiators.push((id, InitiatorStats::default()));
            self.initiators.len() - 1
        }
    }

    /// Grants one access and returns the cross-initiator queueing delay the
    /// access observed on the shared-bus timeline.
    ///
    /// `start` is the initiator-local issue time when the caller tracks one
    /// (DMA bursts); `None` means "back-to-back after the previous grant".
    /// The caller is responsible for adding the returned delay to the
    /// access's latency if [`FabricConfig::contention_enabled`] is set, and
    /// for reporting the final latency via [`Fabric::note_latency`].
    pub fn grant(&mut self, req: &MemPortReq, start: Option<Cycles>, timing: PortTiming) -> Cycles {
        let slot = self.slot(req.initiator);
        {
            let stats = &mut self.initiators[slot].1;
            if req.dir.is_write() {
                stats.writes += 1;
            } else {
                stats.reads += 1;
            }
            if req.burst {
                stats.bursts += 1;
            }
            stats.bytes += req.len;
            stats.occupancy_cycles += timing.occupancy.raw();
        }

        // Shared-bus timeline: only timed grants reserve it (see module
        // docs). Priority > 0 wins arbitration outright and is placed at its
        // arrival; priority 0 takes the earliest placement at or after the
        // arrival that avoids every interval owned by a different initiator.
        let mut queue = Cycles::ZERO;
        if let Some(arrival) = start {
            let arrival = arrival.raw();
            let occupancy = timing.occupancy.raw();
            let mut placed = arrival;
            if req.priority == 0 {
                loop {
                    // A conflicting interval satisfies start < placed + occ
                    // and end > placed; since no reservation is longer than
                    // max_reservation_len, its start also exceeds
                    // placed - max_reservation_len. Range-scan that window.
                    let lo = placed.saturating_sub(self.max_reservation_len);
                    let hi = placed + occupancy;
                    // Upper bound (hi, 0) excludes reservations starting at
                    // exactly `hi` (they abut ours without overlapping;
                    // sequence numbers start at 1).
                    let conflict = self
                        .reservations
                        .range((lo, 0)..(hi, 0))
                        .find(|(_, &(end, owner))| owner != slot && end > placed)
                        .map(|(_, &(end, _))| end);
                    match conflict {
                        Some(end) => placed = end,
                        None => break,
                    }
                }
            }
            if placed > arrival {
                queue = Cycles::new(placed - arrival);
                let stats = &mut self.initiators[slot].1;
                stats.queue_cycles += queue.raw();
                stats.contended_grants += 1;
            }
            if occupancy > 0 {
                self.reservation_seq += 1;
                self.reservations
                    .insert((placed, self.reservation_seq), (placed + occupancy, slot));
                self.max_reservation_len = self.max_reservation_len.max(occupancy);
            }
        }

        if self.last_owner != Some(req.initiator) {
            if self.last_owner.is_some() {
                self.grant_switches += 1;
            }
            self.last_owner = Some(req.initiator);
        }
        self.grants += 1;
        self.rr_cursor = (slot + 1) % self.initiators.len();
        queue
    }

    /// Records the final latency (including any charged queueing) the
    /// initiator observed for its most recent grant.
    pub fn note_latency(&mut self, id: InitiatorId, latency: Cycles) {
        let slot = self.slot(id);
        self.initiators[slot].1.latency_cycles += latency.raw();
    }

    /// Statistics of one initiator, if it has accessed the fabric.
    pub fn initiator_stats(&self, id: InitiatorId) -> Option<InitiatorStats> {
        self.initiators
            .iter()
            .find(|(x, _)| *x == id)
            .map(|(_, s)| *s)
    }

    /// Snapshot of every initiator's statistics, in registration order.
    pub fn snapshot(&self) -> Vec<InitiatorSnapshot> {
        self.initiators
            .iter()
            .map(|&(id, stats)| InitiatorSnapshot { id, stats })
            .collect()
    }

    /// Sum of all per-initiator statistics.
    pub fn total(&self) -> InitiatorStats {
        let mut total = InitiatorStats::default();
        for (_, s) in &self.initiators {
            total.merge(s);
        }
        total
    }

    /// Number of distinct initiators that have accessed the fabric.
    pub fn initiator_count(&self) -> usize {
        self.initiators.len()
    }

    /// Total grants issued since the last reset.
    pub const fn grants(&self) -> u64 {
        self.grants
    }

    /// Grants whose initiator differed from the previous grant's (a measure
    /// of how interleaved the traffic is).
    pub const fn grant_switches(&self) -> u64 {
        self.grant_switches
    }

    /// Diagnostic cursor: the slot a rotating arbiter would favour next. Not
    /// consulted by the first-fit timing model (see the module docs).
    pub const fn rr_cursor(&self) -> usize {
        self.rr_cursor
    }

    /// Clears all statistics and the bus timeline; registered initiators are
    /// forgotten so a fresh measurement window starts clean.
    pub fn reset(&mut self) {
        let config = self.config;
        *self = Self::new(config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_common::PhysAddr;

    fn burst_req(device: u32, len: u64) -> MemPortReq {
        MemPortReq::read(InitiatorId::dma(device), PhysAddr::new(0x8000_0000), len).as_burst()
    }

    fn timing(latency: u64, occupancy: u64) -> PortTiming {
        PortTiming {
            latency: Cycles::new(latency),
            occupancy: Cycles::new(occupancy),
        }
    }

    #[test]
    fn untimed_accesses_never_queue() {
        let mut fabric = Fabric::default();
        for _ in 0..10 {
            let q = fabric.grant(
                &MemPortReq::read(InitiatorId::Host, PhysAddr::new(0x1000), 8),
                None,
                timing(30, 1),
            );
            assert_eq!(q, Cycles::ZERO);
        }
        let host = fabric.initiator_stats(InitiatorId::Host).unwrap();
        assert_eq!(host.reads, 10);
        assert_eq!(host.queue_cycles, 0);
    }

    #[test]
    fn overlapping_timed_streams_record_contention() {
        let mut fabric = Fabric::default();
        // Cluster 0 occupies the bus for [0, 256).
        let q0 = fabric.grant(&burst_req(1, 2048), Some(Cycles::ZERO), timing(200, 256));
        assert_eq!(q0, Cycles::ZERO);
        // Cluster 1 arrives at cycle 10 while the bus is busy.
        let q1 = fabric.grant(&burst_req(3, 2048), Some(Cycles::new(10)), timing(200, 256));
        assert_eq!(q1, Cycles::new(246));
        let s1 = fabric.initiator_stats(InitiatorId::dma(3)).unwrap();
        assert_eq!(s1.queue_cycles, 246);
        assert_eq!(s1.contended_grants, 1);
        assert_eq!(fabric.grant_switches(), 1);
    }

    #[test]
    fn same_initiator_pipelining_is_not_contention() {
        let mut fabric = Fabric::default();
        fabric.grant(&burst_req(1, 2048), Some(Cycles::ZERO), timing(200, 256));
        // The same engine's next burst at cycle 1 overlaps its own traffic:
        // that pipelining is modelled by the DMA engine, not the fabric.
        let q = fabric.grant(&burst_req(1, 2048), Some(Cycles::new(1)), timing(200, 256));
        assert_eq!(q, Cycles::ZERO);
        assert_eq!(
            fabric
                .initiator_stats(InitiatorId::dma(1))
                .unwrap()
                .queue_cycles,
            0
        );
    }

    #[test]
    fn totals_merge_all_initiators() {
        let mut fabric = Fabric::default();
        fabric.grant(&burst_req(1, 100), Some(Cycles::ZERO), timing(10, 5));
        fabric.grant(
            &MemPortReq::write(InitiatorId::Host, PhysAddr::new(0x2000), 50),
            None,
            timing(10, 2),
        );
        fabric.note_latency(InitiatorId::dma(1), Cycles::new(10));
        fabric.note_latency(InitiatorId::Host, Cycles::new(12));
        let total = fabric.total();
        assert_eq!(total.accesses(), 2);
        assert_eq!(total.bytes, 150);
        assert_eq!(total.latency_cycles, 22);
        assert_eq!(fabric.initiator_count(), 2);
        assert_eq!(fabric.grants(), 2);
    }

    #[test]
    fn reset_clears_registry_and_timeline() {
        let mut fabric = Fabric::new(FabricConfig {
            contention_enabled: true,
        });
        fabric.grant(&burst_req(1, 2048), Some(Cycles::ZERO), timing(200, 256));
        fabric.reset();
        assert_eq!(fabric.initiator_count(), 0);
        assert_eq!(fabric.grants(), 0);
        assert!(fabric.config().contention_enabled, "config survives reset");
        // A burst arriving at cycle 0 after reset sees a free bus.
        let q = fabric.grant(&burst_req(3, 2048), Some(Cycles::ZERO), timing(200, 256));
        assert_eq!(q, Cycles::ZERO);
    }

    #[test]
    fn priority_wins_arbitration_without_queueing() {
        let mut fabric = Fabric::default();
        // A priority-0 stream holds the bus for [0, 256).
        fabric.grant(&burst_req(1, 2048), Some(Cycles::ZERO), timing(200, 256));
        // A priority-1 access arriving mid-interval does not queue...
        let req = burst_req(3, 2048).with_priority(1);
        let q = fabric.grant(&req, Some(Cycles::new(10)), timing(200, 256));
        assert_eq!(q, Cycles::ZERO);
        assert_eq!(
            fabric
                .initiator_stats(InitiatorId::dma(3))
                .unwrap()
                .queue_cycles,
            0
        );
        // ...but its occupancy [10, 266) still blocks later priority-0
        // traffic from a third initiator.
        let q0 = fabric.grant(&burst_req(5, 2048), Some(Cycles::new(20)), timing(200, 256));
        assert_eq!(q0, Cycles::new(246), "queues behind the priority grant");
    }

    #[test]
    fn reservation_window_prunes_correctly_across_magnitudes() {
        // Long-lived timeline: early large interval, then far-future small
        // ones; the max-length window must still find the early conflict.
        let mut fabric = Fabric::default();
        fabric.grant(&burst_req(1, 2048), Some(Cycles::ZERO), timing(0, 10_000));
        let q = fabric.grant(&burst_req(3, 64), Some(Cycles::new(9_999)), timing(0, 8));
        assert_eq!(q, Cycles::new(1), "tail of the long interval conflicts");
        let q2 = fabric.grant(&burst_req(3, 64), Some(Cycles::new(50_000)), timing(0, 8));
        assert_eq!(q2, Cycles::ZERO, "far beyond every reservation");
    }

    #[test]
    fn rr_cursor_rotates_past_the_granted_slot() {
        let mut fabric = Fabric::default();
        fabric.grant(&burst_req(1, 64), Some(Cycles::ZERO), timing(10, 8));
        assert_eq!(fabric.rr_cursor(), 0, "one slot: cursor wraps to itself");
        fabric.grant(&burst_req(2, 64), Some(Cycles::new(1000)), timing(10, 8));
        // Slot 1 granted last, cursor favours slot 0 next.
        assert_eq!(fabric.rr_cursor(), 0);
        fabric.grant(&burst_req(1, 64), Some(Cycles::new(2000)), timing(10, 8));
        assert_eq!(fabric.rr_cursor(), 1);
    }
}
