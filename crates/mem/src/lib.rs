//! Memory-subsystem models for the prototype platform.
//!
//! This crate provides the storage and timing models behind every memory
//! access in the simulation:
//!
//! * [`backing`] — a sparse, frame-granular byte store holding the functional
//!   contents of DRAM and the L2 scratchpad, laid out as a direct-map frame
//!   table with typed single-frame fast paths;
//! * [`naive_backing`] — the retained hash-map store engine the direct-map
//!   store is lockstep-tested against (`backing_identity`);
//! * [`dram`] — the DRAM controller timing model, including the AXI delayer
//!   the paper uses to sweep memory latency;
//! * [`cache`] — a generic set-associative cache timing model (tags + LRU +
//!   dirty bits, no data; the data always lives in the backing store);
//! * [`llc`] — the Cheshire last-level cache (128 KiB, write-back,
//!   SPM-partitionable), shared by the host and the IOMMU page-table walker;
//! * [`spm`] — the 1 MiB on-chip L2 scratchpad;
//! * [`interference`] — the synthetic host-traffic interference model used in
//!   Figure 5;
//! * [`channels`] — the multi-channel DRAM geometry and the address→channel
//!   interleave mapping;
//! * [`fabric`] — the arbitration and per-initiator accounting layer of the
//!   unified memory fabric (per-channel interval timelines, round-robin /
//!   weighted / fixed-priority arbitration, contention measurement), placed
//!   by an end-indexed reservation engine with watermark compaction;
//! * [`naive_fabric`] — the retained linear-scan reference engine the
//!   indexed fabric is property-tested against (cycle-identity);
//! * [`system`] — [`MemorySystem`], the composition of all of the above
//!   behind the unified [`MemorySystem::access`](system::MemorySystem::access)
//!   fabric port used by the host, every cluster's DMA engine and the IOMMU
//!   page-table walker.
//!
//! # Example
//!
//! ```
//! use sva_mem::{MemorySystem, MemSysConfig};
//! use sva_common::{Cycles, PhysAddr};
//!
//! let mut mem = MemorySystem::new(MemSysConfig {
//!     dram_latency: Cycles::new(200),
//!     llc_enabled: true,
//!     ..MemSysConfig::default()
//! });
//!
//! // Functional write + timed host read through the LLC.
//! let addr = PhysAddr::new(0x8000_0000);
//! mem.write_phys(addr, &42u64.to_le_bytes()).unwrap();
//! let mut buf = [0u8; 8];
//! let lat = mem.host_read(addr, &mut buf).unwrap();
//! assert_eq!(u64::from_le_bytes(buf), 42);
//! assert!(lat.raw() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backing;
pub mod cache;
pub mod channels;
pub mod dram;
pub mod fabric;
pub mod interference;
pub mod llc;
pub mod naive_backing;
pub mod naive_fabric;
pub mod spm;
pub mod system;

pub use backing::SparseMemory;
pub use cache::{Cache, CacheConfig, CacheOutcome};
pub use channels::{ChannelStats, DramChannelConfig};
pub use dram::{Dram, DramConfig};
pub use fabric::{Fabric, FabricConfig, GrantOutcome, InitiatorSnapshot};
pub use interference::Interference;
pub use llc::{Llc, LlcConfig};
pub use naive_backing::NaiveSparseMemory;
pub use naive_fabric::NaiveFabric;
pub use spm::Scratchpad;
pub use system::{BurstTiming, MemData, MemReq, MemRsp, MemSysConfig, MemSysStats, MemorySystem};
