//! The retained hash-map sparse-store engine, kept as the executable
//! reference for the direct-map [`SparseMemory`](crate::SparseMemory).
//!
//! This is the pre-PR-10 per-frame `HashMap` engine verbatim: every touched
//! frame costs a hash probe and every access runs the generic byte-chunk
//! loop (the typed accessors are thin wrappers over it, exactly as they
//! were). The one deliberate deviation from the old code is the shared
//! **spec fix** to [`NaiveSparseMemory::fill`]: zero-filling an absent frame
//! is a no-op on both engines (absent frames already read as zero), so the
//! resident-frame accounting the lockstep suite compares agrees by
//! construction rather than by accident.
//!
//! The lockstep property suite (`crates/mem/tests/backing_identity.rs`)
//! drives randomized operation sequences through both engines and asserts
//! every observable — read-back bytes, typed values, error outcomes and
//! resident-frame counts — is identical; the `simspeed` stress points
//! `backing_stream` and `backing_scatter` twin-run the engines under a
//! digest cross-check and gate the direct-map store's speedup.

use std::collections::HashMap;

use sva_common::{Error, Result, PAGE_SIZE};

/// Frame-granular sparse byte store of a fixed capacity, backed by a
/// per-frame hash map (the linear reference engine).
#[derive(Clone, Debug, Default)]
pub struct NaiveSparseMemory {
    frames: HashMap<u64, Box<[u8]>>,
    capacity: u64,
}

impl NaiveSparseMemory {
    /// Creates a store covering offsets `0..capacity`.
    pub fn new(capacity: u64) -> Self {
        Self {
            frames: HashMap::new(),
            capacity,
        }
    }

    /// Capacity in bytes.
    pub const fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of frames that have been touched (allocated) so far.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    /// Resident (allocated) bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.frames.len() as u64 * PAGE_SIZE
    }

    fn check_range(&self, offset: u64, len: u64) -> Result<()> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.capacity)
        {
            return Err(Error::OutOfBounds {
                addr: sva_common::PhysAddr::new(offset),
                len,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_range(offset, buf.len() as u64)?;
        let mut done = 0usize;
        while done < buf.len() {
            let cur = offset + done as u64;
            let frame = cur / PAGE_SIZE;
            let in_frame = (cur % PAGE_SIZE) as usize;
            let chunk = (buf.len() - done).min(PAGE_SIZE as usize - in_frame);
            match self.frames.get(&frame) {
                Some(data) => {
                    buf[done..done + chunk].copy_from_slice(&data[in_frame..in_frame + chunk]);
                }
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
        }
        Ok(())
    }

    /// Writes `buf` starting at `offset`, allocating frames as needed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn write(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        self.check_range(offset, buf.len() as u64)?;
        let mut done = 0usize;
        while done < buf.len() {
            let cur = offset + done as u64;
            let frame = cur / PAGE_SIZE;
            let in_frame = (cur % PAGE_SIZE) as usize;
            let chunk = (buf.len() - done).min(PAGE_SIZE as usize - in_frame);
            let data = self
                .frames
                .entry(frame)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            data[in_frame..in_frame + chunk].copy_from_slice(&buf[done..done + chunk]);
            done += chunk;
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `offset` through the generic chunk
    /// loop (no single-frame fast path — this is the reference cost).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn read_u64(&self, offset: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn write_u64(&mut self, offset: u64, value: u64) -> Result<u64> {
        self.write(offset, &value.to_le_bytes())?;
        Ok(value)
    }

    /// Reads a little-endian `f32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn read_f32(&self, offset: u64) -> Result<f32> {
        let mut b = [0u8; 4];
        self.read(offset, &mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    /// Writes a little-endian `f32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn write_f32(&mut self, offset: u64, value: f32) -> Result<()> {
        self.write(offset, &value.to_le_bytes())
    }

    /// Fills `len` bytes starting at `offset` with `value`. Zero-filling an
    /// absent frame is a no-op (the shared spec fix — see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn fill(&mut self, offset: u64, len: u64, value: u8) -> Result<()> {
        self.check_range(offset, len)?;
        let mut done = 0u64;
        while done < len {
            let cur = offset + done;
            let frame = cur / PAGE_SIZE;
            let in_frame = (cur % PAGE_SIZE) as usize;
            let n = ((len - done) as usize).min(PAGE_SIZE as usize - in_frame);
            if value != 0 || self.frames.contains_key(&frame) {
                let data = self
                    .frames
                    .entry(frame)
                    .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
                data[in_frame..in_frame + n].fill(value);
            }
            done += n as u64;
        }
        Ok(())
    }

    /// Drops all contents, returning the store to the all-zero state.
    pub fn clear(&mut self) {
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_engine_roundtrip_and_zero_fill_no_op() {
        let mut mem = NaiveSparseMemory::new(1 << 20);
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        mem.write(PAGE_SIZE - 100, &data).unwrap();
        let mut back = vec![0u8; 10_000];
        mem.read(PAGE_SIZE - 100, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(mem.resident_frames(), 4);
        mem.clear();
        mem.fill(0, 1 << 20, 0).unwrap();
        assert_eq!(mem.resident_frames(), 0, "spec fix applies to the twin");
        mem.write_u64(8, 0x77).unwrap();
        assert_eq!(mem.read_u64(8).unwrap(), 0x77);
        assert!(mem.read_u64((1 << 20) - 4).is_err());
    }
}
