//! The Cheshire shared last-level cache (LLC).
//!
//! Cheshire's LLC sits between the system crossbar and the DRAM controller
//! and can be partitioned at run time between cache ways and
//! scratchpad-mapped ways. In the paper's platform it is configured as
//! 128 KiB and — crucially for the SVA evaluation — it serves only **host**
//! and **IOMMU page-table-walk** traffic: device DMA uses the bypass address
//! window so long bursts do not get broken into line refills and do not evict
//! host data.
//!
//! The model is a tag-only write-back cache plus the hit/refill timing used
//! by [`crate::system::MemorySystem`].

use serde::{Deserialize, Serialize};
use sva_common::stats::HitMiss;
use sva_common::{Cycles, PhysAddr, CACHE_LINE_SIZE, KIB};

use crate::cache::{Cache, CacheConfig, CacheOutcome};

/// Configuration of the last-level cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Total capacity in bytes (cache + SPM partition).
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Number of ways mapped out as scratchpad (not usable as cache).
    pub spm_ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Latency of a hit, including the crossbar-to-LLC hop.
    pub hit_latency: Cycles,
}

impl LlcConfig {
    /// The paper's configuration: 128 KiB, 8-way, all ways used as cache,
    /// 64-byte lines.
    pub const fn cheshire_128k() -> Self {
        Self {
            size_bytes: 128 * KIB,
            ways: 8,
            spm_ways: 0,
            line_bytes: CACHE_LINE_SIZE,
            hit_latency: Cycles::new(9),
        }
    }

    /// Number of ways usable as cache after the SPM partition is removed.
    pub const fn cache_ways(&self) -> usize {
        self.ways - self.spm_ways
    }

    /// Effective cache capacity in bytes after partitioning.
    pub const fn cache_bytes(&self) -> u64 {
        self.size_bytes / self.ways as u64 * self.cache_ways() as u64
    }
}

impl Default for LlcConfig {
    fn default() -> Self {
        Self::cheshire_128k()
    }
}

/// Who issued an LLC access; used only for statistics so the experiments can
/// report host and PTW hit rates separately.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LlcRequester {
    /// CVA6 host traffic (through the L1).
    Host,
    /// IOMMU page-table-walk traffic.
    Ptw,
    /// Device DMA traffic (only when the bypass is disabled for ablation).
    Dma,
}

/// The last-level cache model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Llc {
    config: LlcConfig,
    cache: Cache,
    host_stats: HitMiss,
    ptw_stats: HitMiss,
    dma_stats: HitMiss,
    flushes: u64,
}

impl Llc {
    /// Creates an LLC with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration partitions away all cache ways or has an
    /// inconsistent geometry.
    pub fn new(config: LlcConfig) -> Self {
        assert!(
            config.cache_ways() > 0,
            "LLC configured with zero cache ways (all ways given to the SPM partition)"
        );
        let cache = Cache::new(CacheConfig {
            size_bytes: config.cache_bytes(),
            ways: config.cache_ways(),
            line_bytes: config.line_bytes,
            write_back: true,
        });
        Self {
            config,
            cache,
            host_stats: HitMiss::new(),
            ptw_stats: HitMiss::new(),
            dma_stats: HitMiss::new(),
            flushes: 0,
        }
    }

    /// The configuration of this LLC.
    pub const fn config(&self) -> &LlcConfig {
        &self.config
    }

    /// Looks up (and on miss, fills) the line containing `addr`.
    pub fn access(
        &mut self,
        requester: LlcRequester,
        addr: PhysAddr,
        is_write: bool,
    ) -> CacheOutcome {
        let outcome = self.cache.access(addr, is_write);
        let stats = match requester {
            LlcRequester::Host => &mut self.host_stats,
            LlcRequester::Ptw => &mut self.ptw_stats,
            LlcRequester::Dma => &mut self.dma_stats,
        };
        if outcome.is_hit() {
            stats.hit();
        } else {
            stats.miss();
        }
        outcome
    }

    /// Returns `true` if the line containing `addr` is resident (no state
    /// update).
    pub fn probe(&self, addr: PhysAddr) -> bool {
        self.cache.probe(addr)
    }

    /// Invalidates a single line; returns its base address if it was dirty.
    pub fn invalidate_line(&mut self, addr: PhysAddr) -> Option<PhysAddr> {
        self.cache.invalidate(addr)
    }

    /// Flushes the entire cache (the `flush_last_level_cache()` call of
    /// Listing 1), returning the number of dirty lines written back.
    pub fn flush_all(&mut self) -> u64 {
        self.flushes += 1;
        self.cache.flush_all()
    }

    /// Latency of a hit.
    pub const fn hit_latency(&self) -> Cycles {
        self.config.hit_latency
    }

    /// Line size in bytes (refill granularity).
    pub const fn line_bytes(&self) -> u64 {
        self.config.line_bytes
    }

    /// Hit/miss statistics for a given requester.
    pub const fn stats(&self, requester: LlcRequester) -> HitMiss {
        match requester {
            LlcRequester::Host => self.host_stats,
            LlcRequester::Ptw => self.ptw_stats,
            LlcRequester::Dma => self.dma_stats,
        }
    }

    /// Number of whole-cache flushes requested so far.
    pub const fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Number of dirty-line writebacks caused by evictions.
    pub fn writebacks(&self) -> u64 {
        self.cache.writebacks()
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> u64 {
        self.cache.resident_lines()
    }

    /// Clears all statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.host_stats.reset();
        self.ptw_stats.reset();
        self.dma_stats.reset();
        self.cache.reset_stats();
        self.flushes = 0;
    }
}

impl Default for Llc {
    fn default() -> Self {
        Self::new(LlcConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_reduces_cache_capacity() {
        let cfg = LlcConfig {
            spm_ways: 4,
            ..LlcConfig::cheshire_128k()
        };
        assert_eq!(cfg.cache_ways(), 4);
        assert_eq!(cfg.cache_bytes(), 64 * KIB);
        let llc = Llc::new(cfg);
        assert_eq!(llc.config().cache_bytes(), 64 * KIB);
    }

    #[test]
    #[should_panic(expected = "zero cache ways")]
    fn all_spm_ways_is_rejected() {
        let _ = Llc::new(LlcConfig {
            spm_ways: 8,
            ..LlcConfig::cheshire_128k()
        });
    }

    #[test]
    fn per_requester_statistics() {
        let mut llc = Llc::default();
        let pte_addr = PhysAddr::new(0x8010_0000);
        // Host writes the PTE (miss, fill)...
        assert!(!llc.access(LlcRequester::Host, pte_addr, true).is_hit());
        // ...then the PTW reads it back and hits.
        assert!(llc.access(LlcRequester::Ptw, pte_addr, false).is_hit());
        assert_eq!(llc.stats(LlcRequester::Host).misses, 1);
        assert_eq!(llc.stats(LlcRequester::Ptw).hits, 1);
        assert_eq!(llc.stats(LlcRequester::Dma).total(), 0);
    }

    #[test]
    fn flush_writes_back_dirty_lines_and_empties_cache() {
        let mut llc = Llc::default();
        llc.access(LlcRequester::Host, PhysAddr::new(0x8000_0000), true);
        llc.access(LlcRequester::Host, PhysAddr::new(0x8000_0040), false);
        let dirty = llc.flush_all();
        assert_eq!(dirty, 1);
        assert_eq!(llc.resident_lines(), 0);
        assert_eq!(llc.flushes(), 1);
        assert!(!llc.probe(PhysAddr::new(0x8000_0000)));
    }

    #[test]
    fn invalidate_line_reports_dirtiness() {
        let mut llc = Llc::default();
        let a = PhysAddr::new(0x8000_1000);
        llc.access(LlcRequester::Host, a, true);
        assert_eq!(llc.invalidate_line(a), Some(a));
        llc.access(LlcRequester::Host, a, false);
        assert_eq!(llc.invalidate_line(a), None);
    }
}
