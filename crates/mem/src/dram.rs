//! DRAM controller timing model with the configurable AXI delayer.
//!
//! On the FPGA prototype a memory access from the 50 MHz host domain reaches
//! the DDR4 controller in roughly 35 cycles; the paper then adds a
//! parametrisable delayer (200 / 600 / 1000 cycles) in front of the
//! controller to emulate the relative latency a real silicon implementation
//! would see. This module combines both into a single access-timing model:
//!
//! ```text
//! access latency = controller latency + delayer latency + beats on the bus
//! ```

use serde::{Deserialize, Serialize};
use sva_axi::{AccessKind, AxiDelayer, BusConfig};
use sva_common::stats::Counter;
use sva_common::Cycles;

/// Configuration of the DRAM timing model.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Fixed latency of the DDR controller and PHY as observed from the host
    /// clock domain (about 35 cycles at 50 MHz on the VCU128).
    pub controller_latency: Cycles,
    /// Additional latency inserted by the AXI delayer (the experiment knob:
    /// 200, 600 or 1000 cycles).
    pub delayer_latency: Cycles,
    /// Data-bus geometry between the crossbar and the controller.
    pub bus: BusConfig,
}

impl DramConfig {
    /// Controller latency measured on the FPGA prototype at 50 MHz.
    pub const FPGA_CONTROLLER_LATENCY: Cycles = Cycles::new(35);

    /// Creates a configuration with the given delayer latency and default
    /// controller/bus parameters.
    pub fn with_delayer(delayer_latency: Cycles) -> Self {
        Self {
            controller_latency: Self::FPGA_CONTROLLER_LATENCY,
            delayer_latency,
            bus: BusConfig::AXI64,
        }
    }

    /// Total zero-load latency (controller + delayer) of a single beat.
    pub fn base_latency(&self) -> Cycles {
        self.controller_latency + self.delayer_latency
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::with_delayer(Cycles::new(200))
    }
}

/// Timing of one DRAM access, split into the latency to the first beat and
/// the bus occupancy of the data transfer.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Cycles until the first data beat (or write acceptance) returns.
    pub latency: Cycles,
    /// Cycles the data bus is busy streaming the payload.
    pub occupancy: Cycles,
}

impl DramTiming {
    /// Total blocking time of the access for an initiator that cannot
    /// overlap it with anything else.
    pub fn total(&self) -> Cycles {
        self.latency + self.occupancy
    }
}

/// The DRAM controller + delayer timing model.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dram {
    config: DramConfig,
    delayer: AxiDelayer,
    accesses: Counter,
    bytes: Counter,
}

impl Dram {
    /// Creates a DRAM model from a configuration.
    pub fn new(config: DramConfig) -> Self {
        Self {
            delayer: AxiDelayer::new(config.delayer_latency),
            config,
            accesses: Counter::new(),
            bytes: Counter::new(),
        }
    }

    /// The configuration of the model.
    pub const fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Changes the delayer latency (used by the latency sweeps).
    pub fn set_delayer_latency(&mut self, delay: Cycles) {
        self.config.delayer_latency = delay;
        self.delayer.set_delay(delay);
    }

    /// Computes the timing of one access of `bytes` bytes and records it in
    /// the statistics.
    pub fn access(&mut self, kind: AccessKind, bytes: u64) -> DramTiming {
        self.accesses.incr();
        self.bytes.add(bytes);
        let delayed = self.delayer.apply(kind);
        DramTiming {
            latency: self.config.controller_latency + delayed,
            occupancy: Cycles::new(self.config.bus.beats_for(bytes)),
        }
    }

    /// The delayer block (its response-FIFO occupancy is observable through
    /// [`AxiDelayer::in_flight_at`]).
    pub const fn delayer(&self) -> &AxiDelayer {
        &self.delayer
    }

    /// Records one response window `[start, start + span)` held by the
    /// delayer's FIFO on the global clock (called by the memory system for
    /// every timed access).
    pub fn note_response_window(&mut self, start: Cycles, span: Cycles) {
        self.delayer.note_response(start, span);
    }

    /// Drops the recorded response windows (a new measurement window opens).
    pub fn clear_response_window(&mut self) {
        self.delayer.clear_window();
    }

    /// Number of accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses.get()
    }

    /// Number of bytes transferred.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes.get()
    }

    /// Clears the statistics.
    pub fn reset_stats(&mut self) {
        self.accesses.reset();
        self.bytes.reset();
        self.delayer.reset_stats();
    }
}

impl Default for Dram {
    fn default() -> Self {
        Self::new(DramConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_latency_is_controller_plus_delayer() {
        let mut dram = Dram::new(DramConfig::with_delayer(Cycles::new(600)));
        let t = dram.access(AccessKind::Read, 64);
        assert_eq!(t.latency, Cycles::new(635));
        assert_eq!(t.occupancy, Cycles::new(8));
        assert_eq!(t.total(), Cycles::new(643));
    }

    #[test]
    fn occupancy_scales_with_burst_size() {
        let mut dram = Dram::new(DramConfig::with_delayer(Cycles::new(200)));
        let small = dram.access(AccessKind::Read, 8);
        let big = dram.access(AccessKind::Read, 2048);
        assert_eq!(small.occupancy, Cycles::new(1));
        assert_eq!(big.occupancy, Cycles::new(256));
        assert_eq!(small.latency, big.latency);
    }

    #[test]
    fn latency_sweep_reconfiguration() {
        let mut dram = Dram::default();
        let t200 = dram.access(AccessKind::Read, 64).latency;
        dram.set_delayer_latency(Cycles::new(1000));
        let t1000 = dram.access(AccessKind::Read, 64).latency;
        assert_eq!(t1000 - t200, Cycles::new(800));
    }

    #[test]
    fn statistics_accumulate() {
        let mut dram = Dram::default();
        dram.access(AccessKind::Read, 64);
        dram.access(AccessKind::Write, 128);
        assert_eq!(dram.accesses(), 2);
        assert_eq!(dram.bytes_transferred(), 192);
        dram.reset_stats();
        assert_eq!(dram.accesses(), 0);
    }
}
