//! Sparse functional byte storage.
//!
//! The simulated platform exposes a 2 GiB DRAM and a 1 MiB scratchpad, but a
//! benchmark run only ever touches a few megabytes of them. [`SparseMemory`]
//! stores contents in 4 KiB frames allocated on first touch so the simulator
//! never reserves the full address space. Unwritten bytes read as zero,
//! matching zero-initialised DRAM on the FPGA after the bitstream is loaded.

use std::collections::HashMap;

use sva_common::{Error, Result, PAGE_SIZE};

/// Frame-granular sparse byte store of a fixed capacity.
#[derive(Clone, Debug, Default)]
pub struct SparseMemory {
    frames: HashMap<u64, Box<[u8]>>,
    capacity: u64,
}

impl SparseMemory {
    /// Creates a store covering offsets `0..capacity`.
    pub fn new(capacity: u64) -> Self {
        Self {
            frames: HashMap::new(),
            capacity,
        }
    }

    /// Capacity in bytes.
    pub const fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of frames that have been touched (allocated) so far.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    /// Resident (allocated) bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.frames.len() as u64 * PAGE_SIZE
    }

    fn check_range(&self, offset: u64, len: u64) -> Result<()> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.capacity)
        {
            return Err(Error::OutOfBounds {
                addr: sva_common::PhysAddr::new(offset),
                len,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_range(offset, buf.len() as u64)?;
        let mut done = 0usize;
        while done < buf.len() {
            let cur = offset + done as u64;
            let frame = cur / PAGE_SIZE;
            let in_frame = (cur % PAGE_SIZE) as usize;
            let chunk = (buf.len() - done).min(PAGE_SIZE as usize - in_frame);
            match self.frames.get(&frame) {
                Some(data) => {
                    buf[done..done + chunk].copy_from_slice(&data[in_frame..in_frame + chunk]);
                }
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
        }
        Ok(())
    }

    /// Writes `buf` starting at `offset`, allocating frames as needed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn write(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        self.check_range(offset, buf.len() as u64)?;
        let mut done = 0usize;
        while done < buf.len() {
            let cur = offset + done as u64;
            let frame = cur / PAGE_SIZE;
            let in_frame = (cur % PAGE_SIZE) as usize;
            let chunk = (buf.len() - done).min(PAGE_SIZE as usize - in_frame);
            let data = self
                .frames
                .entry(frame)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            data[in_frame..in_frame + chunk].copy_from_slice(&buf[done..done + chunk]);
            done += chunk;
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `offset` (used for page-table entries).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn read_u64(&self, offset: u64) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read(offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn write_u64(&mut self, offset: u64, value: u64) -> Result<u64> {
        self.write(offset, &value.to_le_bytes())?;
        Ok(value)
    }

    /// Reads a little-endian `f32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn read_f32(&self, offset: u64) -> Result<f32> {
        let mut b = [0u8; 4];
        self.read(offset, &mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    /// Writes a little-endian `f32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn write_f32(&mut self, offset: u64, value: f32) -> Result<()> {
        self.write(offset, &value.to_le_bytes())
    }

    /// Fills `len` bytes starting at `offset` with `value`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn fill(&mut self, offset: u64, len: u64, value: u8) -> Result<()> {
        self.check_range(offset, len)?;
        // Writing through the frame map keeps sparseness for untouched frames
        // only when value is zero and the frame does not exist yet.
        let chunk = vec![value; PAGE_SIZE as usize];
        let mut done = 0u64;
        while done < len {
            let cur = offset + done;
            let in_frame = cur % PAGE_SIZE;
            let n = (len - done).min(PAGE_SIZE - in_frame);
            self.write(cur, &chunk[..n as usize])?;
            done += n;
        }
        Ok(())
    }

    /// Drops all contents, returning the store to the all-zero state.
    pub fn clear(&mut self) {
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = SparseMemory::new(1 << 20);
        let mut buf = [0xFFu8; 16];
        mem.read(0x1234, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn write_read_roundtrip_across_frame_boundary() {
        let mut mem = SparseMemory::new(1 << 20);
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        mem.write(PAGE_SIZE - 100, &data).unwrap();
        let mut back = vec![0u8; 10_000];
        mem.read(PAGE_SIZE - 100, &mut back).unwrap();
        assert_eq!(back, data);
        // 3996..13996 touches frames 0 through 3.
        assert_eq!(mem.resident_frames(), 4);
        assert_eq!(mem.resident_bytes(), 4 * PAGE_SIZE);
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut mem = SparseMemory::new(4096);
        assert!(mem.write(4090, &[0u8; 8]).is_err());
        let mut buf = [0u8; 8];
        assert!(mem.read(4095, &mut buf).is_err());
        assert!(mem.read(u64::MAX, &mut buf).is_err());
        // Exactly at the end is fine.
        assert!(mem.write(4088, &[1u8; 8]).is_ok());
    }

    #[test]
    fn u64_and_f32_accessors() {
        let mut mem = SparseMemory::new(1 << 16);
        mem.write_u64(0x100, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(mem.read_u64(0x100).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        mem.write_f32(0x200, 3.5).unwrap();
        assert_eq!(mem.read_f32(0x200).unwrap(), 3.5);
    }

    #[test]
    fn fill_and_clear() {
        let mut mem = SparseMemory::new(1 << 16);
        mem.fill(100, 5000, 0xAB).unwrap();
        let mut buf = [0u8; 4];
        mem.read(4000, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 4]);
        mem.clear();
        mem.read(4000, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }
}
