//! Sparse functional byte storage.
//!
//! The simulated platform exposes a 2 GiB DRAM and a 1 MiB scratchpad, but a
//! benchmark run only ever touches a few megabytes of them. [`SparseMemory`]
//! stores contents in 4 KiB frames allocated on first touch so the simulator
//! never reserves the full address space. Unwritten bytes read as zero,
//! matching zero-initialised DRAM on the FPGA after the bitstream is loaded.
//!
//! The store is a **direct-map frame table**: frame index = `offset >> 12`
//! into a lazily grown `Vec<Option<Box<[u8]>>>`, so touching a frame is one
//! bounds-checked vector index instead of the former per-frame hash (the
//! retained hash engine lives on as
//! [`NaiveSparseMemory`](crate::NaiveSparseMemory), the executable reference
//! the lockstep suite `crates/mem/tests/backing_identity.rs` twin-runs
//! against). A generation-tagged last-frame memo carries cross-call locality
//! — a sequential DMA burst touches the same frame for 64 beats in a row —
//! and the typed accessors ([`SparseMemory::read_u64`] & friends) take a
//! single-frame fast path whenever the access does not straddle a frame
//! boundary, which holds for every aligned PTE fetch, page-table write and
//! kernel element access.

use std::cell::Cell;

use sva_common::{Error, Result, PAGE_SIZE};

/// Frame index of an offset (`offset >> 12`).
const FRAME_SHIFT: u32 = PAGE_SIZE.trailing_zeros();

/// Offset within a frame (`offset & 0xFFF`).
const FRAME_MASK: u64 = PAGE_SIZE - 1;

/// The last-frame memo: remembers the presence of the most recently probed
/// frame so a run of accesses to the same frame (sequential DMA beats,
/// back-to-back PTE fetches into one table page) skips re-probing the frame
/// table. Tagged with the store's generation so [`SparseMemory::clear`]
/// invalidates it wholesale.
#[derive(Copy, Clone, Debug)]
struct FrameMemo {
    /// Generation of the store this memo was taken in.
    generation: u64,
    /// The memoised frame index.
    frame: u64,
    /// Whether that frame was resident. Frames never *become* absent except
    /// through [`SparseMemory::clear`] (which bumps the generation), so a
    /// `true` memo stays true; a `false` memo is refreshed by the write that
    /// materialises the frame.
    present: bool,
}

/// Frame-granular sparse byte store of a fixed capacity, laid out as a
/// direct-map frame table.
#[derive(Clone, Debug)]
pub struct SparseMemory {
    /// Direct-map frame table, grown lazily to the highest written frame.
    /// Absent (`None`) and beyond-the-end frames read as zero.
    frames: Vec<Option<Box<[u8]>>>,
    /// Number of resident (allocated) frames.
    resident: usize,
    capacity: u64,
    /// Bumped by [`SparseMemory::clear`]; tags [`FrameMemo`] validity.
    generation: u64,
    memo: Cell<FrameMemo>,
    /// Test hook: when set, writes skip the memo refresh on frame
    /// materialisation — the stale-memo bug the lockstep suite must catch.
    debug_frozen_memo: bool,
}

impl SparseMemory {
    /// Creates a store covering offsets `0..capacity`.
    pub fn new(capacity: u64) -> Self {
        Self {
            frames: Vec::new(),
            resident: 0,
            capacity,
            generation: 1,
            // Generation 0 never matches a live store, so the initial memo
            // is inert.
            memo: Cell::new(FrameMemo {
                generation: 0,
                frame: 0,
                present: false,
            }),
            debug_frozen_memo: false,
        }
    }

    /// Capacity in bytes.
    pub const fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of frames that have been touched (allocated) so far.
    pub fn resident_frames(&self) -> usize {
        self.resident
    }

    /// Resident (allocated) bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.resident as u64 * PAGE_SIZE
    }

    fn check_range(&self, offset: u64, len: u64) -> Result<()> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.capacity)
        {
            return Err(Error::OutOfBounds {
                addr: sva_common::PhysAddr::new(offset),
                len,
            });
        }
        Ok(())
    }

    /// The resident frame at `idx`, if any, going through the last-frame
    /// memo: a memo hit answers presence without touching the frame table;
    /// a miss probes the table and refreshes the memo.
    #[inline]
    fn frame_memoized(&self, idx: u64) -> Option<&[u8]> {
        let memo = self.memo.get();
        if memo.generation == self.generation && memo.frame == idx {
            if !memo.present {
                return None;
            }
            return self.frames.get(idx as usize).and_then(|f| f.as_deref());
        }
        let data = self.frames.get(idx as usize).and_then(|f| f.as_deref());
        self.memo.set(FrameMemo {
            generation: self.generation,
            frame: idx,
            present: data.is_some(),
        });
        data
    }

    /// The frame at `idx`, materialising it (and growing the table) if
    /// absent. Refreshes a memo that recorded this frame as absent.
    #[inline]
    fn frame_mut(&mut self, idx: u64) -> &mut [u8] {
        let i = idx as usize;
        if i >= self.frames.len() {
            self.frames.resize_with(i + 1, || None);
        }
        let slot = &mut self.frames[i];
        if slot.is_none() {
            *slot = Some(vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            self.resident += 1;
            if !self.debug_frozen_memo {
                self.memo.set(FrameMemo {
                    generation: self.generation,
                    frame: idx,
                    present: true,
                });
            }
        }
        slot.as_deref_mut().expect("frame was just materialised")
    }

    /// Whether the frame at `idx` is resident, without going through (or
    /// refreshing) the memo.
    #[inline]
    fn frame_absent(&self, idx: u64) -> bool {
        self.frames.get(idx as usize).is_none_or(Option::is_none)
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    #[inline]
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.check_range(offset, buf.len() as u64)?;
        let in_frame = (offset & FRAME_MASK) as usize;
        // Single-frame fast path: one copy, no chunk loop.
        if in_frame + buf.len() <= PAGE_SIZE as usize {
            match self.frame_memoized(offset >> FRAME_SHIFT) {
                Some(data) => buf.copy_from_slice(&data[in_frame..in_frame + buf.len()]),
                None => buf.fill(0),
            }
            return Ok(());
        }
        let mut done = 0usize;
        while done < buf.len() {
            let cur = offset + done as u64;
            let in_frame = (cur & FRAME_MASK) as usize;
            let chunk = (buf.len() - done).min(PAGE_SIZE as usize - in_frame);
            match self.frame_memoized(cur >> FRAME_SHIFT) {
                Some(data) => {
                    buf[done..done + chunk].copy_from_slice(&data[in_frame..in_frame + chunk]);
                }
                None => buf[done..done + chunk].fill(0),
            }
            done += chunk;
        }
        Ok(())
    }

    /// Writes `buf` starting at `offset`, allocating frames as needed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    #[inline]
    pub fn write(&mut self, offset: u64, buf: &[u8]) -> Result<()> {
        self.check_range(offset, buf.len() as u64)?;
        let mut done = 0usize;
        while done < buf.len() {
            let cur = offset + done as u64;
            let in_frame = (cur & FRAME_MASK) as usize;
            let chunk = (buf.len() - done).min(PAGE_SIZE as usize - in_frame);
            let data = self.frame_mut(cur >> FRAME_SHIFT);
            data[in_frame..in_frame + chunk].copy_from_slice(&buf[done..done + chunk]);
            done += chunk;
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `offset` (used for page-table entries).
    ///
    /// Takes the single-frame fast path when the access does not straddle a
    /// frame boundary — always, for the 8-byte-aligned PTE fetches of the
    /// page-table walker.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    #[inline]
    pub fn read_u64(&self, offset: u64) -> Result<u64> {
        let in_frame = (offset & FRAME_MASK) as usize;
        if in_frame + 8 <= PAGE_SIZE as usize {
            self.check_range(offset, 8)?;
            return Ok(match self.frame_memoized(offset >> FRAME_SHIFT) {
                Some(data) => u64::from_le_bytes(
                    data[in_frame..in_frame + 8]
                        .try_into()
                        .expect("8-byte slice"),
                ),
                None => 0,
            });
        }
        let mut b = [0u8; 8];
        self.read(offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    #[inline]
    pub fn write_u64(&mut self, offset: u64, value: u64) -> Result<u64> {
        let in_frame = (offset & FRAME_MASK) as usize;
        if in_frame + 8 <= PAGE_SIZE as usize {
            self.check_range(offset, 8)?;
            let data = self.frame_mut(offset >> FRAME_SHIFT);
            data[in_frame..in_frame + 8].copy_from_slice(&value.to_le_bytes());
            return Ok(value);
        }
        self.write(offset, &value.to_le_bytes())?;
        Ok(value)
    }

    /// Reads a little-endian `f32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    #[inline]
    pub fn read_f32(&self, offset: u64) -> Result<f32> {
        let in_frame = (offset & FRAME_MASK) as usize;
        if in_frame + 4 <= PAGE_SIZE as usize {
            self.check_range(offset, 4)?;
            return Ok(match self.frame_memoized(offset >> FRAME_SHIFT) {
                Some(data) => f32::from_le_bytes(
                    data[in_frame..in_frame + 4]
                        .try_into()
                        .expect("4-byte slice"),
                ),
                None => 0.0,
            });
        }
        let mut b = [0u8; 4];
        self.read(offset, &mut b)?;
        Ok(f32::from_le_bytes(b))
    }

    /// Writes a little-endian `f32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    #[inline]
    pub fn write_f32(&mut self, offset: u64, value: f32) -> Result<()> {
        let in_frame = (offset & FRAME_MASK) as usize;
        if in_frame + 4 <= PAGE_SIZE as usize {
            self.check_range(offset, 4)?;
            let data = self.frame_mut(offset >> FRAME_SHIFT);
            data[in_frame..in_frame + 4].copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        self.write(offset, &value.to_le_bytes())
    }

    /// Fills `len` bytes starting at `offset` with `value`.
    ///
    /// Zero-filling a frame that was never touched is a no-op: absent frames
    /// already read as zero, so no frame is materialised and
    /// [`SparseMemory::resident_frames`] does not grow.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OutOfBounds`] if the range exceeds the capacity.
    pub fn fill(&mut self, offset: u64, len: u64, value: u8) -> Result<()> {
        self.check_range(offset, len)?;
        let mut done = 0u64;
        while done < len {
            let cur = offset + done;
            let in_frame = (cur & FRAME_MASK) as usize;
            let n = ((len - done) as usize).min(PAGE_SIZE as usize - in_frame);
            let idx = cur >> FRAME_SHIFT;
            if value != 0 || !self.frame_absent(idx) {
                self.frame_mut(idx)[in_frame..in_frame + n].fill(value);
            }
            done += n as u64;
        }
        Ok(())
    }

    /// Drops all contents, returning the store to the all-zero state.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.resident = 0;
        // Invalidate every outstanding memo wholesale.
        self.generation += 1;
    }

    /// Test hook: freezes the last-frame memo across writes, so a write
    /// that materialises a memoised-absent frame leaves the stale "absent"
    /// memo in place and later memoised reads of that frame wrongly return
    /// zero — the injected bug the lockstep suite
    /// (`crates/mem/tests/backing_identity.rs`) must prove it catches.
    #[doc(hidden)]
    pub fn debug_freeze_memo(&mut self) {
        self.debug_frozen_memo = true;
    }

    /// Checks the store's internal invariants: the resident counter matches
    /// the frame table and a present memo points at a resident frame.
    ///
    /// # Panics
    ///
    /// Panics when the direct-map state is inconsistent.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        let live = self.frames.iter().filter(|f| f.is_some()).count();
        assert_eq!(live, self.resident, "resident counter out of sync");
        let memo = self.memo.get();
        if memo.generation == self.generation && memo.present {
            assert!(
                !self.frame_absent(memo.frame),
                "memo marks absent frame {} present",
                memo.frame
            );
        }
    }
}

impl Default for SparseMemory {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = SparseMemory::new(1 << 20);
        let mut buf = [0xFFu8; 16];
        mem.read(0x1234, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn write_read_roundtrip_across_frame_boundary() {
        let mut mem = SparseMemory::new(1 << 20);
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        mem.write(PAGE_SIZE - 100, &data).unwrap();
        let mut back = vec![0u8; 10_000];
        mem.read(PAGE_SIZE - 100, &mut back).unwrap();
        assert_eq!(back, data);
        // 3996..13996 touches frames 0 through 3.
        assert_eq!(mem.resident_frames(), 4);
        assert_eq!(mem.resident_bytes(), 4 * PAGE_SIZE);
        mem.debug_validate();
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let mut mem = SparseMemory::new(4096);
        assert!(mem.write(4090, &[0u8; 8]).is_err());
        let mut buf = [0u8; 8];
        assert!(mem.read(4095, &mut buf).is_err());
        assert!(mem.read(u64::MAX, &mut buf).is_err());
        // Exactly at the end is fine.
        assert!(mem.write(4088, &[1u8; 8]).is_ok());
    }

    #[test]
    fn u64_and_f32_accessors() {
        let mut mem = SparseMemory::new(1 << 16);
        mem.write_u64(0x100, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(mem.read_u64(0x100).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        mem.write_f32(0x200, 3.5).unwrap();
        assert_eq!(mem.read_f32(0x200).unwrap(), 3.5);
    }

    #[test]
    fn typed_accessors_handle_frame_straddles() {
        let mut mem = SparseMemory::new(1 << 16);
        // 8-byte value split 3/5 across the frame-0/frame-1 boundary.
        mem.write_u64(PAGE_SIZE - 3, 0x0123_4567_89AB_CDEF).unwrap();
        assert_eq!(mem.read_u64(PAGE_SIZE - 3).unwrap(), 0x0123_4567_89AB_CDEF);
        // 4-byte value split 1/3.
        mem.write_f32(2 * PAGE_SIZE - 1, -7.25).unwrap();
        assert_eq!(mem.read_f32(2 * PAGE_SIZE - 1).unwrap(), -7.25);
        assert_eq!(mem.resident_frames(), 3);
        // Out-of-bounds straddles are rejected like everything else.
        assert!(mem.read_u64((1 << 16) - 4).is_err());
        mem.debug_validate();
    }

    #[test]
    fn fill_and_clear() {
        let mut mem = SparseMemory::new(1 << 16);
        mem.fill(100, 5000, 0xAB).unwrap();
        let mut buf = [0u8; 4];
        mem.read(4000, &mut buf).unwrap();
        assert_eq!(buf, [0xAB; 4]);
        mem.clear();
        mem.read(4000, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);
    }

    /// Regression (the PR 10 satellite bugfix): a large zero fill of
    /// untouched memory must not materialise frames — sparseness is the
    /// point of the store, and `resident_frames` feeds the sparseness
    /// observability in the perf artifact.
    #[test]
    fn zero_fill_of_absent_frames_is_a_no_op() {
        let mut mem = SparseMemory::new(64 << 20);
        mem.fill(0, 32 << 20, 0).unwrap();
        assert_eq!(mem.resident_frames(), 0);
        assert_eq!(mem.resident_bytes(), 0);
        // A resident frame in the range is still zeroed by the fill.
        mem.write_u64(5 * PAGE_SIZE + 8, 0x55).unwrap();
        mem.fill(0, 32 << 20, 0).unwrap();
        assert_eq!(mem.read_u64(5 * PAGE_SIZE + 8).unwrap(), 0);
        assert_eq!(mem.resident_frames(), 1, "only the pre-touched frame");
        // Partial-frame zero fill over absent frames is also a no-op.
        mem.fill(10 * PAGE_SIZE + 100, 300, 0).unwrap();
        assert_eq!(mem.resident_frames(), 1);
        mem.debug_validate();
    }

    /// The memo survives interleaved reads and writes and is invalidated
    /// by `clear`.
    #[test]
    fn memo_stays_coherent_across_clear() {
        let mut mem = SparseMemory::new(1 << 16);
        assert_eq!(mem.read_u64(0x100).unwrap(), 0); // memoise frame 0 absent
        mem.write_u64(0x100, 7).unwrap(); // materialise + refresh memo
        assert_eq!(mem.read_u64(0x100).unwrap(), 7);
        mem.clear();
        assert_eq!(mem.read_u64(0x100).unwrap(), 0, "clear invalidates memo");
        mem.write_u64(0x100, 9).unwrap();
        assert_eq!(mem.read_u64(0x100).unwrap(), 9);
        mem.debug_validate();
    }

    /// The frozen-memo debug hook produces exactly the stale-read bug the
    /// lockstep suite is built to catch.
    #[test]
    fn frozen_memo_goes_stale() {
        let mut mem = SparseMemory::new(1 << 16);
        mem.debug_freeze_memo();
        assert_eq!(mem.read_u64(0x100).unwrap(), 0); // memoise frame 0 absent
        mem.write_u64(0x100, 7).unwrap(); // frozen: memo not refreshed
        assert_eq!(mem.read_u64(0x100).unwrap(), 0, "stale memo serves zero");
    }
}
